#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, full test suite.
# Run from the repo root. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "CI OK"
