#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, full test suite.
# Run from the repo root. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> toolchain pin"
# The golden digests depend on consistent compiled semantics: verify
# the active toolchain matches the channel pinned in
# rust-toolchain.toml. Skipped gracefully where rustup is absent
# (e.g. distro-packaged cargo) — the pin is advisory there.
if command -v rustup >/dev/null 2>&1; then
    pinned=$(sed -n 's/^channel = "\(.*\)"/\1/p' rust-toolchain.toml)
    active=$(rustup show active-toolchain 2>/dev/null | awk 'NR==1{print $1}')
    case "$active" in
        "$pinned"-*|"$pinned")
            echo "    active toolchain '$active' matches pinned channel '$pinned'" ;;
        *)
            echo "    ERROR: active toolchain '$active' does not match pinned channel '$pinned'" >&2
            echo "    (rust-toolchain.toml should have selected it; is an override set?)" >&2
            exit 1 ;;
    esac
else
    echo "    rustup not found; skipping toolchain verification"
fi
rustc --version

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (workspace + benches)"
cargo build --release --offline
cargo build --release --offline --benches

echo "==> cargo test"
cargo test -q --offline

# Optional bench smoke: set RATTRAP_BENCH_SMOKE=1 to run the Fig. 9
# harness at reduced size; set RATTRAP_TRACE=<path> to additionally
# capture one instrumented replication as Chrome trace-event JSON and
# validate it (the CI bench-smoke job wires both). The fleet harnesses
# honour RATTRAP_ENGINE=serial|sharded[:N] (default serial); both
# engines are bit-identical, so the choice affects wall clock only.
if [ "${RATTRAP_BENCH_SMOKE:-0}" != "0" ]; then
    echo "==> bench smoke (exp_fig9)"
    cargo run --release --offline -p rattrap-bench --bin exp_fig9 >/dev/null
    echo "==> bench smoke (exp_cluster, engine=${RATTRAP_ENGINE:-serial})"
    cargo run --release --offline -p rattrap-bench --bin exp_cluster >/dev/null
    echo "==> bench smoke (exp_mega, engine=${RATTRAP_ENGINE:-serial})"
    cargo run --release --offline -p rattrap-bench --bin exp_mega >/dev/null
    echo "==> bench smoke (exp_storm: scenario plane, engine=${RATTRAP_ENGINE:-serial})"
    # exp_storm exits non-zero when its scorecard misses, so the smoke
    # run doubles as the scenario-plane conformance gate.
    BENCH_STORM_OUT=target/perf_storm.json \
        cargo run --release --offline -p rattrap-bench --bin exp_storm >/dev/null
    echo "==> bench smoke (exp_drift: modeled vs real kernel latency)"
    cargo run --release --offline -p rattrap-bench --bin exp_drift >/dev/null
    echo "==> exec serve probe (offload API end to end)"
    cargo run --release --offline -p rattrap-bench --bin exec_serve -- --probe >/dev/null
    if [ -n "${RATTRAP_TRACE:-}" ]; then
        echo "==> validate trace ($RATTRAP_TRACE)"
        cargo run --release --offline -p rattrap-bench --bin validate_trace -- "$RATTRAP_TRACE"
    fi
    # Perf-regression gate: rerun the two perf-sensitive benches in
    # smoke mode and diff against the committed full-mode baselines.
    # perf_gate gates machine-independent ratios (loosened for the
    # smoke/full horizon mismatch) and reports absolute rates as
    # informational; see crates/bench/src/bin/perf_gate.rs for the
    # tolerance policy and the baseline-regeneration procedure.
    echo "==> perf gate (engine_throughput + obsv_overhead vs results/BENCH_*.json)"
    BENCH_ENGINE_OUT=target/perf_engine.json \
        cargo bench --offline -p rattrap-bench --bench engine_throughput >/dev/null
    BENCH_OBSV_OUT=target/perf_obsv.json \
        cargo bench --offline -p rattrap-bench --bench obsv_overhead >/dev/null
    BENCH_EXEC_OUT=target/perf_exec.json \
        cargo bench --offline -p rattrap-bench --bench exec_drift >/dev/null
    cargo run --release --offline -p rattrap-bench --bin perf_gate -- \
        engine results/BENCH_engine.json target/perf_engine.json
    cargo run --release --offline -p rattrap-bench --bin perf_gate -- \
        obsv results/BENCH_obsv.json target/perf_obsv.json
    cargo run --release --offline -p rattrap-bench --bin perf_gate -- \
        exec results/BENCH_exec.json target/perf_exec.json
    cargo run --release --offline -p rattrap-bench --bin perf_gate -- \
        storm results/BENCH_storm.json target/perf_storm.json
fi

echo "CI OK"
