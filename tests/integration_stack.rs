//! Cross-crate integration: the full Rattrap stack from kernel modules
//! up to served offloading requests.

use hostkernel::{DeviceKind, HostSpec, Kernel, KernelError, Syscall, SyscallRet};
use rattrap::{aid_of, run_scenario, AppWarehouse, PlatformKind, ScenarioConfig};
use virt::{CloudHost, RuntimeClass};
use workloads::WorkloadKind;

#[test]
fn stock_server_becomes_offloading_host_without_reboot() {
    // A stock server cannot run Android userspace…
    let mut kernel = Kernel::new(HostSpec::paper_server());
    let ns = kernel.create_namespace();
    let app = kernel.processes.spawn(ns, "com.bench.ocr", 0);
    let err = kernel
        .syscall(app, Syscall::OpenDevice(DeviceKind::Binder))
        .unwrap_err();
    assert!(matches!(err, KernelError::NoSuchDevice { .. }));

    // …until the Android Container Driver is insmod'ed, live.
    let t = kernel.load_android_container_driver();
    assert!(t.as_millis() < 200, "no recompile, no reboot: {t}");
    assert!(kernel
        .syscall(app, Syscall::OpenDevice(DeviceKind::Binder))
        .is_ok());
}

#[test]
fn container_userspace_runs_on_shared_kernel_with_isolation() {
    let mut host = CloudHost::new(HostSpec::paper_server());
    let (a, _) = host.provision(RuntimeClass::CacOptimized).unwrap();
    let (b, _) = host.provision(RuntimeClass::CacOptimized).unwrap();

    // Full Android bring-up happened in both containers.
    for id in [a, b] {
        let inst = host.instance(id).unwrap();
        let procs = host.kernel.processes.in_namespace(inst.namespace);
        let names: Vec<&str> = procs.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"/init"));
        assert!(names.contains(&"zygote"));
        assert!(names.contains(&"system_server"));
    }

    // Binder transactions stay inside their namespace.
    let zygote_a = host.instance(a).unwrap().zygote_pid.unwrap();
    let SyscallRet::Pid(app_a) = host
        .kernel
        .syscall(
            zygote_a,
            Syscall::Fork {
                child_name: "com.bench.chessgame".into(),
            },
        )
        .unwrap()
    else {
        panic!("fork returns pid")
    };
    let SyscallRet::ServedBy(server) = host
        .kernel
        .syscall(
            app_a,
            Syscall::BinderTransact {
                service: "activity".into(),
                payload_bytes: 64,
            },
        )
        .unwrap()
    else {
        panic!("transact returns server pid")
    };
    let server_ns = host.kernel.processes.get(server).unwrap().namespace;
    assert_eq!(
        server_ns,
        host.instance(a).unwrap().namespace,
        "served inside namespace a"
    );

    // Teardown of a leaves b fully functional.
    host.teardown(a).unwrap();
    let zygote_b = host.instance(b).unwrap().zygote_pid.unwrap();
    assert!(host
        .kernel
        .syscall(
            zygote_b,
            Syscall::Fork {
                child_name: "still-works".into()
            }
        )
        .is_ok());
}

#[test]
fn shared_layer_is_physically_shared_across_the_fleet() {
    let mut host = CloudHost::new(HostSpec::paper_server());
    let shared = host.shared_layer_bytes();
    let mut ids = Vec::new();
    for _ in 0..6 {
        let (id, _) = host.provision(RuntimeClass::CacOptimized).unwrap();
        ids.push(id);
    }
    let per_container: u64 = ids
        .iter()
        .map(|&id| host.instance(id).unwrap().exclusive_disk_bytes)
        .sum();
    assert_eq!(host.total_disk_usage(), shared + per_container);
    // Six containers cost far less than six images.
    assert!(host.total_disk_usage() < shared + 6 * 8 * 1024 * 1024);
}

#[test]
fn warehouse_survives_container_churn() {
    // The code cache is platform state, not container state: cached
    // code outlives the containers that loaded it.
    let mut warehouse = AppWarehouse::new(64 << 20);
    let aid = aid_of(WorkloadKind::Linpack.app_id());
    assert!(!warehouse.lookup(&aid));
    warehouse.insert(aid.clone(), WorkloadKind::Linpack.app_id(), 137_216);

    let mut host = CloudHost::new(HostSpec::paper_server());
    let (c1, _) = host.provision(RuntimeClass::CacOptimized).unwrap();
    warehouse.note_loaded(&aid, c1);
    host.teardown(c1).unwrap();
    warehouse.invalidate_container(c1);

    // Cache still hits; only the CID column was invalidated.
    assert!(warehouse.lookup(&aid));
    assert!(warehouse.containers_with(&aid).is_empty());
}

#[test]
fn end_to_end_rattrap_beats_vm_on_response_time() {
    let seed = 0xE2E;
    let mut means = Vec::new();
    for platform in [PlatformKind::Rattrap, PlatformKind::VmBaseline] {
        let cfg = ScenarioConfig::paper_default(platform.config(), WorkloadKind::Ocr, seed);
        let rep = run_scenario(cfg);
        assert_eq!(rep.requests.len(), 100);
        means.push(rep.mean_of(|r| r.response_time().as_secs_f64()));
    }
    // Headline: "improves offloading response by as high as 63%". The
    // mean includes cold starts, where the gap is much larger.
    let improvement = 1.0 - means[0] / means[1];
    assert!(
        improvement > 0.25,
        "Rattrap {:.2}s vs VM {:.2}s ({:.0}% better)",
        means[0],
        means[1],
        improvement * 100.0
    );
}

#[test]
fn kernel_memory_fully_reclaimed_after_last_container() {
    let mut host = CloudHost::new(HostSpec::paper_server());
    let (a, _) = host.provision(RuntimeClass::CacUnoptimized).unwrap();
    let (b, _) = host.provision(RuntimeClass::CacOptimized).unwrap();
    assert!(host.kernel.kernel_memory() > 0);
    // Busy modules refuse to unload while containers reference them.
    assert!(host.kernel.unload_module("android_binder.ko").is_err());
    host.teardown(a).unwrap();
    assert!(
        host.kernel.unload_module("android_binder.ko").is_err(),
        "b still holds a ref"
    );
    host.teardown(b).unwrap();
    for m in hostkernel::ANDROID_CONTAINER_DRIVER {
        host.kernel.unload_module(m.name).unwrap();
    }
    assert_eq!(host.kernel.kernel_memory(), 0);
}
