//! Property-based integration tests on the end-to-end simulation.

use proptest::prelude::*;
use rattrap::{run_scenario, ArrivalModel, PlatformKind, ScenarioConfig};
use workloads::WorkloadKind;

fn workload_from(i: u8) -> WorkloadKind {
    WorkloadKind::ALL[i as usize % 4]
}

fn platform_from(i: u8) -> PlatformKind {
    PlatformKind::ALL[i as usize % 3]
}

/// A small scenario keeps each proptest case fast.
fn small_scenario(platform: PlatformKind, workload: WorkloadKind, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_default(platform.config(), workload, seed);
    cfg.devices = 2;
    cfg.requests_per_device = 4;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every issued request completes exactly once, regardless of
    /// platform, workload or seed.
    #[test]
    fn all_requests_complete(seed in any::<u64>(), w in any::<u8>(), p in any::<u8>()) {
        let rep = run_scenario(small_scenario(platform_from(p), workload_from(w), seed));
        prop_assert_eq!(rep.requests.len(), 8);
        let mut ids: Vec<u64> = rep.requests.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), 8, "no duplicated completions");
    }

    /// Phase decomposition is consistent: the four phases sum to the
    /// response time, and every phase is non-negative.
    #[test]
    fn phases_sum_to_response(seed in any::<u64>(), w in any::<u8>(), p in any::<u8>()) {
        let rep = run_scenario(small_scenario(platform_from(p), workload_from(w), seed));
        for r in &rep.requests {
            let total = r.phases.total().as_secs_f64();
            let response = r.response_time().as_secs_f64();
            prop_assert!((total - response).abs() < 2e-3,
                "phases {total} vs response {response} (req {})", r.id);
            prop_assert!(r.completed_at >= r.arrived_at);
        }
    }

    /// Byte accounting: upload covers code + control at minimum, and
    /// totals equal the per-request sums.
    #[test]
    fn byte_conservation(seed in any::<u64>(), w in any::<u8>(), p in any::<u8>()) {
        let rep = run_scenario(small_scenario(platform_from(p), workload_from(w), seed));
        let sum: u64 = rep.requests.iter().map(|r| r.upload_bytes).sum();
        prop_assert_eq!(rep.total_upload_bytes(), sum);
        for r in &rep.requests {
            prop_assert!(r.upload_bytes >= r.code_bytes_sent);
            prop_assert!(r.code_transferred == (r.code_bytes_sent > 0));
        }
    }

    /// Determinism: identical configs produce identical reports.
    #[test]
    fn determinism(seed in any::<u64>(), w in any::<u8>(), p in any::<u8>()) {
        let a = run_scenario(small_scenario(platform_from(p), workload_from(w), seed));
        let b = run_scenario(small_scenario(platform_from(p), workload_from(w), seed));
        prop_assert_eq!(&a.requests, &b.requests);
        prop_assert_eq!(a.instances_provisioned, b.instances_provisioned);
        prop_assert_eq!(a.peak_memory_bytes, b.peak_memory_bytes);
    }

    /// CPU timeline levels are valid fractions.
    #[test]
    fn cpu_levels_bounded(seed in any::<u64>(), p in any::<u8>()) {
        let rep = run_scenario(small_scenario(platform_from(p), WorkloadKind::Linpack, seed));
        prop_assert!(rep.cpu_timeline.iter().all(|&l| (0.0..=1.0 + 1e-9).contains(&l)));
    }

    /// The same request inflow hits every platform: per-request task
    /// payloads (seeded per device+seq) are identical across platforms.
    #[test]
    fn same_inflow_across_platforms(seed in any::<u64>(), w in any::<u8>()) {
        let kind = workload_from(w);
        let a = run_scenario(small_scenario(PlatformKind::Rattrap, kind, seed));
        let b = run_scenario(small_scenario(PlatformKind::VmBaseline, kind, seed));
        let key = |rep: &rattrap::SimulationReport| {
            let mut v: Vec<(u32, u32, u64)> = rep
                .requests
                .iter()
                .map(|r| (r.device, r.seq_on_device, r.upload_bytes - r.code_bytes_sent))
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(key(&a), key(&b), "payloads must match across platforms");
    }

    /// Trace mode serves exactly the requests in the trace.
    #[test]
    fn trace_mode_serves_trace(seed in any::<u64>(), n in 1usize..12) {
        let trace: Vec<Vec<simkit::SimTime>> = vec![
            (0..n).map(|i| simkit::SimTime::from_secs(10 * i as u64)).collect(),
        ];
        let mut cfg = small_scenario(PlatformKind::Rattrap, WorkloadKind::ChessGame, seed);
        cfg.devices = 1;
        cfg.arrivals = ArrivalModel::Trace(trace);
        let rep = run_scenario(cfg);
        prop_assert_eq!(rep.requests.len(), n);
    }
}
