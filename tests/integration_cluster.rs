//! Cross-crate integration: multi-host clusters, live migration, and
//! Docker-style distribution working together.

use dockerlike::{cloud_android_layers, Daemon, Layer, Manifest, PullStrategy, Registry};
use hostkernel::HostSpec;
use simkit::SimTime;
use virt::{migrate, Cluster, RuntimeClass};
use workloads::WorkloadKind;

#[test]
fn cluster_survives_host_drain() {
    // Pile every container onto host 0, then let the rebalancer spread
    // the load toward host 1, verifying warm state travels with them.
    let mut c = Cluster::new(2, HostSpec::paper_server());
    for _ in 0..3 {
        let (id, _) = c.host_mut(0).provision(RuntimeClass::CacOptimized).unwrap();
        c.host_mut(0)
            .load_app(id, WorkloadKind::Ocr.app_id(), 1_435_648)
            .unwrap();
    }
    let moves = c.rebalance(1.25e9, SimTime::ZERO).unwrap();
    assert!(!moves.is_empty());
    // Every migrated container kept its warm OCR code.
    for (_, to, _) in &moves {
        let t = c
            .host_mut(to.host)
            .load_app(to.instance, WorkloadKind::Ocr.app_id(), 1_435_648)
            .unwrap();
        assert_eq!(t, simkit::SimDuration::ZERO, "code survived migration");
    }
}

#[test]
fn migration_between_standalone_hosts_preserves_userspace() {
    let mut src = virt::CloudHost::new(HostSpec::paper_server());
    let mut dst = virt::CloudHost::new(HostSpec::paper_server());
    let (id, _) = src.provision(RuntimeClass::CacOptimized).unwrap();
    let r = migrate(&mut src, id, &mut dst, 1.25e9, SimTime::ZERO).unwrap();
    // The restored container has a live Android userspace: fork an app
    // from its zygote and transact on binder.
    let inst = dst.instance(r.new_id).unwrap();
    let zygote = inst.zygote_pid.expect("containers have a zygote");
    let hostkernel::SyscallRet::Pid(app) = dst
        .kernel
        .syscall(
            zygote,
            hostkernel::Syscall::Fork {
                child_name: "post-migration".into(),
            },
        )
        .unwrap()
    else {
        panic!("fork returns a pid");
    };
    let served = dst
        .kernel
        .syscall(
            app,
            hostkernel::Syscall::BinderTransact {
                service: "activity".into(),
                payload_bytes: 32,
            },
        )
        .unwrap();
    assert!(matches!(served, hostkernel::SyscallRet::ServedBy(_)));
}

#[test]
fn docker_registry_feeds_a_whole_cluster() {
    // One registry, three hosts, each pulling the image: the registry
    // stores the layers once; each host's daemon caches them once.
    let mut registry = Registry::new();
    let layers: Vec<Layer> = cloud_android_layers().into_iter().map(|(l, _)| l).collect();
    let manifest = Manifest::new("rattrap/cloud-android", "4.4-r2", &layers);
    let image = manifest.reference();
    registry.push(manifest, layers);
    let registry_bytes = registry.stored_bytes();

    let mut total_transferred = 0;
    for _ in 0..3 {
        let mut daemon = Daemon::new();
        let first = daemon
            .create(&registry, &image, PullStrategy::Eager, SimTime::ZERO)
            .unwrap();
        let second = daemon
            .create(&registry, &image, PullStrategy::Eager, SimTime::ZERO)
            .unwrap();
        total_transferred += first.pull.bytes_transferred + second.pull.bytes_transferred;
        assert_eq!(second.pull.bytes_transferred, 0, "per-host cache dedups");
    }
    // 3 hosts × 1 cold pull each — not 6 pulls.
    assert_eq!(total_transferred, 3 * registry_bytes);
}

#[test]
fn placement_and_rebalance_keep_accounting_consistent() {
    let mut c = Cluster::new(3, HostSpec::paper_server());
    for _ in 0..7 {
        c.provision_least_loaded(RuntimeClass::CacOptimized)
            .unwrap();
    }
    let before_count = c.instance_count();
    let before_mem = c.memory_reserved();
    let moves = c.rebalance(1.25e9, SimTime::ZERO).unwrap();
    assert_eq!(
        c.instance_count(),
        before_count,
        "rebalance conserves instances"
    );
    assert_eq!(c.memory_reserved(), before_mem, "…and total memory");
    // Least-loaded placement means at most one container of imbalance,
    // so rebalancing has nothing to do.
    assert!(moves.is_empty());
}
