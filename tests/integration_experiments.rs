//! The full experiment harness end-to-end: every table and figure
//! regenerates and passes its paper-shape scorecard on a seed other
//! than the default (guarding against seed-tuned results).

use rattrap_bench::experiments as exp;

const ALT_SEED: u64 = 0xA17E;

#[test]
fn table1_scorecard_passes_on_alternate_seed() {
    let out = exp::table1::run(ALT_SEED);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn fig1_scorecard_passes_on_alternate_seed() {
    let out = exp::fig1::run(ALT_SEED);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn fig3_scorecard_passes_on_alternate_seed() {
    let out = exp::fig3::run(ALT_SEED);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn fig9_scorecard_passes_on_alternate_seed() {
    let out = exp::fig9::run(ALT_SEED);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn table2_scorecard_passes_on_alternate_seed() {
    let out = exp::table2::run(ALT_SEED);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn fig11_scorecard_passes_on_alternate_seed() {
    let out = exp::fig11::run(ALT_SEED);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn osprofile_scorecard_is_seed_independent() {
    let out = exp::osprofile::run(ALT_SEED);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn ablations_scorecard_passes_on_alternate_seed() {
    let out = exp::ablations::run(ALT_SEED);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn cluster_scorecard_passes_on_alternate_seed() {
    // Explicit smoke scale: the scorecard's scaling, fault-evidence,
    // and elasticity contracts must hold even on the shrunk run.
    let out = exp::cluster::run_scaled(ALT_SEED, true);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn geo_scorecard_passes_on_alternate_seed() {
    // The edge-vs-centralized p99 win, cloud-burst, and migration
    // contracts must hold even on the shrunk run.
    let out = exp::geo::run_scaled(ALT_SEED, true);
    assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
}

#[test]
fn experiment_bodies_are_deterministic() {
    let a = exp::fig9::run(42);
    let b = exp::fig9::run(42);
    assert_eq!(a.body, b.body);
    let c = exp::fig9::run(43);
    assert_ne!(c.body, a.body, "different seed, different samples");
}
