//! Mobile app testing — one of the §VIII use cases for Cloud Android
//! Containers: a CI farm that needs N fresh Android environments to run
//! a test matrix. Containers make environment-per-test affordable; VMs
//! don't.
//!
//! Run with: `cargo run --release --example app_testing_farm [n_tests]`

use hostkernel::HostSpec;
use simkit::units::format_bytes;
use simkit::SimDuration;
use virt::{CloudHost, HostError, RuntimeClass};

fn farm_run(class: RuntimeClass, tests: usize) -> (usize, SimDuration, u64, u64) {
    let mut host = CloudHost::new(HostSpec::paper_server());
    host.kernel.load_android_container_driver();
    // Provision as many parallel environments as memory allows (capped
    // at the test count), run the matrix in waves.
    let mut envs = Vec::new();
    let mut setup_total = SimDuration::ZERO;
    while envs.len() < tests {
        match host.provision(class) {
            Ok((id, setup)) => {
                setup_total += setup;
                envs.push(id);
            }
            Err(HostError::OutOfMemory(_)) => break,
            Err(e) => panic!("provision failed: {e}"),
        }
    }
    let parallel = envs.len().max(1);
    let waves = tests.div_ceil(parallel);
    // Each test: install APK + run 30 s of instrumented tests.
    let per_wave = SimDuration::from_secs(30) + SimDuration::from_millis(400);
    let boot = class.boot_sequence().total();
    // Environments must be *fresh* per test: each wave reboots them.
    let wall = (boot + per_wave).mul_f64(waves as f64);
    (
        parallel,
        wall,
        host.memory_reserved(),
        host.total_disk_usage(),
    )
}

fn main() {
    let tests: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!("=== Android app-testing farm: {tests}-test matrix, fresh env per test ===\n");
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>12}",
        "Runtime", "parallel", "wall time", "memory", "disk"
    );
    for class in [
        RuntimeClass::AndroidVm,
        RuntimeClass::CacUnoptimized,
        RuntimeClass::CacOptimized,
    ] {
        let (parallel, wall, mem, disk) = farm_run(class, tests);
        println!(
            "{:<22} {:>9} {:>11.0}s {:>12} {:>12}",
            class.label(),
            parallel,
            wall.as_secs_f64(),
            format_bytes(mem),
            format_bytes(disk)
        );
    }
    println!("\nThe optimized container farm fits several times more parallel environments in");
    println!("the same DRAM and reboots each in 1.75s instead of 28.7s — the");
    println!("fresh-environment-per-test discipline becomes affordable.");
}
