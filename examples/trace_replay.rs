//! Replay a synthetic LiveLab-style day of app usage against all three
//! platforms — the Fig. 11 experiment at example scale.
//!
//! Run with: `cargo run --release --example trace_replay [hours]`

use analysis::{fpct, Table};
use rattrap::PlatformKind;
use simkit::SimDuration;
use traces::{generate, run_trace_experiment, stats, TraceConfig};
use workloads::WorkloadKind;

fn main() {
    let hours: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let cfg = TraceConfig {
        users: 5,
        duration: SimDuration::from_secs(hours * 3600),
        ..Default::default()
    };
    let trace = generate(&cfg);
    let ts = stats(&trace, SimDuration::from_secs(120));
    println!(
        "trace: {} requests over {hours}h from {} users (median gap {:.1}s, {} of requests follow a cold gap)\n",
        ts.requests,
        cfg.users,
        ts.median_gap_s,
        fpct(ts.cold_gap_fraction)
    );

    let results = run_trace_experiment(WorkloadKind::ChessGame, &cfg, &PlatformKind::ALL);
    let mut table = Table::new(
        "trace replay (ChessGame)",
        &[
            "Platform",
            "Requests",
            "Failures",
            "Median speedup",
            "P(speedup>3)",
        ],
    );
    for r in &results {
        table.row(&[
            r.platform.label().to_string(),
            r.requests.to_string(),
            fpct(r.failure_rate),
            format!("{:.2}", r.speedup_cdf.median().unwrap_or(0.0)),
            fpct(r.speedup3_fraction),
        ]);
    }
    println!("{}", table.render());
    println!("Rattrap's sub-2s container start turns nearly every session-start");
    println!("cold hit into a served request; the VM's 28.7s boot makes the");
    println!("first requests of every session offloading failures.");
}
