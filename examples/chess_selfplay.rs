//! Engine self-play: the ChessGame workload playing a full game against
//! itself with transposition tables — a soak test of the movegen/search
//! stack and a demo of the per-move requests a real offloading session
//! would generate.
//!
//! Run with: `cargo run --release --example chess_selfplay [depth]`

use workloads::chess::{apply_move, in_check, legal_moves, Board, Searcher};
use workloads::WorkloadKind;

fn main() {
    let depth: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("=== engine self-play at depth {depth} (TT enabled) ===\n");
    let mut board = Board::start();
    let mut history = Vec::new();
    let mut total_nodes = 0u64;
    let profile = WorkloadKind::ChessGame.profile();

    for ply in 0..120 {
        let moves = legal_moves(&board);
        if moves.is_empty() {
            if in_check(&board, board.side) {
                println!(
                    "\ncheckmate — {:?} wins after {} plies",
                    board.side.opponent(),
                    ply
                );
            } else {
                println!("\nstalemate after {} plies", ply);
            }
            break;
        }
        if board.halfmove_clock >= 100 {
            println!("\ndraw by the fifty-move rule after {ply} plies");
            break;
        }
        let mut searcher = Searcher::new(400_000).with_table(1 << 16);
        let result = searcher.search(&board, depth);
        let mv = result.best_move.expect("moves exist");
        total_nodes += result.nodes;
        history.push(mv.uci());
        board = apply_move(&board, mv);
        if ply < 16 || ply % 10 == 0 {
            println!(
                "ply {ply:>3}: {}  (score {:>6} cp, {:>8} nodes, depth {})",
                mv.uci(),
                result.score,
                result.nodes,
                result.depth
            );
        }
    }

    println!("\nfinal position: {}", board.to_fen());
    println!("moves: {}", history.join(" "));
    println!(
        "\n{} offloading requests at ~{} KiB each would have moved {} KiB total;",
        history.len(),
        profile.payload_bytes_mean / 1024,
        history.len() as u64 * profile.payload_bytes_mean / 1024
    );
    println!(
        "the {} KiB engine APK travels once thanks to the code cache.",
        profile.app_code_bytes / 1024
    );
    println!("total nodes searched: {total_nodes}");
}
