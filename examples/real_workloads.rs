//! Execute the four benchmark applications for real — the actual
//! compute kernels the offloading simulation is calibrated against.
//!
//! Run with: `cargo run --release --example real_workloads`

use simkit::SimRng;
use workloads::chess::{execute as chess_execute, Board, ChessRequest};
use workloads::linpack;
use workloads::ocr::{execute as ocr_execute, generate_request};
use workloads::virusscan::{
    execute as scan_execute, generate_corpus, generate_database, ScanRequest,
};

fn main() {
    let mut rng = SimRng::new(0xBEEF);
    println!("=== the four offloading workloads, executed for real ===\n");

    // --- OCR: render noisy text, recognise it back ---------------------
    let req = generate_request(6, &mut rng);
    let result = ocr_execute(&req);
    println!(
        "[OCR] image {}x{} ({} KiB)",
        req.image.width,
        req.image.height,
        req.image.byte_size() / 1024
    );
    println!("      truth: {:?}", req.truth);
    println!(
        "      read : {:?} (confidence {:.1}%, {} template comparisons)\n",
        result.text,
        result.confidence * 100.0,
        result.comparisons
    );

    // --- ChessGame: alpha-beta search on the Kiwipete position ----------
    let chess = ChessRequest {
        fen: "r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq - 0 1".into(),
        depth: 4,
    };
    let search = chess_execute(&chess).expect("valid FEN");
    println!("[ChessGame] position: {}", chess.fen);
    println!(
        "            best move {} (score {} cp, {} nodes searched)\n",
        search.best_move.expect("moves exist").uci(),
        search.score,
        search.nodes
    );
    let perft3 = workloads::chess::perft(&Board::start(), 3);
    println!("            movegen sanity: perft(3) from start = {perft3} (expect 8902)\n");

    // --- VirusScan: Aho–Corasick over an infected corpus ----------------
    let db = generate_database(500, &mut rng);
    let corpus = generate_corpus(60, 8192, 0.2, &db, &mut rng);
    let truth: usize = corpus.iter().map(|f| f.implanted.len()).sum();
    let report = scan_execute(&db, &ScanRequest { corpus });
    println!(
        "[VirusScan] {} signatures, {} files, {} KiB scanned",
        db.len(),
        report.files_scanned,
        report.bytes_scanned / 1024
    );
    println!(
        "            detections: {} (ground truth: {truth})\n",
        report.detections.len()
    );

    // --- Linpack: LU solve with residual check ---------------------------
    let lp = linpack::run(300, &mut rng).expect("random matrices are nonsingular");
    println!(
        "[Linpack] n={}  residual {:.3e}  normalized residual {:.3}  ({:.1} MFLOP of work)",
        lp.n,
        lp.residual,
        lp.normalized_residual,
        lp.flops / 1e6
    );
    println!(
        "          verdict: {}",
        if lp.normalized_residual < 16.0 {
            "PASSED"
        } else {
            "FAILED"
        }
    );
}
