//! The Request-based Access Controller in action (§IV-E): a benign app
//! offloads normally while a malicious app probing the platform racks
//! up violations and gets blocked.
//!
//! Run with: `cargo run --release --example secure_offloading`

use rattrap::{AccessController, Action, Denial};

fn main() {
    println!("=== request-based access control demo ===\n");
    let mut controller = AccessController::new(3);

    // Both apps are analyzed on their first offloading request; requests
    // from the same app then share one permission table.
    controller.admit("com.bench.ocr", 280 * 1024);
    controller.admit("com.evil.miner", 4 * 1024);
    println!(
        "analyzed {} apps (analysis happens once per app)\n",
        controller.analyzed_apps()
    );

    // The benign OCR app's workflow sails through the filter.
    let benign = [
        Action::NetConnect {
            dest: "device-0".into(),
        },
        Action::FsWrite { bytes: 300 * 1024 },
        Action::BinderCall {
            service: "offloadcontroller".into(),
        },
        Action::SpawnProcess,
    ];
    for action in &benign {
        let verdict = controller.check("com.bench.ocr", action);
        println!(
            "ocr     {action:<55?} → {}",
            if verdict.is_ok() { "allowed" } else { "DENIED" }
        );
    }

    // The malicious app probes beyond its permission table.
    println!();
    let attacks = [
        Action::BinderCall {
            service: "telephony".into(),
        }, // not an offloading service
        Action::WarehouseRead {
            aid: "8d6d1b5".into(),
        }, // another app's cached code
        Action::FsWrite {
            bytes: 500 * 1024 * 1024,
        }, // way over its declared payload
        Action::NetConnect {
            dest: "device-0".into(),
        }, // legitimate… but too late
    ];
    for action in &attacks {
        let verdict = controller.check("com.evil.miner", action);
        let label = match &verdict {
            Ok(()) => "allowed".to_string(),
            Err(Denial::Violation { .. }) => format!(
                "VIOLATION ({}/3)",
                controller.violation_count("com.evil.miner")
            ),
            Err(Denial::Blocked) => "BLOCKED".to_string(),
        };
        println!("miner   {action:<55?} → {label}");
    }

    println!(
        "\ncom.evil.miner blocked: {} — com.bench.ocr unaffected: {}",
        controller.is_blocked("com.evil.miner"),
        !controller.is_blocked("com.bench.ocr")
    );
    assert!(controller.is_blocked("com.evil.miner"));
    assert!(!controller.is_blocked("com.bench.ocr"));
}
