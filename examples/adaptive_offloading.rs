//! The client-side decision engine adapting to network conditions: the
//! same workload mix is offloaded on LAN WiFi, selectively offloaded on
//! 4G, and mostly kept local on the paper's measured 3G link.
//!
//! Run with: `cargo run --release --example adaptive_offloading`

use netsim::NetworkScenario;
use rattrap::{DeviceSpec, LinkEstimator, Objective, OffloadDecider};
use simkit::{SimDuration, SimRng};
use workloads::WorkloadKind;

fn main() {
    println!("=== adaptive offloading across network scenarios ===\n");
    let latency = OffloadDecider::new(DeviceSpec::default_handset(), Objective::Latency);
    let energy = OffloadDecider::new(DeviceSpec::default_handset(), Objective::Energy);
    let mut rng = SimRng::new(0xADA);

    for scenario in NetworkScenario::ALL {
        println!("--- {} ---", scenario.label());
        let link = LinkEstimator::seeded_from(scenario);
        for kind in WorkloadKind::ALL {
            let task = kind.profile().sample(&mut rng);
            let by_latency = latency.decide(scenario, &link, &task, 0, SimDuration::ZERO);
            let by_energy = energy.decide(scenario, &link, &task, 0, SimDuration::ZERO);
            println!(
                "  {:<10} remote {:>7.2}s vs local {:>6.2}s | energy {:>8.0} vs {:>7.0} mJ | latency: {:<7} energy: {}",
                kind.label(),
                by_latency.predicted_remote.as_secs_f64(),
                by_latency.predicted_local.as_secs_f64(),
                by_energy.remote_energy_mj,
                by_energy.local_energy_mj,
                if by_latency.offload { "OFFLOAD" } else { "local" },
                if by_energy.offload { "OFFLOAD" } else { "local" },
            );
        }
        println!();
    }
    println!("On LAN everything offloads; on the paper's 3G link (0.38 Mbps up,");
    println!("0.09 Mbps down) the transfer-bound workloads stay on the device —");
    println!("the energy objective is stricter still because of the 3G radio's");
    println!("promotion cost and five-second tail.");
}
