//! Quickstart: bring up a Rattrap cloud host, provision a Cloud Android
//! Container, and serve one offloaded chess request end-to-end — with
//! the *real* chess engine doing the work.
//!
//! Run with: `cargo run --release --example quickstart`

use hostkernel::HostSpec;
use rattrap::{aid_of, AppWarehouse};
use virt::{CloudHost, RuntimeClass};
use workloads::chess::{execute, Board, ChessRequest};
use workloads::WorkloadKind;

fn main() {
    println!("=== Rattrap quickstart ===\n");

    // 1. A stock cloud server…
    let mut host = CloudHost::new(HostSpec::paper_server());
    println!(
        "host: {} cores @ {:.2} GHz, {} GiB DRAM",
        host.host_spec().cores,
        host.host_spec().clock_ghz,
        host.host_spec().memory_bytes >> 30
    );

    // 2. …extended at runtime with the Android Container Driver.
    let insmod = host.kernel.load_android_container_driver();
    println!(
        "android container driver loaded in {insmod} ({} KiB kernel memory)",
        host.kernel.kernel_memory() / 1024
    );

    // 3. Provision an optimized Cloud Android Container.
    let (cac, setup) = host
        .provision(RuntimeClass::CacOptimized)
        .expect("room on a fresh host");
    println!(
        "cloud android container ready in {} (vs 28.72s for an Android VM)",
        setup
    );
    let inst = host.instance(cac).expect("provisioned");
    println!(
        "container #{} — namespace {}, private disk {} KiB, zygote pid {}",
        inst.id.0,
        inst.namespace,
        inst.exclusive_disk_bytes / 1024,
        inst.zygote_pid.expect("containers have a zygote")
    );

    // 4. First request: the chess app's code is transferred once and
    //    cached in the App Warehouse.
    let mut warehouse = AppWarehouse::new(512 << 20);
    let app = WorkloadKind::ChessGame.app_id();
    let aid = aid_of(app);
    let profile = WorkloadKind::ChessGame.profile();
    if !warehouse.lookup(&aid) {
        println!(
            "\ncode cache MISS for {app} (AID {}) — uploading {} KiB APK",
            aid.0,
            profile.app_code_bytes / 1024
        );
        warehouse.insert(aid.clone(), app, profile.app_code_bytes);
    }
    let load = host
        .load_app(cac, app, profile.app_code_bytes)
        .expect("container is live");
    warehouse.note_loaded(&aid, cac);
    println!("classloader took {load}");

    // 5. Execute the offloaded computation — a real alpha-beta search.
    let req = ChessRequest {
        fen: Board::start().to_fen(),
        depth: 4,
    };
    let result = execute(&req).expect("valid FEN");
    println!(
        "\noffloaded search: best move {} (score {} cp, {} nodes, depth {})",
        result.best_move.expect("start position has moves").uci(),
        result.score,
        result.nodes,
        result.depth
    );

    // 6. Second request from any device: cache HIT, no code transfer,
    //    and the dispatcher can route straight to container CID 0.
    assert!(warehouse.lookup(&aid));
    println!(
        "second request: cache HIT — {} KiB of upload avoided, CID hint = {:?}",
        warehouse.stats().bytes_saved / 1024,
        warehouse
            .containers_with(&aid)
            .iter()
            .map(|c| c.0)
            .collect::<Vec<_>>()
    );

    host.teardown(cac).expect("clean teardown");
    println!(
        "\ncontainer torn down; host memory in use: {} bytes",
        host.memory_reserved()
    );
}
