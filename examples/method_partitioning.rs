//! MAUI-style method-level partitioning of a benchmark app's call
//! graph: which methods should run in the Cloud Android Container,
//! under each network scenario?
//!
//! Run with: `cargo run --release --example method_partitioning`

use netsim::NetworkScenario;
use rattrap::{partition, CallGraph, MethodNode, MethodPlacement, PartitionCosts};
use simkit::units::Megacycles;

/// The OCR app as an annotated call tree: UI entry, image capture
/// (camera — pinned local), preprocessing, and the heavy recognition
/// pipeline.
fn ocr_app() -> CallGraph {
    let node =
        |name: &str, mc: f64, state: u64, offloadable: bool, children: Vec<usize>| MethodNode {
            name: name.into(),
            compute: Megacycles(mc),
            state_bytes: state,
            offloadable,
            children,
        };
    CallGraph::new(vec![
        node("onScanButton", 4.0, 0, false, vec![1, 2]), // 0: UI
        node("capturePhoto", 120.0, 0, false, vec![]),   // 1: camera
        node("runOcr", 30.0, 290_000, true, vec![3, 4, 5]), // 2: pipeline root
        node("binarize", 450.0, 290_000, true, vec![]),  // 3
        node("segmentGlyphs", 900.0, 120_000, true, vec![]), // 4
        node("matchTemplates", 5_200.0, 60_000, true, vec![6]), // 5: the JNI hot loop
        node("rankCandidates", 300.0, 8_000, true, vec![]), // 6
    ])
    .expect("valid tree")
}

fn main() {
    println!("=== method-level partitioning of the OCR app ===\n");
    let app = ocr_app();
    for scenario in NetworkScenario::ALL {
        let p = scenario.params();
        let costs = PartitionCosts {
            device_eff_ghz: 0.48,
            server_eff_ghz: 2.53, // 2.66 GHz × 0.95 container efficiency
            bandwidth_bps: p.upstream_bps,
            rtt_s: p.rtt.as_secs_f64(),
        };
        let plan = partition(&app, &costs);
        println!(
            "--- {} (uplink {:.2} Mbps, rtt {:.0} ms) ---",
            scenario.label(),
            p.upstream_bps * 8.0 / 1e6,
            p.rtt.as_millis_f64()
        );
        for i in 0..app.len() {
            let place = match plan.placements[i] {
                MethodPlacement::Remote => "CLOUD",
                MethodPlacement::Local => "device",
            };
            println!(
                "  {:<16} {:>7.0} Mc  → {}",
                app.node(i).name,
                app.node(i).compute.0,
                place
            );
        }
        println!(
            "  end-to-end {:.2}s vs all-local {:.2}s  (speedup {:.2}x)\n",
            plan.latency_s,
            plan.all_local_s,
            plan.speedup()
        );
    }
    println!("On WiFi the whole recognition pipeline offloads. On the paper's");
    println!("3G uplink the partitioner retreats to shipping only the hottest");
    println!("subtree (matchTemplates, 60 KB of state) — paying one narrow cut");
    println!("instead of the pipeline's 290 KB image upload.");
}
