//! Compare the three cloud platforms on one workload — a miniature
//! Fig. 9: phase decomposition, failure rate, migrated data, disk and
//! memory footprints.
//!
//! Run with: `cargo run --release --example platform_comparison [workload]`
//! where `workload` is one of `ocr`, `chess`, `virusscan`, `linpack`.

use analysis::{fnum, fpct, Table};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig};
use workloads::WorkloadKind;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("ocr") | None => WorkloadKind::Ocr,
        Some("chess") => WorkloadKind::ChessGame,
        Some("virusscan") => WorkloadKind::VirusScan,
        Some("linpack") => WorkloadKind::Linpack,
        Some(other) => {
            eprintln!("unknown workload {other}; use ocr|chess|virusscan|linpack");
            std::process::exit(2);
        }
    };
    println!(
        "=== platform comparison: {} (5 devices x 20 requests, LAN WiFi) ===\n",
        kind.label()
    );

    let mut table = Table::new(
        "mean per-request breakdown",
        &[
            "Platform",
            "Response(s)",
            "Prep(s)",
            "Transfer(s)",
            "Compute(s)",
            "Failures",
            "Upload(MB)",
            "PeakDisk(GB)",
            "PeakMem(MB)",
        ],
    );
    for platform in PlatformKind::ALL {
        let cfg = ScenarioConfig::paper_default(platform.config(), kind, 7);
        let rep = run_scenario(cfg);
        table.row(&[
            platform.label().to_string(),
            fnum(rep.mean_of(|r| r.response_time().as_secs_f64()), 3),
            fnum(
                rep.mean_of(|r| r.phases.runtime_preparation.as_secs_f64()),
                3,
            ),
            fnum(
                rep.mean_of(|r| {
                    (r.phases.data_transfer + r.phases.network_connection).as_secs_f64()
                }),
                3,
            ),
            fnum(
                rep.mean_of(|r| r.phases.computation_execution.as_secs_f64()),
                3,
            ),
            fpct(rep.failure_rate()),
            fnum(rep.total_upload_bytes() as f64 / 1e6, 2),
            fnum(rep.peak_disk_bytes as f64 / 1e9, 2),
            fnum(rep.peak_memory_bytes as f64 / 1e6, 0),
        ]);
    }
    println!("{}", table.render());
    println!("Rattrap wins on every column except raw compute, where the");
    println!("gap is the virtualization overhead plus the shared in-memory");
    println!("offloading I/O layer (biggest for the I/O-heavy VirusScan).");
}
