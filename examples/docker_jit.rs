//! Just-in-time Cloud Android Container provisioning via a Docker-style
//! registry (the paper's §VIII future work): cold eager pull vs. lazy
//! (Slacker) pull vs. warm cache, against the LXC prototype's numbers.
//!
//! Run with: `cargo run --release --example docker_jit`

use dockerlike::{cloud_android_layers, Daemon, Layer, Manifest, PullStrategy, Registry};
use simkit::SimTime;
use virt::RuntimeClass;

fn main() {
    println!("=== just-in-time provisioning with a dockerlike registry ===\n");

    // Build and push the cloud-android image.
    let mut registry = Registry::new();
    let layers: Vec<Layer> = cloud_android_layers().into_iter().map(|(l, _)| l).collect();
    println!("image layers:");
    for l in &layers {
        println!(
            "  {}  {:>8} KiB  {:>5} files  {}",
            l.digest.short(),
            l.size / 1024,
            l.files,
            l.description
        );
    }
    let manifest = Manifest::new("rattrap/cloud-android", "4.4-r2", &layers);
    let image = manifest.reference();
    registry.push(manifest, layers);
    println!(
        "\npushed {image} ({} MiB in registry)\n",
        registry.stored_bytes() >> 20
    );

    // Reference points from Table I.
    println!(
        "Android VM boot (Table I)         : {:.2}s",
        RuntimeClass::AndroidVm
            .boot_sequence()
            .total()
            .as_secs_f64()
    );
    println!(
        "LXC CAC, prebuilt rootfs (Table I): {:.2}s\n",
        RuntimeClass::CacOptimized
            .boot_sequence()
            .total()
            .as_secs_f64()
    );

    let mut eager = Daemon::new();
    let cold = eager
        .create(&registry, &image, PullStrategy::Eager, SimTime::ZERO)
        .expect("pushed");
    println!(
        "docker cold, eager pull  : {:.2}s  ({} layers, {} MiB moved)",
        cold.latency.as_secs_f64(),
        cold.pull.layers_fetched,
        cold.pull.bytes_transferred >> 20
    );

    let mut lazy = Daemon::new();
    let jit = lazy
        .create(&registry, &image, PullStrategy::Lazy, SimTime::ZERO)
        .expect("pushed");
    let c = lazy.container(jit.container).expect("created");
    println!(
        "docker cold, lazy pull   : {:.2}s  (startup set only; {} MiB fault in later)",
        jit.latency.as_secs_f64(),
        c.lazy_remainder >> 20
    );

    let warm = eager
        .create(&registry, &image, PullStrategy::Eager, SimTime::ZERO)
        .expect("pushed");
    println!(
        "docker warm cache        : {:.2}s  ({} layers cached, 0 bytes moved)",
        warm.latency.as_secs_f64(),
        warm.pull.layers_cached
    );

    println!("\nLazy pull gets a *cold* host within striking distance of the");
    println!("prebuilt-rootfs LXC start — the \"real just-in-time provision\"");
    println!("the paper anticipated from a Docker-based Rattrap.");
}
