//! What an operator sees on a Rattrap server: `lsmod` before/after the
//! Android Container Driver loads, `ps` across container namespaces,
//! meminfo, and a container live-migration between two hosts.
//!
//! Run with: `cargo run --release --example host_introspection`

use hostkernel::procfs::{lsmod, meminfo, ps};
use hostkernel::HostSpec;
use simkit::SimTime;
use virt::{migrate, CloudHost, RuntimeClass};

fn main() {
    let mut host_a = CloudHost::new(HostSpec::paper_server());
    println!("=== host A, stock server ===");
    println!("$ lsmod\n{}", lsmod(&host_a.kernel));

    host_a.kernel.load_android_container_driver();
    println!("$ insmod android_container_driver/*.ko");
    println!("$ lsmod\n{}", lsmod(&host_a.kernel));

    let (c1, t1) = host_a
        .provision(RuntimeClass::CacOptimized)
        .expect("fresh host");
    let (_c2, _) = host_a
        .provision(RuntimeClass::CacOptimized)
        .expect("fresh host");
    host_a
        .load_app(c1, "com.bench.chessgame", 2 << 20)
        .expect("live");
    println!("provisioned two cloud android containers (first in {t1})\n");
    println!("$ ps --namespaces\n{}", ps(&host_a.kernel));
    println!("$ cat /proc/meminfo\n{}", meminfo(&host_a.kernel));

    // Live-migrate container 1 to a second host over 10 GbE.
    let mut host_b = CloudHost::new(HostSpec::paper_server());
    let receipt = migrate(&mut host_a, c1, &mut host_b, 1.25e9, SimTime::ZERO).expect("migratable");
    println!(
        "$ rattrap migrate cac-{} host-b   # {} MiB of state, {} downtime",
        c1.0,
        receipt.state_bytes >> 20,
        receipt.downtime
    );
    println!("\n=== host B after migration ===");
    println!("$ ps --namespaces\n{}", ps(&host_b.kernel));
    let reload = host_b
        .load_app(receipt.new_id, "com.bench.chessgame", 2 << 20)
        .expect("live");
    println!("chess code still warm on host B: classload cost {reload}");
}
