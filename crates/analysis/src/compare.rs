//! Paper-vs-measured comparison checks.
//!
//! Each experiment asserts *shape*, not absolute numbers: who wins, by
//! roughly what factor, where crossovers fall. A [`Check`] records one
//! such expectation; [`Scorecard`] collects and renders them for
//! EXPERIMENTS.md.

use std::fmt;

/// Outcome of one expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What is being checked (e.g. "Table I: CAC setup speedup").
    pub name: String,
    /// The paper's value, rendered.
    pub expected: String,
    /// Our measured value, rendered.
    pub measured: String,
    /// Did the measured value satisfy the expectation?
    pub ok: bool,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — paper: {}, measured: {}",
            if self.ok { "PASS" } else { "MISS" },
            self.name,
            self.expected,
            self.measured
        )
    }
}

/// A collection of checks for one experiment.
#[derive(Debug, Default)]
pub struct Scorecard {
    checks: Vec<Check>,
}

impl Scorecard {
    /// Empty scorecard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check that `measured` is within `tol` *relative* error of the
    /// paper's value.
    pub fn within(&mut self, name: &str, paper: f64, measured: f64, tol: f64) -> &mut Self {
        let ok = (measured - paper).abs() <= tol * paper.abs().max(f64::MIN_POSITIVE);
        self.checks.push(Check {
            name: name.to_string(),
            expected: format!("{paper:.3} (±{:.0}%)", tol * 100.0),
            measured: format!("{measured:.3}"),
            ok,
        });
        self
    }

    /// Check that `measured` lies inside the paper's `(lo, hi)` band,
    /// widened by `slack` relative on both sides.
    pub fn in_band(
        &mut self,
        name: &str,
        band: (f64, f64),
        measured: f64,
        slack: f64,
    ) -> &mut Self {
        let lo = band.0 * (1.0 - slack);
        let hi = band.1 * (1.0 + slack);
        let ok = measured >= lo && measured <= hi;
        self.checks.push(Check {
            name: name.to_string(),
            expected: format!("{:.2}–{:.2}", band.0, band.1),
            measured: format!("{measured:.3}"),
            ok,
        });
        self
    }

    /// Check a qualitative ordering `a < b` (who-wins shape checks).
    pub fn less(&mut self, name: &str, a_label: &str, a: f64, b_label: &str, b: f64) -> &mut Self {
        self.checks.push(Check {
            name: name.to_string(),
            expected: format!("{a_label} < {b_label}"),
            measured: format!("{a:.3} vs {b:.3}"),
            ok: a < b,
        });
        self
    }

    /// Record an arbitrary boolean expectation.
    pub fn expect(&mut self, name: &str, expected: &str, measured: &str, ok: bool) -> &mut Self {
        self.checks.push(Check {
            name: name.to_string(),
            expected: expected.to_string(),
            measured: measured.to_string(),
            ok,
        });
        self
    }

    /// All checks.
    pub fn checks(&self) -> &[Check] {
        &self.checks
    }

    /// Number of passing checks.
    pub fn passed(&self) -> usize {
        self.checks.iter().filter(|c| c.ok).count()
    }

    /// Number of checks recorded.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// `true` when no checks are recorded.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// `true` when every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// Render the scorecard.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!("{c}\n"));
        }
        out.push_str(&format!(
            "{} / {} checks passed\n",
            self.passed(),
            self.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_tolerance() {
        let mut s = Scorecard::new();
        s.within("setup", 28.72, 28.72, 0.01);
        s.within("setup-off", 28.72, 35.0, 0.05);
        assert!(s.checks()[0].ok);
        assert!(!s.checks()[1].ok);
        assert_eq!(s.passed(), 1);
        assert!(!s.all_ok());
    }

    #[test]
    fn band_checks() {
        let mut s = Scorecard::new();
        s.in_band("prep speedup", (16.29, 16.98), 16.5, 0.0);
        s.in_band("prep speedup slack", (16.29, 16.98), 18.0, 0.10);
        s.in_band("way off", (16.29, 16.98), 40.0, 0.10);
        assert!(s.checks()[0].ok);
        assert!(s.checks()[1].ok);
        assert!(!s.checks()[2].ok);
    }

    #[test]
    fn ordering_checks() {
        let mut s = Scorecard::new();
        s.less("failures", "Rattrap", 0.013, "VM", 0.097);
        assert!(s.all_ok());
        s.less("wrong", "VM", 0.097, "Rattrap", 0.013);
        assert!(!s.all_ok());
    }

    #[test]
    fn render_contains_verdicts() {
        let mut s = Scorecard::new();
        s.within("x", 1.0, 1.0, 0.1);
        let r = s.render();
        assert!(r.contains("[PASS]"));
        assert!(r.contains("1 / 1 checks passed"));
    }
}
