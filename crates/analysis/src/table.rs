//! Aligned ASCII table rendering for experiment output.

/// A simple table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, &w) in widths.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit() || c == '-' || c == '+')
                    .unwrap_or(false);
                if numeric {
                    line.push_str(&format!("{cell:>w$}"));
                } else {
                    line.push_str(&format!("{cell:<w$}"));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Render as CSV (RFC-4180 quoting for cells containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimals.
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a ratio as `N.NNx`.
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a fraction as a percentage.
pub fn fpct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_str(&["short", "1.0"]);
        t.row_str(&["a-much-longer-name", "12345.6"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // title, header, separator, two data rows.
        assert_eq!(lines.len(), 5);
        // Numeric column right-aligned: both values end at same column.
        let v1 = lines[3].rfind("1.0").unwrap() + 3;
        let v2 = lines[4].rfind("12345.6").unwrap() + 7;
        assert_eq!(v1, v2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a", "b"]).row_str(&["only-one"]);
    }

    #[test]
    fn csv_export_quotes_correctly() {
        let mut t = Table::new("x", &["name", "note"]);
        t.row_str(&["plain", "a,b"]);
        t.row_str(&["quoted", "say \"hi\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "plain,\"a,b\"");
        assert_eq!(lines[2], "quoted,\"say \"\"hi\"\"\"");
    }

    #[test]
    fn formatters() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fx(16.406), "16.41x");
        assert_eq!(fpct(0.0133), "1.3%");
    }
}
