//! ASCII renderings of the paper's figure types: stacked-bar phase
//! decompositions, time-series plots, and CDFs.

/// Render a horizontal bar chart of labelled values (one bar each),
/// scaled to `width` characters at the maximum value.
pub fn bar_chart(title: &str, entries: &[(String, f64)], width: usize) -> String {
    let max = entries
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ==\n");
    for (label, v) in entries {
        let bars = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {} {v:.3}\n",
            "#".repeat(bars)
        ));
    }
    out
}

/// Render a stacked horizontal bar per entry: each entry has segments
/// `(segment label, value)`; segment legends print once.
pub fn stacked_bars(
    title: &str,
    segments: &[&str],
    entries: &[(String, Vec<f64>)],
    width: usize,
) -> String {
    const GLYPHS: [char; 6] = ['#', '=', ':', '+', 'o', '.'];
    let totals: Vec<f64> = entries.iter().map(|(_, vs)| vs.iter().sum()).collect();
    let max = totals
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ==\n");
    out.push_str("legend:");
    for (i, s) in segments.iter().enumerate() {
        out.push_str(&format!(" [{}]={}", GLYPHS[i % GLYPHS.len()], s));
    }
    out.push('\n');
    for ((label, vs), total) in entries.iter().zip(&totals) {
        out.push_str(&format!("{label:<label_w$} |"));
        for (i, v) in vs.iter().enumerate() {
            let n = ((v / max) * width as f64).round() as usize;
            out.push_str(&GLYPHS[i % GLYPHS.len()].to_string().repeat(n));
        }
        out.push_str(&format!(" {total:.3}\n"));
    }
    out
}

/// Render a time series as rows of `(t, value)` down-sampled to at most
/// `max_points` lines with a unicode-free bar per line.
pub fn time_series(title: &str, values: &[f64], unit: &str, max_points: usize) -> String {
    let mut out = format!("== {title} ==\n");
    if values.is_empty() {
        return out;
    }
    let stride = values.len().div_ceil(max_points);
    let max = values
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    for (i, chunk) in values.chunks(stride).enumerate() {
        let v = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let bars = ((v / max) * 50.0).round() as usize;
        out.push_str(&format!(
            "{:>5}s | {:<50} {v:.2} {unit}\n",
            i * stride,
            "*".repeat(bars)
        ));
    }
    out
}

/// Render CDF curves (shared x grid) as a table of `x  F_1(x) … F_k(x)`.
pub fn cdf_table(title: &str, labels: &[&str], curves: &[Vec<(f64, f64)>]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!("{:>10}", "x"));
    for l in labels {
        out.push_str(&format!("{l:>14}"));
    }
    out.push('\n');
    let points = curves.iter().map(|c| c.len()).min().unwrap_or(0);
    for i in 0..points {
        out.push_str(&format!("{:>10.2}", curves[0][i].0));
        for c in curves {
            out.push_str(&format!("{:>14.3}", c[i].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart("t", &[("a".into(), 1.0), ("b".into(), 2.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].matches('#').count() == 5);
        assert!(lines[2].matches('#').count() == 10);
    }

    #[test]
    fn stacked_bars_include_legend_and_totals() {
        let s = stacked_bars(
            "phases",
            &["compute", "prep"],
            &[
                ("VM".into(), vec![1.0, 3.0]),
                ("Rattrap".into(), vec![1.0, 0.2]),
            ],
            20,
        );
        assert!(s.contains("[#]=compute"));
        assert!(s.contains("[=]=prep"));
        assert!(s.contains("4.000"));
        assert!(s.contains("1.200"));
    }

    #[test]
    fn time_series_downsamples() {
        let vals: Vec<f64> = (0..180).map(|i| i as f64).collect();
        let s = time_series("cpu", &vals, "%", 20);
        let lines = s.lines().count();
        assert!(lines <= 22, "{lines} lines");
    }

    #[test]
    fn cdf_table_has_all_columns() {
        let c1 = vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)];
        let c2 = vec![(0.0, 0.1), (1.0, 0.8), (2.0, 1.0)];
        let s = cdf_table("speedups", &["Rattrap", "VM"], &[c1, c2]);
        assert!(s.contains("Rattrap"));
        assert!(s.lines().count() == 5);
    }

    #[test]
    fn empty_series_render_cleanly() {
        let s = time_series("empty", &[], "x", 10);
        assert!(s.contains("empty"));
    }
}
