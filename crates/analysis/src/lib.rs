//! # analysis — tables, ASCII figures, and paper-vs-measured checks
//!
//! The presentation layer of the experiment harness: aligned ASCII
//! tables ([`table`]), stacked-bar / time-series / CDF renderings in
//! the shapes the paper's figures use ([`figure`]), and the
//! [`compare::Scorecard`] that records how each reproduction compares
//! to the published numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod figure;
pub mod table;

pub use compare::{Check, Scorecard};
pub use figure::{bar_chart, cdf_table, stacked_bars, time_series};
pub use table::{fnum, fpct, fx, Table};
