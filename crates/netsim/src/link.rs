//! Stateful link model: connection establishment and transfer timing.
//!
//! The model is deliberately simple — TCP-handshake latency plus
//! bandwidth-bound transfer with loss/instability penalties — because
//! the paper's Network Connection and Data Transfer phases are dominated
//! by exactly those two terms (§III-B).

use crate::scenario::{Direction, LinkParams, NetworkScenario};
use simkit::{SimDuration, SimRng};

/// A mobile-device ↔ cloud link under one [`NetworkScenario`].
#[derive(Debug, Clone)]
pub struct Link {
    scenario: NetworkScenario,
    params: LinkParams,
}

impl Link {
    /// A link in the given scenario.
    pub fn new(scenario: NetworkScenario) -> Self {
        Link {
            scenario,
            params: scenario.params(),
        }
    }

    /// The scenario this link models.
    pub fn scenario(&self) -> NetworkScenario {
        self.scenario
    }

    /// Raw parameters.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// One RTT sample with log-normal jitter.
    pub fn sample_rtt(&self, rng: &mut SimRng) -> SimDuration {
        let sigma = self.params.rtt_jitter_frac;
        // Log-normal with median = configured RTT.
        let factor = rng.log_normal(0.0, sigma);
        self.params.rtt.mul_f64(factor)
    }

    /// Time to establish a connection: TCP 3-way handshake (1.5 RTT)
    /// plus a possible SYN retransmission on loss (exponential backoff
    /// starts at 1 s in most stacks; we use a single 1 s penalty).
    pub fn connect_time(&self, rng: &mut SimRng) -> SimDuration {
        let mut t = self.sample_rtt(rng).mul_f64(1.5);
        if rng.bernoulli(self.params.loss_rate * 2.0) {
            t += SimDuration::from_secs(1);
        }
        t
    }

    /// Time to move `bytes` in `direction`.
    ///
    /// Base cost is bytes / bandwidth plus half an RTT for the final ACK.
    /// Loss adds retransmission inflation (TCP throughput degrades
    /// roughly with sqrt of loss); instability occasionally halves the
    /// effective bandwidth for the whole transfer, modelling the
    /// context changes the paper observed on cellular links.
    pub fn transfer_time(&self, bytes: u64, direction: Direction, rng: &mut SimRng) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let bw = match direction {
            Direction::Upload => self.params.upstream_bps,
            Direction::Download => self.params.downstream_bps,
        };
        let mut secs = bytes as f64 / bw;
        // Loss-driven inflation: ~1/(1 - k·sqrt(p)) with small k.
        let inflation = 1.0 / (1.0 - (2.0 * self.params.loss_rate.sqrt()).min(0.5));
        secs *= inflation;
        if rng.bernoulli(self.params.instability) {
            let dip = rng.uniform(1.3, 2.2);
            secs *= dip;
        }
        SimDuration::from_secs_f64(secs) + self.sample_rtt(rng).mul_f64(0.5)
    }

    /// Deterministic expected transfer time (no sampling) — used by
    /// closed-form checks and the energy replay harness.
    pub fn expected_transfer_time(&self, bytes: u64, direction: Direction) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let bw = match direction {
            Direction::Upload => self.params.upstream_bps,
            Direction::Download => self.params.downstream_bps,
        };
        let inflation = 1.0 / (1.0 - (2.0 * self.params.loss_rate.sqrt()).min(0.5));
        let instab = 1.0 + self.params.instability * 0.75; // E[dip] ≈ 1.75 with prob p
        SimDuration::from_secs_f64(bytes as f64 / bw * inflation * instab)
            + self.params.rtt.mul_f64(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::kib;

    fn rng() -> SimRng {
        SimRng::new(0xD1CE)
    }

    #[test]
    fn zero_bytes_is_free() {
        let l = Link::new(NetworkScenario::LanWifi);
        assert_eq!(
            l.transfer_time(0, Direction::Upload, &mut rng()),
            SimDuration::ZERO
        );
        assert_eq!(
            l.expected_transfer_time(0, Direction::Download),
            SimDuration::ZERO
        );
    }

    #[test]
    fn lan_is_fastest_3g_is_slowest() {
        let mut r = rng();
        let bytes = kib(500);
        let mut mean = |s: NetworkScenario| {
            let l = Link::new(s);
            let total: f64 = (0..200)
                .map(|_| {
                    l.transfer_time(bytes, Direction::Upload, &mut r)
                        .as_secs_f64()
                })
                .sum();
            total / 200.0
        };
        let lan = mean(NetworkScenario::LanWifi);
        let wan = mean(NetworkScenario::WanWifi);
        let four = mean(NetworkScenario::FourG);
        let three = mean(NetworkScenario::ThreeG);
        assert!(lan < wan, "lan {lan} wan {wan}");
        assert!(wan < three, "wan {wan} 3g {three}");
        assert!(four < three, "4g {four} 3g {three}");
    }

    #[test]
    fn three_g_download_slower_than_upload() {
        // The paper's 3G measurement has downstream far below upstream.
        let l = Link::new(NetworkScenario::ThreeG);
        let up = l.expected_transfer_time(kib(100), Direction::Upload);
        let down = l.expected_transfer_time(kib(100), Direction::Download);
        assert!(down > up.mul_f64(2.0));
    }

    #[test]
    fn connect_time_scales_with_rtt() {
        let mut r = rng();
        let lan = Link::new(NetworkScenario::LanWifi);
        let wan = Link::new(NetworkScenario::WanWifi);
        let mean = |l: &Link, r: &mut SimRng| {
            (0..300)
                .map(|_| l.connect_time(r).as_secs_f64())
                .sum::<f64>()
                / 300.0
        };
        let lan_mean = mean(&lan, &mut r);
        let wan_mean = mean(&wan, &mut r);
        // WAN handshake ≈ 90 ms ≫ LAN ≈ 3 ms.
        assert!(wan_mean > lan_mean * 10.0, "lan {lan_mean} wan {wan_mean}");
    }

    #[test]
    fn expected_time_tracks_sampled_mean() {
        let l = Link::new(NetworkScenario::WanWifi);
        let mut r = rng();
        let bytes = kib(2000);
        let sampled: f64 = (0..2000)
            .map(|_| {
                l.transfer_time(bytes, Direction::Upload, &mut r)
                    .as_secs_f64()
            })
            .sum::<f64>()
            / 2000.0;
        let expected = l
            .expected_transfer_time(bytes, Direction::Upload)
            .as_secs_f64();
        assert!(
            (sampled - expected).abs() / expected < 0.15,
            "sampled {sampled} vs expected {expected}"
        );
    }

    #[test]
    fn sampled_rtt_is_positive_and_centered() {
        let l = Link::new(NetworkScenario::FourG);
        let mut r = rng();
        let samples: Vec<f64> = (0..1000)
            .map(|_| l.sample_rtt(&mut r).as_secs_f64())
            .collect();
        assert!(samples.iter().all(|&s| s > 0.0));
        let median = {
            let mut v = samples.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!((median - 0.070).abs() < 0.015, "median {median}");
    }
}
