//! # netsim — mobile ↔ cloud network scenarios
//!
//! The four network environments of the paper's evaluation (§VI-A) —
//! LAN WiFi, WAN WiFi, 4G and 3G — with the paper's measured cellular
//! bandwidths, plus a stateful [`Link`] model producing connection and
//! transfer times for the Network Connection and Data Transfer phases
//! of an offloading request (§III-B).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod link;
pub mod scenario;
pub mod shared;

pub use link::Link;
pub use scenario::{Direction, LinkParams, NetworkScenario};
pub use shared::SharedLink;
