//! The four network scenarios of the evaluation (§VI-A).
//!
//! Bandwidths for 3G and 4G are the paper's own measurements; WiFi
//! figures are typical of the 2016-era 802.11n links the testbed used.
//! "Upstream" is device → cloud (the direction offloading pushes code
//! and files), "downstream" is cloud → device (results).

use simkit::units::mbps;
use simkit::SimDuration;

/// A network environment between the mobile device and the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetworkScenario {
    /// Same-LAN WiFi: stable and fast.
    LanWifi,
    /// Constrained IoT radio (802.15.4-class gateway uplink): low
    /// latency to a nearby edge PoP but narrow, slightly lossy pipes.
    /// Calibrated against Morabito's container-on-IoT evaluation
    /// (Raspberry Pi 2 class devices on a local gateway).
    IotRadio,
    /// WAN WiFi through a public IP: ~60 ms latency, stable.
    WanWifi,
    /// Cellular 4G: good bandwidth, less stable than WiFi.
    FourG,
    /// Cellular 3G: high latency, very limited bandwidth, unstable.
    ThreeG,
}

impl NetworkScenario {
    /// All scenarios, ordered by link quality (ascending RTT). The
    /// paper's four figure scenarios keep their relative order; the
    /// IoT gateway radio slots between LAN WiFi and WAN WiFi.
    pub const ALL: [NetworkScenario; 5] = [
        NetworkScenario::LanWifi,
        NetworkScenario::IotRadio,
        NetworkScenario::WanWifi,
        NetworkScenario::FourG,
        NetworkScenario::ThreeG,
    ];

    /// Display label used in tables and figures.
    pub const fn label(self) -> &'static str {
        match self {
            NetworkScenario::LanWifi => "LAN",
            NetworkScenario::IotRadio => "IoT",
            NetworkScenario::WanWifi => "WAN",
            NetworkScenario::FourG => "4G",
            NetworkScenario::ThreeG => "3G",
        }
    }

    /// Is this a cellular (3G/4G) radio, for the power model?
    pub const fn is_cellular(self) -> bool {
        matches!(self, NetworkScenario::FourG | NetworkScenario::ThreeG)
    }

    /// Link parameters for this scenario.
    pub fn params(self) -> LinkParams {
        match self {
            NetworkScenario::LanWifi => LinkParams {
                rtt: SimDuration::from_millis(2),
                rtt_jitter_frac: 0.15,
                upstream_bps: mbps(40.0),
                downstream_bps: mbps(40.0),
                loss_rate: 0.001,
                instability: 0.02,
            },
            NetworkScenario::IotRadio => LinkParams {
                // Gateway hop to a nearby edge PoP: short RTT, but the
                // constrained radio caps throughput at ~2 Mbps and
                // drops more frames than infrastructure WiFi.
                rtt: SimDuration::from_millis(15),
                rtt_jitter_frac: 0.25,
                upstream_bps: mbps(2.0),
                downstream_bps: mbps(2.0),
                loss_rate: 0.01,
                instability: 0.08,
            },
            NetworkScenario::WanWifi => LinkParams {
                // "WAN WiFi has about 60ms latency" (§VI-A).
                rtt: SimDuration::from_millis(60),
                rtt_jitter_frac: 0.2,
                upstream_bps: mbps(20.0),
                downstream_bps: mbps(20.0),
                loss_rate: 0.005,
                instability: 0.05,
            },
            NetworkScenario::FourG => LinkParams {
                rtt: SimDuration::from_millis(70),
                rtt_jitter_frac: 0.35,
                // "upstream bandwidth is 48.97Mbps and downstream
                // bandwidth is 7.64Mbps" (§VI-A).
                upstream_bps: mbps(48.97),
                downstream_bps: mbps(7.64),
                loss_rate: 0.01,
                instability: 0.12,
            },
            NetworkScenario::ThreeG => LinkParams {
                rtt: SimDuration::from_millis(250),
                rtt_jitter_frac: 0.5,
                // "upstream bandwidth is 0.38Mbps and downstream
                // bandwidth is 0.09Mbps" (§VI-A).
                upstream_bps: mbps(0.38),
                downstream_bps: mbps(0.09),
                loss_rate: 0.03,
                instability: 0.25,
            },
        }
    }
}

/// Physical characteristics of a scenario's link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Median round-trip time.
    pub rtt: SimDuration,
    /// RTT jitter as a fraction of the median (log-normal spread).
    pub rtt_jitter_frac: f64,
    /// Device → cloud bandwidth, bytes/s.
    pub upstream_bps: f64,
    /// Cloud → device bandwidth, bytes/s.
    pub downstream_bps: f64,
    /// Packet loss probability (drives TCP retransmission stalls).
    pub loss_rate: f64,
    /// Probability that a transfer hits a bandwidth dip ("the change of
    /// context" the paper notes for cellular links).
    pub instability: f64,
}

/// Transfer direction relative to the mobile device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Device → cloud (offloaded code, parameters, files).
    Upload,
    /// Cloud → device (results).
    Download,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_ordering_matches_quality() {
        // RTT: LAN < IoT < WAN < 4G < 3G.
        let rtts: Vec<_> = NetworkScenario::ALL
            .iter()
            .map(|s| s.params().rtt)
            .collect();
        assert!(rtts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn paper_cellular_bandwidths() {
        let p3 = NetworkScenario::ThreeG.params();
        assert!((p3.upstream_bps - 47_500.0).abs() < 1.0); // 0.38 Mbps
        assert!((p3.downstream_bps - 11_250.0).abs() < 1.0); // 0.09 Mbps
        let p4 = NetworkScenario::FourG.params();
        assert!((p4.upstream_bps / 125_000.0 - 48.97).abs() < 1e-6);
    }

    #[test]
    fn cellular_flag() {
        assert!(NetworkScenario::ThreeG.is_cellular());
        assert!(NetworkScenario::FourG.is_cellular());
        assert!(!NetworkScenario::LanWifi.is_cellular());
        assert!(!NetworkScenario::WanWifi.is_cellular());
        assert!(!NetworkScenario::IotRadio.is_cellular());
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = NetworkScenario::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NetworkScenario::ALL.len());
    }

    #[test]
    fn iot_radio_is_slow_but_close() {
        let iot = NetworkScenario::IotRadio.params();
        let lan = NetworkScenario::LanWifi.params();
        // Constrained bandwidth (an order of magnitude under WiFi)…
        assert!(iot.upstream_bps * 10.0 <= lan.upstream_bps);
        // …but edge-local latency, well under WAN.
        assert!(iot.rtt < NetworkScenario::WanWifi.params().rtt);
    }
}
