//! Contended shared medium: concurrent transfers fair-share bandwidth.
//!
//! [`Link`] prices each transfer independently — correct while the
//! access point is not the bottleneck (the paper's 5-device LAN).
//! [`SharedLink`] models the regime where it *is*: a cell or AP of
//! fixed aggregate bandwidth on which every in-flight transfer gets a
//! max-min fair share, built directly on
//! [`simkit::FairShareExecutor`] — the identical engine that drives
//! the server CPU and the offloading disk, with work measured in
//! bytes and capacity in bytes/s.
//!
//! Usage mirrors the executor: [`SharedLink::begin_transfer`] to start
//! a flow, [`SharedLink::reschedule`] after every mutation to keep a
//! completion-check event in the queue, [`SharedLink::poll`] from that
//! event's handler to collect finished transfers (stale epochs return
//! `None` and must be ignored).
//!
//! The fault plane hooks in through two extra mutations, both of which
//! require the same follow-up [`SharedLink::reschedule`] as any other
//! mutation (the predicted completion instants go stale):
//! [`SharedLink::interrupt`] kills one in-flight transfer mid-stream
//! and reports the bytes that did *not* make it (partial-progress
//! accounting for resume-style retries), and [`SharedLink::degrade`] /
//! [`SharedLink::restore`] open and close capacity-degradation epochs —
//! bytes moved before the mutation are charged at the old rate.
//!
//! [`Link`]: crate::Link

use crate::scenario::{Direction, NetworkScenario};
use obsv::{attrs, AttrValue, Recorder, Subsystem};
use simkit::{EventQueue, FairShareExecutor, JobId, SimTime};

/// A shared medium of fixed aggregate bandwidth. `T` is the caller's
/// per-transfer payload (request id, flow descriptor, …).
#[derive(Debug)]
pub struct SharedLink<T> {
    exec: FairShareExecutor<T>,
    capacity_bps: f64,
    rec: Recorder,
}

impl<T> SharedLink<T> {
    /// A medium moving `capacity_bps` bytes/s in aggregate; a single
    /// flow is additionally capped at `per_flow_bps` (a device NIC or
    /// modulation limit). Pass `per_flow_bps = capacity_bps` for no
    /// per-flow cap.
    pub fn new(capacity_bps: f64, per_flow_bps: f64) -> Self {
        SharedLink {
            exec: FairShareExecutor::new(capacity_bps, per_flow_bps),
            capacity_bps,
            rec: Recorder::disabled(),
        }
    }

    /// Cancel superseded completion checks out of the driving queue
    /// instead of letting them pop as stale-epoch no-ops (see
    /// [`simkit::FairShareExecutor::eager_check_cancel`] for the
    /// pop-stream caveat — consumers pinned to the historical pop
    /// stream must not enable this).
    pub fn eager_check_cancel(&mut self) {
        self.exec.eager_check_cancel();
    }

    /// Report into `rec`: the inner executor records one span per
    /// transfer (device label `link`), and the link itself records
    /// interrupt / degrade / restore instants under the `netsim`
    /// category.
    pub fn instrument(&mut self, rec: Recorder) {
        self.exec.instrument(rec.clone(), "link");
        self.rec = rec;
    }

    /// A medium with the aggregate bandwidth of `scenario` in the given
    /// direction, flows capped only by the medium itself.
    pub fn for_scenario(scenario: NetworkScenario, direction: Direction) -> Self {
        let params = scenario.params();
        let bps = match direction {
            Direction::Upload => params.upstream_bps,
            Direction::Download => params.downstream_bps,
        };
        Self::new(bps, bps)
    }

    /// Aggregate bandwidth, bytes/s.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Number of transfers currently in flight.
    pub fn active_transfers(&self) -> usize {
        self.exec.active_jobs()
    }

    /// True when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.exec.is_idle()
    }

    /// Start moving `bytes` across the medium at `now`.
    pub fn begin_transfer(&mut self, now: SimTime, bytes: u64, payload: T) -> JobId {
        self.exec.submit(now, bytes as f64, payload)
    }

    /// Abort an in-flight transfer, returning its payload.
    pub fn cancel(&mut self, now: SimTime, transfer: JobId) -> Option<T> {
        self.exec.cancel(now, transfer)
    }

    /// Interrupt an in-flight transfer at `now` (a link fault cut the
    /// connection mid-stream). Returns the payload together with the
    /// bytes that had **not** yet crossed the medium — the amount a
    /// resume-style retry must still move — or `None` if the transfer
    /// is unknown (already finished or cancelled). Follow up with
    /// [`SharedLink::reschedule`]: the survivors' rates just changed.
    pub fn interrupt(&mut self, now: SimTime, transfer: JobId) -> Option<(T, f64)> {
        let remaining = self.exec.remaining(now, transfer)?;
        let payload = self.exec.cancel(now, transfer)?;
        self.rec.instant_at(
            Subsystem::Netsim,
            "link.interrupt",
            now.as_micros(),
            attrs![
                ("transfer", AttrValue::U64(transfer.0)),
                ("remaining_bytes", AttrValue::F64(remaining)),
            ],
        );
        Some((payload, remaining))
    }

    /// Enter a degradation epoch at `now`: aggregate capacity becomes
    /// `factor` × the constructed capacity (`0 < factor ≤ 1`). Bytes
    /// moved before `now` are charged at the previous rate. Follow up
    /// with [`SharedLink::reschedule`]. Degradation epochs do not
    /// compound — the factor always applies to the constructed
    /// capacity, so overlapping windows should pre-combine their
    /// factors (e.g. take the minimum).
    ///
    /// # Panics
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn degrade(&mut self, now: SimTime, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1]"
        );
        self.exec.set_capacity(now, self.capacity_bps * factor);
        self.rec.instant_at(
            Subsystem::Netsim,
            "link.degrade",
            now.as_micros(),
            attrs![("factor", AttrValue::F64(factor))],
        );
    }

    /// Close the current degradation epoch at `now`, restoring the
    /// constructed aggregate capacity. Follow up with
    /// [`SharedLink::reschedule`].
    pub fn restore(&mut self, now: SimTime) {
        self.exec.set_capacity(now, self.capacity_bps);
        self.rec
            .instant_at(Subsystem::Netsim, "link.restore", now.as_micros(), vec![]);
    }

    /// Re-arm the completion check after any mutation. `make_event`
    /// receives the new epoch; embed it in the scheduled event and hand
    /// it back to [`SharedLink::poll`].
    pub fn reschedule<E>(
        &mut self,
        now: SimTime,
        queue: &mut EventQueue<E>,
        make_event: impl FnOnce(u64) -> E,
    ) {
        self.exec.reschedule(now, queue, make_event);
    }

    /// Collect transfers finished by `now`. Returns `None` for a stale
    /// epoch (a newer check supersedes this event).
    pub fn poll(&mut self, now: SimTime, epoch: u64) -> Option<Vec<(JobId, T)>> {
        self.exec.poll(now, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a SharedLink event loop to completion, returning
    /// (finish time, payload) per transfer in completion order.
    fn drain(link: &mut SharedLink<u32>, queue: &mut EventQueue<u64>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some((now, epoch)) = queue.pop() {
            let Some(finished) = link.poll(now, epoch) else {
                continue;
            };
            for (_, payload) in finished {
                out.push((now, payload));
            }
            link.reschedule(now, queue, |e| e);
        }
        out
    }

    #[test]
    fn solo_transfer_moves_at_full_bandwidth() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 2_000_000, 7);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        let done = drain(&mut link, &mut queue);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 7);
        // 2 MB over 1 MB/s ≈ 2 s (+ check slack).
        let t = done[0].0.as_secs_f64();
        assert!((t - 2.0).abs() < 1e-3, "finished at {t}");
        assert!(link.is_idle());
    }

    #[test]
    fn concurrent_transfers_halve_each_other() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 1_000_000, 1);
        link.begin_transfer(SimTime::ZERO, 1_000_000, 2);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        assert_eq!(link.active_transfers(), 2);
        let done = drain(&mut link, &mut queue);
        // Each 1 MB flow gets 0.5 MB/s: both finish together at ≈ 2 s,
        // drained in job order.
        assert_eq!(done.iter().map(|d| d.1).collect::<Vec<_>>(), vec![1, 2]);
        for (t, _) in &done {
            let secs = t.as_secs_f64();
            assert!((secs - 2.0).abs() < 1e-3, "finished at {secs}");
        }
    }

    #[test]
    fn instrumented_link_records_transfers_and_degradations() {
        use obsv::{RecorderConfig, TraceEvent};
        let rec = Recorder::enabled(RecorderConfig::default());
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        link.instrument(rec.clone());
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 1_000_000, 1);
        let doomed = link.begin_transfer(SimTime::ZERO, 1_000_000, 2);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        let half = SimTime::from_secs_f64(0.5);
        link.degrade(half, 0.5);
        link.interrupt(half, doomed);
        link.reschedule(half, &mut queue, |e| e);
        link.restore(SimTime::from_secs_f64(1.0));
        link.reschedule(SimTime::from_secs_f64(1.0), &mut queue, |e| e);
        drain(&mut link, &mut queue);
        let snap = rec.snapshot();
        let names: Vec<&str> = snap
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Instant { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"link.degrade"), "{names:?}");
        assert!(names.contains(&"link.restore"), "{names:?}");
        assert!(names.contains(&"link.interrupt"), "{names:?}");
        let spans = snap
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Begin { name: "link", .. }))
            .count();
        assert_eq!(spans, 2, "one span per transfer");
    }

    #[test]
    fn per_flow_cap_binds_a_lone_flow() {
        // 10 MB/s medium, flows capped at 1 MB/s (a slow client NIC).
        let mut link: SharedLink<u32> = SharedLink::new(10_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 3_000_000, 9);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        let done = drain(&mut link, &mut queue);
        let t = done[0].0.as_secs_f64();
        assert!((t - 3.0).abs() < 1e-3, "capped flow finished at {t}");
    }

    #[test]
    fn stale_epochs_are_ignored() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 1_000_000, 1);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        let stale = link.exec.epoch();
        // A second transfer invalidates the first check.
        link.begin_transfer(SimTime::ZERO, 500_000, 2);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        assert_eq!(link.poll(SimTime::from_secs(10), stale), None);
        let done = drain(&mut link, &mut queue);
        assert_eq!(done.len(), 2);
        // The short flow wins despite starting later.
        assert_eq!(done[0].1, 2);
    }

    #[test]
    fn interrupt_reports_bytes_still_owed() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        let job = link.begin_transfer(SimTime::ZERO, 2_000_000, 5);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        // Cut the flow halfway: 1 s at 1 MB/s → 1 MB across, 1 MB owed.
        let (payload, owed) = link.interrupt(SimTime::from_secs(1), job).unwrap();
        assert_eq!(payload, 5);
        assert!((owed - 1_000_000.0).abs() < 1.0, "owed {owed}");
        assert!(link.is_idle());
        assert_eq!(
            link.interrupt(SimTime::from_secs(1), job),
            None,
            "double interrupt is a no-op"
        );
    }

    #[test]
    fn interrupt_speeds_up_survivors() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        let victim = link.begin_transfer(SimTime::ZERO, 4_000_000, 1);
        link.begin_transfer(SimTime::ZERO, 1_500_000, 2);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        // At t=1 each flow moved 0.5 MB. Kill the victim; the survivor
        // owes 1 MB at full rate → finishes at t=2.
        link.interrupt(SimTime::from_secs(1), victim).unwrap();
        link.reschedule(SimTime::from_secs(1), &mut queue, |e| e);
        let done = drain(&mut link, &mut queue);
        assert_eq!(done.iter().map(|d| d.1).collect::<Vec<_>>(), vec![2]);
        let t = done[0].0.as_secs_f64();
        assert!((t - 2.0).abs() < 1e-3, "survivor finished at {t}");
    }

    #[test]
    fn degradation_epoch_stretches_in_flight_transfers() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 2_000_000, 3);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        // At t=1, 1 MB across. Halve the link: the remaining 1 MB takes
        // 2 s → finishes at t=3.
        link.degrade(SimTime::from_secs(1), 0.5);
        link.reschedule(SimTime::from_secs(1), &mut queue, |e| e);
        let done = drain(&mut link, &mut queue);
        let t = done[0].0.as_secs_f64();
        assert!((t - 3.0).abs() < 1e-3, "degraded flow finished at {t}");
    }

    #[test]
    fn restore_closes_the_degradation_epoch() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 3_000_000, 4);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        // [1 s, 2 s) at quarter rate: 1 MB + 0.25 MB across by t=2, the
        // remaining 1.75 MB at full rate → finishes at t=3.75.
        link.degrade(SimTime::from_secs(1), 0.25);
        link.reschedule(SimTime::from_secs(1), &mut queue, |e| e);
        link.restore(SimTime::from_secs(2));
        link.reschedule(SimTime::from_secs(2), &mut queue, |e| e);
        let done = drain(&mut link, &mut queue);
        let t = done[0].0.as_secs_f64();
        assert!((t - 3.75).abs() < 1e-3, "restored flow finished at {t}");
    }

    #[test]
    fn scenario_construction_uses_published_bandwidths() {
        let up = SharedLink::<u32>::for_scenario(NetworkScenario::ThreeG, Direction::Upload);
        // §VI-A: 0.38 Mbps upstream 3G.
        assert!((up.capacity_bps() - 0.38e6 / 8.0).abs() / up.capacity_bps() < 0.05);
    }
}
