//! Contended shared medium: concurrent transfers fair-share bandwidth.
//!
//! [`Link`] prices each transfer independently — correct while the
//! access point is not the bottleneck (the paper's 5-device LAN).
//! [`SharedLink`] models the regime where it *is*: a cell or AP of
//! fixed aggregate bandwidth on which every in-flight transfer gets a
//! max-min fair share, built directly on
//! [`simkit::FairShareExecutor`] — the identical engine that drives
//! the server CPU and the offloading disk, with work measured in
//! bytes and capacity in bytes/s.
//!
//! Usage mirrors the executor: [`SharedLink::begin_transfer`] to start
//! a flow, [`SharedLink::reschedule`] after every mutation to keep a
//! completion-check event in the queue, [`SharedLink::poll`] from that
//! event's handler to collect finished transfers (stale epochs return
//! `None` and must be ignored).
//!
//! [`Link`]: crate::Link

use crate::scenario::{Direction, NetworkScenario};
use simkit::{EventQueue, FairShareExecutor, JobId, SimTime};

/// A shared medium of fixed aggregate bandwidth. `T` is the caller's
/// per-transfer payload (request id, flow descriptor, …).
#[derive(Debug)]
pub struct SharedLink<T> {
    exec: FairShareExecutor<T>,
    capacity_bps: f64,
}

impl<T> SharedLink<T> {
    /// A medium moving `capacity_bps` bytes/s in aggregate; a single
    /// flow is additionally capped at `per_flow_bps` (a device NIC or
    /// modulation limit). Pass `per_flow_bps = capacity_bps` for no
    /// per-flow cap.
    pub fn new(capacity_bps: f64, per_flow_bps: f64) -> Self {
        SharedLink {
            exec: FairShareExecutor::new(capacity_bps, per_flow_bps),
            capacity_bps,
        }
    }

    /// A medium with the aggregate bandwidth of `scenario` in the given
    /// direction, flows capped only by the medium itself.
    pub fn for_scenario(scenario: NetworkScenario, direction: Direction) -> Self {
        let params = scenario.params();
        let bps = match direction {
            Direction::Upload => params.upstream_bps,
            Direction::Download => params.downstream_bps,
        };
        Self::new(bps, bps)
    }

    /// Aggregate bandwidth, bytes/s.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Number of transfers currently in flight.
    pub fn active_transfers(&self) -> usize {
        self.exec.active_jobs()
    }

    /// True when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.exec.is_idle()
    }

    /// Start moving `bytes` across the medium at `now`.
    pub fn begin_transfer(&mut self, now: SimTime, bytes: u64, payload: T) -> JobId {
        self.exec.submit(now, bytes as f64, payload)
    }

    /// Abort an in-flight transfer, returning its payload.
    pub fn cancel(&mut self, now: SimTime, transfer: JobId) -> Option<T> {
        self.exec.cancel(now, transfer)
    }

    /// Re-arm the completion check after any mutation. `make_event`
    /// receives the new epoch; embed it in the scheduled event and hand
    /// it back to [`SharedLink::poll`].
    pub fn reschedule<E>(
        &mut self,
        now: SimTime,
        queue: &mut EventQueue<E>,
        make_event: impl FnOnce(u64) -> E,
    ) {
        self.exec.reschedule(now, queue, make_event);
    }

    /// Collect transfers finished by `now`. Returns `None` for a stale
    /// epoch (a newer check supersedes this event).
    pub fn poll(&mut self, now: SimTime, epoch: u64) -> Option<Vec<(JobId, T)>> {
        self.exec.poll(now, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a SharedLink event loop to completion, returning
    /// (finish time, payload) per transfer in completion order.
    fn drain(link: &mut SharedLink<u32>, queue: &mut EventQueue<u64>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some((now, epoch)) = queue.pop() {
            let Some(finished) = link.poll(now, epoch) else {
                continue;
            };
            for (_, payload) in finished {
                out.push((now, payload));
            }
            link.reschedule(now, queue, |e| e);
        }
        out
    }

    #[test]
    fn solo_transfer_moves_at_full_bandwidth() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 2_000_000, 7);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        let done = drain(&mut link, &mut queue);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 7);
        // 2 MB over 1 MB/s ≈ 2 s (+ check slack).
        let t = done[0].0.as_secs_f64();
        assert!((t - 2.0).abs() < 1e-3, "finished at {t}");
        assert!(link.is_idle());
    }

    #[test]
    fn concurrent_transfers_halve_each_other() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 1_000_000, 1);
        link.begin_transfer(SimTime::ZERO, 1_000_000, 2);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        assert_eq!(link.active_transfers(), 2);
        let done = drain(&mut link, &mut queue);
        // Each 1 MB flow gets 0.5 MB/s: both finish together at ≈ 2 s,
        // drained in job order.
        assert_eq!(done.iter().map(|d| d.1).collect::<Vec<_>>(), vec![1, 2]);
        for (t, _) in &done {
            let secs = t.as_secs_f64();
            assert!((secs - 2.0).abs() < 1e-3, "finished at {secs}");
        }
    }

    #[test]
    fn per_flow_cap_binds_a_lone_flow() {
        // 10 MB/s medium, flows capped at 1 MB/s (a slow client NIC).
        let mut link: SharedLink<u32> = SharedLink::new(10_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 3_000_000, 9);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        let done = drain(&mut link, &mut queue);
        let t = done[0].0.as_secs_f64();
        assert!((t - 3.0).abs() < 1e-3, "capped flow finished at {t}");
    }

    #[test]
    fn stale_epochs_are_ignored() {
        let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
        let mut queue = EventQueue::new();
        link.begin_transfer(SimTime::ZERO, 1_000_000, 1);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        let stale = link.exec.epoch();
        // A second transfer invalidates the first check.
        link.begin_transfer(SimTime::ZERO, 500_000, 2);
        link.reschedule(SimTime::ZERO, &mut queue, |e| e);
        assert_eq!(link.poll(SimTime::from_secs(10), stale), None);
        let done = drain(&mut link, &mut queue);
        assert_eq!(done.len(), 2);
        // The short flow wins despite starting later.
        assert_eq!(done[0].1, 2);
    }

    #[test]
    fn scenario_construction_uses_published_bandwidths() {
        let up = SharedLink::<u32>::for_scenario(NetworkScenario::ThreeG, Direction::Upload);
        // §VI-A: 0.38 Mbps upstream 3G.
        assert!((up.capacity_bps() - 0.38e6 / 8.0).abs() / up.capacity_bps() < 0.05);
    }
}
