//! The constrained IoT radio profile (`NetworkScenario::IotRadio`)
//! under the scenario plane's stress cases: zero-byte transfers,
//! RTT/bandwidth boundary positions, and composition with the fault
//! plane's outage epochs (`simkit::faults::transfer_outcome`) — the
//! primitive the correlated-failure scenario family prices radio
//! blackouts with.

use netsim::{Direction, Link, NetworkScenario};
use simkit::faults::{transfer_outcome, LinkWindow, TransferOutcome};
use simkit::{SimDuration, SimRng, SimTime};

#[test]
fn zero_byte_transfers_cost_nothing_on_the_iot_radio() {
    let link = Link::new(NetworkScenario::IotRadio);
    let mut rng = SimRng::new(7);
    // Sampled and closed-form paths agree: no bytes, no cost — not
    // even the half-RTT ACK tail a real transfer pays.
    for dir in [Direction::Upload, Direction::Download] {
        assert_eq!(link.transfer_time(0, dir, &mut rng), SimDuration::ZERO);
        assert_eq!(link.expected_transfer_time(0, dir), SimDuration::ZERO);
    }
    // One byte immediately costs at least the ACK tail.
    assert!(link.expected_transfer_time(1, Direction::Upload) > SimDuration::ZERO);
}

#[test]
fn the_iot_radio_sits_between_lan_and_wan_on_rtt_but_last_on_bandwidth() {
    let iot = NetworkScenario::IotRadio.params();
    let lan = NetworkScenario::LanWifi.params();
    let wan = NetworkScenario::WanWifi.params();
    // Edge-local latency: above the same-LAN link, below the WAN hop.
    assert!(lan.rtt < iot.rtt && iot.rtt < wan.rtt);
    // But the narrowest non-cellular uplink of the table, by a wide
    // margin — the reason IoT cohorts lean hardest on a nearby PoP.
    assert!(iot.upstream_bps * 5.0 <= wan.upstream_bps);
    assert!(iot.upstream_bps * 10.0 <= lan.upstream_bps);
    // Lossier and less stable than infrastructure WiFi.
    assert!(iot.loss_rate > lan.loss_rate && iot.instability > lan.instability);
    // The radio is symmetric (gateway hop, not cellular up/down split).
    assert_eq!(iot.upstream_bps, iot.downstream_bps);
}

#[test]
fn expected_iot_transfer_time_is_bandwidth_dominated() {
    let link = Link::new(NetworkScenario::IotRadio);
    // 1 MiB over a ~2 Mbps radio: > 4 s of serialization, so the RTT
    // tail is noise and doubling the bytes roughly doubles the time.
    let one = link.expected_transfer_time(1 << 20, Direction::Upload);
    let two = link.expected_transfer_time(2 << 20, Direction::Upload);
    assert!(one.as_secs_f64() > 4.0, "got {}", one.as_secs_f64());
    let ratio = two.as_secs_f64() / one.as_secs_f64();
    assert!((1.9..=2.1).contains(&ratio), "ratio {ratio}");
}

/// Outage epochs compose with the nominal IoT transfer time exactly
/// like the correlated-failure family prices them: a transfer that
/// never meets a window is untouched, one that starts inside the
/// blackout is cut at its start, and one that crosses the boundary is
/// interrupted with the pre-outage fraction done.
#[test]
fn iot_transfers_price_outage_epochs_through_the_fault_plane() {
    let link = Link::new(NetworkScenario::IotRadio);
    let nominal = link.expected_transfer_time(1 << 20, Direction::Upload);
    let outage = [LinkWindow {
        start: SimTime::from_secs(100),
        end: SimTime::from_secs(160),
        rate_factor: 0.0,
    }];

    // Clear of the window: bit-exact fast path.
    let before = transfer_outcome(&outage, SimTime::from_secs(10), nominal);
    assert_eq!(
        before,
        TransferOutcome::Completes {
            at: SimTime::from_secs(10).saturating_add(nominal)
        }
    );
    let after = transfer_outcome(&outage, SimTime::from_secs(160), nominal);
    assert_eq!(
        after,
        TransferOutcome::Completes {
            at: SimTime::from_secs(160).saturating_add(nominal)
        }
    );

    // Starting mid-blackout: interrupted on the spot with nothing done.
    match transfer_outcome(&outage, SimTime::from_secs(120), nominal) {
        TransferOutcome::Interrupted { at, fraction_done } => {
            assert_eq!(at, SimTime::from_secs(120));
            assert_eq!(fraction_done, 0.0);
        }
        other => panic!("expected interruption, got {other:?}"),
    }

    // Crossing into the blackout: cut at the onset, partial progress.
    let start = SimTime::from_secs(98);
    match transfer_outcome(&outage, start, nominal) {
        TransferOutcome::Interrupted { at, fraction_done } => {
            assert_eq!(at, SimTime::from_secs(100));
            let expected = 2.0 / nominal.as_secs_f64();
            assert!(
                (fraction_done - expected).abs() < 1e-6,
                "fraction {fraction_done} vs {expected}"
            );
        }
        other => panic!("expected interruption, got {other:?}"),
    }

    // A zero-length transfer still cannot land inside the blackout.
    match transfer_outcome(&outage, SimTime::from_secs(120), SimDuration::ZERO) {
        TransferOutcome::Interrupted { at, fraction_done } => {
            assert_eq!(at, SimTime::from_secs(120));
            assert_eq!(fraction_done, 0.0);
        }
        other => panic!("expected interruption, got {other:?}"),
    }
    assert_eq!(
        transfer_outcome(&outage, SimTime::from_secs(50), SimDuration::ZERO),
        TransferOutcome::Completes {
            at: SimTime::from_secs(50)
        }
    );
}
