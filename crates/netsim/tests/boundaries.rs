//! Boundary-condition coverage for the network fault plane.
//!
//! Three families of edge cases that the happy-path suites never pin
//! down: zero-byte transfers, transfers landing *exactly* on a
//! degradation-epoch edge, and outages that swallow an entire
//! transfer. Where the fast path promises integer exactness the
//! assertions are `==` on `SimTime`, not float tolerances — the
//! fault-free pricing must be bit-identical to not pricing at all,
//! because the golden digests depend on it.

use netsim::SharedLink;
use simkit::{
    link_available_at, transfer_outcome, EventQueue, LinkWindow, SimDuration, SimTime,
    TransferOutcome, WORK_EPS,
};

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn d(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn outage(start: u64, end: u64) -> LinkWindow {
    LinkWindow {
        start: t(start),
        end: t(end),
        rate_factor: 0.0,
    }
}

fn degradation(start: u64, end: u64, factor: f64) -> LinkWindow {
    LinkWindow {
        start: t(start),
        end: t(end),
        rate_factor: factor,
    }
}

// ---- zero-byte transfers ------------------------------------------------

#[test]
fn zero_length_transfer_on_a_clean_link_completes_instantly() {
    // No windows at all: the fast path returns exactly `start`.
    assert_eq!(
        transfer_outcome(&[], t(5), SimDuration::ZERO),
        TransferOutcome::Completes { at: t(5) }
    );
    // Windows elsewhere on the timeline must not perturb it.
    assert_eq!(
        transfer_outcome(&[outage(10, 20)], t(5), SimDuration::ZERO),
        TransferOutcome::Completes { at: t(5) }
    );
}

#[test]
fn zero_length_transfer_inside_an_outage_is_interrupted_at_start() {
    // Zero bytes still need a live link: starting mid-outage is an
    // interruption at the start instant with nothing done.
    assert_eq!(
        transfer_outcome(&[outage(0, 10)], t(5), SimDuration::ZERO),
        TransferOutcome::Interrupted {
            at: t(5),
            fraction_done: 0.0,
        }
    );
    // ... but merely *degraded* capacity passes zero bytes fine.
    assert_eq!(
        transfer_outcome(&[degradation(0, 10, 0.25)], t(5), SimDuration::ZERO),
        TransferOutcome::Completes { at: t(5) }
    );
}

#[test]
fn zero_byte_shared_link_transfer_completes_at_submission_instant() {
    let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
    let mut queue = EventQueue::new();
    let job = link.begin_transfer(t(3).max(queue.now()), 0, 99);
    // The zero-work job must not linger as an active flow stealing
    // fair-share bandwidth from real transfers.
    link.reschedule(t(3), &mut queue, |e| e);
    let (now, epoch) = queue.pop().expect("completion check scheduled");
    // The executor arms its completion check a couple of microseconds
    // past the predicted finish; zero bytes are done by the very first
    // check, within that slack of the submission instant.
    assert!(
        now >= t(3) && now - t(3) <= SimDuration::from_micros(10),
        "zero bytes complete at the submission instant, checked at {now}"
    );
    let done = link.poll(now, epoch).expect("fresh epoch");
    assert_eq!(done, vec![(job, 99)]);
    assert!(link.is_idle());
}

// ---- degradation-epoch edges --------------------------------------------

#[test]
fn transfer_ending_exactly_at_window_start_takes_the_exact_fast_path() {
    // Windows are [start, end): a transfer whose nominal end coincides
    // with the window's start never overlaps it, so the result is the
    // integer-exact `start + nominal` — no float walk, no epsilon.
    let w = [degradation(10, 20, 0.5)];
    assert_eq!(
        transfer_outcome(&w, t(4), d(6)),
        TransferOutcome::Completes { at: t(10) }
    );
    // Same boundary against an outage window.
    assert_eq!(
        transfer_outcome(&[outage(10, 20)], t(4), d(6)),
        TransferOutcome::Completes { at: t(10) }
    );
}

#[test]
fn transfer_starting_exactly_at_window_end_takes_the_exact_fast_path() {
    // The window's end is exclusive: a transfer starting there runs at
    // nominal rate and the result is exact.
    assert_eq!(
        transfer_outcome(&[degradation(10, 20, 0.5)], t(20), d(7)),
        TransferOutcome::Completes { at: t(27) }
    );
    assert_eq!(
        transfer_outcome(&[outage(10, 20)], t(20), d(7)),
        TransferOutcome::Completes { at: t(27) }
    );
}

#[test]
fn transfer_starting_at_window_start_is_stretched_for_the_whole_window() {
    // Starting exactly at the degradation onset: 5 s of nominal work at
    // factor 0.5 takes 10 s — precisely filling the [10, 20) window, so
    // the finish lands exactly on the window end.
    let out = transfer_outcome(&[degradation(10, 20, 0.5)], t(10), d(5));
    let TransferOutcome::Completes { at } = out else {
        panic!("degradation never interrupts, got {out:?}");
    };
    assert!(
        (at.as_secs_f64() - 20.0).abs() < 1e-9,
        "5 s at half rate fills the 10 s window, finished at {at}"
    );
}

#[test]
fn transfer_crossing_into_a_window_pays_only_for_the_overlap() {
    // Start at 8 with 4 s nominal: 2 s clean, then the remaining 2 s of
    // work at factor 0.5 takes 4 s → finish at 14.
    let out = transfer_outcome(&[degradation(10, 20, 0.5)], t(8), d(4));
    let TransferOutcome::Completes { at } = out else {
        panic!("expected completion, got {out:?}");
    };
    assert!(
        (at.as_secs_f64() - 14.0).abs() < 1e-9,
        "2 s clean + 2 s work at half rate, finished at {at}"
    );
}

// ---- outages spanning an entire transfer --------------------------------

#[test]
fn outage_spanning_the_whole_transfer_interrupts_at_start_with_zero_progress() {
    // The outage opened before the transfer and outlives it: not one
    // byte crosses. `fraction_done` is exactly 0 — resume-style retries
    // must re-send everything.
    let w = [outage(0, 100)];
    assert_eq!(
        transfer_outcome(&w, t(10), d(5)),
        TransferOutcome::Interrupted {
            at: t(10),
            fraction_done: 0.0,
        }
    );
    // The retry may not re-attempt before the link returns.
    assert_eq!(link_available_at(&w, t(10)), t(100));
}

#[test]
fn outage_struck_mid_transfer_reports_the_fraction_that_crossed() {
    // 10 s transfer starting at 5; outage at 10. Half the bytes made it.
    let w = [outage(10, 20)];
    let out = transfer_outcome(&w, t(5), d(10));
    let TransferOutcome::Interrupted { at, fraction_done } = out else {
        panic!("expected interruption, got {out:?}");
    };
    assert_eq!(at, t(10), "cut at the outage onset");
    assert!(
        (fraction_done - 0.5).abs() < 1e-9,
        "5 of 10 s crossed, fraction {fraction_done}"
    );
    // Back-to-back outages: the retry instant hops across both.
    let chained = [outage(10, 20), outage(20, 30)];
    assert_eq!(link_available_at(&chained, t(10)), t(30));
    // `fraction_done` is always strictly below 1 — an interruption in
    // the last instant still forces a retry, never a phantom success.
    let late = transfer_outcome(&[outage(14, 20)], t(5), d(10));
    let TransferOutcome::Interrupted { fraction_done, .. } = late else {
        panic!("expected interruption, got {late:?}");
    };
    assert!(fraction_done < 1.0);
}

// ---- fault-stat accounting on the shared medium -------------------------

#[test]
fn interrupt_accounting_conserves_bytes_on_the_shared_link() {
    // Two equal flows share 1 MB/s for 4 s (0.5 MB/s each), then an
    // outage strikes one. The interrupted flow must report exactly the
    // bytes that did not cross; the survivor — back at full rate —
    // finishes with every one of its bytes accounted for.
    let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
    let mut queue = EventQueue::new();
    let victim = link.begin_transfer(SimTime::ZERO, 4_000_000, 1);
    link.begin_transfer(SimTime::ZERO, 4_000_000, 2);
    link.reschedule(SimTime::ZERO, &mut queue, |e| e);

    let (payload, remaining) = link.interrupt(t(4), victim).expect("victim was in flight");
    assert_eq!(payload, 1);
    // 4 s at the 0.5 MB/s fair share moved 2 MB; 2 MB remain.
    assert!(
        (remaining - 2_000_000.0).abs() < WORK_EPS * 4_000_000.0,
        "remaining {remaining}"
    );
    link.reschedule(t(4), &mut queue, |e| e);
    assert_eq!(link.active_transfers(), 1);

    // Survivor: 2 MB left at the restored full 1 MB/s → done at ≈ 6 s.
    let mut finish = None;
    while let Some((now, epoch)) = queue.pop() {
        if let Some(done) = link.poll(now, epoch) {
            if !done.is_empty() {
                assert_eq!(done.iter().map(|d| d.1).collect::<Vec<_>>(), vec![2]);
                finish = Some(now);
            }
            link.reschedule(now, &mut queue, |e| e);
        }
    }
    let finish = finish.expect("survivor finished");
    assert!(
        (finish.as_secs_f64() - 6.0).abs() < 1e-3,
        "survivor finished at {finish}"
    );
    assert!(link.is_idle());
    // A second interrupt of the same (dead) transfer strikes nothing.
    assert!(link.interrupt(finish, victim).is_none());
}

#[test]
fn degrade_at_the_exact_interrupt_instant_charges_prior_bytes_at_old_rate() {
    // One 3 MB flow at 1 MB/s; at t=2 the link degrades to quarter
    // rate. The 2 MB moved before the epoch stay charged at full rate:
    // the remaining 1 MB at 0.25 MB/s takes 4 s → finish at exactly 6.
    let mut link: SharedLink<u32> = SharedLink::new(1_000_000.0, 1_000_000.0);
    let mut queue = EventQueue::new();
    link.begin_transfer(SimTime::ZERO, 3_000_000, 9);
    link.reschedule(SimTime::ZERO, &mut queue, |e| e);
    link.degrade(t(2), 0.25);
    link.reschedule(t(2), &mut queue, |e| e);
    let mut finish = None;
    while let Some((now, epoch)) = queue.pop() {
        if let Some(done) = link.poll(now, epoch) {
            if !done.is_empty() {
                finish = Some(now);
            }
            link.reschedule(now, &mut queue, |e| e);
        }
    }
    let finish = finish.expect("transfer finished");
    assert!(
        (finish.as_secs_f64() - 6.0).abs() < 1e-3,
        "finished at {finish}"
    );
}
