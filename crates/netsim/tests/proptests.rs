//! Property tests for the network models.

use netsim::{Direction, Link, NetworkScenario};
use proptest::prelude::*;
use simkit::{SimDuration, SimRng};

fn scenario_from(i: u8) -> NetworkScenario {
    NetworkScenario::ALL[i as usize % NetworkScenario::ALL.len()]
}

proptest! {
    /// Transfer time is monotone in size for every scenario/direction.
    #[test]
    fn transfer_monotone_in_bytes(s in any::<u8>(), a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let link = Link::new(scenario_from(s));
        let (lo, hi) = (a.min(b), a.max(b));
        for dir in [Direction::Upload, Direction::Download] {
            let t_lo = link.expected_transfer_time(lo, dir);
            let t_hi = link.expected_transfer_time(hi, dir);
            prop_assert!(t_lo <= t_hi, "{lo} vs {hi} bytes");
        }
    }

    /// Sampled transfer times are strictly positive and the sampler is
    /// deterministic per seed.
    #[test]
    fn transfers_positive_and_deterministic(s in any::<u8>(), bytes in 1u64..5_000_000, seed in any::<u64>()) {
        let link = Link::new(scenario_from(s));
        let t1 = link.transfer_time(bytes, Direction::Upload, &mut SimRng::new(seed));
        let t2 = link.transfer_time(bytes, Direction::Upload, &mut SimRng::new(seed));
        prop_assert_eq!(t1, t2);
        prop_assert!(t1 > SimDuration::ZERO);
    }

    /// Connection setup never beats the physical RTT floor (1.5 RTT ×
    /// minimum log-normal jitter is still > 0.5 RTT).
    #[test]
    fn connect_time_has_rtt_floor(s in any::<u8>(), seed in any::<u64>()) {
        let scenario = scenario_from(s);
        let link = Link::new(scenario);
        let t = link.connect_time(&mut SimRng::new(seed));
        prop_assert!(t > scenario.params().rtt.mul_f64(0.2), "{t} vs rtt");
    }

    /// Expected transfer time respects scenario quality ordering for
    /// uploads: LAN ≤ WAN at every size (same for 4G vs 3G).
    #[test]
    fn scenario_quality_ordering(bytes in 1u64..20_000_000) {
        let lan = Link::new(NetworkScenario::LanWifi).expected_transfer_time(bytes, Direction::Upload);
        let wan = Link::new(NetworkScenario::WanWifi).expected_transfer_time(bytes, Direction::Upload);
        let g4 = Link::new(NetworkScenario::FourG).expected_transfer_time(bytes, Direction::Download);
        let g3 = Link::new(NetworkScenario::ThreeG).expected_transfer_time(bytes, Direction::Download);
        prop_assert!(lan <= wan);
        prop_assert!(g4 <= g3);
    }
}
