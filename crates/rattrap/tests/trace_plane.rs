//! Observability-plane contract: coverage and structural soundness.
//!
//! Two guarantees:
//!
//! 1. **Cross-layer coverage** — a single instrumented paper-default
//!    run yields at least one request whose events span five or more
//!    subsystems (rattrap, simkit, netsim, hostkernel, containerfs /
//!    virt). This is the acceptance bar for "one trace shows a request
//!    crossing every layer".
//! 2. **Well-formed span trees** — under *arbitrary* fault plans,
//!    every `End` matches exactly one earlier `Begin`, no span closes
//!    twice, and every child interval nests inside its parent's
//!    (equal endpoints allowed: terminal transitions close the phase
//!    span and the root span at the same microsecond).

use std::collections::{BTreeMap, BTreeSet};

use obsv::{Recorder, RecorderConfig, SpanId, Subsystem, TraceEvent};
use proptest::prelude::*;
use rattrap::platform::PlatformKind;
use rattrap::simulation::{ScenarioConfig, Simulation};
use rattrap::ResiliencePolicy;
use simkit::FaultConfig;
use workloads::WorkloadKind;

const GOLDEN_SEED: u64 = 0x2017_0529;

fn instrumented_run(cfg: ScenarioConfig) -> obsv::TraceSnapshot {
    let mut sim = Simulation::new(cfg);
    let rec = Recorder::enabled(RecorderConfig::default());
    sim.set_recorder(rec.clone());
    sim.run();
    rec.snapshot()
}

/// Resolve the subsystem each event belongs to. `End` events carry no
/// subsystem of their own; they inherit it from the matching `Begin`.
fn subsystem_of(ev: &TraceEvent, begins: &BTreeMap<SpanId, Subsystem>) -> Option<Subsystem> {
    match ev {
        TraceEvent::Begin { subsystem, .. } | TraceEvent::Instant { subsystem, .. } => {
            Some(*subsystem)
        }
        TraceEvent::End { id, .. } => begins.get(id).copied(),
    }
}

#[test]
fn one_request_crosses_at_least_five_subsystems() {
    let snap = instrumented_run(ScenarioConfig::paper_default(
        PlatformKind::Rattrap.config(),
        WorkloadKind::Ocr,
        GOLDEN_SEED,
    ));

    let begins: BTreeMap<SpanId, Subsystem> = snap
        .events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Begin { id, subsystem, .. } => Some((*id, *subsystem)),
            _ => None,
        })
        .collect();

    let mut per_request: BTreeMap<u64, BTreeSet<&'static str>> = BTreeMap::new();
    for ev in &snap.events {
        let (Some(req), Some(sub)) = (ev.request(), subsystem_of(ev, &begins)) else {
            continue;
        };
        per_request.entry(req).or_default().insert(sub.name());
    }

    let best = per_request
        .iter()
        .max_by_key(|(_, subs)| subs.len())
        .expect("instrumented run produced request-attributed events");
    assert!(
        best.1.len() >= 5,
        "expected one request's trace to span >= 5 subsystems, best was \
         request {} with {:?}",
        best.0,
        best.1
    );
    for needed in ["rattrap", "netsim", "hostkernel"] {
        assert!(
            best.1.contains(needed),
            "request {} trace is missing the {needed} layer: {:?}",
            best.0,
            best.1
        );
    }
}

/// Walk a snapshot's event stream and assert the span trees are
/// well-formed. Returns an error string instead of panicking so the
/// proptest harness can attach the failing fault plan.
fn check_span_trees(snap: &obsv::TraceSnapshot) -> Result<(), String> {
    // id -> (start_us, parent); removed on End so double-closes show.
    let mut open: BTreeMap<SpanId, (u64, SpanId)> = BTreeMap::new();
    // id -> (start_us, end_us, parent) for closed spans.
    let mut closed: BTreeMap<SpanId, (u64, u64, SpanId)> = BTreeMap::new();

    for ev in &snap.events {
        match ev {
            TraceEvent::Begin {
                id, parent, at_us, ..
            } => {
                if !id.is_some() {
                    return Err("recorded a Begin with the null span id".into());
                }
                if open.contains_key(id) || closed.contains_key(id) {
                    return Err(format!("span {id:?} began twice"));
                }
                open.insert(*id, (*at_us, *parent));
            }
            TraceEvent::End { id, at_us, .. } => {
                let Some((start, parent)) = open.remove(id) else {
                    return Err(if closed.contains_key(id) {
                        format!("span {id:?} ended twice")
                    } else {
                        format!("End for {id:?} has no prior Begin")
                    });
                };
                if *at_us < start {
                    return Err(format!("span {id:?} ends before it starts"));
                }
                closed.insert(*id, (start, *at_us, parent));
            }
            TraceEvent::Instant { .. } => {}
        }
    }

    for (id, (start, end, parent)) in &closed {
        if !parent.is_some() {
            continue;
        }
        // A parent may still be open at snapshot time (it contains
        // everything); only closed parents constrain the child.
        let Some((pstart, pend, _)) = closed.get(parent) else {
            if !open.contains_key(parent) {
                return Err(format!("span {id:?} has unknown parent {parent:?}"));
            }
            continue;
        };
        if start < pstart || end > pend {
            return Err(format!(
                "child {id:?} [{start}, {end}] escapes parent {parent:?} \
                 [{pstart}, {pend}]"
            ));
        }
    }
    Ok(())
}

#[test]
fn fault_free_trace_has_well_formed_span_trees() {
    for platform in [
        PlatformKind::VmBaseline,
        PlatformKind::RattrapWithout,
        PlatformKind::Rattrap,
    ] {
        let snap = instrumented_run(ScenarioConfig::paper_default(
            platform.config(),
            WorkloadKind::Ocr,
            GOLDEN_SEED,
        ));
        check_span_trees(&snap).unwrap_or_else(|e| panic!("{}: {e}", platform.label()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary fault plans — crashes mid-boot, transfer strikes,
    /// retries, local fallbacks — must never produce a malformed span
    /// tree: every end has a start, nothing closes twice, children
    /// stay inside their parents.
    #[test]
    fn span_trees_stay_well_formed_under_any_fault_plan(
        seed in 0u64..1_000_000,
        intensity in 0.0f64..8.0,
        policy_pick in 0usize..3,
    ) {
        let policy = match policy_pick {
            0 => ResiliencePolicy::none(),
            1 => ResiliencePolicy::retry_only(),
            _ => ResiliencePolicy::standard(),
        };
        let cfg = ScenarioConfig {
            faults: FaultConfig::scaled(intensity),
            resilience: policy,
            ..ScenarioConfig::paper_default(
                PlatformKind::Rattrap.config(),
                WorkloadKind::Ocr,
                seed,
            )
        };
        let snap = instrumented_run(cfg);
        prop_assert!(!snap.events.is_empty());
        if let Err(e) = check_span_trees(&snap) {
            prop_assert!(false, "malformed span tree: {e}");
        }
    }
}
