//! Rattrap face of the scenario plane: a compiled `ScenarioSpec`
//! replays through `ArrivalModel::Trace` on a single host, and the
//! noisy-neighbor tenant split streams through `TenantSplitSink`.

use rattrap::{
    run_scenario_with_sink, ArrivalModel, PlatformKind, ScenarioConfig, TenantSplitSink,
};
use scenario::{ScenarioDriver, ScenarioSpec};
use simkit::{SimDuration, SimTime};
use workloads::WorkloadKind;

const DEVICES: u32 = 12;

fn replay_config(spec: &ScenarioSpec, seed: u64) -> (ScenarioConfig, ScenarioDriver) {
    let driver = ScenarioDriver::compile(spec, DEVICES, seed);
    let mut cfg =
        ScenarioConfig::paper_default(PlatformKind::Rattrap.config(), WorkloadKind::Ocr, seed);
    cfg.devices = DEVICES;
    cfg.arrivals = ArrivalModel::Trace(driver.device_arrivals(DEVICES));
    cfg.device_workloads = driver.device_workloads(DEVICES);
    (cfg, driver)
}

#[test]
fn an_interaction_storm_replays_deterministically_on_one_host() {
    let spec = ScenarioSpec::interaction_storm(
        96,
        SimTime::from_secs(30),
        SimDuration::from_secs(240),
        60,
    );
    let (cfg, driver) = replay_config(&spec, 0xA11CE);
    assert!(
        driver.planned_offloads() > 0,
        "the storm must script offloads"
    );
    // Only offloading events reach the trace; device-local touches are
    // suppressed at compile time, same as the fleet injection seam.
    let lanes = driver.device_arrivals(DEVICES);
    let on_trace: u64 = lanes.iter().map(|l| l.len() as u64).sum();
    assert_eq!(on_trace, driver.planned_offloads());
    for lane in &lanes {
        assert!(lane.windows(2).all(|w| w[0] <= w[1]), "lanes stay sorted");
    }

    let a = rattrap::run_scenario(cfg.clone());
    let b = rattrap::run_scenario(cfg);
    assert_eq!(a.digest(), b.digest(), "trace replay must be deterministic");
    assert_eq!(a.requests.len() as u64, on_trace);
    for r in &a.requests {
        assert!(r.completed_at >= r.arrived_at);
    }
}

#[test]
fn the_tenant_split_sink_partitions_a_noisy_neighbor_replay() {
    let spec = ScenarioSpec::noisy_neighbor(1, 2);
    let (mut cfg, driver) = replay_config(&spec, 0xBEE);
    // Give the trace something to carry: noisy-neighbor alone scripts
    // no extra arrivals (it reshapes the base mix), so storm on top.
    let storm = ScenarioSpec::interaction_storm(
        64,
        SimTime::from_secs(10),
        SimDuration::from_secs(180),
        70,
    );
    let storm_driver = ScenarioDriver::compile(&storm, DEVICES, 0xBEE);
    cfg.arrivals = ArrivalModel::Trace(storm_driver.device_arrivals(DEVICES));

    let tenant_of: Vec<u32> = (0..DEVICES).map(|d| driver.tenant_of(d)).collect();
    let mut sink = TenantSplitSink::new(driver.tenant_names(), tenant_of.clone());
    let summary = run_scenario_with_sink(cfg.clone(), &mut sink);

    assert_eq!(
        sink.total_submitted(),
        summary.completed_requests,
        "the split must partition the stream"
    );
    let lanes = sink.tenants();
    assert_eq!(lanes.len(), 2);
    assert!(lanes.iter().all(|l| l.submitted > 0), "both tenants ran");
    for l in lanes {
        assert_eq!(
            l.completed_remote + l.fallback_local + l.abandoned,
            l.submitted,
            "tenant {} accounting must partition its submissions",
            l.name
        );
        assert!(l.mean_response_s() > 0.0);
        assert!(l.p99_response_s() >= l.mean_response_s() * 0.5);
    }
    // Tenancy binds the per-device workload: heavy apps on tenant 0,
    // latency-sensitive on tenant 1.
    let kinds = cfg.device_workloads.as_ref().expect("explicit tenancy");
    for d in 0..DEVICES {
        let heavy = matches!(
            kinds[d as usize],
            WorkloadKind::VirusScan | WorkloadKind::Linpack
        );
        assert_eq!(heavy, tenant_of[d as usize] == 0);
    }
}
