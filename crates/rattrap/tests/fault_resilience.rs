//! Fault plane + resilience policy contract.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Inertness** — a rate-zero fault plan plus the default policy
//!    is *exactly* the fault-free engine: the digest matches the
//!    golden anchor from `golden_determinism.rs` bit for bit.
//! 2. **Determinism under fire** — the same faulty scenario at the
//!    same seed produces the same report, twice and across policies'
//!    RNG streams (faults draw from dedicated seed streams, never from
//!    the request streams).
//! 3. **Terminality** — whatever the fault plan throws at a run, every
//!    request ends in a terminal phase: served, degraded to on-device
//!    execution, or abandoned. No lifecycle is ever left in flight
//!    (the run completing at all proves the event queue drained).

use proptest::prelude::*;
use rattrap::platform::PlatformKind;
use rattrap::simulation::{run_scenario, ScenarioConfig};
use rattrap::ResiliencePolicy;
use simkit::FaultConfig;
use workloads::WorkloadKind;

const GOLDEN_SEED: u64 = 0x2017_0529;
/// `Rattrap`/`Ocr` anchor from `golden_determinism.rs` — keep in sync.
const RATTRAP_OCR_GOLDEN: u64 = 0x988d5275376ae587;

fn faulty_cfg(intensity: f64, policy: ResiliencePolicy, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        faults: FaultConfig::scaled(intensity),
        resilience: policy,
        ..ScenarioConfig::paper_default(PlatformKind::Rattrap.config(), WorkloadKind::Ocr, seed)
    }
}

#[test]
fn rate_zero_plan_reproduces_the_golden_digest() {
    let report = run_scenario(faulty_cfg(0.0, ResiliencePolicy::none(), GOLDEN_SEED));
    assert_eq!(
        report.digest(),
        RATTRAP_OCR_GOLDEN,
        "an explicit rate-0 fault plan must be bit-identical to the fault-free engine"
    );
    assert_eq!(report.fault_stats.injected, 0);
    assert_eq!(report.fault_stats.strikes, 0);
    assert_eq!(report.fault_stats.time_lost, simkit::SimDuration::ZERO);
}

#[test]
fn faulty_runs_are_deterministic() {
    let a = run_scenario(faulty_cfg(4.0, ResiliencePolicy::standard(), GOLDEN_SEED));
    let b = run_scenario(faulty_cfg(4.0, ResiliencePolicy::standard(), GOLDEN_SEED));
    assert_eq!(
        a.digest(),
        b.digest(),
        "same faults, same seed, same policy => same report"
    );
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_ne!(
        a.digest(),
        RATTRAP_OCR_GOLDEN,
        "a heavy fault plan must visibly perturb the run"
    );
}

#[test]
fn heavy_faults_actually_strike_and_policies_respond() {
    let report = run_scenario(faulty_cfg(6.0, ResiliencePolicy::standard(), GOLDEN_SEED));
    let stats = &report.fault_stats;
    assert!(stats.injected > 0, "scaled(6.0) must schedule faults");
    assert!(stats.strikes > 0, "a heavy plan must hit live requests");
    assert!(stats.retries > 0, "struck requests must retry");
    assert_eq!(
        stats.strikes,
        stats.strikes_by_phase.values().sum::<u64>(),
        "per-phase attribution must account for every strike"
    );
    assert!(
        stats.time_lost > simkit::SimDuration::ZERO,
        "strikes cost wall-clock"
    );
    let recovered: u64 = report
        .requests
        .iter()
        .map(|r| r.phases.fault_recovery.as_micros())
        .sum();
    assert_eq!(
        stats.time_lost.as_micros(),
        recovered,
        "time_lost is the sum of per-request fault_recovery"
    );
}

#[test]
fn standard_policy_always_delivers_a_response() {
    for intensity in [1.0, 3.0, 6.0] {
        let report = run_scenario(faulty_cfg(
            intensity,
            ResiliencePolicy::standard(),
            GOLDEN_SEED,
        ));
        assert_eq!(report.fault_stats.abandoned, 0);
        assert!(
            report.requests.iter().all(|r| !r.abandoned),
            "graceful degradation must leave no request unanswered at intensity {intensity}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every injected fault leads to a terminal request state: the run
    /// drains (completing at all proves it), delivers exactly the
    /// expected request count, stays within the retry budget, and
    /// never double-disposes a request.
    #[test]
    fn every_request_terminates_under_any_fault_plan(
        seed in 0u64..1_000_000,
        intensity in 0.0f64..8.0,
        policy_pick in 0usize..3,
    ) {
        let policy = match policy_pick {
            0 => ResiliencePolicy::none(),
            1 => ResiliencePolicy::retry_only(),
            _ => ResiliencePolicy::standard(),
        };
        let budget = policy.max_retries;
        let fallback = policy.fallback_local;
        let cfg = faulty_cfg(intensity, policy, seed);
        let expected = (cfg.devices * cfg.requests_per_device) as usize;
        let report = run_scenario(cfg);

        prop_assert_eq!(
            report.requests.len(),
            expected,
            "every arrival must reach a terminal state"
        );
        for r in &report.requests {
            prop_assert!(
                r.retries <= budget,
                "request {} used {} retries against a budget of {}",
                r.id, r.retries, budget
            );
            prop_assert!(
                !(r.abandoned && r.fell_back_local),
                "abandoned and fallback are mutually exclusive dispositions"
            );
            prop_assert!(
                !r.abandoned || !fallback,
                "a fallback policy never abandons"
            );
        }
        let abandoned = report.requests.iter().filter(|r| r.abandoned).count() as u64;
        prop_assert_eq!(report.fault_stats.abandoned, abandoned);
        let fallbacks = report.requests.iter().filter(|r| r.fell_back_local).count() as u64;
        prop_assert_eq!(report.fault_stats.fallbacks, fallbacks);
    }
}
