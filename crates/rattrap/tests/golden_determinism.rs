//! Golden determinism contract for the simulation engine.
//!
//! Runs the paper-default scenario for every platform × two workloads
//! at a fixed seed and pins the canonical digest of the full
//! [`SimulationReport`] (every request field, the per-second
//! timelines, and all counters). Any engine change that shifts a
//! single microsecond, byte, or float bit in observable output fails
//! here.
//!
//! If a change is *meant* to alter results, regenerate the constants
//! with:
//!
//! ```text
//! cargo test -p rattrap --test golden_determinism -- --nocapture
//! ```
//!
//! and copy the `GOLDEN` table printed by the failing test — but treat
//! that as an interface change, not a routine update.

use obsv::{Recorder, RecorderConfig};
use rattrap::platform::PlatformKind;
use rattrap::simulation::{run_scenario, ScenarioConfig, Simulation};
use workloads::WorkloadKind;

const GOLDEN_SEED: u64 = 0x2017_0529;

/// (platform, workload, digest) — regenerate per the module docs.
const GOLDEN: &[(PlatformKind, WorkloadKind, u64)] = &[
    (
        PlatformKind::VmBaseline,
        WorkloadKind::Ocr,
        0x6d96c6bde469f110,
    ),
    (
        PlatformKind::RattrapWithout,
        WorkloadKind::Ocr,
        0x256e66f827b2e478,
    ),
    (PlatformKind::Rattrap, WorkloadKind::Ocr, 0x988d5275376ae587),
    (
        PlatformKind::VmBaseline,
        WorkloadKind::ChessGame,
        0x97c8e42d90150c02,
    ),
    (
        PlatformKind::RattrapWithout,
        WorkloadKind::ChessGame,
        0x72954e4daf2737e8,
    ),
    (
        PlatformKind::Rattrap,
        WorkloadKind::ChessGame,
        0x412b19c69fb41ff3,
    ),
];

fn digest_of(platform: PlatformKind, workload: WorkloadKind) -> u64 {
    let cfg = ScenarioConfig::paper_default(platform.config(), workload, GOLDEN_SEED);
    run_scenario(cfg).digest()
}

#[test]
fn reports_match_committed_digests() {
    let mut mismatches = Vec::new();
    for &(platform, workload, expected) in GOLDEN {
        let actual = digest_of(platform, workload);
        println!("    (PlatformKind::{platform:?}, WorkloadKind::{workload:?}, {actual:#018x}),");
        if actual != expected {
            mismatches.push(format!(
                "{}/{:?}: expected {expected:#018x}, got {actual:#018x}",
                platform.label(),
                workload
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "simulation output drifted from the golden digests \
         (see module docs to regenerate deliberately):\n{}",
        mismatches.join("\n")
    );
}

/// The observability plane's determinism contract: a fully
/// instrumented run — recorder enabled, every subsystem recording,
/// every exporter executed on the result — reproduces all six golden
/// digests bit-for-bit. Recording is observational only; if tracing
/// ever feeds back into scheduling, pricing, or RNG draws, this fails.
#[test]
fn instrumented_runs_reproduce_all_golden_digests() {
    for &(platform, workload, expected) in GOLDEN {
        let cfg = ScenarioConfig::paper_default(platform.config(), workload, GOLDEN_SEED);
        let mut sim = Simulation::new(cfg);
        let rec = Recorder::enabled(RecorderConfig::default());
        sim.set_recorder(rec.clone());
        let actual = sim.run().digest();
        assert_eq!(
            actual,
            expected,
            "{}/{:?}: tracing perturbed the simulation",
            platform.label(),
            workload
        );
        // Run every exporter over the captured trace; none may panic
        // and each must produce non-trivial output.
        let snap = rec.snapshot();
        assert!(!snap.events.is_empty(), "instrumented run recorded events");
        let chrome = snap.chrome_trace();
        assert!(obsv::json::parse(&chrome).is_ok(), "chrome trace parses");
        assert!(!snap.collapsed_stacks().is_empty(), "flamegraph stacks");
        let some_req = snap.events.iter().find_map(|e| e.request());
        let timeline = snap.request_timeline(some_req.expect("a request-attributed event"));
        assert!(timeline.contains("causal timeline"));
    }
}

#[test]
fn digests_are_stable_across_runs_in_process() {
    let a = digest_of(PlatformKind::Rattrap, WorkloadKind::Ocr);
    let b = digest_of(PlatformKind::Rattrap, WorkloadKind::Ocr);
    assert_eq!(a, b, "same config + seed must be bit-identical");
}

#[test]
fn digests_distinguish_seeds_and_platforms() {
    let base = digest_of(PlatformKind::Rattrap, WorkloadKind::Ocr);
    let other_platform = digest_of(PlatformKind::VmBaseline, WorkloadKind::Ocr);
    assert_ne!(base, other_platform, "digest must see platform differences");
    let cfg = ScenarioConfig::paper_default(
        PlatformKind::Rattrap.config(),
        WorkloadKind::Ocr,
        GOLDEN_SEED + 1,
    );
    assert_ne!(
        base,
        run_scenario(cfg).digest(),
        "digest must see seed differences"
    );
}
