//! Compute-backend equivalence contract.
//!
//! Three guarantees pin the `exec` backend seam:
//!
//! 1. **Default inertness** — the default `Modeled` backend reproduces
//!    the golden anchor from `golden_determinism.rs` bit for bit, and
//!    so does replaying the *identity* calibration map (`modeled × 1.0`
//!    is exact in IEEE arithmetic).
//! 2. **Replay determinism** — a `Replay` run with any calibration map
//!    is bit-identical across repetitions: the map is data, not state.
//! 3. **Modeled ≡ Replay(identity)** — across seeds, platforms, and
//!    workloads, the two backends produce identical request digests,
//!    which is what lets golden and explorer checks keep running when
//!    a calibration map is plugged in.

use exec::{BackendHandle, CalEntry, CalibrationMap, ReplayBackend};
use proptest::prelude::*;
use rattrap::platform::PlatformKind;
use rattrap::simulation::{ScenarioConfig, Simulation};
use std::sync::Arc;
use workloads::WorkloadKind;

const GOLDEN_SEED: u64 = 0x2017_0529;
/// `Rattrap`/`Ocr` anchor from `golden_determinism.rs` — keep in sync.
const RATTRAP_OCR_GOLDEN: u64 = 0x988d5275376ae587;

fn digest_with(platform: PlatformKind, kind: WorkloadKind, seed: u64, b: BackendHandle) -> u64 {
    let cfg = ScenarioConfig::paper_default(platform.config(), kind, seed);
    let mut sim = Simulation::new(cfg);
    sim.set_backend(b);
    sim.run().digest()
}

/// Satellite regression for the calibration-table refactor: the
/// default profiles (now read from `workloads::calibration::TABLE`)
/// still drive the engine to the committed golden digest. Guards
/// against any table cell drifting from the original literals.
#[test]
fn calibration_table_defaults_reproduce_the_golden_digest() {
    let cfg = ScenarioConfig::paper_default(
        PlatformKind::Rattrap.config(),
        WorkloadKind::Ocr,
        GOLDEN_SEED,
    );
    assert_eq!(Simulation::new(cfg).run().digest(), RATTRAP_OCR_GOLDEN);
}

#[test]
fn identity_replay_reproduces_the_golden_digest() {
    let digest = digest_with(
        PlatformKind::Rattrap,
        WorkloadKind::Ocr,
        GOLDEN_SEED,
        Arc::new(ReplayBackend::identity()),
    );
    assert_eq!(digest, RATTRAP_OCR_GOLDEN);
}

/// A non-trivial calibration map covering some cells and leaving the
/// rest to the wildcard/default fallbacks.
fn skewed_map(default_ratio: f64, ocr_ratio: f64) -> CalibrationMap {
    let mut map = CalibrationMap::identity();
    map.default_ratio = default_ratio;
    for size in exec::SizeClass::ALL {
        map.insert(
            format!("OCR/{}/*", size.label()),
            CalEntry {
                ratio: ocr_ratio,
                wall_micros: 10_000,
                samples: 3,
            },
        );
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Guarantee 2: replay runs are bit-identical across repetitions.
    #[test]
    fn replay_runs_are_bit_identical_across_repetitions(
        seed in 1u64..1_000,
        default_ratio in 0.5f64..2.0,
        ocr_ratio in 0.5f64..2.0,
    ) {
        let map = skewed_map(default_ratio, ocr_ratio);
        let run = |m: &CalibrationMap| {
            digest_with(
                PlatformKind::Rattrap,
                WorkloadKind::Ocr,
                seed,
                Arc::new(ReplayBackend::new(m.clone())),
            )
        };
        let first = run(&map);
        prop_assert_eq!(run(&map), first);
        // …including through a JSON round-trip of the map.
        let reparsed = CalibrationMap::from_json(&map.to_json()).unwrap();
        prop_assert_eq!(run(&reparsed), first);
    }

    /// Guarantee 3: Modeled and Replay-with-identity-map agree on the
    /// full request digest for any platform × workload × seed.
    #[test]
    fn modeled_equals_identity_replay(
        seed in 1u64..1_000,
        platform_i in 0usize..3,
        kind_i in 0usize..4,
    ) {
        let platform = [
            PlatformKind::VmBaseline,
            PlatformKind::RattrapWithout,
            PlatformKind::Rattrap,
        ][platform_i];
        let kind = WorkloadKind::ALL[kind_i];
        let modeled = digest_with(platform, kind, seed, exec::modeled());
        let replay = digest_with(
            platform,
            kind,
            seed,
            Arc::new(ReplayBackend::identity()),
        );
        prop_assert_eq!(modeled, replay);
    }
}
