//! End-to-end discrete-event simulation of offloading against a cloud
//! platform — the engine behind every figure and table in the
//! evaluation.
//!
//! Five (or N) client devices issue offloading requests over a network
//! scenario; the platform (VM baseline, Rattrap(W/O) or Rattrap)
//! provisions runtime environments on the [`CloudHost`], routes
//! requests through the Dispatcher / App Warehouse / Access Controller,
//! executes compute on a fair-shared server CPU and offloading I/O on
//! the (random-access-penalized) server disk, and returns results.
//!
//! The engine is a thin wiring-and-routing layer over three substrates:
//!
//! * contended devices (server CPU, offloading disk, device CPUs) are
//!   [`FairShareExecutor`]s — the epoch/job-map completion machinery
//!   lives in `simkit::executor`, not here;
//! * per-request phase accounting is the [`RequestLifecycle`] state
//!   machine in [`crate::lifecycle`], with [`PhaseObserver`] hooks on
//!   every transition;
//! * completed requests stream into a [`RequestSink`]
//!   ([`Simulation::run_with_sink`]), so arbitrarily long trace replays
//!   run in memory bounded by the in-flight request count. The
//!   convenience [`Simulation::run`] collects into a full
//!   [`SimulationReport`], including the §III-B phase decomposition per
//!   request and the 1-second server-load timelines of Fig. 2.

use crate::access::{AccessController, Action};
use crate::config::{DeviceSpec, IDLE_TEARDOWN, RANDOM_IO_FACTOR};
use crate::decision::{LinkEstimator, Objective, OffloadDecider};
use crate::dispatcher::{ContainerDb, Dispatcher, InstanceState, Placement};
use crate::lifecycle::{Phase, PhaseObserver, RequestLifecycle, ResumeStage};
use crate::metrics::{CollectingSink, FaultStats, ReportSummary, RequestSink};
use crate::platform::PlatformConfig;
use crate::request::{PhaseBreakdown, RequestRecord};
use crate::resilience::ResiliencePolicy;
use crate::scheduler::{Monitor, PoolPolicy, ScaleAction, Scheduler};
use crate::warehouse::{aid_of, AppWarehouse, WarehouseStats};
use netsim::{Direction, Link, NetworkScenario};
use obsv::{attrs, AttrValue, Counter, Recorder, SpanId, Subsystem};
use simkit::faults::{
    link_available_at, transfer_outcome, FaultConfig, FaultPlan, LinkWindow, StragglerWindow,
    TransferOutcome,
};
use simkit::{
    derive_seed, EventQueue, FairShareExecutor, FairShareResource, SimDuration, SimRng, SimTime,
    TimelineSampler,
};
use std::collections::{BTreeMap, VecDeque};
use virt::{CloudHost, HostError, InstanceId, RuntimeClass, TMPFS_BANDWIDTH};
use workloads::WorkloadKind;

/// How requests arrive.
#[derive(Debug, Clone)]
pub enum ArrivalModel {
    /// Each device issues its next request one think time after the
    /// previous response (the §VI-C experiments).
    ClosedLoop {
        /// Mean exponential think time, seconds.
        think_mean_s: f64,
        /// Stagger between devices' first requests, seconds.
        stagger_s: f64,
    },
    /// Requests fire at externally supplied instants per device (the
    /// LiveLab trace replay of §VI-E) regardless of earlier responses.
    Trace(Vec<Vec<SimTime>>),
}

/// One simulation scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Platform under test.
    pub platform: PlatformConfig,
    /// Workload every device runs (unless overridden per device).
    pub workload: WorkloadKind,
    /// Per-device workload override — the multi-tenant "cloudlet"
    /// scenario where one shared pool serves different apps. Indexed by
    /// device id; devices beyond the list fall back to `workload`.
    pub device_workloads: Option<Vec<WorkloadKind>>,
    /// Number of client devices.
    pub devices: u32,
    /// Requests each device issues (closed-loop mode).
    pub requests_per_device: u32,
    /// Network scenario.
    pub scenario: NetworkScenario,
    /// Device hardware model.
    pub device_spec: DeviceSpec,
    /// Master seed.
    pub seed: u64,
    /// Timeline-sampling horizon (Fig. 2 uses 180 s).
    pub sample_horizon: SimDuration,
    /// Arrival model.
    pub arrivals: ArrivalModel,
    /// Run the client-side decision engine: tasks predicted to lose by
    /// offloading execute on the device instead (recorded with
    /// `executed_locally = true`). Off by default — the paper's
    /// experiments always offload.
    pub adaptive_offloading: bool,
    /// Fault-injection intensities. All rates zero by default; an
    /// inert config generates an empty plan and leaves the engine's
    /// event stream bit-identical to the pre-fault-plane engine.
    pub faults: FaultConfig,
    /// How the platform absorbs injected faults (timeouts, retries,
    /// fallback). The default [`ResiliencePolicy::none`] schedules no
    /// timeout events, so fault-free runs stay bit-identical.
    pub resilience: ResiliencePolicy,
}

impl ScenarioConfig {
    /// The §VI-C setup: closed loop, LAN WiFi, 5 devices × 20 requests.
    pub fn paper_default(platform: PlatformConfig, workload: WorkloadKind, seed: u64) -> Self {
        let think = workload.profile().think_time_secs;
        ScenarioConfig {
            platform,
            workload,
            devices: crate::config::PAPER_DEVICE_COUNT,
            requests_per_device: crate::config::PAPER_REQUESTS_PER_DEVICE,
            scenario: NetworkScenario::LanWifi,
            device_spec: DeviceSpec::default_handset(),
            seed,
            sample_horizon: SimDuration::from_secs(180),
            arrivals: ArrivalModel::ClosedLoop {
                think_mean_s: think,
                stagger_s: 0.5,
            },
            device_workloads: None,
            adaptive_offloading: false,
            faults: FaultConfig::none(),
            resilience: ResiliencePolicy::none(),
        }
    }

    /// The workload a given device runs.
    pub fn workload_of(&self, device: u32) -> WorkloadKind {
        self.device_workloads
            .as_ref()
            .and_then(|v| v.get(device as usize).copied())
            .unwrap_or(self.workload)
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct SimulationReport {
    /// Served requests, in completion order.
    pub requests: Vec<RequestRecord>,
    /// CPU utilization per second (fraction of provisioned vCPUs busy).
    pub cpu_timeline: Vec<f64>,
    /// Disk reads, MB/s per second.
    pub io_read_mb_s: Vec<f64>,
    /// Disk writes, MB/s per second.
    pub io_write_mb_s: Vec<f64>,
    /// Code-cache statistics.
    pub warehouse_stats: WarehouseStats,
    /// Access-controller filter invocations.
    pub access_checks: u64,
    /// Instances provisioned over the run.
    pub instances_provisioned: u32,
    /// Peak host memory reserved, bytes.
    pub peak_memory_bytes: u64,
    /// Physical disk in use at the end of the run, bytes.
    pub final_disk_bytes: u64,
    /// Peak physical disk over the run, bytes.
    pub peak_disk_bytes: u64,
    /// Simulated instant the last request completed.
    pub finished_at: SimTime,
    /// Fault-plane accounting (all zero on fault-free runs).
    pub fault_stats: FaultStats,
}

impl SimulationReport {
    /// Total bytes uploaded by all devices.
    pub fn total_upload_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.upload_bytes).sum()
    }

    /// Total bytes downloaded.
    pub fn total_download_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.download_bytes).sum()
    }

    /// Mean of a per-request metric.
    pub fn mean_of(&self, f: impl Fn(&RequestRecord) -> f64) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().map(f).sum::<f64>() / self.requests.len() as f64
    }

    /// Fraction of requests that are offloading failures.
    pub fn failure_rate(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .filter(|r| r.is_offloading_failure())
            .count() as f64
            / self.requests.len() as f64
    }
}

/// Engine events. Per-request events carry the slot *generation* that
/// scheduled them: a fault invalidates every event of the killed
/// attempt by bumping the slot's generation, so stale completions are
/// dropped on receipt instead of corrupting a retried (or recycled)
/// slot. Fault-free runs never bump a generation mid-request, so every
/// check passes and the event stream is unchanged.
#[derive(Debug, Clone)]
enum Event {
    Arrival {
        device: u32,
        seq: u32,
    },
    UploadDone {
        req: usize,
        gen: u64,
    },
    BootDone {
        instance: InstanceId,
    },
    CodeLoaded {
        req: usize,
        gen: u64,
    },
    TmpfsIoDone {
        req: usize,
        gen: u64,
    },
    CpuCheck {
        epoch: u64,
    },
    DiskCheck {
        epoch: u64,
    },
    DeviceCpuCheck {
        device: u32,
        epoch: u64,
    },
    RequestComplete {
        req: usize,
        gen: u64,
    },
    IdleScan,
    /// The `idx`-th instance crash of the fault plan fires.
    InstanceFault {
        idx: usize,
    },
    /// A link fault interrupts the in-flight transfer of `req`.
    TransferFault {
        req: usize,
        gen: u64,
    },
    /// `req` has dwelt in `phase` past the policy timeout.
    PhaseTimeout {
        req: usize,
        gen: u64,
        phase: Phase,
    },
    /// Backoff elapsed; launch the next attempt of `req`.
    Retry {
        req: usize,
        gen: u64,
    },
}

/// Per-slot trace spans, parallel to `Simulation::pending`: the
/// request's root span and the span of the phase it currently dwells
/// in. Both are [`SpanId::NONE`] when the recorder is disabled.
#[derive(Debug, Clone, Copy, Default)]
struct ReqSpans {
    root: SpanId,
    phase: SpanId,
}

/// The simulation state machine. Create with [`Simulation::new`], run
/// with [`Simulation::run`] (collecting) or
/// [`Simulation::run_with_sink`] (streaming).
pub struct Simulation {
    cfg: ScenarioConfig,
    queue: EventQueue<Event>,
    host: CloudHost,
    db: ContainerDb,
    dispatcher: Dispatcher,
    warehouse: AppWarehouse,
    access: AccessController,
    link: Link,
    /// Server CPU: cores fair-shared across computing requests.
    cpu: FairShareExecutor<usize>,
    /// Offloading disk: random-access bandwidth fair-shared.
    disk: FairShareExecutor<usize>,
    /// Device-side CPUs (adaptive offloading executes declined tasks
    /// here), one single-core executor per device, created lazily.
    device_cpus: BTreeMap<u32, FairShareExecutor<usize>>,
    /// In-flight request lifecycles. Slots are recycled after
    /// completion (see `free_slots`), so memory is bounded by the
    /// in-flight count, not the run length.
    pending: Vec<RequestLifecycle>,
    free_slots: Vec<usize>,
    /// Per-slot generation counters (see [`Event`]), parallel to
    /// `pending`. Bumped on fault, completion, and slot recycling.
    slot_gen: Vec<u64>,
    instance_queue: BTreeMap<InstanceId, VecDeque<usize>>,
    instance_busy: BTreeMap<InstanceId, bool>,
    /// Requests waiting for a specific instance to finish booting.
    boot_waiters: BTreeMap<InstanceId, Vec<usize>>,
    cpu_sampler: TimelineSampler,
    io_read: TimelineSampler,
    io_write: TimelineSampler,
    last_level_at: SimTime,
    next_req_id: u64,
    completed: u64,
    finished_at: SimTime,
    instances_provisioned: u32,
    peak_disk: u64,
    /// Client-side record of code already pushed per (instance, app) —
    /// used by the cache-less platforms.
    code_pushed: std::collections::BTreeSet<(InstanceId, &'static str)>,
    /// Monitor & Scheduler (§IV-A): warm-pool management, idle
    /// reclamation, and cpu.shares rebalancing.
    scheduler: Scheduler,
    monitor: Monitor,
    /// Lifecycle hooks fired on every phase transition.
    observers: Vec<Box<dyn PhaseObserver>>,
    /// Link outage/degradation windows from the fault plan (empty on
    /// fault-free runs, which keeps transfer pricing integer-exact).
    link_windows: Vec<LinkWindow>,
    /// Server slowdown windows from the fault plan.
    straggler_windows: Vec<StragglerWindow>,
    /// Instance crash schedule from the fault plan.
    crash_events: Vec<(SimTime, u64)>,
    /// What the faults did and how the policy absorbed them.
    fault_stats: FaultStats,
    /// Observability recorder shared with every layer (disabled unless
    /// [`Simulation::set_recorder`] is called).
    rec: Recorder,
    /// Compute backend pricing every offloaded request's compute phase
    /// (default [`exec::Modeled`], bit-identical to the cycle model).
    backend: exec::BackendHandle,
    /// Per-slot trace spans, parallel to `pending`.
    req_spans: Vec<ReqSpans>,
    /// Events popped off the queue (no-op handle when untraced).
    ctr_events: Counter,
    /// Requests delivered to the sink.
    ctr_completions: Counter,
    /// Lifecycle slots recycled for reuse.
    ctr_recycled: Counter,
    /// Runtime instances provisioned.
    ctr_provisions: Counter,
}

/// Seed-stream tag for the fault plan, disjoint from every per-request
/// stream (`(device << 32) | seq`) because real devices never reach
/// `device = 0xFAB7`.
const FAULT_SEED_STREAM: u64 = 0xFAB7_0000_0000_0001;

impl Simulation {
    /// Build the simulation for `cfg`.
    pub fn new(cfg: ScenarioConfig) -> Self {
        let host = CloudHost::new(hostkernel::HostSpec::paper_server());
        let spec = host.host_spec();
        let cpu = FairShareExecutor::from_resource(FairShareResource::new(spec.cores as f64, 1.0));
        // Offloading I/O is scattered small-block traffic: the HDD
        // delivers only a fraction of its sequential bandwidth.
        let disk = FairShareExecutor::from_resource(FairShareResource::new(
            spec.disk_bandwidth * RANDOM_IO_FACTOR,
            spec.disk_bandwidth * RANDOM_IO_FACTOR,
        ));
        let bin = SimDuration::from_secs(1);
        let horizon = cfg.sample_horizon;
        let dispatcher = Dispatcher::new(cfg.platform.dispatch_policy());
        let fault_plan = FaultPlan::generate(&cfg.faults, derive_seed(cfg.seed, FAULT_SEED_STREAM));
        Simulation {
            queue: EventQueue::new(),
            host,
            db: ContainerDb::new(),
            dispatcher,
            warehouse: AppWarehouse::new(512 * 1024 * 1024),
            access: AccessController::new(10),
            link: Link::new(cfg.scenario),
            cpu,
            disk,
            device_cpus: BTreeMap::new(),
            pending: Vec::new(),
            free_slots: Vec::new(),
            slot_gen: Vec::new(),
            instance_queue: BTreeMap::new(),
            instance_busy: BTreeMap::new(),
            boot_waiters: BTreeMap::new(),
            cpu_sampler: TimelineSampler::new(bin, horizon),
            io_read: TimelineSampler::new(bin, horizon),
            io_write: TimelineSampler::new(bin, horizon),
            last_level_at: SimTime::ZERO,
            next_req_id: 0,
            completed: 0,
            finished_at: SimTime::ZERO,
            instances_provisioned: 0,
            peak_disk: 0,
            scheduler: Scheduler::new(PoolPolicy {
                warm_spares: cfg.platform.warm_spares,
                max_instances: cfg.platform.max_instances,
                idle_teardown: IDLE_TEARDOWN,
            }),
            monitor: Monitor::new(0.3),
            cfg,
            code_pushed: std::collections::BTreeSet::new(),
            observers: Vec::new(),
            link_windows: fault_plan.link_windows(),
            straggler_windows: fault_plan.straggler_windows(),
            crash_events: fault_plan.crashes(),
            fault_stats: FaultStats {
                injected: fault_plan.len() as u64,
                ..FaultStats::default()
            },
            rec: Recorder::disabled(),
            backend: exec::modeled(),
            req_spans: Vec::new(),
            ctr_events: Counter::default(),
            ctr_completions: Counter::default(),
            ctr_recycled: Counter::default(),
            ctr_provisions: Counter::default(),
        }
    }

    /// Attach an observability recorder. One shared handle is fanned
    /// out to the host (and through it the kernel), both fair-share
    /// executors, and the engine itself, so a single trace carries
    /// spans from every layer. Recording is purely observational: no
    /// scheduled event, duration, or RNG draw depends on it, so an
    /// instrumented run reproduces the golden digests bit-for-bit.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.host.attach_recorder(rec.clone());
        self.cpu.instrument(rec.clone(), "cpu");
        self.disk.instrument(rec.clone(), "disk");
        self.ctr_events = rec.counter("rattrap.events_dispatched");
        self.ctr_completions = rec.counter("rattrap.requests_completed");
        self.ctr_recycled = rec.counter("rattrap.slots_recycled");
        self.ctr_provisions = rec.counter("rattrap.instances_provisioned");
        self.rec = rec;
    }

    /// The attached recorder (disabled unless [`Self::set_recorder`]
    /// was called).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Swap the compute backend. The default [`exec::Modeled`] prices
    /// compute from the calibrated cycle profile exactly as the
    /// pre-backend engine did, so every golden digest holds; a
    /// [`exec::RealBackend`] executes the kernels for real, a
    /// [`exec::ReplayBackend`] replays a committed calibration.
    pub fn set_backend(&mut self, backend: exec::BackendHandle) {
        self.backend = backend;
    }

    /// Register a lifecycle observer; it sees every phase transition of
    /// every request for the rest of the run.
    pub fn add_observer(&mut self, observer: Box<dyn PhaseObserver>) {
        self.observers.push(observer);
    }

    /// Per-request deterministic RNG, identical across platforms so the
    /// "same inflow of requests" hits every system (§VI-C).
    fn req_rng(&self, device: u32, seq: u32) -> SimRng {
        SimRng::new(derive_seed(
            self.cfg.seed,
            ((device as u64) << 32) | seq as u64,
        ))
    }

    /// Run to completion, collecting every request into the report.
    pub fn run(self) -> SimulationReport {
        let mut sink = CollectingSink::default();
        let summary = self.run_with_sink(&mut sink);
        let mut requests = sink.records;
        requests.sort_by_key(|r| (r.completed_at, r.id));
        SimulationReport {
            requests,
            cpu_timeline: summary.cpu_timeline,
            io_read_mb_s: summary.io_read_mb_s,
            io_write_mb_s: summary.io_write_mb_s,
            warehouse_stats: summary.warehouse_stats,
            access_checks: summary.access_checks,
            instances_provisioned: summary.instances_provisioned,
            peak_memory_bytes: summary.peak_memory_bytes,
            final_disk_bytes: summary.final_disk_bytes,
            peak_disk_bytes: summary.peak_disk_bytes,
            finished_at: summary.finished_at,
            fault_stats: summary.fault_stats,
        }
    }

    /// Run to completion, streaming each completed request into `sink`
    /// the moment it finishes. Memory stays bounded by the in-flight
    /// request count — nothing per-request is retained after delivery —
    /// so arbitrarily long trace replays fit.
    pub fn run_with_sink(mut self, sink: &mut dyn RequestSink) -> ReportSummary {
        // Seed the arrival events.
        match self.cfg.arrivals.clone() {
            ArrivalModel::ClosedLoop { stagger_s, .. } => {
                for d in 0..self.cfg.devices {
                    if self.cfg.requests_per_device > 0 {
                        self.queue.schedule(
                            SimTime::from_secs_f64(stagger_s * d as f64),
                            Event::Arrival { device: d, seq: 0 },
                        );
                    }
                }
            }
            ArrivalModel::Trace(per_device) => {
                for (d, times) in per_device.iter().enumerate() {
                    for (i, &t) in times.iter().enumerate() {
                        self.queue.schedule(
                            t,
                            Event::Arrival {
                                device: d as u32,
                                seq: i as u32,
                            },
                        );
                    }
                }
            }
        }
        // Warm-pool pre-provisioning (Monitor & Scheduler).
        if !self.cfg.platform.per_device_instances {
            for action in self.scheduler.plan(&self.db, SimTime::ZERO) {
                if let ScaleAction::Provision(n) = action {
                    for _ in 0..n {
                        self.provision(SimTime::ZERO, 0);
                    }
                }
            }
        }
        self.queue.schedule(SimTime::from_secs(10), Event::IdleScan);
        // Schedule the fault plan's instance crashes (none on
        // fault-free runs — the loop body never executes and the event
        // stream is untouched).
        for idx in 0..self.crash_events.len() {
            let at = self.crash_events[idx].0;
            self.queue.schedule(at, Event::InstanceFault { idx });
        }

        // The queue drains naturally: IdleScan stops rescheduling once
        // all expected requests completed, and resource checks stop when
        // no jobs remain.
        while let Some((now, ev)) = self.queue.pop() {
            // Close the CPU-utilization level over the elapsed interval.
            let level = self.current_cpu_level();
            self.cpu_sampler
                .record_level(self.last_level_at, now, level);
            self.last_level_at = now;
            // Share the clock with every clock-less layer (kernel,
            // host) before dispatching.
            self.rec.set_now(now.as_micros());
            self.ctr_events.inc();
            self.handle(now, ev, sink);
            self.peak_disk = self.peak_disk.max(self.host.total_disk_usage());
        }

        // Flush the level channel through the last completion. A
        // trailing IdleScan lands after the final request in every
        // closed-loop and trace configuration, so this is normally a
        // no-op — it exists so a future arrival model whose last event
        // *is* the completion cannot silently drop the tail. (The
        // amount channels need no flush: every byte is recorded by the
        // event that moves it, clipped only at the Fig. 2 horizon.)
        let level = self.current_cpu_level();
        self.cpu_sampler
            .record_level(self.last_level_at, self.finished_at, level);

        // Surface every surviving namespace's logcat ring into the
        // trace metadata (`logcat.ns<N>` → "at_us rendered-line" per
        // line), where the text timeline exporter picks it up.
        if self.rec.is_enabled() {
            for ns in self.host.kernel.namespace_ids() {
                if let Ok(records) = self.host.kernel.dump_log(ns) {
                    let text: String = records
                        .iter()
                        .map(|r| format!("{} {}\n", r.at_us, r.render()))
                        .collect();
                    self.rec.set_meta(&format!("logcat.ns{ns}"), text);
                }
            }
        }

        ReportSummary {
            cpu_timeline: self.cpu_sampler.levels(),
            io_read_mb_s: self
                .io_read
                .rates_per_sec()
                .iter()
                .map(|b| b / 1e6)
                .collect(),
            io_write_mb_s: self
                .io_write
                .rates_per_sec()
                .iter()
                .map(|b| b / 1e6)
                .collect(),
            warehouse_stats: self.warehouse.stats(),
            access_checks: self.access.checks(),
            instances_provisioned: self.instances_provisioned,
            peak_memory_bytes: self.host.memory_peak(),
            final_disk_bytes: self.host.total_disk_usage(),
            peak_disk_bytes: self.peak_disk,
            finished_at: self.finished_at,
            completed_requests: self.completed,
            fault_stats: self.fault_stats.clone(),
        }
    }

    fn all_work_finished(&self) -> bool {
        let expected = match &self.cfg.arrivals {
            ArrivalModel::ClosedLoop { .. } => {
                (self.cfg.devices * self.cfg.requests_per_device) as u64
            }
            ArrivalModel::Trace(t) => t.iter().map(|v| v.len() as u64).sum(),
        };
        self.completed >= expected
    }

    fn current_cpu_level(&self) -> f64 {
        let provisioned = self.db.len().max(1) as f64;
        let booting = self
            .db
            .iter()
            .filter(|r| matches!(r.state, InstanceState::Booting { .. }))
            .count() as f64;
        ((self.cpu.active_jobs() as f64 + 0.7 * booting) / provisioned).min(1.0)
    }

    /// Take a lifecycle slot: recycled if available, fresh otherwise.
    fn alloc_slot(&mut self, lifecycle: RequestLifecycle) -> usize {
        match self.free_slots.pop() {
            Some(slot) => {
                self.pending[slot] = lifecycle;
                self.slot_gen[slot] += 1;
                self.req_spans[slot] = ReqSpans::default();
                slot
            }
            None => {
                self.pending.push(lifecycle);
                self.slot_gen.push(0);
                self.req_spans.push(ReqSpans::default());
                self.pending.len() - 1
            }
        }
    }

    /// Record the phase edge of `req` into the trace: open the root
    /// span on first contact, close the previous phase span, and open
    /// (or, on a terminal phase, close) the next.
    fn trace_transition(&mut self, now: SimTime, req: usize, next: Phase) {
        let at = now.as_micros();
        if self.req_spans[req].root == SpanId::NONE {
            let record = &self.pending[req].record;
            self.req_spans[req].root = self.rec.span_start_at(
                Subsystem::Rattrap,
                "request",
                SpanId::NONE,
                at,
                attrs![
                    ("req", AttrValue::U64(record.id)),
                    ("device", AttrValue::U64(record.device as u64)),
                    ("app", AttrValue::Str(record.kind.app_id())),
                ],
            );
        }
        let prev = std::mem::replace(&mut self.req_spans[req].phase, SpanId::NONE);
        if prev.is_some() {
            self.rec.span_end_at(prev, at, Vec::new());
        }
        if next.is_terminal() {
            let root = std::mem::replace(&mut self.req_spans[req].root, SpanId::NONE);
            self.rec
                .span_end_at(root, at, attrs![("outcome", AttrValue::Str(next.name()))]);
        } else {
            self.req_spans[req].phase = self.rec.span_start_at(
                Subsystem::Rattrap,
                next.name(),
                self.req_spans[req].root,
                at,
                Vec::new(),
            );
        }
    }

    /// Advance request `req` to `next`, then fan the transition out to
    /// every observer.
    fn transition(&mut self, now: SimTime, req: usize, next: Phase) {
        let (from, dwell) = self.pending[req].advance(now, next);
        if self.rec.is_enabled() {
            self.trace_transition(now, req, next);
        }
        if !self.observers.is_empty() {
            let record = &self.pending[req].record;
            for obs in &mut self.observers {
                obs.on_transition(record, from, next, dwell, now);
            }
        }
        // Arm the policy timeout for the phase just entered. The
        // default policy has no timeouts, so fault-free runs schedule
        // nothing here.
        if let Some(timeout) = self.cfg.resilience.timeout_for(next) {
            self.queue.schedule(
                now + timeout,
                Event::PhaseTimeout {
                    req,
                    gen: self.slot_gen[req],
                    phase: next,
                },
            );
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event, sink: &mut dyn RequestSink) {
        // Attribute everything a request-scoped event triggers — down
        // to kernel binder instants — to that request. Stale (dropped)
        // events attribute nothing.
        if self.rec.is_enabled() {
            let current = match &ev {
                Event::UploadDone { req, gen }
                | Event::CodeLoaded { req, gen }
                | Event::TmpfsIoDone { req, gen }
                | Event::RequestComplete { req, gen }
                | Event::TransferFault { req, gen }
                | Event::PhaseTimeout { req, gen, .. }
                | Event::Retry { req, gen } => {
                    (self.slot_gen[*req] == *gen).then(|| self.pending[*req].record.id)
                }
                _ => None,
            };
            self.rec.set_current_request(current);
        }
        match ev {
            Event::Arrival { device, seq } => self.on_arrival(now, device, seq),
            Event::UploadDone { req, gen } => {
                if self.slot_gen[req] == gen {
                    self.on_upload_done(now, req);
                }
            }
            Event::BootDone { instance } => self.on_boot_done(now, instance),
            Event::CodeLoaded { req, gen } => {
                if self.slot_gen[req] == gen {
                    self.on_code_loaded(now, req);
                }
            }
            Event::TmpfsIoDone { req, gen } => {
                if self.slot_gen[req] == gen {
                    self.finish_io(now, req);
                }
            }
            Event::CpuCheck { epoch } => self.on_cpu_check(now, epoch),
            Event::DiskCheck { epoch } => self.on_disk_check(now, epoch),
            Event::DeviceCpuCheck { device, epoch } => {
                self.on_device_cpu_check(now, device, epoch, sink)
            }
            Event::RequestComplete { req, gen } => {
                if self.slot_gen[req] == gen {
                    self.on_request_complete(now, req, sink);
                }
            }
            Event::IdleScan => self.on_idle_scan(now),
            Event::InstanceFault { idx } => self.on_instance_fault(now, idx, sink),
            Event::TransferFault { req, gen } => {
                if self.slot_gen[req] == gen {
                    self.on_transfer_fault(now, req, sink);
                }
            }
            Event::PhaseTimeout { req, gen, phase } => {
                if self.slot_gen[req] == gen && self.pending[req].phase() == phase {
                    self.on_phase_timeout(now, req, sink);
                }
            }
            Event::Retry { req, gen } => {
                if self.slot_gen[req] == gen {
                    self.on_retry(now, req);
                }
            }
        }
        self.rec.set_current_request(None);
    }

    // ---- arrival & placement -------------------------------------------

    fn on_arrival(&mut self, now: SimTime, device: u32, seq: u32) {
        let mut rng = self.req_rng(device, seq);
        let kind = self.cfg.workload_of(device);
        let profile = kind.profile();
        let task = profile.sample(&mut rng);
        let app_id = kind.app_id();
        let aid = aid_of(app_id);

        // Adaptive offloading: the device predicts whether the cloud
        // wins and keeps the task local otherwise. A warm Rattrap pool
        // justifies the near-zero expected prep; cache-less platforms
        // would also predict a code upload, but the paper's framework
        // decides per *task*, so we use the steady-state estimate.
        if self.cfg.adaptive_offloading {
            let decider = OffloadDecider::new(self.cfg.device_spec, Objective::Latency);
            let link = LinkEstimator::seeded_from(self.cfg.scenario);
            let report = decider.decide(self.cfg.scenario, &link, &task, 0, SimDuration::ZERO);
            if !report.offload {
                let local = self.cfg.device_spec.local_execution_time(task.compute);
                let record = RequestRecord {
                    id: self.next_req_id,
                    device,
                    kind,
                    scenario: self.cfg.scenario,
                    seq_on_device: seq,
                    arrived_at: now,
                    completed_at: now + local, // finalized at completion
                    phases: PhaseBreakdown::default(),
                    upload_bytes: 0,
                    code_bytes_sent: 0,
                    download_bytes: 0,
                    code_transferred: false,
                    cid_affinity_hit: false,
                    local_execution: local,
                    upload_time: SimDuration::ZERO,
                    download_time: SimDuration::ZERO,
                    executed_locally: true,
                    retries: 0,
                    fell_back_local: false,
                    abandoned: false,
                };
                self.next_req_id += 1;
                let req = self.alloc_slot(RequestLifecycle::new(record, task, now));
                if self.rec.is_enabled() {
                    self.rec
                        .set_current_request(Some(self.pending[req].record.id));
                }
                self.transition(now, req, Phase::LocalExecution);
                // The task contends for the device's own (single) CPU —
                // concurrent local tasks fair-share it.
                let work = local.as_secs_f64();
                let rec = self.rec.clone();
                let phase_span = self.req_spans[req].phase;
                let exec = self.device_cpus.entry(device).or_insert_with(|| {
                    let mut e = FairShareExecutor::new(1.0, 1.0);
                    e.instrument(rec.clone(), "device_cpu");
                    e
                });
                rec.set_ambient_parent(phase_span);
                exec.submit(now, work, req);
                rec.set_ambient_parent(SpanId::NONE);
                exec.reschedule(now, &mut self.queue, |epoch| Event::DeviceCpuCheck {
                    device,
                    epoch,
                });
                return;
            }
        }

        // Access controller: analyze on first contact, then filter the
        // request workflow (counted even for benign workloads).
        if self.cfg.platform.access_control {
            self.access.admit(app_id, profile.payload_bytes_mean);
            let _ = self.access.check(
                app_id,
                &Action::NetConnect {
                    dest: format!("device-{device}"),
                },
            );
            let _ = self.access.check(
                app_id,
                &Action::FsWrite {
                    bytes: task.payload_bytes,
                },
            );
            let _ = self.access.check(
                app_id,
                &Action::BinderCall {
                    service: "offloadcontroller".into(),
                },
            );
        }

        // Placement.
        let cid_hint: Vec<InstanceId> = self.warehouse.containers_with(&aid).to_vec();
        let placement = self.dispatcher.place(&self.db, device, &cid_hint);
        let instance = match placement {
            Placement::Existing(id) => id,
            Placement::Provision => match self.provision(now, device) {
                Some(id) => id,
                None => {
                    // Pool exhausted and nothing to queue on: shouldn't
                    // happen with sane configs; route to least loaded.
                    self.dispatcher
                        .place(&self.db, device, &[])
                        .existing_or_first(&self.db)
                        .expect("some instance exists")
                }
            },
        };
        if let Some(rec) = self.db.get_mut(instance) {
            rec.active_jobs += 1;
        }

        // Does this request carry the mobile code over the network?
        let code_transferred = if self.cfg.platform.code_cache {
            // Rattrap: once and for all, platform-wide.
            !self.warehouse.lookup(&aid)
        } else {
            // VM / W-O: the client pushes the code into *this* runtime
            // on its first request there (and remembers having done so).
            self.code_pushed.insert((instance, app_id))
        };
        let code_bytes_sent = if code_transferred {
            profile.app_code_bytes
        } else {
            0
        };
        if self.cfg.platform.code_cache && code_transferred {
            // Warehouse preserves the code after this transfer.
            self.warehouse
                .insert(aid.clone(), app_id, profile.app_code_bytes);
        }

        // Whether the runtime still needs a (local) code load.
        let resident = self
            .host
            .instance(instance)
            .map(|i| i.apps_loaded.contains(app_id))
            .unwrap_or(false);
        let affinity_hit = resident && !code_transferred;
        let code_to_load = if resident { 0 } else { profile.app_code_bytes };

        // Network: connect + upload. The transfer is walked across the
        // fault plan's link windows; with no overlapping window the
        // outcome is the integer-exact `now + connect + upload_time`.
        let connect = self.link.connect_time(&mut rng);
        let upload_bytes = task.payload_bytes + task.control_bytes + code_bytes_sent;
        let upload_time = self
            .link
            .transfer_time(upload_bytes, Direction::Upload, &mut rng);
        let start = now + connect;
        let outcome = transfer_outcome(&self.link_windows, start, upload_time);
        // Interrupted attempts charge nothing up front: the whole
        // attempt dwell is attributed to fault recovery when the
        // TransferFault lands.
        let (charged_connect, charged_upload) = match outcome {
            TransferOutcome::Completes { at } => (connect, at.saturating_since(start)),
            TransferOutcome::Interrupted { .. } => (SimDuration::ZERO, SimDuration::ZERO),
        };

        let local = self.cfg.device_spec.local_execution_time(task.compute);
        let record = RequestRecord {
            id: self.next_req_id,
            device,
            kind,
            scenario: self.cfg.scenario,
            seq_on_device: seq,
            arrived_at: now,
            completed_at: now, // finalized later
            phases: PhaseBreakdown {
                network_connection: charged_connect,
                data_transfer: charged_upload,
                ..Default::default()
            },
            upload_bytes,
            code_bytes_sent,
            download_bytes: 0,
            code_transferred,
            cid_affinity_hit: affinity_hit,
            local_execution: local,
            upload_time: charged_upload,
            download_time: SimDuration::ZERO,
            executed_locally: false,
            retries: 0,
            fell_back_local: false,
            abandoned: false,
        };
        self.next_req_id += 1;

        let mut lifecycle = RequestLifecycle::new(record, task, now);
        lifecycle.instance = Some(instance);
        lifecycle.code_to_load = code_to_load;
        lifecycle.upfront_connect = charged_connect;
        lifecycle.upfront_transfer = charged_upload;
        let req = self.alloc_slot(lifecycle);
        if self.rec.is_enabled() {
            self.rec
                .set_current_request(Some(self.pending[req].record.id));
        }
        self.transition(now, req, Phase::DataTransferUp);
        match outcome {
            TransferOutcome::Completes { at } => {
                let gen = self.slot_gen[req];
                self.queue.schedule(at, Event::UploadDone { req, gen });
                self.trace_transfer(now, at, req, "upload", upload_bytes, false);
            }
            TransferOutcome::Interrupted { at, fraction_done } => {
                let remaining =
                    (((1.0 - fraction_done) * upload_bytes as f64).ceil() as u64).max(1);
                self.pending[req].resume = Some(ResumeStage::Upload { bytes: remaining });
                let gen = self.slot_gen[req];
                self.queue.schedule(at, Event::TransferFault { req, gen });
                self.trace_transfer(now, at, req, "upload", upload_bytes, true);
            }
        }
    }

    /// Record a link transfer of `req` as a [`Subsystem::Netsim`] span
    /// under the request's root. Both endpoints are already priced, so
    /// the span is opened and closed immediately.
    fn trace_transfer(
        &self,
        start: SimTime,
        end: SimTime,
        req: usize,
        name: &'static str,
        bytes: u64,
        interrupted: bool,
    ) {
        if !self.rec.is_enabled() {
            return;
        }
        let span = self.rec.span_start_at(
            Subsystem::Netsim,
            name,
            self.req_spans[req].root,
            start.as_micros(),
            attrs![("bytes", AttrValue::U64(bytes))],
        );
        let attrs = if interrupted {
            attrs![("interrupted", AttrValue::Bool(true))]
        } else {
            attrs![]
        };
        self.rec.span_end_at(span, end.as_micros(), attrs);
    }

    fn provision(&mut self, now: SimTime, device: u32) -> Option<InstanceId> {
        let class: RuntimeClass = self.cfg.platform.runtime_class;
        match self.host.provision(class) {
            Ok((id, setup)) => {
                self.instances_provisioned += 1;
                self.ctr_provisions.inc();
                let owner = if self.cfg.platform.per_device_instances {
                    Some(device)
                } else {
                    None
                };
                self.db.register(id, class, now + setup, owner);
                self.instance_busy.insert(id, false);
                self.instance_queue.insert(id, VecDeque::new());
                self.queue
                    .schedule(now + setup, Event::BootDone { instance: id });
                // Boot reads the image from disk (Fig. 2's early read
                // plateau): VMs stream most of the image, optimized
                // containers only the shared-layer metadata.
                self.io_read
                    .record_amount_over(now, now + setup, class.boot_read_bytes());
                Some(id)
            }
            Err(HostError::OutOfMemory(_)) => None,
            Err(e) => panic!("provisioning failed: {e}"),
        }
    }

    // ---- pipeline stages -------------------------------------------------

    fn on_upload_done(&mut self, now: SimTime, req: usize) {
        // Receiving migrated data writes it to the offloading store.
        let payload = self.pending[req].task.payload_bytes as f64;
        self.io_write.record_amount(now, payload);
        let instance = self.pending[req].instance.expect("placed at arrival");
        self.transition(now, req, Phase::RuntimePrep);
        match self.db.get(instance).map(|r| r.state) {
            Some(InstanceState::Booting { .. }) => {
                self.boot_waiters.entry(instance).or_default().push(req);
            }
            Some(InstanceState::Ready) => self.try_start_service(now, instance, req),
            None => {
                // Instance was torn down while we were uploading (can
                // only happen in trace mode with long uploads): place
                // again by provisioning a fresh one.
                let device = self.pending[req].record.device;
                let id = self
                    .provision(now, device)
                    .expect("re-provision after teardown");
                if let Some(rec) = self.db.get_mut(id) {
                    rec.active_jobs += 1;
                }
                self.pending[req].instance = Some(id);
                self.boot_waiters.entry(id).or_default().push(req);
            }
        }
    }

    fn try_start_service(&mut self, now: SimTime, instance: InstanceId, req: usize) {
        let busy = *self.instance_busy.get(&instance).unwrap_or(&false);
        if busy {
            self.instance_queue
                .entry(instance)
                .or_default()
                .push_back(req);
        } else {
            self.start_service(now, instance, req);
        }
    }

    fn start_service(&mut self, now: SimTime, instance: InstanceId, req: usize) {
        self.instance_busy.insert(instance, true);
        // This can run mid-handler for a *queued* request (finish_io
        // releasing the runtime), so scope the trace attribution to
        // this request and restore the caller's afterwards.
        let saved_req = self.rec.current_request();
        if self.rec.is_enabled() {
            self.rec
                .set_current_request(Some(self.pending[req].record.id));
        }
        // Everything since UploadDone was runtime preparation (boot wait
        // + queueing for the runtime) — charged by leaving RuntimePrep.
        self.transition(now, req, Phase::CodeLoad);

        // The control-plane hop into the runtime: dispatcher → the
        // instance's `offloadcontroller` binder service. Zero sim-time;
        // the kernel's binder bookkeeping is not part of any report.
        self.host
            .offload_rpc(instance, self.pending[req].task.control_bytes)
            .expect("offload RPC against a live runtime");

        // Load the mobile code into the runtime if it is not resident.
        let app_id = self.pending[req].record.kind.app_id();
        let code = self.pending[req].code_to_load;
        let load_time = self
            .host
            .load_app(instance, app_id, code)
            .expect("instance exists while serving");
        if code > 0 {
            self.io_read.record_amount(now, code as f64);
            let aid = aid_of(app_id);
            self.warehouse.note_loaded(&aid, instance);
        }
        let gen = self.slot_gen[req];
        self.queue
            .schedule(now + load_time, Event::CodeLoaded { req, gen });
        self.rec.set_current_request(saved_req);
    }

    fn on_code_loaded(&mut self, now: SimTime, req: usize) {
        // Code loading counts toward runtime preparation — charged by
        // leaving CodeLoad.
        self.transition(now, req, Phase::Compute);

        // Start the computation on the shared server CPU.
        let instance = self.pending[req].instance.expect("serving");
        let class = self
            .db
            .get(instance)
            .map(|r| r.class)
            .unwrap_or(self.cfg.platform.runtime_class);
        let eff = class.spec().cpu_efficiency;
        let ghz = self.host.host_spec().clock_ghz;
        let task = self.pending[req].task;
        let ctx = exec::ComputeCtx {
            kind: task.kind,
            size: exec::SizeClass::of(&task),
            host: exec::HostClass::PAPER_SERVER,
            clock_ghz: ghz,
            cpu_efficiency: eff,
            // Disjoint from every req_rng stream (devices stay well
            // below 0xE8EC_0000).
            input_seed: derive_seed(
                self.cfg.seed,
                0xE8EC_0000_0000_0000 | self.pending[req].record.id,
            ),
        };
        let mut work_core_seconds = self.backend.charge(&ctx, &task);
        // Straggler fault: computations started inside a slowdown
        // window carry the inflation factor (no window — fault-free or
        // otherwise — touches the work term at all).
        if let Some(factor) = self.straggler_factor_at(now) {
            work_core_seconds *= factor;
        }
        self.rec.set_ambient_parent(self.req_spans[req].phase);
        let job = self.cpu.submit(now, work_core_seconds, req);
        self.rec.set_ambient_parent(SpanId::NONE);
        self.pending[req].cpu_job = Some(job);
        self.cpu
            .reschedule(now, &mut self.queue, |epoch| Event::CpuCheck { epoch });
    }

    fn on_cpu_check(&mut self, now: SimTime, epoch: u64) {
        let Some(finished) = self.cpu.poll(now, epoch) else {
            return; // stale schedule; a newer one exists
        };
        for (_, req) in finished {
            if self.rec.is_enabled() {
                self.rec
                    .set_current_request(Some(self.pending[req].record.id));
            }
            self.pending[req].cpu_job = None;
            self.transition(now, req, Phase::OffloadIo);
            self.begin_io(now, req);
        }
        self.cpu
            .reschedule(now, &mut self.queue, |epoch| Event::CpuCheck { epoch });
    }

    fn on_device_cpu_check(
        &mut self,
        now: SimTime,
        device: u32,
        epoch: u64,
        sink: &mut dyn RequestSink,
    ) {
        let Some(exec) = self.device_cpus.get_mut(&device) else {
            return;
        };
        let Some(finished) = exec.poll(now, epoch) else {
            return;
        };
        for (_, req) in &finished {
            if self.rec.is_enabled() {
                self.rec
                    .set_current_request(Some(self.pending[*req].record.id));
            }
            self.on_request_complete(now, *req, sink);
        }
        if let Some(exec) = self.device_cpus.get_mut(&device) {
            exec.reschedule(now, &mut self.queue, |epoch| Event::DeviceCpuCheck {
                device,
                epoch,
            });
        }
    }

    fn begin_io(&mut self, now: SimTime, req: usize) {
        let bytes = self.pending[req].task.io_bytes;
        if bytes == 0 {
            self.finish_io(now, req);
            return;
        }
        let instance = self.pending[req].instance.expect("serving");
        let class = self
            .db
            .get(instance)
            .map(|r| r.class)
            .unwrap_or(self.cfg.platform.runtime_class);
        let spec = class.spec();
        if spec.uses_shared_io_layer {
            // Sharing Offloading I/O: the in-memory layer sidesteps the
            // disk entirely (and burns after reading).
            let t = SimDuration::from_secs_f64(bytes as f64 / TMPFS_BANDWIDTH);
            self.io_write.record_amount_over(
                now,
                now + t.max(SimDuration::from_micros(1)),
                bytes as f64,
            );
            if self.rec.is_enabled() {
                self.rec.instant(
                    Subsystem::Containerfs,
                    "tmpfs.io",
                    attrs![
                        ("instance", AttrValue::U64(instance.0 as u64)),
                        ("bytes", AttrValue::U64(bytes)),
                    ],
                );
            }
            let gen = self.slot_gen[req];
            self.queue
                .schedule(now + t, Event::TmpfsIoDone { req, gen });
        } else {
            // Random-access traffic on the shared HDD, inflated by the
            // virtualization I/O path.
            let work = bytes as f64 / spec.io_efficiency;
            self.rec.set_ambient_parent(self.req_spans[req].phase);
            let job = self.disk.submit(now, work, req);
            self.rec.set_ambient_parent(SpanId::NONE);
            self.pending[req].disk_job = Some(job);
            self.disk
                .reschedule(now, &mut self.queue, |epoch| Event::DiskCheck { epoch });
        }
    }

    fn on_disk_check(&mut self, now: SimTime, epoch: u64) {
        let Some(finished) = self.disk.poll(now, epoch) else {
            return;
        };
        for (_, req) in finished {
            if self.rec.is_enabled() {
                self.rec
                    .set_current_request(Some(self.pending[req].record.id));
            }
            self.pending[req].disk_job = None;
            let from = self.pending[req].phase_started();
            let bytes = self.pending[req].task.io_bytes as f64;
            if now > from {
                self.io_write.record_amount_over(from, now, bytes);
            } else {
                // Sub-microsecond I/O would make the interval empty and
                // silently drop the bytes; bin them at the instant
                // instead. (Unreachable with the current +2 µs check
                // slack — kept so faster disks can't lose the tail.)
                self.io_write.record_amount(now, bytes);
            }
            self.finish_io(now, req);
        }
        self.disk
            .reschedule(now, &mut self.queue, |epoch| Event::DiskCheck { epoch });
    }

    fn finish_io(&mut self, now: SimTime, req: usize) {
        // Offloading I/O is part of computation execution in the phase
        // accounting (§VI-C discusses it under pure computation) —
        // charged by leaving OffloadIo.
        self.transition(now, req, Phase::DataTransferDown);

        // Release the runtime for the next queued request.
        let instance = self.pending[req].instance.expect("serving");
        self.instance_busy.insert(instance, false);
        if let Some(rec) = self.db.get_mut(instance) {
            rec.active_jobs = rec.active_jobs.saturating_sub(1);
            rec.last_active = now;
        }
        if let Some(next) = self.instance_queue.entry(instance).or_default().pop_front() {
            self.start_service(now, instance, next);
        }

        // Download the result, walked across the fault plan's link
        // windows exactly like the upload.
        let device = self.pending[req].record.device;
        let seq = self.pending[req].record.seq_on_device;
        let mut rng = self.req_rng(device, seq).fork(0xD0);
        let bytes = self.pending[req].task.result_bytes;
        let dl = self
            .link
            .transfer_time(bytes, Direction::Download, &mut rng);
        self.pending[req].record.download_bytes = bytes;
        self.schedule_download(now, req, bytes, dl);
    }

    /// Price the download of `bytes` (nominal duration `dl`) starting
    /// at `now` against the link windows, charge accordingly, and
    /// schedule the completion or interruption event.
    fn schedule_download(&mut self, now: SimTime, req: usize, bytes: u64, dl: SimDuration) {
        match transfer_outcome(&self.link_windows, now, dl) {
            TransferOutcome::Completes { at } => {
                let actual = at.saturating_since(now);
                let lc = &mut self.pending[req];
                lc.record.download_time += actual;
                lc.record.phases.data_transfer += actual;
                lc.upfront_connect = SimDuration::ZERO;
                lc.upfront_transfer = actual;
                let gen = self.slot_gen[req];
                self.queue.schedule(at, Event::RequestComplete { req, gen });
                self.trace_transfer(now, at, req, "download", bytes, false);
            }
            TransferOutcome::Interrupted { at, fraction_done } => {
                let remaining = (((1.0 - fraction_done) * bytes as f64).ceil() as u64).max(1);
                let lc = &mut self.pending[req];
                lc.upfront_connect = SimDuration::ZERO;
                lc.upfront_transfer = SimDuration::ZERO;
                lc.resume = Some(ResumeStage::Download { bytes: remaining });
                let gen = self.slot_gen[req];
                self.queue.schedule(at, Event::TransferFault { req, gen });
                self.trace_transfer(now, at, req, "download", bytes, true);
            }
        }
    }

    fn on_request_complete(&mut self, now: SimTime, req: usize, sink: &mut dyn RequestSink) {
        self.complete_request(now, req, sink, Phase::Done);
    }

    /// Deliver `req` to the sink in terminal phase `terminal` (Done for
    /// served or fallback requests, Abandoned for exhausted ones) and
    /// recycle its slot. Abandoned requests still count as completed —
    /// the run-termination accounting must drain every request.
    fn complete_request(
        &mut self,
        now: SimTime,
        req: usize,
        sink: &mut dyn RequestSink,
        terminal: Phase,
    ) {
        if self.rec.is_enabled() {
            self.rec
                .set_current_request(Some(self.pending[req].record.id));
        }
        self.transition(now, req, terminal);
        self.ctr_completions.inc();
        self.completed += 1;
        self.finished_at = self.finished_at.max(now);
        self.fault_stats.time_lost += self.pending[req].record.phases.fault_recovery;
        sink.accept(self.pending[req].record.clone());

        // Closed loop: think, then issue the next request.
        if let ArrivalModel::ClosedLoop { think_mean_s, .. } = self.cfg.arrivals {
            let device = self.pending[req].record.device;
            let seq = self.pending[req].record.seq_on_device + 1;
            if seq < self.cfg.requests_per_device {
                let mut rng = self.req_rng(device, seq).fork(0x7417);
                let think = SimDuration::from_secs_f64(rng.exponential(think_mean_s));
                self.queue
                    .schedule(now + think, Event::Arrival { device, seq });
            }
        }

        // The slot holds no live state now; recycle it. The generation
        // bump drops any event still in flight for this slot.
        self.slot_gen[req] += 1;
        self.free_slots.push(req);
        self.ctr_recycled.inc();
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Rattrap,
                "slot.recycle",
                attrs![
                    ("slot", AttrValue::U64(req as u64)),
                    ("generation", AttrValue::U64(self.slot_gen[req])),
                ],
            );
        }
    }

    fn on_boot_done(&mut self, now: SimTime, instance: InstanceId) {
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Rattrap,
                "boot.done",
                attrs![("instance", AttrValue::U64(instance.0 as u64))],
            );
        }
        self.db.mark_ready(instance);
        if let Some(waiters) = self.boot_waiters.remove(&instance) {
            for req in waiters {
                self.try_start_service(now, instance, req);
            }
        }
    }

    // ---- fault plane -----------------------------------------------------

    /// The server slowdown factor at `t`, if any window covers it.
    fn straggler_factor_at(&self, t: SimTime) -> Option<f64> {
        let factor = self
            .straggler_windows
            .iter()
            .filter(|w| w.start <= t && t < w.end)
            .map(|w| w.factor)
            .fold(1.0_f64, f64::max);
        (factor > 1.0).then_some(factor)
    }

    /// An instance-crash event fires: pick the victim by the plan's
    /// selector over the live instances (deterministic: sorted ids) and
    /// kill it. A crash with no live instance fizzles.
    fn on_instance_fault(&mut self, now: SimTime, idx: usize, sink: &mut dyn RequestSink) {
        let selector = self.crash_events[idx].1;
        let mut ids: Vec<InstanceId> = self.db.iter().map(|r| r.id).collect();
        if ids.is_empty() {
            return;
        }
        ids.sort();
        let victim = ids[(selector % ids.len() as u64) as usize];
        self.crash_instance(now, victim, sink);
    }

    /// Kill `victim` now: every request waiting on its boot, queued for
    /// it, or being served by it loses the attempt. Requests still
    /// *uploading* toward it are spared — their upload lands and the
    /// existing instance-gone path re-provisions transparently, exactly
    /// as for an idle-reclaimed instance.
    fn crash_instance(&mut self, now: SimTime, victim: InstanceId, sink: &mut dyn RequestSink) {
        if self.host.teardown(victim).is_err() {
            return;
        }
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Simkit,
                "fault.instance_crash",
                attrs![("instance", AttrValue::U64(victim.0 as u64))],
            );
        }
        let mut hit: Vec<usize> = Vec::new();
        if let Some(waiters) = self.boot_waiters.remove(&victim) {
            hit.extend(waiters);
        }
        if let Some(queue) = self.instance_queue.get_mut(&victim) {
            hit.extend(queue.drain(..));
        }
        for i in 0..self.pending.len() {
            let lc = &self.pending[i];
            if lc.instance == Some(victim)
                && matches!(
                    lc.phase(),
                    Phase::CodeLoad | Phase::Compute | Phase::OffloadIo
                )
                && !hit.contains(&i)
            {
                hit.push(i);
            }
        }
        hit.sort_unstable();
        self.db.remove(victim);
        self.instance_busy.remove(&victim);
        self.instance_queue.remove(&victim);
        self.warehouse.invalidate_container(victim);
        self.monitor.forget(victim);
        for req in hit {
            let task = &self.pending[req].task;
            let resume = ResumeStage::Upload {
                bytes: task.payload_bytes + task.control_bytes,
            };
            self.fault_request(now, req, resume, sink);
        }
    }

    /// A link fault interrupted the in-flight transfer of `req`; the
    /// resume stage (with the partial-progress remainder) was stored
    /// when the interruption was priced.
    fn on_transfer_fault(&mut self, now: SimTime, req: usize, sink: &mut dyn RequestSink) {
        let resume = self.pending[req].resume.take().unwrap_or_else(|| {
            let task = &self.pending[req].task;
            ResumeStage::Upload {
                bytes: task.payload_bytes + task.control_bytes,
            }
        });
        self.fault_request(now, req, resume, sink);
    }

    /// `req` dwelt past the policy timeout in its current phase. The
    /// timeout knows nothing about partial progress, so the retry
    /// restarts the pipeline stage from scratch.
    fn on_phase_timeout(&mut self, now: SimTime, req: usize, sink: &mut dyn RequestSink) {
        let task = &self.pending[req].task;
        let resume = match self.pending[req].phase() {
            Phase::DataTransferDown => ResumeStage::Download {
                bytes: task.result_bytes,
            },
            _ => ResumeStage::Upload {
                bytes: task.payload_bytes + task.control_bytes,
            },
        };
        self.fault_request(now, req, resume, sink);
    }

    /// The attempt of `req` just died (crash, link fault, or timeout).
    /// Undo the attempt's up-front charges and resource holds, park the
    /// request in [`Phase::Retrying`], and spend the policy budget:
    /// backoff + retry while attempts remain, then graceful degradation
    /// to on-device execution, then abandonment.
    fn fault_request(
        &mut self,
        now: SimTime,
        req: usize,
        resume: ResumeStage,
        sink: &mut dyn RequestSink,
    ) {
        let phase = self.pending[req].phase();
        self.fault_stats.record_strike(phase);
        if self.rec.is_enabled() {
            self.rec
                .set_current_request(Some(self.pending[req].record.id));
            self.rec.instant(
                Subsystem::Simkit,
                "fault.strike",
                attrs![("phase", AttrValue::Str(phase.name()))],
            );
        }
        // Invalidate every event the dead attempt scheduled.
        self.slot_gen[req] += 1;
        let instance = self.pending[req].instance;
        match phase {
            Phase::DataTransferUp => {
                // Reverse the up-front transfer charges (zero when the
                // attempt was priced as interrupted) — the dwell lands
                // in fault_recovery instead via the transition below.
                let connect = self.pending[req].upfront_connect;
                let transfer = self.pending[req].upfront_transfer;
                let record = &mut self.pending[req].record;
                record.phases.network_connection -= connect;
                record.phases.data_transfer -= transfer;
                record.upload_time -= transfer;
                if let Some(id) = instance {
                    if let Some(rec) = self.db.get_mut(id) {
                        rec.active_jobs = rec.active_jobs.saturating_sub(1);
                    }
                }
            }
            Phase::RuntimePrep => {
                if let Some(id) = instance {
                    if let Some(waiters) = self.boot_waiters.get_mut(&id) {
                        waiters.retain(|&r| r != req);
                    }
                    if let Some(queue) = self.instance_queue.get_mut(&id) {
                        queue.retain(|&r| r != req);
                    }
                    if let Some(rec) = self.db.get_mut(id) {
                        rec.active_jobs = rec.active_jobs.saturating_sub(1);
                    }
                }
            }
            Phase::CodeLoad | Phase::Compute | Phase::OffloadIo => {
                if let Some(job) = self.pending[req].cpu_job.take() {
                    self.cpu.cancel(now, job);
                    self.cpu
                        .reschedule(now, &mut self.queue, |epoch| Event::CpuCheck { epoch });
                }
                if let Some(job) = self.pending[req].disk_job.take() {
                    self.disk.cancel(now, job);
                    self.disk
                        .reschedule(now, &mut self.queue, |epoch| Event::DiskCheck { epoch });
                }
                // Release the runtime like finish_io does — unless the
                // fault *is* the runtime crashing, in which case it is
                // already gone.
                if let Some(id) = instance {
                    if self.db.get(id).is_some() {
                        self.instance_busy.insert(id, false);
                        if let Some(rec) = self.db.get_mut(id) {
                            rec.active_jobs = rec.active_jobs.saturating_sub(1);
                            rec.last_active = now;
                        }
                        if let Some(next) = self.instance_queue.entry(id).or_default().pop_front() {
                            self.start_service(now, id, next);
                        }
                    }
                }
            }
            Phase::DataTransferDown => {
                let transfer = self.pending[req].upfront_transfer;
                let record = &mut self.pending[req].record;
                record.phases.data_transfer -= transfer;
                record.download_time -= transfer;
            }
            _ => {}
        }
        self.pending[req].upfront_connect = SimDuration::ZERO;
        self.pending[req].upfront_transfer = SimDuration::ZERO;
        self.pending[req].instance = None;

        self.transition(now, req, Phase::Retrying);
        self.pending[req].resume = Some(resume);
        self.pending[req].attempts += 1;
        let attempts = self.pending[req].attempts;
        let policy = self.cfg.resilience.clone();
        if attempts <= policy.max_retries {
            let device = self.pending[req].record.device;
            let seq = self.pending[req].record.seq_on_device;
            let mut rng = self
                .req_rng(device, seq)
                .fork(0xB0FF ^ ((attempts as u64) << 16));
            let backoff = policy.backoff_delay(attempts, &mut rng);
            // Retrying into a known outage is pointless — wait it out.
            let retry_at = link_available_at(&self.link_windows, now + backoff);
            let gen = self.slot_gen[req];
            self.queue.schedule(retry_at, Event::Retry { req, gen });
        } else if policy.fallback_local {
            self.fault_stats.fallbacks += 1;
            self.pending[req].record.fell_back_local = true;
            self.transition(now, req, Phase::FallbackLocal);
            // Graceful degradation: finish on the device's own CPU,
            // fair-shared with whatever else the device is running.
            let device = self.pending[req].record.device;
            let work = self.pending[req].record.local_execution.as_secs_f64();
            let rec = self.rec.clone();
            let phase_span = self.req_spans[req].phase;
            let exec = self.device_cpus.entry(device).or_insert_with(|| {
                let mut e = FairShareExecutor::new(1.0, 1.0);
                e.instrument(rec.clone(), "device_cpu");
                e
            });
            rec.set_ambient_parent(phase_span);
            exec.submit(now, work, req);
            rec.set_ambient_parent(SpanId::NONE);
            exec.reschedule(now, &mut self.queue, |epoch| Event::DeviceCpuCheck {
                device,
                epoch,
            });
        } else {
            self.fault_stats.abandoned += 1;
            self.pending[req].record.abandoned = true;
            self.complete_request(now, req, sink, Phase::Abandoned);
        }
    }

    /// Backoff elapsed: launch the next attempt from the stored resume
    /// stage. A download remainder re-prices only the missing bytes; an
    /// upload restart re-places the request (the old instance may be
    /// dead) and re-sends code if the new runtime needs it.
    fn on_retry(&mut self, now: SimTime, req: usize) {
        debug_assert_eq!(self.pending[req].phase(), Phase::Retrying);
        let resume = self.pending[req].resume.take().unwrap_or_else(|| {
            let task = &self.pending[req].task;
            ResumeStage::Upload {
                bytes: task.payload_bytes + task.control_bytes,
            }
        });
        self.fault_stats.retries += 1;
        self.pending[req].record.retries += 1;
        let device = self.pending[req].record.device;
        let seq = self.pending[req].record.seq_on_device;
        let attempt = self.pending[req].attempts as u64;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Rattrap,
                "retry",
                attrs![("attempt", AttrValue::U64(attempt))],
            );
        }
        match resume {
            ResumeStage::Download { bytes } => {
                self.transition(now, req, Phase::DataTransferDown);
                let mut rng = self.req_rng(device, seq).fork(0xD0F0 ^ (attempt << 8));
                let dl = self
                    .link
                    .transfer_time(bytes, Direction::Download, &mut rng);
                self.schedule_download(now, req, bytes, dl);
            }
            ResumeStage::Upload { bytes } => {
                let kind = self.pending[req].record.kind;
                let app_id = kind.app_id();
                let aid = aid_of(app_id);
                let profile = kind.profile();
                // Re-place: the original instance may be gone.
                let cid_hint: Vec<InstanceId> = self.warehouse.containers_with(&aid).to_vec();
                let placement = self.dispatcher.place(&self.db, device, &cid_hint);
                let instance = match placement {
                    Placement::Existing(id) => id,
                    Placement::Provision => match self.provision(now, device) {
                        Some(id) => id,
                        None => self
                            .dispatcher
                            .place(&self.db, device, &[])
                            .existing_or_first(&self.db)
                            .expect("some instance exists"),
                    },
                };
                if let Some(rec) = self.db.get_mut(instance) {
                    rec.active_jobs += 1;
                }
                let code_transferred = if self.cfg.platform.code_cache {
                    !self.warehouse.lookup(&aid)
                } else {
                    self.code_pushed.insert((instance, app_id))
                };
                let code_bytes_now = if code_transferred {
                    profile.app_code_bytes
                } else {
                    0
                };
                if self.cfg.platform.code_cache && code_transferred {
                    self.warehouse
                        .insert(aid.clone(), app_id, profile.app_code_bytes);
                }
                let resident = self
                    .host
                    .instance(instance)
                    .map(|i| i.apps_loaded.contains(app_id))
                    .unwrap_or(false);
                {
                    let lc = &mut self.pending[req];
                    lc.instance = Some(instance);
                    lc.code_to_load = if resident { 0 } else { profile.app_code_bytes };
                    lc.record.code_bytes_sent += code_bytes_now;
                    lc.record.code_transferred |= code_transferred;
                    lc.record.upload_bytes += code_bytes_now;
                }
                let mut rng = self.req_rng(device, seq).fork(0xFA00 ^ (attempt << 8));
                let connect = self.link.connect_time(&mut rng);
                let wire_bytes = bytes + code_bytes_now;
                let up = self
                    .link
                    .transfer_time(wire_bytes, Direction::Upload, &mut rng);
                self.transition(now, req, Phase::DataTransferUp);
                let start = now + connect;
                match transfer_outcome(&self.link_windows, start, up) {
                    TransferOutcome::Completes { at } => {
                        let actual = at.saturating_since(start);
                        let lc = &mut self.pending[req];
                        lc.record.phases.network_connection += connect;
                        lc.record.phases.data_transfer += actual;
                        lc.record.upload_time += actual;
                        lc.upfront_connect = connect;
                        lc.upfront_transfer = actual;
                        let gen = self.slot_gen[req];
                        self.queue.schedule(at, Event::UploadDone { req, gen });
                        self.trace_transfer(now, at, req, "upload", wire_bytes, false);
                    }
                    TransferOutcome::Interrupted { at, fraction_done } => {
                        let remaining =
                            (((1.0 - fraction_done) * wire_bytes as f64).ceil() as u64).max(1);
                        let lc = &mut self.pending[req];
                        lc.upfront_connect = SimDuration::ZERO;
                        lc.upfront_transfer = SimDuration::ZERO;
                        lc.resume = Some(ResumeStage::Upload { bytes: remaining });
                        let gen = self.slot_gen[req];
                        self.queue.schedule(at, Event::TransferFault { req, gen });
                        self.trace_transfer(now, at, req, "upload", wire_bytes, true);
                    }
                }
            }
        }
    }

    fn on_idle_scan(&mut self, now: SimTime) {
        // Feed the monitor and rebalance cpu.shares toward busy
        // instances (process-level resource control, §IV-A).
        let snapshot: Vec<(InstanceId, u32)> =
            self.db.iter().map(|r| (r.id, r.active_jobs)).collect();
        for (id, jobs) in snapshot {
            self.monitor.observe(id, jobs);
        }
        for (id, shares) in self.scheduler.rebalance_shares(&self.db, &self.monitor) {
            if let Ok(inst) = self.host.instance(InstanceId(id)) {
                let cg = inst.cgroup;
                let _ = self.host.kernel.cgroups.set_cpu_shares(cg, shares);
            }
        }
        // Scale actions: warm-pool refills and idle reclamation.
        for action in self.scheduler.plan(&self.db, now) {
            match action {
                ScaleAction::Provision(n) => {
                    if !self.cfg.platform.per_device_instances && !self.all_work_finished() {
                        for _ in 0..n {
                            self.provision(now, 0);
                        }
                    }
                }
                ScaleAction::Teardown(victims) => {
                    for id in victims {
                        // Don't reclaim instances with queued work, boot
                        // waiters, or placed-but-uploading requests.
                        let queued = self
                            .instance_queue
                            .get(&id)
                            .map(|q| !q.is_empty())
                            .unwrap_or(false);
                        let waited = self
                            .boot_waiters
                            .get(&id)
                            .map(|w| !w.is_empty())
                            .unwrap_or(false);
                        let placed = self.db.get(id).map(|r| r.active_jobs > 0).unwrap_or(false);
                        if queued || waited || placed {
                            continue;
                        }
                        if self.host.teardown(id).is_ok() {
                            self.db.remove(id);
                            self.instance_busy.remove(&id);
                            self.instance_queue.remove(&id);
                            self.warehouse.invalidate_container(id);
                            self.monitor.forget(id);
                        }
                    }
                }
            }
        }
        if !self.all_work_finished() {
            self.queue
                .schedule_in(SimDuration::from_secs(10), Event::IdleScan);
        }
    }
}

impl Placement {
    fn existing_or_first(self, db: &ContainerDb) -> Option<InstanceId> {
        match self {
            Placement::Existing(id) => Some(id),
            Placement::Provision => db.iter().next().map(|r| r.id),
        }
    }
}

/// Convenience: run one scenario.
pub fn run_scenario(cfg: ScenarioConfig) -> SimulationReport {
    Simulation::new(cfg).run()
}

/// Convenience: run one scenario streaming records into `sink`.
pub fn run_scenario_with_sink(cfg: ScenarioConfig, sink: &mut dyn RequestSink) -> ReportSummary {
    Simulation::new(cfg).run_with_sink(sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformKind;

    fn run(platform: PlatformKind, workload: WorkloadKind, seed: u64) -> SimulationReport {
        run_scenario(ScenarioConfig::paper_default(
            platform.config(),
            workload,
            seed,
        ))
    }

    #[test]
    fn vm_first_request_is_offloading_failure() {
        let rep = run(PlatformKind::VmBaseline, WorkloadKind::Ocr, 1);
        let firsts: Vec<_> = rep
            .requests
            .iter()
            .filter(|r| r.seq_on_device == 0)
            .collect();
        assert_eq!(firsts.len(), 5);
        for r in firsts {
            assert!(
                r.is_offloading_failure(),
                "cold VM start must fail: speedup {}",
                r.speedup()
            );
            assert!(r.phases.runtime_preparation > SimDuration::from_secs(20));
        }
        // Warm requests succeed.
        let warm: Vec<_> = rep
            .requests
            .iter()
            .filter(|r| r.seq_on_device >= 2)
            .collect();
        let warm_ok = warm.iter().filter(|r| !r.is_offloading_failure()).count();
        assert!(warm_ok as f64 / warm.len() as f64 > 0.9);
    }

    #[test]
    fn rattrap_first_request_survives() {
        let rep = run(PlatformKind::Rattrap, WorkloadKind::Ocr, 1);
        let failures = rep.failure_rate();
        assert!(failures < 0.05, "Rattrap failure rate {failures}");
    }

    #[test]
    fn all_requests_complete_on_every_platform() {
        for kind in PlatformKind::ALL {
            let rep = run(kind, WorkloadKind::ChessGame, 7);
            assert_eq!(rep.requests.len(), 100, "{}", kind.label());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(PlatformKind::Rattrap, WorkloadKind::VirusScan, 42);
        let b = run(PlatformKind::Rattrap, WorkloadKind::VirusScan, 42);
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x, y);
        }
        assert_eq!(a.total_upload_bytes(), b.total_upload_bytes());
    }

    #[test]
    fn streaming_sink_sees_identical_records() {
        let cfg =
            ScenarioConfig::paper_default(PlatformKind::Rattrap.config(), WorkloadKind::Ocr, 42);
        let collected = run_scenario(cfg.clone());
        let mut sink = CollectingSink::default();
        let summary = run_scenario_with_sink(cfg, &mut sink);
        let mut streamed = sink.records;
        streamed.sort_by_key(|r| (r.completed_at, r.id));
        assert_eq!(collected.requests, streamed);
        assert_eq!(
            summary.completed_requests as usize,
            collected.requests.len()
        );
        assert_eq!(summary.finished_at, collected.finished_at);
        assert_eq!(summary.cpu_timeline, collected.cpu_timeline);
    }

    #[test]
    fn phase_observers_see_full_lifecycles() {
        use crate::lifecycle::PhaseLog;
        let cfg =
            ScenarioConfig::paper_default(PlatformKind::Rattrap.config(), WorkloadKind::Ocr, 5);
        let mut sim = Simulation::new(cfg);
        sim.add_observer(Box::new(PhaseLog::default()));
        // PhaseLog is consumed by the simulation; hook a counting probe
        // through a shared cell instead to assert on the stream.
        use std::cell::RefCell;
        use std::rc::Rc;
        #[derive(Default)]
        struct Probe {
            dones: Rc<RefCell<u32>>,
            edges: Rc<RefCell<u32>>,
        }
        impl PhaseObserver for Probe {
            fn on_transition(
                &mut self,
                _record: &RequestRecord,
                _from: Phase,
                to: Phase,
                _dwell: SimDuration,
                _now: SimTime,
            ) {
                *self.edges.borrow_mut() += 1;
                if to == Phase::Done {
                    *self.dones.borrow_mut() += 1;
                }
            }
        }
        let dones = Rc::new(RefCell::new(0));
        let edges = Rc::new(RefCell::new(0));
        sim.add_observer(Box::new(Probe {
            dones: dones.clone(),
            edges: edges.clone(),
        }));
        let rep = sim.run();
        assert_eq!(*dones.borrow() as usize, rep.requests.len());
        // Every offloaded request takes 7 edges (Dispatch→…→Done).
        assert_eq!(*edges.borrow() as usize, rep.requests.len() * 7);
    }

    #[test]
    fn code_cache_slashes_upload_volume() {
        let rattrap = run(PlatformKind::Rattrap, WorkloadKind::ChessGame, 3);
        let vm = run(PlatformKind::VmBaseline, WorkloadKind::ChessGame, 3);
        let code_rattrap: u64 = rattrap.requests.iter().map(|r| r.code_bytes_sent).sum();
        let code_vm: u64 = vm.requests.iter().map(|r| r.code_bytes_sent).sum();
        // Rattrap transfers the chess engine once; the VM platform once
        // per VM (5 devices).
        let app = WorkloadKind::ChessGame.profile().app_code_bytes;
        assert_eq!(code_rattrap, app);
        assert_eq!(code_vm, 5 * app);
        assert!(rattrap.total_upload_bytes() < vm.total_upload_bytes());
        assert_eq!(rattrap.warehouse_stats.misses, 1);
        assert_eq!(rattrap.warehouse_stats.hits, 99);
    }

    #[test]
    fn runtime_preparation_speedup_matches_paper_band() {
        let mut prep = BTreeMap::new();
        for kind in PlatformKind::ALL {
            let rep = run(kind, WorkloadKind::Ocr, 11);
            prep.insert(
                kind,
                rep.mean_of(|r| r.phases.runtime_preparation.as_secs_f64()),
            );
        }
        let vm = prep[&PlatformKind::VmBaseline];
        let wo = prep[&PlatformKind::RattrapWithout];
        let rt = prep[&PlatformKind::Rattrap];
        let s_wo = vm / wo;
        let s_rt = vm / rt;
        // §VI-C: 4.14–4.71× (W/O) and 16.29–16.98× (Rattrap); we allow
        // generous slack for queueing noise.
        assert!(s_wo > 3.0 && s_wo < 6.5, "W/O prep speedup {s_wo}");
        assert!(s_rt > 10.0 && s_rt < 25.0, "Rattrap prep speedup {s_rt}");
    }

    #[test]
    fn compute_speedup_ordering_holds() {
        // VirusScan gains the most from the shared I/O layer (§VI-C).
        let vm = run(PlatformKind::VmBaseline, WorkloadKind::VirusScan, 5);
        let wo = run(PlatformKind::RattrapWithout, WorkloadKind::VirusScan, 5);
        let rt = run(PlatformKind::Rattrap, WorkloadKind::VirusScan, 5);
        let exec =
            |r: &SimulationReport| r.mean_of(|q| q.phases.computation_execution.as_secs_f64());
        let (e_vm, e_wo, e_rt) = (exec(&vm), exec(&wo), exec(&rt));
        assert!(e_vm > e_wo, "container beats VM: {e_vm} vs {e_wo}");
        assert!(
            e_wo > e_rt,
            "shared I/O beats plain container: {e_wo} vs {e_rt}"
        );
        let speedup = e_vm / e_rt;
        assert!(
            speedup > 1.15 && speedup < 1.9,
            "VirusScan exec speedup {speedup}"
        );
    }

    #[test]
    fn cpu_timeline_shows_boot_then_bursts() {
        let rep = run(PlatformKind::VmBaseline, WorkloadKind::Linpack, 9);
        // Early bins (while VMs boot) show elevated load.
        let early: f64 = rep.cpu_timeline[..25].iter().sum::<f64>() / 25.0;
        assert!(early > 0.2, "boot-phase load {early}");
        assert!(rep.cpu_timeline.iter().all(|&l| (0.0..=1.0).contains(&l)));
        // Boot streams the image: reads appear early.
        let early_reads: f64 = rep.io_read_mb_s[..30].iter().sum();
        assert!(early_reads > 10.0, "boot reads {early_reads} MB");
    }

    #[test]
    fn per_device_vms_versus_shared_pool() {
        let vm = run(PlatformKind::VmBaseline, WorkloadKind::Linpack, 13);
        assert_eq!(vm.instances_provisioned, 5, "one VM per device");
        let rt = run(PlatformKind::Rattrap, WorkloadKind::Linpack, 13);
        assert!(rt.instances_provisioned <= 8, "pool bounded");
        assert!(rt.instances_provisioned >= 1);
    }

    #[test]
    fn access_controller_sees_traffic_only_when_enabled() {
        let rt = run(PlatformKind::Rattrap, WorkloadKind::Ocr, 15);
        assert!(rt.access_checks >= 300, "3 checks per request");
        let vm = run(PlatformKind::VmBaseline, WorkloadKind::Ocr, 15);
        assert_eq!(vm.access_checks, 0);
    }

    #[test]
    fn adaptive_offloading_keeps_losing_tasks_local() {
        // On the paper's 3G link, VirusScan's ~900 KB uploads lose to
        // local execution; the adaptive client must keep them on the
        // device and thereby beat the always-offload configuration.
        let mut base = ScenarioConfig::paper_default(
            PlatformKind::Rattrap.config(),
            WorkloadKind::VirusScan,
            31,
        );
        base.scenario = netsim::NetworkScenario::ThreeG;
        let always = run_scenario(base.clone());
        let mut adaptive_cfg = base;
        adaptive_cfg.adaptive_offloading = true;
        let adaptive = run_scenario(adaptive_cfg);
        assert_eq!(adaptive.requests.len(), 100, "local tasks still complete");
        let local_count = adaptive
            .requests
            .iter()
            .filter(|r| r.executed_locally)
            .count();
        assert!(
            local_count > 80,
            "most 3G VirusScan tasks stay local: {local_count}"
        );
        let mean = |rep: &SimulationReport| rep.mean_of(|r| r.response_time().as_secs_f64());
        assert!(
            mean(&adaptive) < mean(&always),
            "adaptive {} vs always-offload {}",
            mean(&adaptive),
            mean(&always)
        );
        // On LAN the adaptive client offloads everything — no regression.
        let mut lan = ScenarioConfig::paper_default(
            PlatformKind::Rattrap.config(),
            WorkloadKind::VirusScan,
            31,
        );
        lan.adaptive_offloading = true;
        let lan_rep = run_scenario(lan);
        assert_eq!(
            lan_rep
                .requests
                .iter()
                .filter(|r| r.executed_locally)
                .count(),
            0
        );
    }

    #[test]
    fn sampler_tails_survive_horizon_slack() {
        // Regression for trailing partial-second drops: enlarging the
        // sampling horizon must not change any shared bin — every byte
        // and every level interval inside the run is recorded by the
        // event that produces it — and bins after the last event stay
        // empty rather than absorbing phantom traffic.
        let tight = run(PlatformKind::VmBaseline, WorkloadKind::Ocr, 33);
        let mut cfg =
            ScenarioConfig::paper_default(PlatformKind::VmBaseline.config(), WorkloadKind::Ocr, 33);
        cfg.sample_horizon = SimDuration::from_secs(400);
        let wide = run_scenario(cfg);
        assert_eq!(tight.finished_at, wide.finished_at);
        let shared = tight.cpu_timeline.len().min(wide.cpu_timeline.len());
        assert_eq!(tight.cpu_timeline[..shared], wide.cpu_timeline[..shared]);
        assert_eq!(tight.io_read_mb_s[..shared], wide.io_read_mb_s[..shared]);
        assert_eq!(tight.io_write_mb_s[..shared], wide.io_write_mb_s[..shared]);
        // The run ends well before 400 s; later bins carry nothing.
        let last_event_bin = wide.finished_at.as_secs_f64().ceil() as usize + 11;
        assert!(wide.io_write_mb_s[last_event_bin..]
            .iter()
            .all(|&b| b == 0.0));
        assert!(wide.cpu_timeline[last_event_bin..]
            .iter()
            .all(|&b| b == 0.0));
        // Every payload upload landed in the write channel: totals
        // dominate the sum of request payloads (payload + offload I/O).
        let written: f64 = wide.io_write_mb_s.iter().sum::<f64>() * 1e6;
        let uploaded: f64 = wide
            .requests
            .iter()
            .map(|r| (r.upload_bytes - r.code_bytes_sent) as f64)
            .sum();
        assert!(
            written > 0.9 * uploaded,
            "written {written} vs uploaded {uploaded}"
        );
    }

    #[test]
    fn disk_footprint_rattrap_far_below_vm() {
        let rt = run(PlatformKind::Rattrap, WorkloadKind::Ocr, 21);
        let vm = run(PlatformKind::VmBaseline, WorkloadKind::Ocr, 21);
        // "at least 79% disk savings": 5 VMs ≈ 5.5 GiB vs shared layer +
        // a few MiB per container.
        assert!(
            (rt.peak_disk_bytes as f64) < 0.21 * vm.peak_disk_bytes as f64,
            "rattrap {} vs vm {}",
            rt.peak_disk_bytes,
            vm.peak_disk_bytes
        );
    }
}
