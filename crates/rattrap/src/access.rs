//! Request-based Access Controller (§IV-E).
//!
//! Containers are a lighter isolation mechanism than VMs, and Rattrap's
//! shared architecture (Shared Resource Layer, App Warehouse) widens
//! the blast radius of a malicious app. The controller compensates: it
//! analyzes each app's first request into a per-app permission table
//! (analysis happens once per app; requests from the same app share the
//! table), filters every workflow leaving a Cloud Android Container,
//! records violations, and blocks the app once violations reach a
//! threshold.

use std::collections::{BTreeMap, BTreeSet};

/// An action an offloaded workflow attempts, as seen by the filter.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Write `bytes` to the offloading filesystem.
    FsWrite {
        /// Bytes written.
        bytes: u64,
    },
    /// Call a binder service by name.
    BinderCall {
        /// Target service.
        service: String,
    },
    /// Open an outbound network connection.
    NetConnect {
        /// Destination description.
        dest: String,
    },
    /// Fork a new process inside the container.
    SpawnProcess,
    /// Read another app's cached code from the warehouse.
    WarehouseRead {
        /// AID being read.
        aid: String,
    },
}

/// Per-app permissions, generated from the app's offloading profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PermissionTable {
    /// May write migrated files (and up to how many bytes per request).
    pub fs_write_limit: u64,
    /// Binder services the app may call.
    pub allowed_services: BTreeSet<String>,
    /// May open outbound connections (back to the client only).
    pub allow_network: bool,
    /// May fork helper processes.
    pub allow_spawn: bool,
}

impl PermissionTable {
    /// The default analysis result for an offloading workload: it may
    /// use the offloading services and write files up to a generous
    /// multiple of its declared payload, but not roam the platform.
    pub fn for_profile(expected_payload: u64) -> Self {
        let mut allowed = BTreeSet::new();
        for s in ["activity", "package", "offloadcontroller"] {
            allowed.insert(s.to_string());
        }
        PermissionTable {
            fs_write_limit: expected_payload.saturating_mul(4).max(64 * 1024),
            allowed_services: allowed,
            allow_network: true,
            allow_spawn: true,
        }
    }
}

/// Why a request was denied.
#[derive(Debug, Clone, PartialEq)]
pub enum Denial {
    /// Action violated the permission table (counted toward blocking).
    Violation {
        /// Human-readable description.
        what: String,
    },
    /// App is blocked outright.
    Blocked,
}

/// The controller.
#[derive(Debug)]
pub struct AccessController {
    tables: BTreeMap<String, PermissionTable>,
    violations: BTreeMap<String, u32>,
    blocked: BTreeSet<String>,
    threshold: u32,
    checks: u64,
}

impl AccessController {
    /// A controller blocking apps after `threshold` violations.
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        AccessController {
            tables: BTreeMap::new(),
            violations: BTreeMap::new(),
            blocked: BTreeSet::new(),
            threshold,
            checks: 0,
        }
    }

    /// Analyze an app on its first request ("the analysis happens only
    /// once for each mobile app"). Returns whether analysis ran.
    pub fn admit(&mut self, app_id: &str, expected_payload: u64) -> bool {
        if self.tables.contains_key(app_id) {
            return false;
        }
        self.tables.insert(
            app_id.to_string(),
            PermissionTable::for_profile(expected_payload),
        );
        true
    }

    /// Filter one action of `app_id`'s workflow.
    pub fn check(&mut self, app_id: &str, action: &Action) -> Result<(), Denial> {
        self.checks += 1;
        if self.blocked.contains(app_id) {
            return Err(Denial::Blocked);
        }
        let table = match self.tables.get(app_id) {
            Some(t) => t,
            None => {
                // Unanalyzed app: treat as a violation of protocol.
                return self.record_violation(app_id, "request before analysis".into());
            }
        };
        let ok = match action {
            Action::FsWrite { bytes } => *bytes <= table.fs_write_limit,
            Action::BinderCall { service } => table.allowed_services.contains(service),
            Action::NetConnect { .. } => table.allow_network,
            Action::SpawnProcess => table.allow_spawn,
            // Reading someone else's cached code is never allowed.
            Action::WarehouseRead { .. } => false,
        };
        if ok {
            Ok(())
        } else {
            self.record_violation(app_id, format!("{action:?}"))
        }
    }

    fn record_violation(&mut self, app_id: &str, what: String) -> Result<(), Denial> {
        let v = self.violations.entry(app_id.to_string()).or_insert(0);
        *v += 1;
        if *v >= self.threshold {
            self.blocked.insert(app_id.to_string());
        }
        Err(Denial::Violation { what })
    }

    /// Is the app blocked?
    pub fn is_blocked(&self, app_id: &str) -> bool {
        self.blocked.contains(app_id)
    }

    /// Violations recorded for an app.
    pub fn violation_count(&self, app_id: &str) -> u32 {
        self.violations.get(app_id).copied().unwrap_or(0)
    }

    /// Total filter checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of analyzed apps.
    pub fn analyzed_apps(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AccessController {
        AccessController::new(3)
    }

    #[test]
    fn analysis_happens_once_per_app() {
        let mut c = controller();
        assert!(c.admit("com.bench.ocr", 280 * 1024));
        assert!(
            !c.admit("com.bench.ocr", 280 * 1024),
            "second admit is a no-op"
        );
        assert_eq!(c.analyzed_apps(), 1);
    }

    #[test]
    fn normal_offloading_workflow_passes() {
        let mut c = controller();
        c.admit("app", 100 * 1024);
        assert!(c
            .check("app", &Action::FsWrite { bytes: 50 * 1024 })
            .is_ok());
        assert!(c
            .check(
                "app",
                &Action::BinderCall {
                    service: "activity".into()
                }
            )
            .is_ok());
        assert!(c
            .check(
                "app",
                &Action::NetConnect {
                    dest: "client".into()
                }
            )
            .is_ok());
        assert!(c.check("app", &Action::SpawnProcess).is_ok());
        assert_eq!(c.violation_count("app"), 0);
    }

    #[test]
    fn violations_accumulate_to_a_block() {
        let mut c = controller();
        c.admit("mal", 1024);
        for i in 0..3 {
            assert!(!c.is_blocked("mal"), "not blocked before threshold (i={i})");
            let r = c.check(
                "mal",
                &Action::BinderCall {
                    service: "telephony".into(),
                },
            );
            assert!(matches!(r, Err(Denial::Violation { .. })));
        }
        assert!(c.is_blocked("mal"));
        // Once blocked, even legitimate actions are denied.
        let r = c.check("mal", &Action::FsWrite { bytes: 10 });
        assert_eq!(r, Err(Denial::Blocked));
    }

    #[test]
    fn oversized_write_is_a_violation() {
        let mut c = controller();
        c.admit("app", 1024);
        let r = c.check(
            "app",
            &Action::FsWrite {
                bytes: 100 * 1024 * 1024,
            },
        );
        assert!(matches!(r, Err(Denial::Violation { .. })));
        assert_eq!(c.violation_count("app"), 1);
    }

    #[test]
    fn warehouse_cross_reads_always_denied() {
        let mut c = controller();
        c.admit("spy", 1024);
        let r = c.check(
            "spy",
            &Action::WarehouseRead {
                aid: "8d6d1b5".into(),
            },
        );
        assert!(matches!(r, Err(Denial::Violation { .. })));
    }

    #[test]
    fn unanalyzed_app_is_violation() {
        let mut c = controller();
        let r = c.check("ghost", &Action::SpawnProcess);
        assert!(matches!(r, Err(Denial::Violation { .. })));
    }

    #[test]
    fn violations_do_not_leak_across_apps() {
        let mut c = controller();
        c.admit("good", 1024);
        c.admit("bad", 1024);
        for _ in 0..3 {
            let _ = c.check("bad", &Action::WarehouseRead { aid: "x".into() });
        }
        assert!(c.is_blocked("bad"));
        assert!(!c.is_blocked("good"));
        assert!(c.check("good", &Action::SpawnProcess).is_ok());
    }
}
