//! Per-request lifecycle state machine.
//!
//! Every offloading request moves through an explicit sequence of
//! phases mirroring the paper's §III-B decomposition of an offloading
//! request: dispatch, data upload, runtime preparation (boot wait +
//! queueing), mobile-code loading, computation on the shared CPU,
//! offloading I/O, and result download. [`RequestLifecycle`] owns one
//! request's [`RequestRecord`] plus its in-flight engine state and
//! performs every phase transition through [`RequestLifecycle::advance`],
//! which charges the time spent in the departed phase to the correct
//! §III-B bucket. The charging rules live here — in one match — instead
//! of being scattered across event handlers:
//!
//! | phase left                  | charged to               |
//! |-----------------------------|--------------------------|
//! | `RuntimePrep`, `CodeLoad`   | runtime preparation      |
//! | `Compute`, `OffloadIo`      | computation execution    |
//! | transfers, dispatch, local  | — (charged up front from the link model) |
//!
//! [`PhaseObserver`]s hook every transition — the simulation invokes
//! them with the request's record, the edge taken, and the dwell time,
//! enabling Fig. 2-style per-phase timelines or custom instrumentation
//! without touching the engine.

use crate::request::RequestRecord;
use simkit::{JobId, SimDuration, SimTime};
use virt::InstanceId;
use workloads::TaskRequest;

/// The phases of an offloading request's lifetime, in nominal order.
///
/// `DataTransferUp`, `DataTransferDown` and `LocalExecution` charge
/// their duration up front (the link/device model prices them at entry);
/// the four server-side phases charge on exit via [`RequestLifecycle::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Admission + placement decision (instantaneous in the engine).
    Dispatch,
    /// Connection + payload/code upload in flight.
    DataTransferUp,
    /// Waiting for the runtime: boot wait plus queueing for the
    /// instance. Charged to *runtime preparation*.
    RuntimePrep,
    /// Loading mobile code into the runtime. Charged to *runtime
    /// preparation*.
    CodeLoad,
    /// Executing on the fair-shared server CPU. Charged to
    /// *computation execution*.
    Compute,
    /// Offloading I/O (disk or shared in-memory layer). Charged to
    /// *computation execution* (§VI-C discusses it under computation).
    OffloadIo,
    /// Result download in flight.
    DataTransferDown,
    /// Executing locally on the device (adaptive offloading declined
    /// the cloud).
    LocalExecution,
    /// A fault killed the current attempt; the request is waiting out
    /// its backoff before retrying. The failed attempt's wall-clock
    /// and the backoff dwell are charged to *fault recovery*.
    Retrying,
    /// The retry budget is exhausted; the resilience policy degraded
    /// gracefully and the task is finishing on the device's own CPU.
    FallbackLocal,
    /// Response delivered.
    Done,
    /// Aborted without a response. No engine path produces this today
    /// (teardown races re-provision instead); observers and external
    /// drivers may still use it as a terminal marker.
    Failed,
    /// The retry budget is exhausted and the policy allows no local
    /// fallback: the request terminates without a response.
    Abandoned,
}

/// Which §III-B bucket a phase's dwell time belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    RuntimePreparation,
    ComputationExecution,
    FaultRecovery,
    /// Already priced at phase entry (link/device model) or free.
    None,
}

impl Phase {
    /// Terminal phases accept no further transitions.
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Failed | Phase::Abandoned)
    }

    /// Stable lowercase name, used as the span name in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::DataTransferUp => "upload",
            Phase::RuntimePrep => "runtime_prep",
            Phase::CodeLoad => "code_load",
            Phase::Compute => "compute",
            Phase::OffloadIo => "offload_io",
            Phase::DataTransferDown => "download",
            Phase::LocalExecution => "local_execution",
            Phase::Retrying => "retrying",
            Phase::FallbackLocal => "fallback_local",
            Phase::Done => "done",
            Phase::Failed => "failed",
            Phase::Abandoned => "abandoned",
        }
    }

    fn bucket(self) -> Bucket {
        match self {
            Phase::RuntimePrep | Phase::CodeLoad => Bucket::RuntimePreparation,
            Phase::Compute | Phase::OffloadIo => Bucket::ComputationExecution,
            Phase::Retrying => Bucket::FaultRecovery,
            Phase::Dispatch
            | Phase::DataTransferUp
            | Phase::DataTransferDown
            | Phase::LocalExecution
            | Phase::FallbackLocal
            | Phase::Done
            | Phase::Failed
            | Phase::Abandoned => Bucket::None,
        }
    }
}

/// Hook invoked on every phase transition of every request.
///
/// Observers receive the record *after* the dwell time was charged, so
/// `record.phases` is consistent with the edge being reported.
pub trait PhaseObserver {
    /// `record` moved `from → to` at `now`, having spent `dwell` in
    /// `from`.
    fn on_transition(
        &mut self,
        record: &RequestRecord,
        from: Phase,
        to: Phase,
        dwell: SimDuration,
        now: SimTime,
    );
}

/// One recorded lifecycle edge (see [`PhaseLog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTransition {
    /// Request id.
    pub request: u64,
    /// Phase departed.
    pub from: Phase,
    /// Phase entered.
    pub to: Phase,
    /// Time spent in `from`.
    pub dwell: SimDuration,
    /// Transition instant.
    pub at: SimTime,
}

/// A ready-made observer collecting every transition — the raw
/// material for Fig. 2-style phase timelines.
#[derive(Debug, Default)]
pub struct PhaseLog {
    /// Transitions in occurrence order.
    pub transitions: Vec<PhaseTransition>,
}

impl PhaseObserver for PhaseLog {
    fn on_transition(
        &mut self,
        record: &RequestRecord,
        from: Phase,
        to: Phase,
        dwell: SimDuration,
        now: SimTime,
    ) {
        self.transitions.push(PhaseTransition {
            request: record.id,
            from,
            to,
            dwell,
            at: now,
        });
    }
}

/// Where a retry resumes after a fault killed the previous attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeStage {
    /// Restart the offload from placement + upload, still owing
    /// `bytes` on the wire (the un-transferred remainder, or the full
    /// payload when nothing made it across).
    Upload {
        /// Bytes the retry must move up.
        bytes: u64,
    },
    /// The server side already finished; only the result download of
    /// `bytes` remains.
    Download {
        /// Bytes the retry must move down.
        bytes: u64,
    },
}

/// One request's full in-flight state: its accumulating record, the
/// sampled task, where it is placed, which executor jobs it holds, and
/// the phase machine driving the §III-B accounting.
#[derive(Debug)]
pub struct RequestLifecycle {
    /// The record being accumulated (returned to the sink at `Done`).
    pub record: RequestRecord,
    /// The sampled task parameters.
    pub task: TaskRequest,
    /// Placement, if any (local execution has none).
    pub instance: Option<InstanceId>,
    /// Outstanding job on the server CPU executor.
    pub cpu_job: Option<JobId>,
    /// Outstanding job on the offloading-disk executor.
    pub disk_job: Option<JobId>,
    /// Code bytes still to be loaded into the runtime (0 = resident).
    pub code_to_load: u64,
    /// Fault-retry attempts consumed so far.
    pub attempts: u32,
    /// Where the next retry resumes (set while in [`Phase::Retrying`]).
    pub resume: Option<ResumeStage>,
    /// Connect time charged up front for the in-flight transfer;
    /// reversed if a timeout kills the attempt before it lands.
    pub upfront_connect: SimDuration,
    /// Transfer duration charged up front for the in-flight transfer;
    /// reversed if a timeout kills the attempt before it lands.
    pub upfront_transfer: SimDuration,
    phase: Phase,
    phase_started: SimTime,
}

impl RequestLifecycle {
    /// A lifecycle beginning in [`Phase::Dispatch`] at `now`.
    pub fn new(record: RequestRecord, task: TaskRequest, now: SimTime) -> Self {
        RequestLifecycle {
            record,
            task,
            instance: None,
            cpu_job: None,
            disk_job: None,
            code_to_load: 0,
            attempts: 0,
            resume: None,
            upfront_connect: SimDuration::ZERO,
            upfront_transfer: SimDuration::ZERO,
            phase: Phase::Dispatch,
            phase_started: now,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// When the current phase was entered.
    pub fn phase_started(&self) -> SimTime {
        self.phase_started
    }

    /// Move to `next` at `now`, charging the dwell time in the current
    /// phase to its §III-B bucket. Entering [`Phase::Retrying`]
    /// redirects the departed phase's dwell to *fault recovery* — the
    /// attempt produced nothing, so its wall-clock is fault loss, not
    /// useful phase time (transfer phases additionally reverse their
    /// up-front charges at the call site). Entering [`Phase::Done`] or
    /// [`Phase::Abandoned`] stamps `record.completed_at`. Returns
    /// `(departed phase, dwell)` for observer dispatch.
    ///
    /// # Panics
    /// Panics (debug builds) when advancing out of a terminal phase —
    /// that is always an engine bug.
    pub fn advance(&mut self, now: SimTime, next: Phase) -> (Phase, SimDuration) {
        debug_assert!(
            !self.phase.is_terminal(),
            "advance out of terminal {:?}",
            self.phase
        );
        let dwell = now.saturating_since(self.phase_started);
        let bucket = if next == Phase::Retrying {
            Bucket::FaultRecovery
        } else {
            self.phase.bucket()
        };
        match bucket {
            Bucket::RuntimePreparation => self.record.phases.runtime_preparation += dwell,
            Bucket::ComputationExecution => self.record.phases.computation_execution += dwell,
            Bucket::FaultRecovery => self.record.phases.fault_recovery += dwell,
            Bucket::None => {}
        }
        let from = std::mem::replace(&mut self.phase, next);
        self.phase_started = now;
        if next == Phase::Done || next == Phase::Abandoned {
            self.record.completed_at = now;
        }
        (from, dwell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PhaseBreakdown;
    use netsim::NetworkScenario;
    use workloads::WorkloadKind;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn lifecycle() -> RequestLifecycle {
        let record = RequestRecord {
            id: 1,
            device: 0,
            kind: WorkloadKind::Ocr,
            scenario: NetworkScenario::LanWifi,
            seq_on_device: 0,
            arrived_at: SimTime::ZERO,
            completed_at: SimTime::ZERO,
            phases: PhaseBreakdown::default(),
            upload_bytes: 0,
            code_bytes_sent: 0,
            download_bytes: 0,
            code_transferred: false,
            cid_affinity_hit: false,
            local_execution: SimDuration::ZERO,
            upload_time: SimDuration::ZERO,
            download_time: SimDuration::ZERO,
            executed_locally: false,
            retries: 0,
            fell_back_local: false,
            abandoned: false,
        };
        let task = WorkloadKind::Ocr
            .profile()
            .sample(&mut simkit::SimRng::new(1));
        RequestLifecycle::new(record, task, SimTime::ZERO)
    }

    #[test]
    fn charges_land_in_the_right_buckets() {
        let mut rl = lifecycle();
        rl.advance(SimTime::ZERO, Phase::DataTransferUp);
        rl.advance(t(2.0), Phase::RuntimePrep); // upload dwell: uncharged
        rl.advance(t(5.0), Phase::CodeLoad); // 3 s waiting
        rl.advance(t(6.0), Phase::Compute); // 1 s loading
        rl.advance(t(10.0), Phase::OffloadIo); // 4 s computing
        rl.advance(t(11.5), Phase::DataTransferDown); // 1.5 s I/O
        rl.advance(t(12.0), Phase::Done);
        assert_eq!(
            rl.record.phases.runtime_preparation,
            SimDuration::from_secs(4)
        );
        assert_eq!(
            rl.record.phases.computation_execution,
            SimDuration::from_millis(5500)
        );
        assert_eq!(rl.record.completed_at, t(12.0));
        assert!(rl.phase().is_terminal());
    }

    #[test]
    fn zero_dwell_transitions_charge_nothing() {
        let mut rl = lifecycle();
        rl.advance(SimTime::ZERO, Phase::DataTransferUp);
        rl.advance(t(1.0), Phase::RuntimePrep);
        rl.advance(t(1.0), Phase::CodeLoad); // immediate service
        rl.advance(t(1.0), Phase::Compute); // resident code
        assert_eq!(rl.record.phases.runtime_preparation, SimDuration::ZERO);
    }

    #[test]
    fn local_execution_charges_no_server_phase() {
        let mut rl = lifecycle();
        rl.advance(SimTime::ZERO, Phase::LocalExecution);
        rl.advance(t(3.0), Phase::Done);
        assert_eq!(rl.record.phases.total(), SimDuration::ZERO);
        assert_eq!(rl.record.completed_at, t(3.0));
    }

    #[test]
    fn fault_redirects_dwell_to_fault_recovery() {
        let mut rl = lifecycle();
        rl.advance(SimTime::ZERO, Phase::DataTransferUp);
        rl.advance(t(2.0), Phase::RuntimePrep);
        rl.advance(t(3.0), Phase::Compute); // 1 s prep, charged normally
                                            // A crash at t=7 kills the attempt: the 4 s of computation are
                                            // fault loss, not useful execution.
        rl.advance(t(7.0), Phase::Retrying);
        assert_eq!(rl.record.phases.computation_execution, SimDuration::ZERO);
        assert_eq!(rl.record.phases.fault_recovery, SimDuration::from_secs(4));
        assert_eq!(
            rl.record.phases.runtime_preparation,
            SimDuration::from_secs(1),
            "pre-fault phases keep their charges"
        );
        // 2 s of backoff dwell also lands in fault recovery.
        rl.advance(t(9.0), Phase::DataTransferUp);
        assert_eq!(rl.record.phases.fault_recovery, SimDuration::from_secs(6));
    }

    #[test]
    fn abandonment_is_terminal_and_stamps_completion() {
        let mut rl = lifecycle();
        rl.advance(SimTime::ZERO, Phase::DataTransferUp);
        rl.advance(t(1.0), Phase::Retrying);
        rl.advance(t(2.0), Phase::Abandoned);
        assert!(rl.phase().is_terminal());
        assert_eq!(rl.record.completed_at, t(2.0));
        assert_eq!(rl.record.phases.fault_recovery, SimDuration::from_secs(2));
    }

    #[test]
    fn observers_see_every_edge_with_dwell() {
        let mut rl = lifecycle();
        let mut log = PhaseLog::default();
        for (at, next) in [
            (0.0, Phase::DataTransferUp),
            (2.0, Phase::RuntimePrep),
            (5.0, Phase::CodeLoad),
            (5.5, Phase::Compute),
            (9.0, Phase::OffloadIo),
            (9.0, Phase::DataTransferDown),
            (9.5, Phase::Done),
        ] {
            let (from, dwell) = rl.advance(t(at), next);
            log.on_transition(&rl.record, from, next, dwell, t(at));
        }
        assert_eq!(log.transitions.len(), 7);
        assert_eq!(log.transitions[1].from, Phase::DataTransferUp);
        assert_eq!(log.transitions[1].dwell, SimDuration::from_secs(2));
        assert_eq!(log.transitions.last().unwrap().to, Phase::Done);
        assert!(log.transitions.iter().all(|tr| tr.request == 1));
    }
}
