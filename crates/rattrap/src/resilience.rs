//! Resilience policies: how the platform absorbs injected faults.
//!
//! A [`ResiliencePolicy`] decides, per request, (a) how long each
//! lifecycle phase may run before it is declared dead (per-phase
//! timeouts), (b) how many retry attempts a request gets and how long
//! to wait between them (bounded exponential backoff with
//! deterministic jitter drawn from the simulation RNG), and (c) what
//! happens when the budget runs out: degrade gracefully to on-device
//! execution — the request completes slowly instead of failing — or
//! abandon it.
//!
//! Everything here is pure arithmetic over the seeded RNG streams, so
//! the retry schedule of a request is a function of the scenario seed
//! alone: same seed, same faults, same backoff instants, same report.

use crate::lifecycle::Phase;
use simkit::{SimDuration, SimRng};

/// Per-phase timeouts, retry budget, backoff shape, and the
/// end-of-budget disposition for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Cap on one upload attempt ([`Phase::DataTransferUp`]).
    pub upload_timeout: Option<SimDuration>,
    /// Cap on runtime preparation ([`Phase::RuntimePrep`] +
    /// [`Phase::CodeLoad`], each attempt phase timed separately).
    pub prep_timeout: Option<SimDuration>,
    /// Cap on server execution ([`Phase::Compute`] +
    /// [`Phase::OffloadIo`], each phase timed separately).
    pub compute_timeout: Option<SimDuration>,
    /// Cap on one download attempt ([`Phase::DataTransferDown`]).
    pub download_timeout: Option<SimDuration>,
    /// Retry attempts granted after the first failure.
    pub max_retries: u32,
    /// First backoff delay; attempt `n` waits `base × 2^(n−1)`.
    pub base_backoff: SimDuration,
    /// Ceiling on any single backoff delay.
    pub max_backoff: SimDuration,
    /// Symmetric jitter fraction in `[0, 1]`: the delay is scaled by a
    /// factor uniform in `[1 − jitter, 1 + jitter]`.
    pub jitter_frac: f64,
    /// After the budget: `true` finishes the task on the device
    /// (graceful degradation), `false` abandons the request.
    pub fallback_local: bool,
}

impl ResiliencePolicy {
    /// Fail-fast: no timeouts, no retries, no fallback. The first
    /// fault that strikes a request abandons it. This is the
    /// [`Default`] — and on a fault-free run it is exactly a no-op, so
    /// the golden digests are functions of the scenario alone.
    pub fn none() -> Self {
        ResiliencePolicy {
            upload_timeout: None,
            prep_timeout: None,
            compute_timeout: None,
            download_timeout: None,
            max_retries: 0,
            base_backoff: SimDuration::from_millis(200),
            max_backoff: SimDuration::from_secs(5),
            jitter_frac: 0.25,
            fallback_local: false,
        }
    }

    /// Retries only: three attempts behind per-phase timeouts and
    /// bounded backoff, but no on-device fallback — a request that
    /// exhausts the budget is abandoned.
    pub fn retry_only() -> Self {
        ResiliencePolicy {
            upload_timeout: Some(SimDuration::from_secs(60)),
            prep_timeout: Some(SimDuration::from_secs(45)),
            compute_timeout: Some(SimDuration::from_secs(60)),
            download_timeout: Some(SimDuration::from_secs(60)),
            max_retries: 3,
            ..ResiliencePolicy::none()
        }
    }

    /// The full policy: retries as [`ResiliencePolicy::retry_only`],
    /// then graceful degradation to on-device execution — every
    /// request terminates with a response.
    pub fn standard() -> Self {
        ResiliencePolicy {
            fallback_local: true,
            ..ResiliencePolicy::retry_only()
        }
    }

    /// The timeout governing `phase`, if any.
    pub fn timeout_for(&self, phase: Phase) -> Option<SimDuration> {
        match phase {
            Phase::DataTransferUp => self.upload_timeout,
            Phase::RuntimePrep | Phase::CodeLoad => self.prep_timeout,
            Phase::Compute | Phase::OffloadIo => self.compute_timeout,
            Phase::DataTransferDown => self.download_timeout,
            _ => None,
        }
    }

    /// `true` when the policy can never intervene: no timeouts are the
    /// only *proactive* triggers, but reactive triggers (link faults,
    /// crashes) still invoke the retry/fallback machinery, so this is
    /// only `true` for a policy that also grants nothing on failure.
    pub fn is_inert(&self) -> bool {
        self.max_retries == 0
            && !self.fallback_local
            && self.upload_timeout.is_none()
            && self.prep_timeout.is_none()
            && self.compute_timeout.is_none()
            && self.download_timeout.is_none()
    }

    /// The backoff before retry attempt `attempt` (1-based): bounded
    /// exponential with deterministic jitter from `rng`. Always draws
    /// exactly one uniform variate, so the RNG stream consumption is
    /// independent of the policy parameters.
    pub fn backoff_delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let unit = rng.uniform01();
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self
            .base_backoff
            .mul_f64((1u64 << shift) as f64)
            .min(self.max_backoff);
        let jitter = self.jitter_frac.clamp(0.0, 1.0);
        let scale = 1.0 + jitter * (2.0 * unit - 1.0);
        exp.mul_f64(scale).max(SimDuration::from_millis(1))
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = ResiliencePolicy::standard();
        let schedule = |seed: u64| -> Vec<u64> {
            let mut rng = SimRng::new(seed);
            (1..=5)
                .map(|a| policy.backoff_delay(a, &mut rng).as_micros())
                .collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "different seed, different jitter");
    }

    #[test]
    fn backoff_doubles_until_the_cap() {
        let policy = ResiliencePolicy {
            jitter_frac: 0.0,
            ..ResiliencePolicy::standard()
        };
        let mut rng = SimRng::new(1);
        let d1 = policy.backoff_delay(1, &mut rng);
        let d2 = policy.backoff_delay(2, &mut rng);
        let d3 = policy.backoff_delay(3, &mut rng);
        let d9 = policy.backoff_delay(9, &mut rng);
        assert_eq!(d1, SimDuration::from_millis(200));
        assert_eq!(d2, SimDuration::from_millis(400));
        assert_eq!(d3, SimDuration::from_millis(800));
        assert_eq!(d9, policy.max_backoff, "bounded at the ceiling");
    }

    #[test]
    fn jitter_stays_within_the_band() {
        let policy = ResiliencePolicy::standard(); // jitter 0.25
        let mut rng = SimRng::new(3);
        for attempt in 1..=4 {
            let nominal = policy
                .base_backoff
                .mul_f64((1u64 << (attempt - 1)) as f64)
                .min(policy.max_backoff)
                .as_secs_f64();
            for _ in 0..100 {
                let d = policy.backoff_delay(attempt, &mut rng).as_secs_f64();
                assert!(d >= nominal * 0.749 && d <= nominal * 1.251, "delay {d}");
            }
        }
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let policy = ResiliencePolicy::standard();
        let mut rng = SimRng::new(4);
        let d = policy.backoff_delay(u32::MAX, &mut rng);
        assert!(d <= policy.max_backoff.mul_f64(1.25001));
    }

    #[test]
    fn presets_have_the_advertised_shape() {
        assert!(ResiliencePolicy::none().is_inert());
        assert!(!ResiliencePolicy::retry_only().is_inert());
        assert!(ResiliencePolicy::standard().fallback_local);
        assert_eq!(ResiliencePolicy::default(), ResiliencePolicy::none());
        let p = ResiliencePolicy::standard();
        assert_eq!(p.timeout_for(Phase::DataTransferUp), p.upload_timeout);
        assert_eq!(p.timeout_for(Phase::CodeLoad), p.prep_timeout);
        assert_eq!(p.timeout_for(Phase::OffloadIo), p.compute_timeout);
        assert_eq!(p.timeout_for(Phase::DataTransferDown), p.download_timeout);
        assert_eq!(p.timeout_for(Phase::Dispatch), None);
        assert_eq!(p.timeout_for(Phase::Retrying), None);
    }
}
