//! Client-side offloading decision engine.
//!
//! The paper "leaves the offloading details in clients to existing
//! offloading frameworks" (§V) — MAUI-style systems decide *whether* to
//! offload from predicted remote latency/energy vs. local execution.
//! This module supplies that missing client half so the repository is a
//! complete offloading system: EWMA estimators of the link learned from
//! observed transfers, a latency/energy predictor, and a decision
//! policy. The engine is what turns the 3G results of Fig. 10 (where
//! offloading *wastes* energy for payload-heavy workloads) into correct
//! stay-local decisions.

use crate::config::DeviceSpec;
use netsim::NetworkScenario;
use powersim::{DevicePowerModel, EnergyEstimator, OffloadPhases};
use simkit::SimDuration;
use workloads::{TaskRequest, WorkloadProfile};

/// Exponentially weighted moving average with a cold-start default.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An estimator with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Feed an observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
            None => x,
        });
    }

    /// Current estimate, or `default` before any observation.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Has the estimator seen any sample?
    pub fn warmed_up(&self) -> bool {
        self.value.is_some()
    }
}

/// Online link-quality estimator fed by the client's own transfers.
#[derive(Debug, Clone)]
pub struct LinkEstimator {
    rtt_s: Ewma,
    up_bps: Ewma,
    down_bps: Ewma,
}

impl LinkEstimator {
    /// Fresh estimator (α = 0.3, reactive but stable).
    pub fn new() -> Self {
        LinkEstimator {
            rtt_s: Ewma::new(0.3),
            up_bps: Ewma::new(0.3),
            down_bps: Ewma::new(0.3),
        }
    }

    /// Record a measured connection setup (≈1.5 RTT).
    pub fn observe_connect(&mut self, d: SimDuration) {
        self.rtt_s.observe(d.as_secs_f64() / 1.5);
    }

    /// Record a measured upload.
    pub fn observe_upload(&mut self, bytes: u64, d: SimDuration) {
        if bytes > 0 && !d.is_zero() {
            self.up_bps.observe(bytes as f64 / d.as_secs_f64());
        }
    }

    /// Record a measured download.
    pub fn observe_download(&mut self, bytes: u64, d: SimDuration) {
        if bytes > 0 && !d.is_zero() {
            self.down_bps.observe(bytes as f64 / d.as_secs_f64());
        }
    }

    /// Seed the estimator from a scenario's nominal parameters (what a
    /// client knows from the OS network type before any transfer).
    pub fn seeded_from(scenario: NetworkScenario) -> Self {
        let p = scenario.params();
        let mut e = LinkEstimator::new();
        e.rtt_s.observe(p.rtt.as_secs_f64());
        e.up_bps.observe(p.upstream_bps);
        e.down_bps.observe(p.downstream_bps);
        e
    }

    /// Predicted connect + transfer phases for a task.
    pub fn predict_phases(
        &self,
        task: &TaskRequest,
        code_bytes: u64,
        cloud_wait: SimDuration,
    ) -> OffloadPhases {
        let rtt = self.rtt_s.get_or(0.05);
        let up = self.up_bps.get_or(1e6);
        let down = self.down_bps.get_or(1e6);
        let upload_bytes = task.payload_bytes + task.control_bytes + code_bytes;
        OffloadPhases {
            connect: SimDuration::from_secs_f64(1.5 * rtt),
            upload: SimDuration::from_secs_f64(upload_bytes as f64 / up + rtt / 2.0),
            cloud_wait,
            download: SimDuration::from_secs_f64(task.result_bytes as f64 / down + rtt / 2.0),
        }
    }
}

impl Default for LinkEstimator {
    fn default() -> Self {
        LinkEstimator::new()
    }
}

/// What the decider optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize response time (the MAUI latency mode).
    Latency,
    /// Minimize device energy (the battery-saver mode of Fig. 10).
    Energy,
}

/// The verdict with its predicted quantities, for introspection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionReport {
    /// Offload or stay local.
    pub offload: bool,
    /// Predicted remote response time.
    pub predicted_remote: SimDuration,
    /// Predicted local execution time.
    pub predicted_local: SimDuration,
    /// Predicted remote energy, mJ.
    pub remote_energy_mj: f64,
    /// Predicted local energy, mJ.
    pub local_energy_mj: f64,
}

/// The offloading decision engine.
#[derive(Debug, Clone)]
pub struct OffloadDecider {
    device: DeviceSpec,
    energy: EnergyEstimator,
    objective: Objective,
    /// Safety margin: offload only when the remote prediction beats
    /// local by this factor (hedges estimator error).
    margin: f64,
    /// Assumed server effective clock (GHz × efficiency).
    server_eff_ghz: f64,
}

impl OffloadDecider {
    /// A decider for `device` optimizing `objective` with a 10 % margin.
    pub fn new(device: DeviceSpec, objective: Objective) -> Self {
        OffloadDecider {
            device,
            energy: EnergyEstimator::new(DevicePowerModel::power_tutor_default()),
            objective,
            margin: 0.9,
            server_eff_ghz: 2.66 * 0.95,
        }
    }

    /// Override the safety margin (1.0 = no hedge).
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin > 0.0 && margin <= 1.0, "margin in (0,1]");
        self.margin = margin;
        self
    }

    /// Decide for one task. `code_bytes` is the code that would ride
    /// along (0 on a warehouse hit), `expected_prep` the anticipated
    /// runtime preparation (near zero on a warm Rattrap pool).
    pub fn decide(
        &self,
        scenario: NetworkScenario,
        link: &LinkEstimator,
        task: &TaskRequest,
        code_bytes: u64,
        expected_prep: SimDuration,
    ) -> DecisionReport {
        let server_exec =
            SimDuration::from_secs_f64(task.compute.0 / (self.server_eff_ghz * 1000.0));
        let phases = link.predict_phases(task, code_bytes, expected_prep + server_exec);
        let predicted_remote = phases.total();
        let predicted_local = self.device.local_execution_time(task.compute);
        let remote_energy_mj = self.energy.offloaded_request(scenario, phases);
        let local_energy_mj = self.energy.local_execution(predicted_local);
        let offload = match self.objective {
            Objective::Latency => {
                predicted_remote.as_secs_f64() < self.margin * predicted_local.as_secs_f64()
            }
            Objective::Energy => remote_energy_mj < self.margin * local_energy_mj,
        };
        DecisionReport {
            offload,
            predicted_remote,
            predicted_local,
            remote_energy_mj,
            local_energy_mj,
        }
    }

    /// Convenience: decide for a workload's *mean* task.
    pub fn decide_mean(
        &self,
        scenario: NetworkScenario,
        link: &LinkEstimator,
        profile: &WorkloadProfile,
        code_cached: bool,
        expected_prep: SimDuration,
    ) -> DecisionReport {
        let task = TaskRequest {
            kind: profile.kind,
            payload_bytes: profile.payload_bytes_mean,
            control_bytes: profile.control_bytes,
            result_bytes: profile.result_bytes_mean,
            compute: simkit::units::Megacycles(profile.compute_megacycles_mean),
            io_bytes: 0,
        };
        let code = if code_cached {
            0
        } else {
            profile.app_code_bytes
        };
        self.decide(scenario, link, &task, code, expected_prep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    fn decider(obj: Objective) -> OffloadDecider {
        OffloadDecider::new(DeviceSpec::default_handset(), obj)
    }

    #[test]
    fn ewma_smooths_and_cold_starts() {
        let mut e = Ewma::new(0.5);
        assert!(!e.warmed_up());
        assert_eq!(e.get_or(7.0), 7.0);
        e.observe(10.0);
        assert_eq!(e.get_or(0.0), 10.0);
        e.observe(0.0);
        assert_eq!(e.get_or(0.0), 5.0);
    }

    #[test]
    fn estimator_learns_from_observations() {
        let mut l = LinkEstimator::new();
        l.observe_connect(SimDuration::from_millis(90)); // → RTT 60 ms
        l.observe_upload(1_000_000, SimDuration::from_secs(1));
        l.observe_download(500_000, SimDuration::from_secs(1));
        let task = TaskRequest {
            kind: WorkloadKind::Ocr,
            payload_bytes: 1_000_000,
            control_bytes: 0,
            result_bytes: 500_000,
            compute: simkit::units::Megacycles(0.0),
            io_bytes: 0,
        };
        let p = l.predict_phases(&task, 0, SimDuration::ZERO);
        assert!((p.connect.as_secs_f64() - 0.09).abs() < 1e-6);
        assert!((p.upload.as_secs_f64() - 1.03).abs() < 0.01);
        assert!((p.download.as_secs_f64() - 1.03).abs() < 0.01);
    }

    #[test]
    fn lan_offloads_all_workloads() {
        let d = decider(Objective::Latency);
        let link = LinkEstimator::seeded_from(NetworkScenario::LanWifi);
        for kind in WorkloadKind::ALL {
            let r = d.decide_mean(
                NetworkScenario::LanWifi,
                &link,
                &kind.profile(),
                true,
                SimDuration::ZERO,
            );
            assert!(
                r.offload,
                "{}: remote {} local {}",
                kind.label(),
                r.predicted_remote,
                r.predicted_local
            );
        }
    }

    #[test]
    fn three_g_keeps_payload_heavy_work_local() {
        // On the paper's 3G (0.38 Mbps up), VirusScan's ~900 KB upload
        // takes ~19 s — twice its local execution. The decider says no.
        let d = decider(Objective::Latency);
        let link = LinkEstimator::seeded_from(NetworkScenario::ThreeG);
        let scan = d.decide_mean(
            NetworkScenario::ThreeG,
            &link,
            &WorkloadKind::VirusScan.profile(),
            true,
            SimDuration::ZERO,
        );
        assert!(
            !scan.offload,
            "VirusScan on 3G: remote {}",
            scan.predicted_remote
        );
        // OCR's local run is so slow (≈14 s) that even a ~6 s 3G upload
        // still wins on latency — matching Fig. 10, where 3G OCR loses
        // on *energy* but the paper still offloads it.
        let ocr = d.decide_mean(
            NetworkScenario::ThreeG,
            &link,
            &WorkloadKind::Ocr.profile(),
            true,
            SimDuration::ZERO,
        );
        assert!(
            ocr.offload,
            "OCR on 3G latency: remote {}",
            ocr.predicted_remote
        );
        // Linpack's few hundred bytes win remotely, trivially.
        let lp = d.decide_mean(
            NetworkScenario::ThreeG,
            &link,
            &WorkloadKind::Linpack.profile(),
            true,
            SimDuration::ZERO,
        );
        assert!(lp.offload, "Linpack on 3G: remote {}", lp.predicted_remote);
    }

    #[test]
    fn cold_vm_prep_flips_the_decision() {
        let d = decider(Objective::Latency);
        let link = LinkEstimator::seeded_from(NetworkScenario::LanWifi);
        let profile = WorkloadKind::ChessGame.profile();
        let warm = d.decide_mean(
            NetworkScenario::LanWifi,
            &link,
            &profile,
            true,
            SimDuration::ZERO,
        );
        assert!(warm.offload);
        // A 28.7 s VM boot in the prep estimate makes offloading lose.
        let cold = d.decide_mean(
            NetworkScenario::LanWifi,
            &link,
            &profile,
            true,
            SimDuration::from_millis(28_720),
        );
        assert!(!cold.offload, "predicting a cold VM must keep work local");
        // Rattrap's 1.75 s start does not flip it.
        let rattrap_cold = d.decide_mean(
            NetworkScenario::LanWifi,
            &link,
            &profile,
            true,
            SimDuration::from_millis(1_750),
        );
        assert!(
            rattrap_cold.offload,
            "a Rattrap cold start is still worth offloading"
        );
    }

    #[test]
    fn code_cache_changes_marginal_cases() {
        // ChessGame's 2.1 MB APK over WAN WiFi: with the code riding
        // along the upload is ~0.9 s; cached, ~11 ms.
        let d = decider(Objective::Latency);
        let link = LinkEstimator::seeded_from(NetworkScenario::WanWifi);
        let profile = WorkloadKind::ChessGame.profile();
        let cached = d.decide_mean(
            NetworkScenario::WanWifi,
            &link,
            &profile,
            true,
            SimDuration::ZERO,
        );
        let uncached = d.decide_mean(
            NetworkScenario::WanWifi,
            &link,
            &profile,
            false,
            SimDuration::ZERO,
        );
        assert!(
            uncached.predicted_remote > cached.predicted_remote + SimDuration::from_millis(500),
            "code transfer costs ~0.9 s on WAN"
        );
    }

    #[test]
    fn energy_objective_is_more_conservative_on_cellular() {
        // 3G promotion + tails make small offloads energy-losers even
        // when latency would tolerate them.
        let lat = decider(Objective::Latency);
        let en = decider(Objective::Energy);
        let link = LinkEstimator::seeded_from(NetworkScenario::ThreeG);
        let profile = WorkloadKind::ChessGame.profile();
        let by_latency = lat.decide_mean(
            NetworkScenario::ThreeG,
            &link,
            &profile,
            true,
            SimDuration::ZERO,
        );
        let by_energy = en.decide_mean(
            NetworkScenario::ThreeG,
            &link,
            &profile,
            true,
            SimDuration::ZERO,
        );
        // Energy says no (3G radio cost); latency may still say yes.
        assert!(
            !by_energy.offload,
            "energy objective rejects 3G chess offload"
        );
        assert!(by_energy.remote_energy_mj > by_energy.local_energy_mj * 0.9);
        let _ = by_latency;
    }

    #[test]
    fn decision_report_is_consistent() {
        let d = decider(Objective::Latency);
        let link = LinkEstimator::seeded_from(NetworkScenario::LanWifi);
        let r = d.decide_mean(
            NetworkScenario::LanWifi,
            &link,
            &WorkloadKind::Linpack.profile(),
            true,
            SimDuration::ZERO,
        );
        assert_eq!(
            r.offload,
            r.predicted_remote.as_secs_f64() < 0.9 * r.predicted_local.as_secs_f64()
        );
        assert!(r.local_energy_mj > 0.0 && r.remote_energy_mj > 0.0);
    }
}
