//! App Warehouse and the mobile code cache (§IV-D, Fig. 8).
//!
//! Code transfer happens when an application sends its *first*
//! offloading request, once and for all: the warehouse preserves the
//! code and maintains a cache table keyed by AID. Later requests carry
//! only a `Reference` and fetch the code server-side. The table also
//! maps AIDs to the containers (CIDs) that already executed the app, so
//! the Dispatcher can route requests to a runtime where the code is
//! already loaded and skip the ClassLoader.

use std::collections::BTreeMap;
use virt::InstanceId;

/// Application identifier — the cache key derived from the app's
/// package identity (the hex strings of Fig. 8).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Aid(pub String);

/// Derive an AID from a package name (FNV-1a, rendered as hex like the
/// paper's `8d6d1b5` examples).
pub fn aid_of(app_id: &str) -> Aid {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in app_id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    Aid(format!("{:07x}", h & 0xfff_ffff))
}

/// One cache-table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Package name the code came from.
    pub app_id: String,
    /// Stored code size in bytes.
    pub code_bytes: u64,
    /// Containers that have loaded this code (the CID column).
    pub containers: Vec<InstanceId>,
    /// Cache hits so far.
    pub hits: u64,
    /// Monotone counter of last use, for LRU eviction.
    last_used: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarehouseStats {
    /// Lookups that found the code cached.
    pub hits: u64,
    /// Lookups that required a code transfer.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Upload bytes avoided thanks to hits.
    pub bytes_saved: u64,
}

/// The App Warehouse.
#[derive(Debug)]
pub struct AppWarehouse {
    entries: BTreeMap<Aid, CacheEntry>,
    capacity_bytes: u64,
    used_bytes: u64,
    clock: u64,
    stats: WarehouseStats,
}

impl AppWarehouse {
    /// A warehouse bounded at `capacity_bytes` of stored code.
    pub fn new(capacity_bytes: u64) -> Self {
        AppWarehouse {
            entries: BTreeMap::new(),
            capacity_bytes,
            used_bytes: 0,
            clock: 0,
            stats: WarehouseStats::default(),
        }
    }

    /// Look up `aid`. A hit bumps the hit counters and records the
    /// avoided transfer; a miss only counts.
    pub fn lookup(&mut self, aid: &Aid) -> bool {
        self.clock += 1;
        match self.entries.get_mut(aid) {
            Some(e) => {
                e.hits += 1;
                e.last_used = self.clock;
                self.stats.hits += 1;
                self.stats.bytes_saved += e.code_bytes;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Store code after a transfer (the "Maintain" arrow of Fig. 8).
    /// Evicts least-recently-used entries if needed.
    pub fn insert(&mut self, aid: Aid, app_id: &str, code_bytes: u64) {
        self.clock += 1;
        if let Some(old) = self.entries.remove(&aid) {
            self.used_bytes -= old.code_bytes;
        }
        while self.used_bytes + code_bytes > self.capacity_bytes && !self.entries.is_empty() {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            let victim = self.entries.remove(&lru).expect("exists");
            self.used_bytes -= victim.code_bytes;
            self.stats.evictions += 1;
        }
        if code_bytes > self.capacity_bytes {
            return; // cannot cache something bigger than the warehouse
        }
        self.used_bytes += code_bytes;
        self.entries.insert(
            aid,
            CacheEntry {
                app_id: app_id.to_string(),
                code_bytes,
                containers: Vec::new(),
                hits: 0,
                last_used: self.clock,
            },
        );
    }

    /// Record that `container` has loaded the code for `aid` (CID map).
    pub fn note_loaded(&mut self, aid: &Aid, container: InstanceId) {
        if let Some(e) = self.entries.get_mut(aid) {
            if !e.containers.contains(&container) {
                e.containers.push(container);
            }
        }
    }

    /// Containers that already hold this app's code, preferred-first.
    pub fn containers_with(&self, aid: &Aid) -> &[InstanceId] {
        self.entries
            .get(aid)
            .map(|e| e.containers.as_slice())
            .unwrap_or(&[])
    }

    /// Forget a torn-down container in every CID column.
    pub fn invalidate_container(&mut self, container: InstanceId) {
        for e in self.entries.values_mut() {
            e.containers.retain(|&c| c != container);
        }
    }

    /// Cache statistics.
    pub fn stats(&self) -> WarehouseStats {
        self.stats
    }

    /// Bytes of code currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached apps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no code is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mib(n: u64) -> u64 {
        n * 1024 * 1024
    }

    #[test]
    fn aid_is_stable_and_distinct() {
        assert_eq!(aid_of("com.bench.ocr"), aid_of("com.bench.ocr"));
        assert_ne!(aid_of("com.bench.ocr"), aid_of("com.bench.chessgame"));
        assert_eq!(aid_of("com.bench.ocr").0.len(), 7, "paper-style short hex");
    }

    #[test]
    fn first_lookup_misses_then_hits() {
        let mut w = AppWarehouse::new(mib(100));
        let aid = aid_of("com.bench.chessgame");
        assert!(!w.lookup(&aid));
        w.insert(aid.clone(), "com.bench.chessgame", mib(2));
        assert!(w.lookup(&aid));
        assert!(w.lookup(&aid));
        let s = w.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.bytes_saved, 2 * mib(2), "each hit avoids one code upload");
    }

    #[test]
    fn cid_mapping_tracks_containers() {
        let mut w = AppWarehouse::new(mib(10));
        let aid = aid_of("app");
        w.insert(aid.clone(), "app", 1000);
        w.note_loaded(&aid, InstanceId(3));
        w.note_loaded(&aid, InstanceId(7));
        w.note_loaded(&aid, InstanceId(3)); // dedup
        assert_eq!(w.containers_with(&aid), &[InstanceId(3), InstanceId(7)]);
        w.invalidate_container(InstanceId(3));
        assert_eq!(w.containers_with(&aid), &[InstanceId(7)]);
        assert!(w.containers_with(&aid_of("other")).is_empty());
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut w = AppWarehouse::new(mib(5));
        let a = aid_of("a");
        let b = aid_of("b");
        let c = aid_of("c");
        w.insert(a.clone(), "a", mib(2));
        w.insert(b.clone(), "b", mib(2));
        assert!(w.lookup(&a), "touch a so b becomes LRU");
        w.insert(c.clone(), "c", mib(2)); // evicts b
        assert!(w.lookup(&a));
        assert!(!w.lookup(&b), "b was evicted");
        assert!(w.lookup(&c));
        assert_eq!(w.stats().evictions, 1);
        assert!(w.used_bytes() <= mib(5));
    }

    #[test]
    fn oversized_code_is_not_cached() {
        let mut w = AppWarehouse::new(1000);
        let aid = aid_of("huge");
        w.insert(aid.clone(), "huge", 5000);
        assert!(!w.lookup(&aid));
        assert_eq!(w.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_entry() {
        let mut w = AppWarehouse::new(mib(10));
        let aid = aid_of("app");
        w.insert(aid.clone(), "app", 1000);
        w.insert(aid.clone(), "app", 3000);
        assert_eq!(w.used_bytes(), 3000);
        assert_eq!(w.len(), 1);
    }
}
