//! Monitor & Scheduler (§IV-A, Fig. 4).
//!
//! Rattrap "conducts resource scheduling at process-level, rather than
//! at VM-level in existing platforms": because Cloud Android Containers
//! are ordinary process groups under cgroups, the platform can watch
//! per-instance load and act on it cheaply — grow a warm pool before
//! requests arrive, reclaim idle instances, and rebalance `cpu.shares`
//! toward busy containers. The [`Monitor`] keeps EWMA load estimates per
//! instance; the [`Scheduler`] turns a Container-DB snapshot into scale
//! and share actions the platform applies.

use crate::dispatcher::{ContainerDb, InstanceState};
use simkit::{SimDuration, SimTime};
use std::collections::BTreeMap;
use virt::InstanceId;

/// Pool-management policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolPolicy {
    /// Ready-and-idle instances to keep pre-provisioned. Zero restores
    /// pure on-demand provisioning (the paper's default prototype); the
    /// paper notes pre-starting trades resource cost for cold starts —
    /// this knob is the ablation for that trade-off.
    pub warm_spares: usize,
    /// Never exceed this many instances.
    pub max_instances: usize,
    /// Reclaim instances idle for longer than this.
    pub idle_teardown: SimDuration,
}

impl PoolPolicy {
    /// The paper's prototype: on-demand, bounded pool.
    pub fn on_demand(max_instances: usize, idle_teardown: SimDuration) -> Self {
        PoolPolicy {
            warm_spares: 0,
            max_instances,
            idle_teardown,
        }
    }
}

/// Actions the scheduler asks the platform to take.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaleAction {
    /// Provision this many new instances.
    Provision(usize),
    /// Tear these idle instances down.
    Teardown(Vec<InstanceId>),
}

/// EWMA load monitor over container instances.
#[derive(Debug)]
pub struct Monitor {
    alpha: f64,
    load: BTreeMap<u32, f64>,
}

impl Monitor {
    /// A monitor smoothing with factor `alpha` in `(0, 1]` (higher =
    /// more reactive).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        Monitor {
            alpha,
            load: BTreeMap::new(),
        }
    }

    /// Feed one observation of an instance's active jobs.
    pub fn observe(&mut self, id: InstanceId, active_jobs: u32) {
        let entry = self.load.entry(id.0).or_insert(active_jobs as f64);
        *entry = self.alpha * active_jobs as f64 + (1.0 - self.alpha) * *entry;
    }

    /// Smoothed load of an instance (0 if never observed).
    pub fn load_of(&self, id: InstanceId) -> f64 {
        self.load.get(&id.0).copied().unwrap_or(0.0)
    }

    /// Forget a torn-down instance.
    pub fn forget(&mut self, id: InstanceId) {
        self.load.remove(&id.0);
    }

    /// Mean smoothed load across known instances.
    pub fn mean_load(&self) -> f64 {
        if self.load.is_empty() {
            0.0
        } else {
            self.load.values().sum::<f64>() / self.load.len() as f64
        }
    }
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    policy: PoolPolicy,
}

impl Scheduler {
    /// A scheduler applying `policy`.
    pub fn new(policy: PoolPolicy) -> Self {
        Scheduler { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> PoolPolicy {
        self.policy
    }

    /// Plan scale actions from a Container-DB snapshot at `now`.
    ///
    /// Keeps `warm_spares` ready-and-idle instances (booting ones count
    /// toward the target so we don't over-provision while they come up)
    /// and reclaims instances idle past the policy window — but never
    /// below the warm-spare floor.
    pub fn plan(&self, db: &ContainerDb, now: SimTime) -> Vec<ScaleAction> {
        let mut actions = Vec::new();
        let ready_idle = db
            .iter()
            .filter(|r| matches!(r.state, InstanceState::Ready) && r.active_jobs == 0)
            .count();
        let booting = db
            .iter()
            .filter(|r| matches!(r.state, InstanceState::Booting { .. }))
            .count();
        let spare_supply = ready_idle + booting;
        if spare_supply < self.policy.warm_spares && db.len() < self.policy.max_instances {
            let want =
                (self.policy.warm_spares - spare_supply).min(self.policy.max_instances - db.len());
            if want > 0 {
                actions.push(ScaleAction::Provision(want));
            }
        }
        // Idle reclamation, preserving the warm floor. Nothing can have
        // been idle long enough before one full window has elapsed.
        if now.as_micros() < self.policy.idle_teardown.as_micros() {
            return actions;
        }
        let cutoff = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(self.policy.idle_teardown.as_micros()),
        );
        let mut reclaimable = db.idle_since(cutoff);
        let keep = self.policy.warm_spares.min(reclaimable.len());
        // Keep the *newest* spares warm; reclaim the oldest first.
        reclaimable.sort_by_key(|id| id.0);
        let victims: Vec<InstanceId> = reclaimable
            .into_iter()
            .take(ready_idle.saturating_sub(keep))
            .collect();
        if !victims.is_empty() {
            actions.push(ScaleAction::Teardown(victims));
        }
        actions
    }

    /// Compute `cpu.shares` per instance proportional to smoothed load
    /// (floor 256, busy instances up to 4096) — process-level resource
    /// control a VM platform cannot do without a hypervisor round trip.
    pub fn rebalance_shares(&self, db: &ContainerDb, monitor: &Monitor) -> BTreeMap<u32, u32> {
        let mut shares = BTreeMap::new();
        for rec in db.iter() {
            let load = monitor.load_of(rec.id);
            let s = (1024.0 * (0.25 + load)).clamp(256.0, 4096.0) as u32;
            shares.insert(rec.id.0, s);
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virt::RuntimeClass;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn db_with(n: usize, ready: bool) -> ContainerDb {
        let mut db = ContainerDb::new();
        for i in 0..n {
            db.register(InstanceId(i as u32), RuntimeClass::CacOptimized, t(0), None);
            if ready {
                db.mark_ready(InstanceId(i as u32));
            }
        }
        db
    }

    #[test]
    fn on_demand_policy_never_pre_provisions() {
        let s = Scheduler::new(PoolPolicy::on_demand(8, SimDuration::from_secs(120)));
        let db = ContainerDb::new();
        assert!(s.plan(&db, t(0)).is_empty());
    }

    #[test]
    fn warm_pool_fills_to_target() {
        let s = Scheduler::new(PoolPolicy {
            warm_spares: 2,
            max_instances: 8,
            idle_teardown: SimDuration::from_secs(120),
        });
        let db = ContainerDb::new();
        assert_eq!(s.plan(&db, t(0)), vec![ScaleAction::Provision(2)]);
        // One booting instance counts toward the target.
        let mut db = ContainerDb::new();
        db.register(InstanceId(0), RuntimeClass::CacOptimized, t(2), None);
        assert_eq!(s.plan(&db, t(0)), vec![ScaleAction::Provision(1)]);
    }

    #[test]
    fn warm_pool_respects_max_instances() {
        let s = Scheduler::new(PoolPolicy {
            warm_spares: 4,
            max_instances: 2,
            idle_teardown: SimDuration::from_secs(120),
        });
        let mut db = db_with(2, true);
        for i in 0..2 {
            db.get_mut(InstanceId(i)).unwrap().active_jobs = 1;
        }
        assert!(s.plan(&db, t(0)).is_empty(), "at cap: no provisioning");
    }

    #[test]
    fn busy_pool_with_spares_needs_nothing() {
        let s = Scheduler::new(PoolPolicy {
            warm_spares: 1,
            max_instances: 8,
            idle_teardown: SimDuration::from_secs(120),
        });
        let mut db = db_with(3, true);
        db.get_mut(InstanceId(0)).unwrap().active_jobs = 2;
        // 1 and 2 are ready-idle: spare supply 2 ≥ 1.
        assert!(s.plan(&db, t(10)).is_empty());
    }

    #[test]
    fn idle_reclamation_preserves_warm_floor() {
        let s = Scheduler::new(PoolPolicy {
            warm_spares: 1,
            max_instances: 8,
            idle_teardown: SimDuration::from_secs(100),
        });
        let mut db = db_with(3, true);
        for i in 0..3 {
            db.get_mut(InstanceId(i)).unwrap().last_active = t(0);
        }
        let actions = s.plan(&db, t(1000));
        // 3 idle, keep 1 warm → tear down 2 (oldest ids first).
        assert_eq!(
            actions,
            vec![ScaleAction::Teardown(vec![InstanceId(0), InstanceId(1)])]
        );
    }

    #[test]
    fn monitor_ewma_tracks_load() {
        let mut m = Monitor::new(0.5);
        let id = InstanceId(0);
        m.observe(id, 4);
        assert!(
            (m.load_of(id) - 4.0).abs() < 1e-9,
            "first observation seeds the EWMA"
        );
        m.observe(id, 0);
        assert!((m.load_of(id) - 2.0).abs() < 1e-9);
        m.observe(id, 0);
        assert!((m.load_of(id) - 1.0).abs() < 1e-9);
        m.forget(id);
        assert_eq!(m.load_of(id), 0.0);
    }

    #[test]
    fn share_rebalancing_favours_busy_instances() {
        let s = Scheduler::new(PoolPolicy::on_demand(8, SimDuration::from_secs(120)));
        let db = db_with(2, true);
        let mut m = Monitor::new(1.0);
        m.observe(InstanceId(0), 3);
        m.observe(InstanceId(1), 0);
        let shares = s.rebalance_shares(&db, &m);
        assert!(
            shares[&0] > 3 * shares[&1],
            "busy gets {} idle gets {}",
            shares[&0],
            shares[&1]
        );
        assert!(shares[&1] >= 256, "floor respected");
        assert!(shares[&0] <= 4096, "ceiling respected");
    }

    #[test]
    fn mean_load_summary() {
        let mut m = Monitor::new(1.0);
        assert_eq!(m.mean_load(), 0.0);
        m.observe(InstanceId(0), 2);
        m.observe(InstanceId(1), 4);
        assert!((m.mean_load() - 3.0).abs() < 1e-9);
    }
}
