//! # rattrap — the container-based mobile-offloading cloud platform
//!
//! The paper's contribution (§IV), implemented over the substrate
//! crates: Cloud Android Containers on a dynamically extended host
//! kernel (`hostkernel` + `virt`), the Shared Resource Layer and
//! Sharing Offloading I/O (`containerfs`), and the platform control
//! plane implemented here:
//!
//! * [`warehouse`] — App Warehouse + mobile code cache (AID/CID cache
//!   table, Fig. 8).
//! * [`access`] — Request-based Access Controller (§IV-E).
//! * [`dispatcher`] — Dispatcher + Container DB with CID cache affinity.
//! * [`decision`] — the client-side MAUI-style offloading decision
//!   engine (link estimators + latency/energy prediction).
//! * [`mod@partition`] — MAUI/CloneCloud method-level code partitioning
//!   (optimal tree DP over annotated call graphs).
//! * [`platform`] — the three platform configurations of §VI-A
//!   (Rattrap, Rattrap(W/O), VM baseline) and the ablation knobs.
//! * [`scheduler`] — Monitor & Scheduler: warm pools, idle
//!   reclamation, process-level cpu.shares rebalancing.
//! * [`request`] — the §III-B phase decomposition per request.
//! * [`resilience`] — per-phase timeouts, retry budgets with bounded
//!   backoff, and graceful degradation to on-device execution.
//! * [`simulation`] — the end-to-end discrete-event simulation every
//!   figure and table is generated from.
//! * [`config`] — calibration constants and the paper's published
//!   numbers for shape checks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
pub mod config;
pub mod decision;
pub mod dispatcher;
pub mod lifecycle;
pub mod metrics;
pub mod partition;
pub mod platform;
pub mod request;
pub mod resilience;
pub mod scheduler;
pub mod simulation;
pub mod warehouse;

pub use access::{AccessController, Action, Denial, PermissionTable};
pub use config::DeviceSpec;
pub use decision::{DecisionReport, Ewma, LinkEstimator, Objective, OffloadDecider};
pub use dispatcher::{ContainerDb, DispatchPolicy, Dispatcher, Placement};
pub use lifecycle::{Phase, PhaseLog, PhaseObserver, PhaseTransition, RequestLifecycle};
pub use metrics::{
    CollectingSink, CountingSink, FaultStats, ReportHasher, ReportSummary, RequestSink, TenantLane,
    TenantSplitSink,
};
pub use partition::{
    partition, CallGraph, MethodNode, PartitionCosts, PartitionPlan, Placement as MethodPlacement,
};
pub use platform::{PlatformConfig, PlatformKind};
pub use request::{PhaseBreakdown, RequestRecord};
pub use resilience::ResiliencePolicy;
pub use scheduler::{Monitor, PoolPolicy, ScaleAction, Scheduler};
pub use simulation::{
    run_scenario, run_scenario_with_sink, ArrivalModel, ScenarioConfig, Simulation,
    SimulationReport,
};
pub use warehouse::{aid_of, Aid, AppWarehouse, WarehouseStats};
