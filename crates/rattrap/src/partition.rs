//! Method-level code partitioning — the MAUI/CloneCloud layer of §II.
//!
//! The offloading frameworks the paper builds under (MAUI, CloneCloud,
//! ThinkAir) decide *which methods* of an app run in the cloud: each
//! method is annotated with its compute cost and the state that must
//! cross the network if a call edge is cut, and the framework solves
//! for the placement minimizing end-to-end latency (or energy). We
//! implement the tree-structured case exactly with dynamic programming
//! — each node is placed Local or Remote, non-offloadable methods
//! (UI, sensors, camera) are pinned Local, and cut edges pay their
//! state-transfer cost.

use simkit::units::Megacycles;
use std::collections::BTreeMap;

/// Where a method executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// On the device.
    Local,
    /// In the Cloud Android Container.
    Remote,
}

/// One method in the app's call tree.
#[derive(Debug, Clone)]
pub struct MethodNode {
    /// Method name (diagnostics).
    pub name: String,
    /// Compute cost of the method body (excluding callees).
    pub compute: Megacycles,
    /// Bytes that must cross the network if this method's caller runs
    /// on the other side (arguments + return + captured state).
    pub state_bytes: u64,
    /// `false` pins the method to the device (UI, sensors, camera).
    pub offloadable: bool,
    /// Indices of callee methods.
    pub children: Vec<usize>,
}

/// A rooted call tree.
#[derive(Debug, Clone)]
pub struct CallGraph {
    nodes: Vec<MethodNode>,
}

/// Error for malformed graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError(pub String);

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid call graph: {}", self.0)
    }
}

impl std::error::Error for GraphError {}

impl CallGraph {
    /// Build from nodes; node 0 is the root (the entry point, always
    /// Local — the user taps the screen on the device). Validates that
    /// children form a tree.
    pub fn new(nodes: Vec<MethodNode>) -> Result<Self, GraphError> {
        if nodes.is_empty() {
            return Err(GraphError("empty graph".into()));
        }
        let mut seen_as_child = vec![false; nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            for &c in &n.children {
                if c >= nodes.len() {
                    return Err(GraphError(format!("node {i} references missing child {c}")));
                }
                if c == 0 {
                    return Err(GraphError("root cannot be a child".into()));
                }
                if seen_as_child[c] {
                    return Err(GraphError(format!("node {c} has two parents (not a tree)")));
                }
                seen_as_child[c] = true;
            }
        }
        Ok(CallGraph { nodes })
    }

    /// Node accessor.
    pub fn node(&self, i: usize) -> &MethodNode {
        &self.nodes[i]
    }

    /// Number of methods.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a graph with no methods (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Execution environment costs for the partitioner.
#[derive(Debug, Clone, Copy)]
pub struct PartitionCosts {
    /// Device effective speed, GHz-equivalents (clock × efficiency).
    pub device_eff_ghz: f64,
    /// Server effective speed, GHz-equivalents.
    pub server_eff_ghz: f64,
    /// Network bandwidth for state transfer, bytes/second.
    pub bandwidth_bps: f64,
    /// Per-cut-edge round-trip latency, seconds.
    pub rtt_s: f64,
}

impl PartitionCosts {
    fn exec_s(&self, work: Megacycles, placement: Placement) -> f64 {
        let ghz = match placement {
            Placement::Local => self.device_eff_ghz,
            Placement::Remote => self.server_eff_ghz,
        };
        work.seconds_at(ghz, 1.0)
    }

    fn transfer_s(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bps + self.rtt_s
    }
}

/// The partitioning result.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Placement per node index.
    pub placements: Vec<Placement>,
    /// Predicted end-to-end latency under the plan, seconds.
    pub latency_s: f64,
    /// Predicted all-local latency, for comparison.
    pub all_local_s: f64,
}

impl PartitionPlan {
    /// Methods placed remotely.
    pub fn remote_count(&self) -> usize {
        self.placements
            .iter()
            .filter(|&&p| p == Placement::Remote)
            .count()
    }

    /// Speedup over running everything on the device.
    pub fn speedup(&self) -> f64 {
        if self.latency_s <= 0.0 {
            return f64::INFINITY;
        }
        self.all_local_s / self.latency_s
    }
}

/// Solve the optimal partition by tree DP.
///
/// `cost[v][p]` = cost of v's subtree with v placed at `p` =
/// `exec(v, p) + Σ_c min over q of (cost[c][q] + cut(c) if q ≠ p)`.
/// Non-offloadable nodes admit only `p = Local`; the root is pinned
/// Local (the request originates on the device).
pub fn partition(graph: &CallGraph, costs: &PartitionCosts) -> PartitionPlan {
    let n = graph.len();
    // memo[v] = (cost_local, cost_remote, choices_local, choices_remote)
    let mut memo: BTreeMap<usize, ([f64; 2], [Vec<Placement>; 2])> = BTreeMap::new();

    // Post-order traversal without recursion (tree, so no cycles).
    let order = post_order(graph);
    for &v in &order {
        let node = graph.node(v);
        let mut cost = [f64::INFINITY; 2];
        let mut child_choice: [Vec<Placement>; 2] = [Vec::new(), Vec::new()];
        let placements: &[Placement] = if node.offloadable && v != 0 {
            &[Placement::Local, Placement::Remote]
        } else {
            &[Placement::Local]
        };
        for &p in placements {
            let pi = p as usize; // Local = 0, Remote = 1
            let mut total = costs.exec_s(node.compute, p);
            let mut choices = Vec::with_capacity(node.children.len());
            for &c in &node.children {
                let (child_costs, _) = memo.get(&c).expect("post-order processed children");
                let child = graph.node(c);
                let stay = child_costs[pi];
                let cross_p = match p {
                    Placement::Local => Placement::Remote,
                    Placement::Remote => Placement::Local,
                };
                let cross = child_costs[cross_p as usize] + costs.transfer_s(child.state_bytes);
                if stay <= cross {
                    total += stay;
                    choices.push(p);
                } else {
                    total += cross;
                    choices.push(cross_p);
                }
            }
            cost[pi] = total;
            child_choice[pi] = choices;
        }
        memo.insert(v, (cost, child_choice));
    }

    // Root is Local; walk down recovering placements.
    let mut placements = vec![Placement::Local; n];
    let mut stack = vec![(0usize, Placement::Local)];
    while let Some((v, p)) = stack.pop() {
        placements[v] = p;
        let (_, choices) = memo.get(&v).expect("computed");
        let chosen = &choices[p as usize];
        for (i, &c) in graph.node(v).children.iter().enumerate() {
            stack.push((c, chosen[i]));
        }
    }

    let latency_s = memo.get(&0).expect("root computed").0[0];
    let all_local_s = order
        .iter()
        .map(|&v| costs.exec_s(graph.node(v).compute, Placement::Local))
        .sum();
    PartitionPlan {
        placements,
        latency_s,
        all_local_s,
    }
}

fn post_order(graph: &CallGraph) -> Vec<usize> {
    let mut order = Vec::with_capacity(graph.len());
    let mut stack = vec![(0usize, false)];
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            order.push(v);
        } else {
            stack.push((v, true));
            for &c in &graph.node(v).children {
                stack.push((c, false));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(
        name: &str,
        mc: f64,
        state: u64,
        offloadable: bool,
        children: Vec<usize>,
    ) -> MethodNode {
        MethodNode {
            name: name.into(),
            compute: Megacycles(mc),
            state_bytes: state,
            offloadable,
            children,
        }
    }

    /// A face-recognition-style app: UI root, heavy detect/recognize
    /// pipeline, a sensor reader pinned local.
    fn face_app() -> CallGraph {
        CallGraph::new(vec![
            node("onTap", 5.0, 0, false, vec![1, 4]),
            node("processPhoto", 50.0, 200_000, true, vec![2, 3]),
            node("detectFaces", 3_000.0, 50_000, true, vec![]),
            node("recognize", 5_000.0, 80_000, true, vec![]),
            node("readGps", 2.0, 100, false, vec![]),
        ])
        .expect("valid tree")
    }

    fn lan_costs() -> PartitionCosts {
        PartitionCosts {
            device_eff_ghz: 0.48,
            server_eff_ghz: 2.5,
            bandwidth_bps: 5.0e6,
            rtt_s: 0.002,
        }
    }

    #[test]
    fn heavy_methods_offload_on_lan() {
        let plan = partition(&face_app(), &lan_costs());
        assert_eq!(plan.placements[0], Placement::Local, "root pinned");
        assert_eq!(plan.placements[4], Placement::Local, "sensor pinned");
        assert_eq!(
            plan.placements[2],
            Placement::Remote,
            "detectFaces offloads"
        );
        assert_eq!(plan.placements[3], Placement::Remote, "recognize offloads");
        assert!(plan.speedup() > 2.0, "speedup {}", plan.speedup());
        assert!(plan.latency_s < plan.all_local_s);
    }

    #[test]
    fn nothing_offloads_on_a_dead_network() {
        let costs = PartitionCosts {
            bandwidth_bps: 100.0,
            rtt_s: 2.0,
            ..lan_costs()
        };
        let plan = partition(&face_app(), &costs);
        assert_eq!(plan.remote_count(), 0, "cut edges too expensive");
        assert!((plan.latency_s - plan.all_local_s).abs() < 1e-9);
        assert!((plan.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parent_offloads_with_its_heavy_children() {
        // processPhoto itself is light, but hoisting it remote merges
        // the two child cut-edges into one — the classic MAUI win.
        let plan = partition(&face_app(), &lan_costs());
        assert_eq!(
            plan.placements[1],
            Placement::Remote,
            "light parent rides along with heavy children"
        );
    }

    #[test]
    fn free_network_offloads_everything_offloadable() {
        let costs = PartitionCosts {
            bandwidth_bps: 1e12,
            rtt_s: 0.0,
            ..lan_costs()
        };
        let plan = partition(&face_app(), &costs);
        assert_eq!(
            plan.remote_count(),
            3,
            "every offloadable method goes remote"
        );
    }

    #[test]
    fn plan_cost_matches_manual_evaluation() {
        // Independently evaluate the returned placement and compare.
        let g = face_app();
        let costs = lan_costs();
        let plan = partition(&g, &costs);
        let mut manual = 0.0;
        for v in 0..g.len() {
            manual += costs.exec_s(g.node(v).compute, plan.placements[v]);
        }
        // Cut edges: parent/child placement differs.
        for v in 0..g.len() {
            for &c in &g.node(v).children {
                if plan.placements[v] != plan.placements[c] {
                    manual += costs.transfer_s(g.node(c).state_bytes);
                }
            }
        }
        assert!(
            (manual - plan.latency_s).abs() < 1e-9,
            "{manual} vs {}",
            plan.latency_s
        );
    }

    #[test]
    fn dp_beats_naive_all_or_nothing() {
        // The mixed plan must be at least as good as both extremes.
        let g = face_app();
        let costs = lan_costs();
        let plan = partition(&g, &costs);
        // All-local cost:
        assert!(plan.latency_s <= plan.all_local_s + 1e-12);
        // All-remote-offloadable (single cut at each pinned boundary):
        let mut all_remote = 0.0;
        for v in 0..g.len() {
            let p = if g.node(v).offloadable && v != 0 {
                Placement::Remote
            } else {
                Placement::Local
            };
            all_remote += costs.exec_s(g.node(v).compute, p);
        }
        for v in 0..g.len() {
            for &c in &g.node(v).children {
                let pv = if g.node(v).offloadable && v != 0 {
                    Placement::Remote
                } else {
                    Placement::Local
                };
                let pc = if g.node(c).offloadable {
                    Placement::Remote
                } else {
                    Placement::Local
                };
                if pv != pc {
                    all_remote += costs.transfer_s(g.node(c).state_bytes);
                }
            }
        }
        assert!(plan.latency_s <= all_remote + 1e-12);
    }

    #[test]
    fn graph_validation() {
        assert!(CallGraph::new(vec![]).is_err());
        let dangling = CallGraph::new(vec![node("r", 1.0, 0, false, vec![5])]);
        assert!(dangling.is_err());
        let two_parents = CallGraph::new(vec![
            node("r", 1.0, 0, false, vec![1, 2]),
            node("a", 1.0, 0, true, vec![2]),
            node("b", 1.0, 0, true, vec![]),
        ]);
        assert!(two_parents.is_err());
        let root_child = CallGraph::new(vec![node("r", 1.0, 0, false, vec![0])]);
        assert!(root_child.is_err());
    }
}
