//! Platform configurations: the three systems the evaluation compares
//! (§VI-A) plus the ablation knobs of DESIGN.md §5.

use crate::dispatcher::DispatchPolicy;
use virt::RuntimeClass;

/// Which cloud platform is serving the offloading requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlatformKind {
    /// Full Rattrap.
    Rattrap,
    /// Rattrap without OS optimization, sharing, or code cache —
    /// "we only replace VM with Container" (§VI-A).
    RattrapWithout,
    /// The VM-based cloud platform baseline.
    VmBaseline,
}

impl PlatformKind {
    /// All platforms, Rattrap first (the paper's legend order).
    pub const ALL: [PlatformKind; 3] = [
        PlatformKind::Rattrap,
        PlatformKind::RattrapWithout,
        PlatformKind::VmBaseline,
    ];

    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            PlatformKind::Rattrap => "Rattrap",
            PlatformKind::RattrapWithout => "Rattrap(W/O)",
            PlatformKind::VmBaseline => "VM",
        }
    }

    /// The standard configuration of this platform.
    pub fn config(self) -> PlatformConfig {
        match self {
            PlatformKind::Rattrap => PlatformConfig {
                kind: self,
                runtime_class: RuntimeClass::CacOptimized,
                code_cache: true,
                cache_affinity: true,
                access_control: true,
                per_device_instances: false,
                max_instances: 8,
                warm_spares: 0,
            },
            PlatformKind::RattrapWithout => PlatformConfig {
                kind: self,
                runtime_class: RuntimeClass::CacUnoptimized,
                code_cache: false,
                cache_affinity: false,
                access_control: true,
                per_device_instances: true,
                max_instances: 64,
                warm_spares: 0,
            },
            PlatformKind::VmBaseline => PlatformConfig {
                kind: self,
                runtime_class: RuntimeClass::AndroidVm,
                code_cache: false,
                cache_affinity: false,
                access_control: false,
                per_device_instances: true,
                max_instances: 64,
                warm_spares: 0,
            },
        }
    }
}

/// Full platform configuration (the ablation surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformConfig {
    /// Which named platform this configuration describes.
    pub kind: PlatformKind,
    /// Runtime environment class to provision.
    pub runtime_class: RuntimeClass,
    /// App Warehouse code cache enabled?
    pub code_cache: bool,
    /// Dispatcher CID affinity enabled?
    pub cache_affinity: bool,
    /// Request-based Access Controller enabled?
    pub access_control: bool,
    /// One runtime per device (VM model) vs a shared pool.
    pub per_device_instances: bool,
    /// Pool cap in shared-pool mode.
    pub max_instances: usize,
    /// Warm spare instances the Monitor & Scheduler keeps pre-started
    /// (0 = the paper's on-demand prototype).
    pub warm_spares: usize,
}

impl PlatformConfig {
    /// Dispatcher policy implied by the configuration.
    pub fn dispatch_policy(&self) -> DispatchPolicy {
        DispatchPolicy {
            per_device_instances: self.per_device_instances,
            cache_affinity: self.cache_affinity,
            max_instances: self.max_instances,
        }
    }

    /// Ablation helper: same platform with the code cache toggled.
    pub fn with_code_cache(mut self, on: bool) -> Self {
        self.code_cache = on;
        self.cache_affinity = self.cache_affinity && on;
        self
    }

    /// Ablation helper: toggle dispatcher affinity alone.
    pub fn with_affinity(mut self, on: bool) -> Self {
        self.cache_affinity = on;
        self
    }

    /// Ablation helper: change the runtime class (e.g. optimized
    /// containers without the code cache).
    pub fn with_runtime(mut self, class: RuntimeClass) -> Self {
        self.runtime_class = class;
        self
    }

    /// Ablation helper: keep a warm pool of pre-started instances.
    pub fn with_warm_spares(mut self, n: usize) -> Self {
        self.warm_spares = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_configs_match_section_vi_a() {
        let r = PlatformKind::Rattrap.config();
        assert_eq!(r.runtime_class, RuntimeClass::CacOptimized);
        assert!(r.code_cache && r.cache_affinity);
        let wo = PlatformKind::RattrapWithout.config();
        assert_eq!(wo.runtime_class, RuntimeClass::CacUnoptimized);
        assert!(!wo.code_cache, "W/O: no code cache mechanism");
        let vm = PlatformKind::VmBaseline.config();
        assert_eq!(vm.runtime_class, RuntimeClass::AndroidVm);
        assert!(vm.per_device_instances, "clients push code into each VM");
    }

    #[test]
    fn ablation_toggles() {
        let c = PlatformKind::Rattrap.config().with_code_cache(false);
        assert!(!c.code_cache);
        assert!(!c.cache_affinity, "affinity needs the cache table");
        let c2 = PlatformKind::Rattrap.config().with_affinity(false);
        assert!(c2.code_cache && !c2.cache_affinity);
        let c3 = PlatformKind::VmBaseline
            .config()
            .with_runtime(RuntimeClass::CacOptimized);
        assert_eq!(c3.runtime_class, RuntimeClass::CacOptimized);
    }

    #[test]
    fn labels_distinct() {
        let mut l: Vec<_> = PlatformKind::ALL.iter().map(|p| p.label()).collect();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 3);
    }
}
