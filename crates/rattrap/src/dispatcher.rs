//! Dispatcher + Container DB (§IV-A).
//!
//! The Container DB stores the state of every runtime instance as the
//! basis of resource management; the Dispatcher allocates execution
//! environments for arriving requests. With the cache table's CID
//! column it "tends to allocate offloading tasks to the Cloud Android
//! Container where requests from the same application have been
//! executed before, which saves the time for loading codes" (§IV-D).

use simkit::SimTime;
use std::collections::BTreeMap;
use virt::{InstanceId, RuntimeClass};

/// Lifecycle state of a runtime instance as tracked by the Container DB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Still booting; becomes ready at the given instant.
    Booting {
        /// When boot completes.
        ready_at: SimTime,
    },
    /// Ready to execute offloaded code.
    Ready,
}

/// One Container DB record.
#[derive(Debug, Clone)]
pub struct ContainerRecord {
    /// The instance.
    pub id: InstanceId,
    /// Runtime class.
    pub class: RuntimeClass,
    /// Current state.
    pub state: InstanceState,
    /// Requests currently executing or queued on the instance.
    pub active_jobs: u32,
    /// Last time the instance finished a job (for idle reclamation).
    pub last_active: SimTime,
    /// Device that owns this instance (VM-per-device model), if any.
    pub owner_device: Option<u32>,
}

/// The Container DB.
#[derive(Debug, Default)]
pub struct ContainerDb {
    records: BTreeMap<u32, ContainerRecord>,
}

impl ContainerDb {
    /// Empty DB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a newly provisioned instance.
    pub fn register(
        &mut self,
        id: InstanceId,
        class: RuntimeClass,
        ready_at: SimTime,
        owner_device: Option<u32>,
    ) {
        self.records.insert(
            id.0,
            ContainerRecord {
                id,
                class,
                state: InstanceState::Booting { ready_at },
                active_jobs: 0,
                last_active: ready_at,
                owner_device,
            },
        );
    }

    /// Mark an instance ready (boot completed).
    pub fn mark_ready(&mut self, id: InstanceId) {
        if let Some(r) = self.records.get_mut(&id.0) {
            r.state = InstanceState::Ready;
        }
    }

    /// Remove a record (teardown).
    pub fn remove(&mut self, id: InstanceId) -> Option<ContainerRecord> {
        self.records.remove(&id.0)
    }

    /// Record lookup.
    pub fn get(&self, id: InstanceId) -> Option<&ContainerRecord> {
        self.records.get(&id.0)
    }

    /// Mutable record lookup.
    pub fn get_mut(&mut self, id: InstanceId) -> Option<&mut ContainerRecord> {
        self.records.get_mut(&id.0)
    }

    /// All records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ContainerRecord> {
        self.records.values()
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no instances exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Instances idle (no jobs) since before `cutoff`.
    pub fn idle_since(&self, cutoff: SimTime) -> Vec<InstanceId> {
        self.records
            .values()
            .filter(|r| {
                r.active_jobs == 0
                    && r.last_active <= cutoff
                    && matches!(r.state, InstanceState::Ready)
            })
            .map(|r| r.id)
            .collect()
    }
}

/// Where the dispatcher decided to run a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Run on this existing instance (ready or still booting).
    Existing(InstanceId),
    /// No suitable instance: the platform must provision a new one.
    Provision,
}

/// Dispatcher policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// One instance per device (the VM-based baseline) instead of a
    /// shared pool.
    pub per_device_instances: bool,
    /// Use the cache table's CID column to prefer instances that have
    /// already loaded the app's code.
    pub cache_affinity: bool,
    /// Hard cap on pool size (shared-pool mode).
    pub max_instances: usize,
}

/// The Dispatcher.
#[derive(Debug)]
pub struct Dispatcher {
    policy: DispatchPolicy,
}

impl Dispatcher {
    /// A dispatcher with the given policy.
    pub fn new(policy: DispatchPolicy) -> Self {
        Dispatcher { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Decide where a request from `device` for app `aid` should run.
    /// `cid_hint` is the warehouse's CID column for the app.
    pub fn place(&self, db: &ContainerDb, device: u32, cid_hint: &[InstanceId]) -> Placement {
        if self.policy.per_device_instances {
            // VM baseline: the device's own VM, provisioned on first use.
            return match db.iter().find(|r| r.owner_device == Some(device)) {
                Some(r) => Placement::Existing(r.id),
                None => Placement::Provision,
            };
        }
        // Rattrap pool. 1) cache affinity: a live instance that already
        // loaded the code and is not overloaded.
        if self.policy.cache_affinity {
            let best = cid_hint
                .iter()
                .filter_map(|&id| db.get(id))
                .filter(|r| r.active_jobs < 2)
                .min_by_key(|r| (r.active_jobs, r.id.0));
            if let Some(r) = best {
                return Placement::Existing(r.id);
            }
        }
        // 2) An idle ready instance.
        if let Some(r) = db
            .iter()
            .filter(|r| matches!(r.state, InstanceState::Ready) && r.active_jobs == 0)
            .min_by_key(|r| r.id.0)
        {
            return Placement::Existing(r.id);
        }
        // 3) Grow the pool if allowed.
        if db.len() < self.policy.max_instances {
            return Placement::Provision;
        }
        // 4) Least-loaded instance (booting ones count — requests wait).
        match db.iter().min_by_key(|r| (r.active_jobs, r.id.0)) {
            Some(r) => Placement::Existing(r.id),
            None => Placement::Provision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn pool_dispatcher(max: usize) -> Dispatcher {
        Dispatcher::new(DispatchPolicy {
            per_device_instances: false,
            cache_affinity: true,
            max_instances: max,
        })
    }

    #[test]
    fn vm_mode_is_per_device() {
        let d = Dispatcher::new(DispatchPolicy {
            per_device_instances: true,
            cache_affinity: false,
            max_instances: 100,
        });
        let mut db = ContainerDb::new();
        assert_eq!(d.place(&db, 0, &[]), Placement::Provision);
        db.register(InstanceId(0), RuntimeClass::AndroidVm, t(29), Some(0));
        db.register(InstanceId(1), RuntimeClass::AndroidVm, t(29), Some(1));
        assert_eq!(d.place(&db, 0, &[]), Placement::Existing(InstanceId(0)));
        assert_eq!(d.place(&db, 1, &[]), Placement::Existing(InstanceId(1)));
        assert_eq!(
            d.place(&db, 2, &[]),
            Placement::Provision,
            "third device needs its own VM"
        );
    }

    #[test]
    fn cache_affinity_prefers_cid_column() {
        let d = pool_dispatcher(8);
        let mut db = ContainerDb::new();
        for i in 0..3 {
            db.register(InstanceId(i), RuntimeClass::CacOptimized, t(0), None);
            db.mark_ready(InstanceId(i));
        }
        // Instance 2 has the code; instance 0 is idle but cold.
        assert_eq!(
            d.place(&db, 0, &[InstanceId(2)]),
            Placement::Existing(InstanceId(2)),
            "affinity wins over lower-id idle instances"
        );
    }

    #[test]
    fn overloaded_affinity_target_is_skipped() {
        let d = pool_dispatcher(8);
        let mut db = ContainerDb::new();
        db.register(InstanceId(0), RuntimeClass::CacOptimized, t(0), None);
        db.register(InstanceId(1), RuntimeClass::CacOptimized, t(0), None);
        db.mark_ready(InstanceId(0));
        db.mark_ready(InstanceId(1));
        db.get_mut(InstanceId(1)).unwrap().active_jobs = 2;
        assert_eq!(
            d.place(&db, 0, &[InstanceId(1)]),
            Placement::Existing(InstanceId(0)),
            "hot but saturated instance loses to an idle one"
        );
    }

    #[test]
    fn pool_grows_until_cap_then_queues() {
        let d = pool_dispatcher(2);
        let mut db = ContainerDb::new();
        assert_eq!(d.place(&db, 0, &[]), Placement::Provision);
        db.register(InstanceId(0), RuntimeClass::CacOptimized, t(2), None);
        db.get_mut(InstanceId(0)).unwrap().active_jobs = 1;
        assert_eq!(
            d.place(&db, 0, &[]),
            Placement::Provision,
            "busy pool below cap grows"
        );
        db.register(InstanceId(1), RuntimeClass::CacOptimized, t(2), None);
        db.get_mut(InstanceId(1)).unwrap().active_jobs = 3;
        // At cap: pick the least-loaded even though it's booting.
        assert_eq!(d.place(&db, 0, &[]), Placement::Existing(InstanceId(0)));
    }

    #[test]
    fn idle_since_respects_state_and_jobs() {
        let mut db = ContainerDb::new();
        db.register(InstanceId(0), RuntimeClass::CacOptimized, t(0), None);
        db.register(InstanceId(1), RuntimeClass::CacOptimized, t(0), None);
        db.register(InstanceId(2), RuntimeClass::CacOptimized, t(0), None);
        db.mark_ready(InstanceId(0));
        db.mark_ready(InstanceId(1));
        // 2 stays booting. 1 is busy.
        db.get_mut(InstanceId(1)).unwrap().active_jobs = 1;
        db.get_mut(InstanceId(0)).unwrap().last_active = t(10);
        assert_eq!(db.idle_since(t(50)), vec![InstanceId(0)]);
        assert!(db.idle_since(t(5)).is_empty());
    }
}
