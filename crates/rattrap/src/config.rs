//! Calibration constants — the single source of truth tying the
//! simulation to the paper's experimental setup (§V, §VI-A).

use simkit::units::Megacycles;
use simkit::SimDuration;

/// The mobile device the clients run on (2016-class handset).
///
/// The paper uses five real Android phones; we model their CPU as a
/// single effective core whose useful throughput is well below the
/// Xeon's — both lower clock and lower per-cycle efficiency on these
/// workloads (JIT, thermal limits, LITTLE cores).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Device clock, GHz.
    pub clock_ghz: f64,
    /// Useful-cycles fraction relative to the server ISA (≤ 1).
    pub efficiency: f64,
}

impl DeviceSpec {
    /// Default handset model.
    pub fn default_handset() -> Self {
        DeviceSpec {
            clock_ghz: 1.2,
            efficiency: 0.4,
        }
    }

    /// IoT-class device: Raspberry Pi 2 territory (900 MHz quad
    /// Cortex-A7, of which one in-order core does the offloadable
    /// work), calibrated from Morabito's container-on-IoT evaluation.
    /// Roughly 4× less useful throughput than the default handset, so
    /// these devices lean hardest on a nearby edge PoP.
    pub fn iot_class() -> Self {
        DeviceSpec {
            clock_ghz: 0.9,
            efficiency: 0.25,
        }
    }

    /// The handset table: every named device profile with its label.
    pub fn handset_table() -> [(&'static str, DeviceSpec); 2] {
        [
            ("handset", Self::default_handset()),
            ("iot", Self::iot_class()),
        ]
    }

    /// Time to execute `work` locally on the device.
    pub fn local_execution_time(&self, work: Megacycles) -> SimDuration {
        SimDuration::from_secs_f64(work.seconds_at(self.clock_ghz, self.efficiency))
    }
}

/// Number of client devices in the §VI experiments.
pub const PAPER_DEVICE_COUNT: u32 = 5;

/// Offloading requests investigated per device (Fig. 1: "the first 20
/// offloading requests").
pub const PAPER_REQUESTS_PER_DEVICE: u32 = 20;

/// Random-access penalty of the HDD for offloading I/O (scattered
/// reads/writes of migrated files), as a fraction of sequential
/// bandwidth. 5 % of ~120 MB/s ≈ 6 MB/s of 4K-ish random I/O, typical
/// for 7200 rpm disks.
pub const RANDOM_IO_FACTOR: f64 = 0.05;

/// How long an idle runtime is kept before the platform reclaims it.
pub const IDLE_TEARDOWN: SimDuration = SimDuration::from_secs(120);

/// Expected values from the paper, used by `analysis::compare` and the
/// EXPERIMENTS.md generator to check reproduction shape.
pub mod paper {
    /// Table I setup times (seconds): VM / CAC-non-opt / CAC.
    pub const SETUP_TIMES_S: [f64; 3] = [28.72, 6.80, 1.75];
    /// Table I memory footprints (MiB).
    pub const MEMORY_MIB: [u64; 3] = [512, 128, 96];
    /// §VI-B setup-time speedups over the VM.
    pub const SETUP_SPEEDUPS: [f64; 2] = [4.22, 16.41];
    /// §VI-C runtime-preparation speedup band for Rattrap.
    pub const PREP_SPEEDUP_RATTRAP: (f64, f64) = (16.29, 16.98);
    /// §VI-C runtime-preparation speedup band for Rattrap(W/O).
    pub const PREP_SPEEDUP_WO: (f64, f64) = (4.14, 4.71);
    /// §VI-C data-transfer speedup band for Rattrap.
    pub const TRANSFER_SPEEDUP_RATTRAP: (f64, f64) = (1.17, 2.04);
    /// §VI-C computation speedup band for Rattrap.
    pub const COMPUTE_SPEEDUP_RATTRAP: (f64, f64) = (1.05, 1.40);
    /// §VI-C computation speedup band for Rattrap(W/O).
    pub const COMPUTE_SPEEDUP_WO: (f64, f64) = (1.02, 1.13);
    /// §VI-E offloading-failure rates: Rattrap / W-O / VM.
    pub const TRACE_FAILURE_RATES: [f64; 3] = [0.013, 0.077, 0.097];
    /// §VI-E fraction of requests with speedup > 3.0.
    pub const TRACE_SPEEDUP3_FRACTIONS: [f64; 3] = [0.540, 0.508, 0.115];
    /// Table II upload totals (KB): [workload][rattrap, w/o, vm].
    pub const TABLE2_UPLOAD_KB: [[u64; 3]; 4] = [
        [29_440, 34_233, 35_047], // OCR
        [4_788, 14_011, 13_301],  // ChessGame
        [91_973, 99_375, 98_895], // VirusScan
        [169, 776, 705],          // Linpack
    ];
    /// Table II download totals (KB).
    pub const TABLE2_DOWNLOAD_KB: [[u64; 3]; 4] = [
        [154, 152, 152],
        [34, 34, 34],
        [1_738, 1_582, 1_572],
        [11, 11, 11],
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    #[test]
    fn device_is_several_times_slower_than_a_server_core() {
        let d = DeviceSpec::default_handset();
        // Effective device speed 0.48 GHz-equivalents vs the 2.66 GHz Xeon.
        let work = Megacycles(2660.0);
        let local = d.local_execution_time(work).as_secs_f64();
        let server = work.seconds_at(2.66, 1.0);
        assert!(
            local / server > 4.0 && local / server < 8.0,
            "ratio {}",
            local / server
        );
    }

    #[test]
    fn iot_device_is_much_weaker_than_the_handset() {
        let iot = DeviceSpec::iot_class();
        let handset = DeviceSpec::default_handset();
        let work = Megacycles(2660.0);
        let ratio = iot.local_execution_time(work).as_secs_f64()
            / handset.local_execution_time(work).as_secs_f64();
        // 0.48 GHz-equiv handset vs 0.225 GHz-equiv Pi-class device.
        assert!(ratio > 1.5 && ratio < 4.0, "ratio {ratio}");
        let table = DeviceSpec::handset_table();
        assert_eq!(table[0].1, handset);
        assert_eq!(table[1].1, iot);
    }

    #[test]
    fn iot_class_devices_gain_the_most_from_an_edge_pop() {
        // The geo edge cells pair `iot_class()` devices with the
        // `IotRadio` link: even over that ~2 Mbps radio, the Pi-class
        // CPU is weak enough that offloading mean-sized compute to a
        // warm edge core wins — and by a wider margin than the handset
        // gains, which is why IoT cohorts route to the nearest PoP.
        let iot = DeviceSpec::iot_class();
        let handset = DeviceSpec::default_handset();
        let link = netsim::Link::new(netsim::NetworkScenario::IotRadio);
        for kind in WorkloadKind::ALL {
            let p = kind.profile();
            let server = Megacycles(p.compute_megacycles_mean).seconds_at(2.66, 0.95);
            let transfer = link
                .expected_transfer_time(p.payload_bytes_mean, netsim::Direction::Upload)
                .as_secs_f64();
            let warm = server + transfer + 0.05;
            let iot_gain = iot
                .local_execution_time(Megacycles(p.compute_megacycles_mean))
                .as_secs_f64()
                / warm;
            let handset_gain = handset
                .local_execution_time(Megacycles(p.compute_megacycles_mean))
                .as_secs_f64()
                / warm;
            assert!(
                iot_gain > handset_gain,
                "{}: iot gain {iot_gain} vs handset {handset_gain}",
                kind.label()
            );
        }
    }

    #[test]
    fn warm_offloading_beats_local_for_every_workload() {
        // Sanity: mean compute offloaded to a warm server core (incl. a
        // LAN round trip) must beat local execution — otherwise the
        // premise of Fig. 1's speedup > 1 regime collapses.
        let d = DeviceSpec::default_handset();
        for kind in WorkloadKind::ALL {
            let p = kind.profile();
            let local = d.local_execution_time(Megacycles(p.compute_megacycles_mean));
            let server = Megacycles(p.compute_megacycles_mean).seconds_at(2.66, 0.95);
            let transfer = p.payload_bytes_mean as f64 / (40.0e6 / 8.0);
            let warm = server + transfer + 0.05;
            assert!(
                local.as_secs_f64() / warm > 1.5,
                "{}: local {} vs warm {}",
                kind.label(),
                local.as_secs_f64(),
                warm
            );
        }
    }
}
