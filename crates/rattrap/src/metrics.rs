//! Report sinks and canonical digests.
//!
//! The simulation core hands every completed [`RequestRecord`] to a
//! [`RequestSink`]. The default sink materializes the familiar
//! [`SimulationReport`]; streaming sinks (bounded-memory accumulators
//! for large trace replays) consume each record as it completes and
//! never hold the full request vector. The canonical
//! [`SimulationReport::digest`] is the determinism contract: the same
//! scenario and seed must produce the same digest on every run, before
//! and after any engine refactor.

use crate::lifecycle::Phase;
use crate::request::RequestRecord;
use crate::simulation::SimulationReport;
use simkit::SimDuration;
use std::collections::BTreeMap;

/// Consumes completed requests one at a time, in completion order
/// (ties in completion time arrive in engine event order, which is
/// deterministic for a fixed seed).
pub trait RequestSink {
    /// Accept one completed request.
    fn accept(&mut self, record: RequestRecord);
}

/// The default sink: collects every record for a full
/// [`SimulationReport`].
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// Records in completion order.
    pub records: Vec<RequestRecord>,
}

impl RequestSink for CollectingSink {
    fn accept(&mut self, record: RequestRecord) {
        self.records.push(record);
    }
}

/// A sink that only counts completions — the cheapest possible probe,
/// useful when an experiment needs throughput but no per-request data.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Completed requests seen.
    pub completed: u64,
}

impl RequestSink for CountingSink {
    fn accept(&mut self, _record: RequestRecord) {
        self.completed += 1;
    }
}

/// Splits completions by tenant for multi-tenant (noisy-neighbor)
/// replays: each device belongs to one tenant, and the sink accumulates
/// that tenant's accounting and response times as records stream in.
/// The scenario plane supplies the device → tenant map; this sink has
/// no opinion about how it was drawn.
#[derive(Debug)]
pub struct TenantSplitSink {
    /// Tenant index per device; devices past the end wrap.
    tenant_of: Vec<u32>,
    lanes: Vec<TenantLane>,
}

/// One tenant's accumulated view of a run.
#[derive(Debug, Clone)]
pub struct TenantLane {
    /// Tenant display name.
    pub name: String,
    /// Requests this tenant submitted (every record counts once).
    pub submitted: u64,
    /// Served in the cloud.
    pub completed_remote: u64,
    /// Degraded to on-device execution.
    pub fallback_local: u64,
    /// Abandoned with no response.
    pub abandoned: u64,
    /// Response times, seconds, completion order.
    response_s: Vec<f64>,
}

impl TenantLane {
    /// Mean response time, seconds (0 when the tenant saw no traffic).
    pub fn mean_response_s(&self) -> f64 {
        if self.response_s.is_empty() {
            0.0
        } else {
            self.response_s.iter().sum::<f64>() / self.response_s.len() as f64
        }
    }

    /// p99 response time, seconds (0 when the tenant saw no traffic).
    pub fn p99_response_s(&self) -> f64 {
        if self.response_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.response_s.clone();
        sorted.sort_by(f64::total_cmp);
        let ix = ((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len());
        sorted[ix - 1]
    }
}

impl TenantSplitSink {
    /// A sink over `names.len()` tenants with `tenant_of[d]` naming
    /// device `d`'s tenant.
    pub fn new(names: &[String], tenant_of: Vec<u32>) -> Self {
        TenantSplitSink {
            tenant_of,
            lanes: names
                .iter()
                .map(|n| TenantLane {
                    name: n.clone(),
                    submitted: 0,
                    completed_remote: 0,
                    fallback_local: 0,
                    abandoned: 0,
                    response_s: Vec::new(),
                })
                .collect(),
        }
    }

    /// The accumulated per-tenant lanes, tenant-index order.
    pub fn tenants(&self) -> &[TenantLane] {
        &self.lanes
    }

    /// Total records accepted across every tenant.
    pub fn total_submitted(&self) -> u64 {
        self.lanes.iter().map(|l| l.submitted).sum()
    }
}

impl RequestSink for TenantSplitSink {
    fn accept(&mut self, record: RequestRecord) {
        if self.lanes.is_empty() {
            return;
        }
        let t = self.tenant_of[(record.device as usize) % self.tenant_of.len().max(1)];
        let n = self.lanes.len();
        let lane = &mut self.lanes[(t as usize) % n];
        lane.submitted += 1;
        if record.abandoned {
            lane.abandoned += 1;
        } else if record.fell_back_local || record.executed_locally {
            lane.fallback_local += 1;
        } else {
            lane.completed_remote += 1;
        }
        lane.response_s.push(record.response_time().as_secs_f64());
    }
}

/// Everything a run produces *besides* the per-request records: the
/// Fig. 2 timelines, cache/access counters and host-resource peaks.
///
/// [`Simulation::run_with_sink`] returns this while streaming the
/// records themselves into a [`RequestSink`], so experiments on very
/// large traces never materialize a `Vec<RequestRecord>`.
///
/// [`Simulation::run_with_sink`]: crate::simulation::Simulation::run_with_sink
#[derive(Debug, Clone)]
pub struct ReportSummary {
    /// CPU utilization per second (fraction of provisioned vCPUs busy).
    pub cpu_timeline: Vec<f64>,
    /// Disk reads, MB/s per second.
    pub io_read_mb_s: Vec<f64>,
    /// Disk writes, MB/s per second.
    pub io_write_mb_s: Vec<f64>,
    /// Code-cache statistics.
    pub warehouse_stats: crate::warehouse::WarehouseStats,
    /// Access-controller filter invocations.
    pub access_checks: u64,
    /// Instances provisioned over the run.
    pub instances_provisioned: u32,
    /// Peak host memory reserved, bytes.
    pub peak_memory_bytes: u64,
    /// Physical disk in use at the end of the run, bytes.
    pub final_disk_bytes: u64,
    /// Peak physical disk over the run, bytes.
    pub peak_disk_bytes: u64,
    /// Simulated instant the last request completed.
    pub finished_at: simkit::SimTime,
    /// Requests delivered to the sink.
    pub completed_requests: u64,
    /// Fault-plane accounting (all zero on fault-free runs).
    pub fault_stats: FaultStats,
}

/// What the fault plane did to a run: how many faults were scheduled
/// and actually hit a request, and how the resilience policy absorbed
/// them. Every field is zero when the fault plan is empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Fault events in the generated plan (including ones that struck
    /// nothing, e.g. an outage while the link was idle).
    pub injected: u64,
    /// Attempt-killing strikes on live requests (a single request can
    /// be struck several times).
    pub strikes: u64,
    /// Retry attempts launched after a strike.
    pub retries: u64,
    /// Requests that degraded gracefully to on-device execution.
    pub fallbacks: u64,
    /// Requests abandoned with no response.
    pub abandoned: u64,
    /// Wall-clock lost to faults across all requests (failed-attempt
    /// dwell + backoff waits; the sum of `phases.fault_recovery`).
    pub time_lost: SimDuration,
    /// Strikes attributed to the lifecycle phase they interrupted.
    pub strikes_by_phase: BTreeMap<Phase, u64>,
}

impl FaultStats {
    /// Record one attempt-killing strike in `phase`.
    pub fn record_strike(&mut self, phase: Phase) {
        self.strikes += 1;
        *self.strikes_by_phase.entry(phase).or_insert(0) += 1;
    }
}

/// Streaming FNV-1a (64-bit) over a canonical byte serialization.
///
/// Not cryptographic — it only needs to make accidental report drift
/// loud, and FNV keeps the golden test free of dependencies.
#[derive(Debug, Clone)]
pub struct ReportHasher {
    state: u64,
}

impl Default for ReportHasher {
    fn default() -> Self {
        ReportHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl ReportHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `f64` bit-exactly.
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

// The canonical digest hashes exactly this field list. The resilience
// fields (`phases.fault_recovery`, `retries`, `fell_back_local`,
// `abandoned`) are deliberately NOT hashed: they are structurally zero
// on fault-free runs, and excluding them keeps the six golden digests
// valid across the fault-plane's introduction. Faulty runs still
// differ through the hashed fields (completion times, bytes, phases).
fn hash_record(h: &mut ReportHasher, r: &RequestRecord) {
    h.write_u64(r.id);
    h.write_u64(r.device as u64);
    h.write(format!("{:?}", r.kind).as_bytes());
    h.write(format!("{:?}", r.scenario).as_bytes());
    h.write_u64(r.seq_on_device as u64);
    h.write_u64(r.arrived_at.as_micros());
    h.write_u64(r.completed_at.as_micros());
    h.write_u64(r.phases.network_connection.as_micros());
    h.write_u64(r.phases.data_transfer.as_micros());
    h.write_u64(r.phases.runtime_preparation.as_micros());
    h.write_u64(r.phases.computation_execution.as_micros());
    h.write_u64(r.upload_bytes);
    h.write_u64(r.code_bytes_sent);
    h.write_u64(r.download_bytes);
    h.write(&[
        r.code_transferred as u8,
        r.cid_affinity_hit as u8,
        r.executed_locally as u8,
    ]);
    h.write_u64(r.local_execution.as_micros());
    h.write_u64(r.upload_time.as_micros());
    h.write_u64(r.download_time.as_micros());
}

impl SimulationReport {
    /// Canonical 64-bit digest over every field of the report:
    /// requests (all fields, µs-exact times), the three per-second
    /// timelines (bit-exact floats), cache/access counters and
    /// host-resource peaks. Two reports share a digest iff they are
    /// observably identical.
    pub fn digest(&self) -> u64 {
        let mut h = ReportHasher::new();
        h.write_u64(self.requests.len() as u64);
        for r in &self.requests {
            hash_record(&mut h, r);
        }
        for series in [&self.cpu_timeline, &self.io_read_mb_s, &self.io_write_mb_s] {
            h.write_u64(series.len() as u64);
            for &v in series.iter() {
                h.write_f64(v);
            }
        }
        h.write_u64(self.warehouse_stats.hits);
        h.write_u64(self.warehouse_stats.misses);
        h.write_u64(self.warehouse_stats.evictions);
        h.write_u64(self.warehouse_stats.bytes_saved);
        h.write_u64(self.access_checks);
        h.write_u64(self.instances_provisioned as u64);
        h.write_u64(self.peak_memory_bytes);
        h.write_u64(self.final_disk_bytes);
        h.write_u64(self.peak_disk_bytes);
        h.write_u64(self.finished_at.as_micros());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        let mut h = ReportHasher::new();
        assert_eq!(h.finish(), 0xcbf29ce484222325, "offset basis");
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h2 = ReportHasher::new();
        h2.write(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn collecting_sink_preserves_order() {
        use crate::request::PhaseBreakdown;
        use simkit::{SimDuration, SimTime};
        let mut sink = CollectingSink::default();
        for id in 0..3u64 {
            sink.accept(RequestRecord {
                id,
                device: 0,
                kind: workloads::WorkloadKind::Ocr,
                scenario: netsim::NetworkScenario::LanWifi,
                seq_on_device: id as u32,
                arrived_at: SimTime::ZERO,
                completed_at: SimTime::from_secs_f64(id as f64),
                phases: PhaseBreakdown::default(),
                upload_bytes: 0,
                code_bytes_sent: 0,
                download_bytes: 0,
                code_transferred: false,
                cid_affinity_hit: false,
                local_execution: SimDuration::ZERO,
                upload_time: SimDuration::ZERO,
                download_time: SimDuration::ZERO,
                executed_locally: false,
                retries: 0,
                fell_back_local: false,
                abandoned: false,
            });
        }
        let ids: Vec<u64> = sink.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
