//! Per-request records: the phase decomposition of §III-B and the
//! quantities every figure of the evaluation is computed from.

use netsim::NetworkScenario;
use simkit::{SimDuration, SimTime};
use workloads::WorkloadKind;

/// The four phases of an offloading request (§III-B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Establishing the device ↔ cloud connection.
    pub network_connection: SimDuration,
    /// Moving code, files, parameters and results.
    pub data_transfer: SimDuration,
    /// Setting up the mobile code runtime (boot wait, queueing for a
    /// runtime, loading code into the runtime).
    pub runtime_preparation: SimDuration,
    /// Executing the offloaded computation (including its offloading I/O).
    pub computation_execution: SimDuration,
    /// Time lost to faults: failed attempts (their reversed transfer
    /// charges land here as wall-clock dwell) plus backoff waits before
    /// retries. Zero on every fault-free request.
    pub fault_recovery: SimDuration,
}

impl PhaseBreakdown {
    /// Total response time.
    pub fn total(&self) -> SimDuration {
        self.network_connection
            + self.data_transfer
            + self.runtime_preparation
            + self.computation_execution
            + self.fault_recovery
    }
}

/// The complete record of one served offloading request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Global request sequence number.
    pub id: u64,
    /// Issuing device.
    pub device: u32,
    /// Workload.
    pub kind: WorkloadKind,
    /// Network scenario the request travelled over.
    pub scenario: NetworkScenario,
    /// Index of this request within its device's sequence (0-based).
    pub seq_on_device: u32,
    /// When the device issued the request.
    pub arrived_at: SimTime,
    /// When the response reached the device.
    pub completed_at: SimTime,
    /// Phase decomposition.
    pub phases: PhaseBreakdown,
    /// Bytes uploaded (code + payload + control).
    pub upload_bytes: u64,
    /// …of which mobile code.
    pub code_bytes_sent: u64,
    /// Bytes downloaded (results).
    pub download_bytes: u64,
    /// Did the request include a code transfer (cache miss / new runtime)?
    pub code_transferred: bool,
    /// Was the app's code already loaded in the chosen runtime (CID hit)?
    pub cid_affinity_hit: bool,
    /// Time the same task takes locally on the device.
    pub local_execution: SimDuration,
    /// Upload time component alone (for the energy replay).
    pub upload_time: SimDuration,
    /// Download time component alone.
    pub download_time: SimDuration,
    /// The client's decision engine kept the task on the device (no
    /// offload happened; phases are zero and response = local time).
    pub executed_locally: bool,
    /// Retry attempts consumed recovering from injected faults.
    pub retries: u32,
    /// The resilience policy gave up on the cloud and finished the
    /// task on the device (graceful degradation).
    pub fell_back_local: bool,
    /// The request was abandoned after exhausting its retry budget
    /// with no local fallback. `completed_at` stamps the abandonment.
    pub abandoned: bool,
}

impl RequestRecord {
    /// Offloading response time.
    pub fn response_time(&self) -> SimDuration {
        self.completed_at - self.arrived_at
    }

    /// "Offloading speedup refers to the ratio of local execution time
    /// and offloading response time" (§III-B).
    pub fn speedup(&self) -> f64 {
        let resp = self.response_time().as_secs_f64();
        if resp <= 0.0 {
            return f64::INFINITY;
        }
        self.local_execution.as_secs_f64() / resp
    }

    /// "When offloading speedup is larger than 1, code offloading
    /// outperforms local execution; otherwise, we call it an offloading
    /// failure." An abandoned request never produced a response at all
    /// and always counts as a failure.
    pub fn is_offloading_failure(&self) -> bool {
        if self.abandoned {
            return true;
        }
        self.speedup() <= 1.0
    }

    /// Device-side wait while the cloud works (for the energy model).
    pub fn cloud_wait(&self) -> SimDuration {
        self.phases.runtime_preparation + self.phases.computation_execution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(local_s: f64, phases: PhaseBreakdown) -> RequestRecord {
        RequestRecord {
            id: 0,
            device: 0,
            kind: WorkloadKind::Ocr,
            scenario: NetworkScenario::LanWifi,
            seq_on_device: 0,
            arrived_at: SimTime::from_secs(10),
            completed_at: SimTime::from_secs(10) + phases.total(),
            phases,
            upload_bytes: 0,
            code_bytes_sent: 0,
            download_bytes: 0,
            code_transferred: false,
            cid_affinity_hit: false,
            local_execution: SimDuration::from_secs_f64(local_s),
            upload_time: SimDuration::ZERO,
            download_time: SimDuration::ZERO,
            executed_locally: false,
            retries: 0,
            fell_back_local: false,
            abandoned: false,
        }
    }

    #[test]
    fn phases_sum_to_total() {
        let p = PhaseBreakdown {
            network_connection: SimDuration::from_millis(5),
            data_transfer: SimDuration::from_millis(100),
            runtime_preparation: SimDuration::from_millis(1750),
            computation_execution: SimDuration::from_millis(2500),
            fault_recovery: SimDuration::from_millis(45),
        };
        assert_eq!(p.total(), SimDuration::from_millis(4400));
    }

    #[test]
    fn abandoned_requests_always_count_as_failures() {
        let mut r = record(
            100.0,
            PhaseBreakdown {
                computation_execution: SimDuration::from_secs(1),
                ..Default::default()
            },
        );
        assert!(!r.is_offloading_failure(), "huge speedup");
        r.abandoned = true;
        assert!(r.is_offloading_failure(), "abandonment overrides speedup");
    }

    #[test]
    fn speedup_and_failure_classification() {
        let fast = record(
            10.0,
            PhaseBreakdown {
                computation_execution: SimDuration::from_secs(2),
                ..Default::default()
            },
        );
        assert!((fast.speedup() - 5.0).abs() < 1e-9);
        assert!(!fast.is_offloading_failure());

        let slow = record(
            2.0,
            PhaseBreakdown {
                runtime_preparation: SimDuration::from_secs(28),
                computation_execution: SimDuration::from_secs(2),
                ..Default::default()
            },
        );
        assert!(slow.speedup() < 0.1);
        assert!(slow.is_offloading_failure(), "cold-start VM request fails");
    }

    #[test]
    fn response_time_matches_timestamps() {
        let p = PhaseBreakdown {
            computation_execution: SimDuration::from_secs(3),
            ..Default::default()
        };
        let r = record(1.0, p);
        assert_eq!(r.response_time(), SimDuration::from_secs(3));
        assert_eq!(r.cloud_wait(), SimDuration::from_secs(3));
    }
}
