//! Property tests for the energy model.

use netsim::NetworkScenario;
use powersim::{DevicePowerModel, EnergyEstimator, OffloadPhases};
use proptest::prelude::*;
use simkit::SimDuration;

fn scenario_from(i: u8) -> NetworkScenario {
    NetworkScenario::ALL[i as usize % NetworkScenario::ALL.len()]
}

fn phases(c: u64, u: u64, w: u64, d: u64) -> OffloadPhases {
    OffloadPhases {
        connect: SimDuration::from_millis(c),
        upload: SimDuration::from_millis(u),
        cloud_wait: SimDuration::from_millis(w),
        download: SimDuration::from_millis(d),
    }
}

proptest! {
    /// Energy is non-negative and monotone in every phase duration.
    #[test]
    fn energy_monotone_in_phases(
        s in any::<u8>(),
        base in prop::collection::vec(0u64..30_000, 4),
        extra in 1u64..30_000,
        which in 0usize..4,
    ) {
        let est = EnergyEstimator::new(DevicePowerModel::power_tutor_default());
        let scenario = scenario_from(s);
        let p0 = phases(base[0], base[1], base[2], base[3]);
        let mut grown = base.clone();
        grown[which] += extra;
        let p1 = phases(grown[0], grown[1], grown[2], grown[3]);
        let e0 = est.offloaded_request(scenario, p0);
        let e1 = est.offloaded_request(scenario, p1);
        prop_assert!(e0 >= 0.0);
        prop_assert!(e1 >= e0, "growing phase {which} must not reduce energy");
    }

    /// Local energy scales linearly with compute time.
    #[test]
    fn local_energy_linear(ms in 1u64..100_000, k in 2u64..5) {
        let est = EnergyEstimator::new(DevicePowerModel::power_tutor_default());
        let one = est.local_execution(SimDuration::from_millis(ms));
        let many = est.local_execution(SimDuration::from_millis(ms * k));
        prop_assert!((many / one - k as f64).abs() < 1e-6);
    }

    /// Fixed per-request radio costs (promotion + tail) dominate on
    /// cellular: for short transfers, 3G always costs more than WiFi.
    /// (For *identical long* phases WiFi can cost more — its TX power
    /// is higher — but 3G's low bandwidth makes real transfers longer,
    /// which netsim models; here we pin the fixed-cost ordering.)
    #[test]
    fn cellular_fixed_costs_dominate_short_requests(p in prop::collection::vec(0u64..500, 4)) {
        let est = EnergyEstimator::new(DevicePowerModel::power_tutor_default());
        let ph = phases(p[0], p[1], p[2], p[3]);
        let wifi = est.offloaded_request(NetworkScenario::LanWifi, ph);
        let g3 = est.offloaded_request(NetworkScenario::ThreeG, ph);
        prop_assert!(g3 >= wifi, "3G {g3} vs wifi {wifi}");
    }

    /// Normalized energy is the plain ratio of the two estimates.
    #[test]
    fn normalized_is_a_ratio(s in any::<u8>(), p in prop::collection::vec(1u64..20_000, 4), local_ms in 1u64..60_000) {
        let est = EnergyEstimator::new(DevicePowerModel::power_tutor_default());
        let scenario = scenario_from(s);
        let ph = phases(p[0], p[1], p[2], p[3]);
        let local = SimDuration::from_millis(local_ms);
        let n = est.normalized(scenario, ph, local);
        let manual = est.offloaded_request(scenario, ph) / est.local_execution(local);
        prop_assert!((n - manual).abs() < 1e-9);
    }
}
