//! # powersim — PowerTutor-style device energy model
//!
//! The paper measures battery impact with PowerTutor (§V) and reports
//! energy normalized to all-local execution (Fig. 10). This crate is
//! the replay side of that experiment: a component power model
//! ([`model`]) — CPU, WiFi, and cellular radios with promotion and tail
//! states — and an estimator ([`estimator`]) that converts the recorded
//! phases of an offloading request into millijoules.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimator;
pub mod model;

pub use estimator::{EnergyEstimator, MilliJoules, OffloadPhases};
pub use model::{DevicePowerModel, RadioProfile};
