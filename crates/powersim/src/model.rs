//! PowerTutor-style component power model (§V: "The power consumption
//! measurement is based on PowerTutor").
//!
//! PowerTutor (Zhang et al., CODES/ISSS'10) models phone power as a sum
//! of per-component state machines. We keep the components that matter
//! to offloading — CPU, WiFi, and the cellular radio with its
//! promotion/tail states — with coefficients from the PowerTutor paper
//! (HTC Dream/Magic class) and LTE figures from follow-up literature
//! for the 4G scenario the original tool predates. Absolute milliwatts
//! only shift all bars together; Fig. 10 is normalized, so the *ratios*
//! (radio ≫ idle CPU, 3G tails ≫ WiFi tails) are what matter.

use netsim::NetworkScenario;
use simkit::SimDuration;

/// Power draw and timing of one radio interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioProfile {
    /// Transmitting (device → cloud), mW.
    pub tx_mw: f64,
    /// Receiving (cloud → device), mW.
    pub rx_mw: f64,
    /// Connected-but-idle (e.g. 3G FACH / WiFi low), mW.
    pub idle_mw: f64,
    /// Power held during the post-transfer tail, mW.
    pub tail_mw: f64,
    /// How long the radio lingers in the tail state after activity.
    pub tail_time: SimDuration,
    /// Ramp-up cost to promote the radio from idle to active, mJ.
    pub promotion_mj: f64,
}

/// The whole device's power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePowerModel {
    /// CPU fully busy on the offloadable computation, mW.
    pub cpu_active_mw: f64,
    /// CPU while the device waits for a cloud response, mW.
    pub cpu_wait_mw: f64,
    /// Baseline system draw always present (kept out of comparisons by
    /// normalization but needed for absolute numbers), mW.
    pub base_mw: f64,
    /// WiFi radio (used for LAN and WAN scenarios).
    pub wifi: RadioProfile,
    /// 3G radio.
    pub three_g: RadioProfile,
    /// 4G radio.
    pub four_g: RadioProfile,
}

impl DevicePowerModel {
    /// Coefficients in the PowerTutor style for a 2016-class handset.
    pub fn power_tutor_default() -> Self {
        DevicePowerModel {
            cpu_active_mw: 680.0,
            cpu_wait_mw: 85.0,
            base_mw: 25.0,
            wifi: RadioProfile {
                tx_mw: 720.0,
                rx_mw: 520.0,
                idle_mw: 20.0,
                tail_mw: 120.0,
                tail_time: SimDuration::from_millis(250),
                promotion_mj: 10.0,
            },
            three_g: RadioProfile {
                // PowerTutor: DCH ≈ 570 mW, FACH ≈ 401 mW; tails are the
                // dominant 3G cost (DCH→FACH ≈ 5 s, FACH→IDLE ≈ 12 s; we
                // charge the DCH tail at FACH power).
                tx_mw: 570.0,
                rx_mw: 570.0,
                idle_mw: 10.0,
                tail_mw: 401.0,
                tail_time: SimDuration::from_secs(5),
                promotion_mj: 800.0,
            },
            four_g: RadioProfile {
                // LTE draws more while active but tails are shorter.
                tx_mw: 1250.0,
                rx_mw: 1000.0,
                idle_mw: 12.0,
                tail_mw: 350.0,
                tail_time: SimDuration::from_millis(1500),
                promotion_mj: 400.0,
            },
        }
    }

    /// The radio profile a network scenario uses.
    pub fn radio_for(&self, scenario: NetworkScenario) -> &RadioProfile {
        match scenario {
            // The IoT gateway radio reuses the WiFi profile: an
            // 802.15.4-class uplink has no cellular promotion/tail
            // state machine, and its draw is closest to WiFi's.
            NetworkScenario::LanWifi | NetworkScenario::WanWifi | NetworkScenario::IotRadio => {
                &self.wifi
            }
            NetworkScenario::ThreeG => &self.three_g,
            NetworkScenario::FourG => &self.four_g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radio_mapping() {
        let m = DevicePowerModel::power_tutor_default();
        assert_eq!(m.radio_for(NetworkScenario::LanWifi).tx_mw, m.wifi.tx_mw);
        assert_eq!(m.radio_for(NetworkScenario::WanWifi).tx_mw, m.wifi.tx_mw);
        assert_eq!(
            m.radio_for(NetworkScenario::ThreeG).tail_time,
            SimDuration::from_secs(5)
        );
        assert!(m.radio_for(NetworkScenario::FourG).tx_mw > m.wifi.tx_mw);
    }

    #[test]
    fn cellular_tails_dominate_wifi_tails() {
        let m = DevicePowerModel::power_tutor_default();
        let tail_mj = |r: &RadioProfile| r.tail_mw * r.tail_time.as_secs_f64();
        assert!(tail_mj(&m.three_g) > 20.0 * tail_mj(&m.wifi));
        assert!(tail_mj(&m.four_g) > tail_mj(&m.wifi));
        assert!(tail_mj(&m.three_g) > tail_mj(&m.four_g));
    }

    #[test]
    fn waiting_is_much_cheaper_than_computing() {
        let m = DevicePowerModel::power_tutor_default();
        assert!(m.cpu_active_mw > 5.0 * m.cpu_wait_mw);
    }
}
