//! Energy accounting for local execution vs. offloaded requests.
//!
//! The Fig. 10 experiment records the phases of each offloading request
//! and replays them against a power model. [`EnergyEstimator`] is that
//! replay: phase durations in, millijoules out.

use crate::model::DevicePowerModel;
use netsim::NetworkScenario;
use simkit::SimDuration;

/// Phase durations of one offloading request, as seen by the *device*.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OffloadPhases {
    /// Establishing the connection to the cloud.
    pub connect: SimDuration,
    /// Uploading code/parameters/files.
    pub upload: SimDuration,
    /// Waiting while the cloud prepares the runtime and computes.
    pub cloud_wait: SimDuration,
    /// Downloading the result.
    pub download: SimDuration,
}

impl OffloadPhases {
    /// Total wall time of the request.
    pub fn total(&self) -> SimDuration {
        self.connect + self.upload + self.cloud_wait + self.download
    }
}

/// Energy in millijoules.
pub type MilliJoules = f64;

/// Estimates device-side energy from phase timings.
#[derive(Debug, Clone)]
pub struct EnergyEstimator {
    model: DevicePowerModel,
}

impl EnergyEstimator {
    /// An estimator over the given model.
    pub fn new(model: DevicePowerModel) -> Self {
        EnergyEstimator { model }
    }

    /// The model in use.
    pub fn model(&self) -> &DevicePowerModel {
        &self.model
    }

    /// Energy to run the task entirely on the device.
    pub fn local_execution(&self, compute_time: SimDuration) -> MilliJoules {
        (self.model.cpu_active_mw + self.model.base_mw) * compute_time.as_secs_f64()
    }

    /// Energy of one offloaded request under `scenario`.
    ///
    /// Connect + upload hold the radio in TX-class states, the cloud
    /// wait keeps only the idle radio and a lightly loaded CPU, the
    /// download holds RX, and the radio then pays its full tail before
    /// demoting. Promotion energy is charged once per request.
    pub fn offloaded_request(
        &self,
        scenario: NetworkScenario,
        phases: OffloadPhases,
    ) -> MilliJoules {
        let radio = self.model.radio_for(scenario);
        let base_cpu = self.model.cpu_wait_mw + self.model.base_mw;
        let mut mj = radio.promotion_mj;
        mj += (radio.tx_mw + base_cpu) * (phases.connect + phases.upload).as_secs_f64();
        mj += (radio.idle_mw + base_cpu) * phases.cloud_wait.as_secs_f64();
        mj += (radio.rx_mw + base_cpu) * phases.download.as_secs_f64();
        mj += radio.tail_mw * radio.tail_time.as_secs_f64();
        mj
    }

    /// Normalized energy: offloaded energy divided by local-execution
    /// energy for the same task (the y-axis of Fig. 10). Values < 1 mean
    /// offloading extends battery life.
    pub fn normalized(
        &self,
        scenario: NetworkScenario,
        phases: OffloadPhases,
        local_compute: SimDuration,
    ) -> f64 {
        let local = self.local_execution(local_compute);
        if local <= 0.0 {
            return f64::INFINITY;
        }
        self.offloaded_request(scenario, phases) / local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DevicePowerModel;

    fn est() -> EnergyEstimator {
        EnergyEstimator::new(DevicePowerModel::power_tutor_default())
    }

    fn phases(connect_ms: u64, up_ms: u64, wait_ms: u64, down_ms: u64) -> OffloadPhases {
        OffloadPhases {
            connect: SimDuration::from_millis(connect_ms),
            upload: SimDuration::from_millis(up_ms),
            cloud_wait: SimDuration::from_millis(wait_ms),
            download: SimDuration::from_millis(down_ms),
        }
    }

    #[test]
    fn local_energy_scales_with_time() {
        let e = est();
        let one = e.local_execution(SimDuration::from_secs(1));
        let two = e.local_execution(SimDuration::from_secs(2));
        assert!((two / one - 2.0).abs() < 1e-9);
        assert!(one > 0.0);
    }

    #[test]
    fn offloading_compute_heavy_task_saves_energy() {
        // 20 s of local compute vs a 2 s round trip over LAN: offloading
        // must win comfortably (the basic premise of the paper).
        let e = est();
        let n = e.normalized(
            NetworkScenario::LanWifi,
            phases(5, 200, 1800, 50),
            SimDuration::from_secs(20),
        );
        assert!(n < 0.2, "normalized energy {n}");
    }

    #[test]
    fn offloading_tiny_task_over_3g_wastes_energy() {
        // 0.2 s of local compute offloaded over 3G with big tails: lose.
        let e = est();
        let n = e.normalized(
            NetworkScenario::ThreeG,
            phases(400, 2000, 500, 1000),
            SimDuration::from_millis(200),
        );
        assert!(n > 1.0, "normalized energy {n}");
    }

    #[test]
    fn wait_phase_is_cheap() {
        let e = est();
        let waiting = e.offloaded_request(NetworkScenario::LanWifi, phases(0, 0, 10_000, 0));
        let uploading = e.offloaded_request(NetworkScenario::LanWifi, phases(0, 10_000, 0, 0));
        assert!(
            uploading > 3.0 * waiting,
            "upload {uploading} vs wait {waiting}"
        );
    }

    #[test]
    fn three_g_request_costs_more_than_wifi() {
        let e = est();
        let p = phases(50, 500, 1000, 100);
        let wifi = e.offloaded_request(NetworkScenario::LanWifi, p);
        let cell = e.offloaded_request(NetworkScenario::ThreeG, p);
        assert!(cell > wifi, "3g {cell} wifi {wifi}");
    }

    #[test]
    fn shorter_cloud_wait_reduces_energy() {
        // Rattrap's whole energy win: faster runtime prep → shorter
        // request → less radio/CPU time.
        let e = est();
        let slow = e.offloaded_request(NetworkScenario::WanWifi, phases(90, 400, 28_000, 100));
        let fast = e.offloaded_request(NetworkScenario::WanWifi, phases(90, 400, 1_750, 100));
        assert!(fast < slow * 0.5, "fast {fast} slow {slow}");
    }

    #[test]
    fn zero_local_compute_normalizes_to_infinity() {
        let e = est();
        let n = e.normalized(
            NetworkScenario::LanWifi,
            phases(1, 1, 1, 1),
            SimDuration::ZERO,
        );
        assert!(n.is_infinite());
    }
}
