//! Multi-region configuration: regions, tiers, the WAN fabric, and
//! the [`Topology`] index arithmetic every geo component shares.

use fleet::config::{AutoscalePolicy, FleetConfig, RebalancePolicy};
use hostkernel::HostSpec;
use netsim::NetworkScenario;
use rattrap::{DeviceSpec, PoolPolicy, ResiliencePolicy};
use simkit::faults::FaultConfig;
use simkit::SimDuration;
use traces::livelab::TraceConfig;
use virt::RuntimeClass;

/// One tier of a region: an edge PoP or a regional core. A tier is an
/// independent fleet cell — its hosts run as ordinary fleet host
/// shards, fronted per cell by a consistent-hash ring.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// Hosts the tier may ever use.
    pub hosts: usize,
    /// Hosts active from `t = 0` (locally, the first
    /// `initial_active`); the rest are standby capacity.
    pub initial_active: usize,
    /// Hardware of every host in the tier.
    pub spec: HostSpec,
    /// Device ↔ tier access network (the last-mile radio for edge
    /// PoPs, the uplink backhaul for regional cores).
    pub scenario: NetworkScenario,
    /// The tier's credit-damped scaling policy, including the tier's
    /// own standby boot time (`host_boot`): edge PoPs and regional
    /// cores power capacity on at different speeds.
    pub autoscale: AutoscalePolicy,
}

impl TierSpec {
    /// Default edge PoP: two small cells' worth of paper servers, one
    /// active, reached over the IoT-class radio. Boot time is the
    /// fleet default (45 s) — the boot-time regression test pins this
    /// against the fleet golden digest.
    pub fn edge() -> Self {
        TierSpec {
            hosts: 2,
            initial_active: 1,
            spec: HostSpec::paper_server(),
            scenario: NetworkScenario::IotRadio,
            autoscale: AutoscalePolicy::standard(),
        }
    }

    /// Default regional core: bigger pool behind the metro, slower to
    /// boot (90 s — more iron, longer shared-layer publish).
    pub fn core() -> Self {
        let mut autoscale = AutoscalePolicy::standard();
        autoscale.host_boot = SimDuration::from_secs(90);
        TierSpec {
            hosts: 2,
            initial_active: 1,
            spec: HostSpec::paper_server(),
            scenario: NetworkScenario::WanWifi,
            autoscale,
        }
    }
}

/// One geographic region: its device population and its two tiers.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Human-readable name ("us-east", …).
    pub name: String,
    /// Timezone offset in hours relative to region 0 — drives the
    /// sun-following diurnal arrival shift.
    pub tz_offset_h: f64,
    /// Devices homed in this region.
    pub users: u32,
    /// The device profile of this region's population.
    pub device: DeviceSpec,
    /// The edge PoP tier (cell `2r`).
    pub edge: TierSpec,
    /// The regional core tier (cell `2r + 1`).
    pub core: TierSpec,
}

/// The inter-tier WAN fabric: latency and bandwidth per cell pair.
/// Regions sit on a ring; inter-region RTT grows with hop distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanConfig {
    /// Edge ↔ core RTT inside one region (metro fiber).
    pub metro_rtt: SimDuration,
    /// RTT per ring hop between adjacent regions.
    pub hop_rtt: SimDuration,
    /// Metro fabric bandwidth, bytes/s (10 GbE-class).
    pub metro_bps: f64,
    /// Inter-region backbone bandwidth, bytes/s.
    pub inter_bps: f64,
    /// Effective bandwidth of a single request's inter-region WAN
    /// leg, bytes/s. A lone TCP flow at intercontinental RTT is
    /// congestion-window-bound far below the provisioned backbone
    /// rate; `None` (the default) charges the full `inter_bps`.
    /// Bulk transfers over the cell fabrics — migration checkpoints —
    /// always ride the provisioned `inter_bps` regardless: the
    /// control plane stripes them across parallel streams.
    pub flow_bps: Option<f64>,
}

impl WanConfig {
    /// Metro 2 ms / 10 GbE; backbone 40 ms per hop / 1.25 Gbps.
    pub fn standard() -> Self {
        WanConfig {
            metro_rtt: SimDuration::from_millis(2),
            hop_rtt: SimDuration::from_millis(40),
            metro_bps: 1.25e9,
            inter_bps: 1.5625e8,
            flow_bps: None,
        }
    }
}

/// Complete description of one multi-region scenario. Everything
/// observable in the run is a function of this value — same config,
/// same [`crate::GeoReport`], bit for bit.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// The regions, ring order. Cell `2r` is region `r`'s edge PoP,
    /// cell `2r + 1` its regional core.
    pub regions: Vec<RegionSpec>,
    /// WAN latency/bandwidth parameters.
    pub wan: WanConfig,
    /// Per-region arrival template. `users` is overridden with each
    /// region's population, the seed with a per-region derived stream,
    /// and the diurnal curve is phase-shifted by the region's
    /// timezone.
    pub traffic: TraceConfig,
    /// Zipf exponent of per-user app popularity (see
    /// [`FleetConfig::app_skew`]).
    pub app_skew: f64,
    /// Runtime class provisioned for every request.
    pub runtime: RuntimeClass,
    /// Per-host bound on concurrently admitted requests.
    pub admission_capacity: usize,
    /// Per-host instance pool policy.
    pub pool: PoolPolicy,
    /// Cross-cell migration pacing (threshold + minimum spacing);
    /// drives the follow-the-sun rebalancer.
    pub rebalance: RebalancePolicy,
    /// Shed behaviour (fallback-local or abandon).
    pub resilience: ResiliencePolicy,
    /// Per-host App Warehouse capacity, bytes.
    pub warehouse_capacity: u64,
    /// Latency equivalent a warm code cache is worth to the
    /// [`crate::GeoRouter`]: a cell holding a warm container for the
    /// app beats a colder cell up to this much closer.
    pub affinity_bonus: SimDuration,
    /// Conservative synchronization window of the sharded engine.
    pub sync_window: SimDuration,
    /// Optional adversarial-traffic scenario injected on top of the
    /// diurnal base traffic. The compiled arrival script is folded
    /// onto the existing population (synthetic burst users map onto
    /// region-local device indices); cohort radio windows and tenant
    /// accounting are fleet-level concerns (see `fleet::ScenarioStats`)
    /// — the geo plane injects arrivals. `None` (default) leaves the
    /// event stream bit-identical to the pre-scenario engine.
    pub scenario_plan: Option<scenario::ScenarioSpec>,
    /// Master seed; every stream in the run is derived from it.
    pub seed: u64,
}

impl GeoConfig {
    /// A canonical geography of `regions` regions spaced evenly around
    /// the clock (sun-following load), each with default edge and core
    /// tiers, IoT-class devices at the edge, and 32 users.
    pub fn paper_default(regions: usize, seed: u64) -> Self {
        assert!(regions > 0, "a geography needs at least one region");
        let step = 24.0 / regions as f64;
        GeoConfig {
            regions: (0..regions)
                .map(|r| RegionSpec {
                    name: format!("region-{r}"),
                    tz_offset_h: r as f64 * step,
                    users: 32,
                    device: DeviceSpec::iot_class(),
                    edge: TierSpec::edge(),
                    core: TierSpec::core(),
                })
                .collect(),
            wan: WanConfig::standard(),
            traffic: TraceConfig {
                users: 0, // overridden per region
                duration: SimDuration::from_secs(3600),
                sessions_per_hour: 6.0,
                mean_session_len: 22.0,
                intra_gap_s: 5.0,
                seed: 0, // overridden with a derived stream
            },
            app_skew: 1.2,
            runtime: RuntimeClass::CacOptimized,
            admission_capacity: 16,
            pool: PoolPolicy {
                warm_spares: 1,
                max_instances: 8,
                idle_teardown: SimDuration::from_secs(120),
            },
            rebalance: RebalancePolicy::standard(),
            resilience: ResiliencePolicy::standard(),
            warehouse_capacity: 64 * 1024 * 1024,
            affinity_bonus: SimDuration::from_millis(5),
            sync_window: SimDuration::from_millis(1),
            scenario_plan: None,
            seed,
        }
    }

    /// Per-user app weights under the configured Zipf skew.
    pub fn app_weights(&self) -> Vec<f64> {
        (1..=workloads::WorkloadKind::ALL.len())
            .map(|rank| 1.0 / (rank as f64).powf(self.app_skew))
            .collect()
    }

    /// The tier backing `cell`.
    pub fn tier(&self, cell: usize) -> &TierSpec {
        let region = &self.regions[cell / 2];
        if cell.is_multiple_of(2) {
            &region.edge
        } else {
            &region.core
        }
    }

    /// Global control-loop cadence: the fastest scan interval of any
    /// tier, so no cell's autoscaler is starved of observations.
    pub fn scan_interval(&self) -> SimDuration {
        self.regions
            .iter()
            .flat_map(|r| {
                [
                    r.edge.autoscale.scan_interval,
                    r.core.autoscale.scan_interval,
                ]
            })
            .min()
            .expect("at least one region")
    }

    /// Synthesize the fleet config one cell's host shards run under.
    /// Host indices are cell-local (the first `initial_active` are the
    /// tier's initially active hosts); the geo control plane maps them
    /// to global indices.
    pub fn cell_fleet_config(&self, cell: usize) -> FleetConfig {
        let tier = self.tier(cell);
        assert!(
            tier.initial_active <= tier.hosts && (tier.hosts == 0 || tier.initial_active >= 1),
            "tier initial_active must name a non-empty prefix of its hosts \
             (or the tier must be empty — a users-only region)"
        );
        FleetConfig {
            host_specs: vec![tier.spec; tier.hosts],
            initial_active: tier.initial_active,
            scenario: tier.scenario,
            interconnect_bps: self.wan.metro_bps,
            traffic: self.traffic.clone(),
            app_skew: self.app_skew,
            runtime: self.runtime,
            admission_capacity: self.admission_capacity,
            pool: self.pool,
            autoscale: tier.autoscale,
            rebalance: self.rebalance,
            resilience: self.resilience.clone(),
            faults: FaultConfig::none(),
            crash_reboot: SimDuration::from_secs(90),
            warehouse_capacity: self.warehouse_capacity,
            device: self.regions[cell / 2].device,
            sync_window: self.sync_window,
            // The geo control plane owns arrival injection; the cell's
            // host shards never compile their own scenario.
            scenario_plan: None,
            seed: self.seed,
        }
    }
}

/// Index arithmetic over the cell/host layout plus the WAN distance
/// functions — the one shared map of where everything is.
///
/// Cells are numbered `2r` (region `r`'s edge PoP) and `2r + 1` (its
/// regional core); global host indices are cell-major and dense.
#[derive(Debug, Clone)]
pub struct Topology {
    host_base: Vec<usize>,
    cell_of_host: Vec<usize>,
    n_regions: usize,
    wan: WanConfig,
}

impl Topology {
    /// Build the map for `cfg`.
    pub fn new(cfg: &GeoConfig) -> Self {
        let mut host_base = Vec::new();
        let mut cell_of_host = Vec::new();
        let mut base = 0;
        for (cell, _) in cfg
            .regions
            .iter()
            .flat_map(|r| [&r.edge, &r.core])
            .enumerate()
        {
            let tier = cfg.tier(cell);
            host_base.push(base);
            for _ in 0..tier.hosts {
                cell_of_host.push(cell);
            }
            base += tier.hosts;
        }
        Topology {
            host_base,
            cell_of_host,
            n_regions: cfg.regions.len(),
            wan: cfg.wan,
        }
    }

    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.n_regions
    }

    /// Number of cells (two per region).
    pub fn n_cells(&self) -> usize {
        self.n_regions * 2
    }

    /// Total hosts across every cell.
    pub fn n_hosts(&self) -> usize {
        self.cell_of_host.len()
    }

    /// Region `r`'s edge-PoP cell.
    pub fn edge_cell(&self, region: usize) -> usize {
        region * 2
    }

    /// Region `r`'s regional-core cell.
    pub fn core_cell(&self, region: usize) -> usize {
        region * 2 + 1
    }

    /// The region a cell belongs to.
    pub fn region_of_cell(&self, cell: usize) -> usize {
        cell / 2
    }

    /// Whether `cell` is an edge PoP.
    pub fn is_edge(&self, cell: usize) -> bool {
        cell.is_multiple_of(2)
    }

    /// The cell a global host index belongs to.
    pub fn cell_of_host(&self, host: usize) -> usize {
        self.cell_of_host[host]
    }

    /// Global indices of `cell`'s hosts.
    pub fn hosts_in(&self, cell: usize) -> std::ops::Range<usize> {
        let base = self.host_base[cell];
        let end = self
            .host_base
            .get(cell + 1)
            .copied()
            .unwrap_or(self.cell_of_host.len());
        base..end
    }

    /// A global host index as its cell-local index.
    pub fn local_index(&self, host: usize) -> usize {
        host - self.host_base[self.cell_of_host[host]]
    }

    /// Ring distance between two regions (shorter way around).
    pub fn region_hops(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(self.n_regions - d)
    }

    /// Clockwise ring distance from `from` to `to` — the spillover
    /// order across regions.
    pub fn clockwise_hops(&self, from: usize, to: usize) -> usize {
        (to + self.n_regions - from) % self.n_regions
    }

    /// Host-to-host RTT between two cells over the WAN fabric: metro
    /// inside a region, ring hops × hop RTT across regions.
    pub fn cell_rtt(&self, a: usize, b: usize) -> SimDuration {
        let (ra, rb) = (self.region_of_cell(a), self.region_of_cell(b));
        if ra == rb {
            if a == b {
                SimDuration::ZERO
            } else {
                self.wan.metro_rtt
            }
        } else {
            SimDuration::from_micros(self.wan.hop_rtt.as_micros() * self.region_hops(ra, rb) as u64)
        }
    }

    /// Extra round-trip a device homed in `region` pays to reach
    /// `cell`, beyond its access link: zero for the home edge PoP,
    /// metro for the home core, ring hops (plus metro for a remote
    /// core) across regions.
    pub fn device_rtt(&self, region: usize, cell: usize) -> SimDuration {
        let rc = self.region_of_cell(cell);
        if rc == region {
            if self.is_edge(cell) {
                SimDuration::ZERO
            } else {
                self.wan.metro_rtt
            }
        } else {
            let hops = SimDuration::from_micros(
                self.wan.hop_rtt.as_micros() * self.region_hops(region, rc) as u64,
            );
            if self.is_edge(cell) {
                hops
            } else {
                hops + self.wan.metro_rtt
            }
        }
    }

    /// Bandwidth of the WAN leg a device homed in `region` shares when
    /// served by `cell` (`None` when the home edge serves it — no WAN
    /// leg at all).
    pub fn device_bps(&self, region: usize, cell: usize) -> Option<f64> {
        let rc = self.region_of_cell(cell);
        if rc == region {
            if self.is_edge(cell) {
                None
            } else {
                Some(self.wan.metro_bps)
            }
        } else {
            Some(self.wan.flow_bps.unwrap_or(self.wan.inter_bps))
        }
    }

    /// Bandwidth of the fabric between two cells, bytes/s.
    pub fn cell_bps(&self, a: usize, b: usize) -> f64 {
        if self.region_of_cell(a) == self.region_of_cell(b) {
            self.wan.metro_bps
        } else {
            self.wan.inter_bps
        }
    }

    /// Number of unordered cell pairs (including self-pairs — an
    /// intra-cell migration still crosses the metro fabric).
    pub fn n_pairs(&self) -> usize {
        let n = self.n_cells();
        n * (n + 1) / 2
    }

    /// Dense index of the unordered cell pair `{a, b}`.
    pub fn pair_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Triangular layout: row `lo` holds pairs (lo, lo..n) and
        // starts after the ∑_{i<lo} (n − i) pairs of earlier rows.
        let n = self.n_cells();
        lo * (2 * n - lo + 1) / 2 + (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_indices_are_dense_and_consistent() {
        let cfg = GeoConfig::paper_default(3, 7);
        let topo = Topology::new(&cfg);
        assert_eq!(topo.n_regions(), 3);
        assert_eq!(topo.n_cells(), 6);
        assert_eq!(topo.n_hosts(), 12);
        let mut seen = 0;
        for cell in 0..topo.n_cells() {
            for g in topo.hosts_in(cell) {
                assert_eq!(topo.cell_of_host(g), cell);
                assert_eq!(g, seen);
                seen += 1;
            }
        }
        assert_eq!(seen, topo.n_hosts());
        assert_eq!(topo.edge_cell(1), 2);
        assert_eq!(topo.core_cell(1), 3);
        assert!(topo.is_edge(2) && !topo.is_edge(3));
        assert_eq!(topo.local_index(5), 5 - topo.hosts_in(2).start);
    }

    #[test]
    fn wan_distances_grow_with_ring_hops() {
        let cfg = GeoConfig::paper_default(3, 7);
        let topo = Topology::new(&cfg);
        // Home edge is free; home core costs metro; remote costs hops.
        assert_eq!(topo.device_rtt(0, 0), SimDuration::ZERO);
        assert_eq!(topo.device_rtt(0, 1), cfg.wan.metro_rtt);
        assert_eq!(topo.device_rtt(0, 2), cfg.wan.hop_rtt);
        assert_eq!(topo.device_rtt(0, 3), cfg.wan.hop_rtt + cfg.wan.metro_rtt);
        // Ring wraps: region 0 → region 2 is one hop the short way.
        assert_eq!(topo.region_hops(0, 2), 1);
        assert!(topo.device_bps(0, 0).is_none());
        assert_eq!(topo.device_bps(0, 1), Some(cfg.wan.metro_bps));
        assert_eq!(topo.device_bps(0, 4), Some(cfg.wan.inter_bps));
        assert!(topo.cell_bps(0, 1) > topo.cell_bps(0, 2));
    }

    #[test]
    fn flow_bps_throttles_request_legs_but_not_the_fabric() {
        let mut cfg = GeoConfig::paper_default(3, 7);
        cfg.wan.flow_bps = Some(1.0e5);
        let topo = Topology::new(&cfg);
        // A remote request's WAN leg is a single congestion-bound
        // flow; a migration checkpoint stripes the full backbone.
        assert_eq!(topo.device_bps(0, 4), Some(1.0e5));
        assert_eq!(topo.device_bps(0, 1), Some(cfg.wan.metro_bps));
        assert_eq!(topo.cell_bps(0, 2), cfg.wan.inter_bps);
    }

    #[test]
    fn pair_indices_cover_the_triangle_exactly_once() {
        let cfg = GeoConfig::paper_default(3, 7);
        let topo = Topology::new(&cfg);
        let n = topo.n_cells();
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..n {
            for b in a..n {
                let p = topo.pair_index(a, b);
                assert!(p < topo.n_pairs(), "pair ({a},{b}) → {p} out of range");
                assert!(seen.insert(p), "pair ({a},{b}) collided at {p}");
                assert_eq!(p, topo.pair_index(b, a), "unordered");
            }
        }
        assert_eq!(seen.len(), topo.n_pairs());
    }

    #[test]
    fn cell_fleet_config_carries_tier_knobs() {
        let mut cfg = GeoConfig::paper_default(2, 7);
        cfg.regions[0].edge.hosts = 3;
        cfg.regions[0].edge.initial_active = 2;
        let edge = cfg.cell_fleet_config(0);
        assert_eq!(edge.host_specs.len(), 3);
        assert_eq!(edge.initial_active, 2);
        assert_eq!(edge.scenario, NetworkScenario::IotRadio);
        let core = cfg.cell_fleet_config(1);
        assert_eq!(core.scenario, NetworkScenario::WanWifi);
        assert_eq!(
            core.autoscale.host_boot,
            SimDuration::from_secs(90),
            "core tier boots on its own clock"
        );
        assert!(core.faults.is_inert(), "geo injects no host crashes");
    }
}
