//! Multi-region edge hierarchy for the offloading fleet.
//!
//! `geo` grows the single flat [`fleet`] cluster into a topology of
//! regions arranged on a ring. Each region carries two tiers: an
//! **edge PoP** (close to devices, IoT-class radio, fast-booting
//! hosts) and a **regional core** (behind a metro link, bigger boot
//! budget, standby capacity that edge PoPs can borrow — cloud
//! burst). Every tier is an independent fleet cell whose hosts run as
//! logical processes under the same conservative-window sharded
//! engine the fleet uses, speaking the fleet's own wire protocol.
//!
//! On top of the cells sit the geo-wide mechanisms:
//!
//! - a latency-aware [`GeoRouter`] that weighs device→cell RTT
//!   against code-cache warmth and spills clockwise around the region
//!   ring when a geography saturates,
//! - per-pair WAN fabrics (shared, bandwidth-limited links) that
//!   carry cross-region container migrations end to end with byte
//!   conservation checked at three points,
//! - a follow-the-sun rebalancer that ships warm containers from the
//!   busiest edge toward the idlest one as the diurnal peak moves,
//! - cloud-burst scaling: a saturated edge PoP with no standby of its
//!   own powers on a host in its region's core.
//!
//! Determinism is contractual: serial and sharded runs of the same
//! [`GeoConfig`] produce bit-identical [`GeoReport`] digests, and the
//! tier knobs default to the fleet's own so the fleet golden digest
//! pins them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod report;
pub mod router;

pub use config::{GeoConfig, RegionSpec, TierSpec, Topology, WanConfig};
pub use engine::{run_geo, run_geo_backend, run_geo_traced, run_geo_with, EngineMode};
pub use report::{
    GeoControlStats, GeoHostReport, GeoMigrationRecord, GeoRegionSummary, GeoReport,
    GeoRequestRecord, GeoScenarioStats, GeoSummary,
};
pub use router::{GeoDecision, GeoRouter};
