//! The geo engine: a multi-region topology of fleet cells under one
//! sharded discrete-event runtime.
//!
//! **LP 0 is the geo control plane** — the latency-aware
//! [`GeoRouter`], global admission control, one credit-damped
//! autoscaler and warm-hint map per cell, the per-pair WAN fabrics,
//! and the follow-the-sun rebalancer. **LP `g + 1` is global host
//! `g`** — an unmodified `fleet` host shard ([`fleet::engine::HostLp`])
//! running under its cell's synthesized [`fleet::FleetConfig`]. The
//! wire protocol between control and hosts is the fleet's own
//! [`Wire`], so every host-side mechanism (warm pools, code loading,
//! checkpoint/restore migration, drains) works unchanged across
//! regions.
//!
//! Cross-region traffic pays for distance twice: requests served away
//! from their home edge add the WAN round trip plus a bandwidth term
//! to their upload and download, and migration state is charged
//! through the shared per-pair fabric before the propagation delay.
//! Everything is seeded-deterministic: serial and sharded runs of the
//! same [`GeoConfig`] produce bit-identical [`GeoReport`]s.

use crate::config::{GeoConfig, Topology};
use crate::report::{
    GeoControlStats, GeoHostReport, GeoMigrationRecord, GeoReport, GeoRequestRecord,
    GeoScenarioStats,
};
use crate::router::GeoRouter;
use fleet::engine::{HostLp, HostOut, Wire};
use fleet::{AdmissionCtl, Autoscaler, FleetAction, Rebalancer, RouteReason, Router};
use netsim::{Direction, Link, SharedLink};
use obsv::{attrs, AttrValue, Recorder, SpanId, Subsystem, TraceSnapshot};
use rattrap::warehouse::{aid_of, Aid};
use rattrap::Phase;
use scenario::ScenarioDriver;
use simkit::shard::{run_sharded, Lp, Outbox, ShardMode};
use simkit::{derive_seed, EventQueue, SimDuration, SimRng, SimTime};
use std::collections::BTreeSet;
use std::sync::Arc;
use virt::migrate::Checkpoint;
use workloads::WorkloadKind;

pub use fleet::EngineMode;

/// Virtual nodes per host on each cell's consistent-hash ring.
const RING_VNODES: usize = 64;

/// Derived-stream tags (master seed × tag → independent stream).
const STREAM_TRAFFIC: u64 = 1;
const STREAM_APPS: u64 = 2;
const STREAM_NET: u64 = 3;
const STREAM_SVC: u64 = 4;
/// Matches fleet's scenario stream tag, so a spec compiled at the geo
/// level draws from the same derived-stream family.
const STREAM_SCENARIO: u64 = 7;

/// The LP index of the geo control plane.
const CTL: usize = 0;

/// Where a host sits in its lifecycle (geo control-plane view). Geo
/// injects no crashes — hosts move between serving, powering on,
/// draining, and standby.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostStatus {
    Active,
    Booting,
    Draining,
    Standby,
}

/// Geo control-plane events.
#[derive(Debug)]
enum GeoCtlEvent {
    /// One trace arrival from `user` (global index).
    Arrive { user: u32, kind: WorkloadKind },
    /// Request payload finished uploading (access link + WAN leg).
    UploadDone { req: usize, rgen: u32 },
    /// Result reached the device.
    DownloadDone { req: usize, rgen: u32 },
    /// On-device (fallback) execution finished.
    LocalDone { req: usize },
    /// A booting host becomes routable.
    HostUp { host: usize, hgen: u64 },
    /// Schedule point of one WAN-pair fabric.
    FabricPoll { pair: usize, epoch: u64 },
    /// Migration state finished its post-fabric propagation delay.
    WanArrive { mig: usize },
    /// Control-loop tick: observe every cell, scale, burst, rebalance.
    Scan,
    /// A host message crossed the window boundary.
    Deliver { src: usize, msg: Wire },
}

/// One request's geo control-plane state.
#[derive(Debug)]
struct ReqState {
    user: u32,
    region: usize,
    kind: WorkloadKind,
    task: workloads::TaskRequest,
    arrival: SimTime,
    finished: SimTime,
    phase: Phase,
    fell_back: bool,
    cell: Option<usize>,
    host: Option<usize>,
    cross_region: bool,
    attempts: u32,
    reason: Option<RouteReason>,
    /// Whether the request currently holds an admission slot — the
    /// geo-single-admission invariant's ground truth.
    holding: bool,
    gen: u32,
}

/// Per-host geo control state.
struct HostSlot {
    cell: usize,
    status: HostStatus,
    gen: u64,
    migrations_out: u64,
    migrations_in: u64,
    scale_span: SpanId,
}

/// Per-cell control state: its ring, its scaler, its warm hints.
struct CellState {
    autoscaler: Autoscaler,
    /// Hosts (global) believed warm per workload, maintained from
    /// [`Wire::WarmInfo`] flips.
    warm: Vec<BTreeSet<usize>>,
}

/// An in-flight cross-cell migration (control side).
struct MigSlot {
    rec: GeoMigrationRecord,
    ckpt: Option<Box<Checkpoint>>,
    gen_to: u64,
}

struct GeoControlLp {
    cfg: Arc<GeoConfig>,
    topo: Topology,
    rec: Recorder,
    queue: EventQueue<GeoCtlEvent>,
    hosts: Vec<HostSlot>,
    cells: Vec<CellState>,
    /// Per-cell consistent-hash rings over global host indices.
    routers: Vec<Router>,
    geo_router: GeoRouter,
    admission: AdmissionCtl,
    rebalancer: Rebalancer,
    /// One shared fabric per unordered cell pair.
    fabrics: Vec<SharedLink<usize>>,
    /// Per-region device access link (the edge tier's radio).
    links: Vec<Link>,
    reqs: Vec<ReqState>,
    migs: Vec<MigSlot>,
    control: GeoControlStats,
    aids: Vec<Aid>,
    /// First global user index of each region.
    user_base: Vec<u32>,
    /// Compiled scenario plan, if the config carries one.
    driver: Option<ScenarioDriver>,
    /// Scenario conservation counters: (injected, submitted, suppressed).
    scn: (u64, u64, u64),
    rng_svc: SimRng,
    net_root: u64,
    horizon: SimTime,
    outstanding: usize,
}

fn kind_ix(kind: WorkloadKind) -> usize {
    WorkloadKind::ALL
        .into_iter()
        .position(|k| k == kind)
        .expect("kind is one of ALL")
}

impl GeoControlLp {
    fn new(cfg: Arc<GeoConfig>, topo: Topology, rec: Recorder) -> Self {
        let mut master = SimRng::new(cfg.seed);
        let net_root = derive_seed(cfg.seed, STREAM_NET);
        let rng_svc = master.fork(STREAM_SVC);

        let hosts: Vec<HostSlot> = (0..topo.n_hosts())
            .map(|g| {
                let cell = topo.cell_of_host(g);
                let active = topo.local_index(g) < cfg.tier(cell).initial_active;
                HostSlot {
                    cell,
                    status: if active {
                        HostStatus::Active
                    } else {
                        HostStatus::Standby
                    },
                    gen: 0,
                    migrations_out: 0,
                    migrations_in: 0,
                    scale_span: SpanId::NONE,
                }
            })
            .collect();

        let cells: Vec<CellState> = (0..topo.n_cells())
            .map(|cell| CellState {
                autoscaler: Autoscaler::new(cfg.tier(cell).autoscale),
                warm: vec![BTreeSet::new(); WorkloadKind::ALL.len()],
            })
            .collect();
        let mut routers: Vec<Router> = (0..topo.n_cells())
            .map(|_| Router::new(RING_VNODES))
            .collect();
        for (cell, router) in routers.iter_mut().enumerate() {
            router.rebuild(
                &topo
                    .hosts_in(cell)
                    .filter(|&g| hosts[g].status == HostStatus::Active)
                    .collect(),
            );
        }

        let admission = AdmissionCtl::new(topo.n_hosts(), cfg.admission_capacity);
        let rebalancer = Rebalancer::new(cfg.rebalance);
        let fabrics: Vec<SharedLink<usize>> = {
            let mut fabrics = Vec::with_capacity(topo.n_pairs());
            for a in 0..topo.n_cells() {
                for b in a..topo.n_cells() {
                    debug_assert_eq!(topo.pair_index(a, b), fabrics.len());
                    let bps = topo.cell_bps(a, b);
                    let mut fab = SharedLink::new(bps, bps);
                    fab.eager_check_cancel();
                    fabrics.push(fab);
                }
            }
            fabrics
        };
        let links: Vec<Link> = cfg
            .regions
            .iter()
            .map(|r| Link::new(r.edge.scenario))
            .collect();
        let mut user_base = Vec::with_capacity(cfg.regions.len());
        let mut base = 0u32;
        for r in &cfg.regions {
            user_base.push(base);
            base += r.users;
        }
        let driver = cfg.scenario_plan.as_ref().map(|spec| {
            ScenarioDriver::compile(spec, base, derive_seed(cfg.seed, STREAM_SCENARIO))
        });
        let horizon = SimTime::ZERO.saturating_add(cfg.traffic.duration);
        let aids: Vec<Aid> = WorkloadKind::ALL
            .iter()
            .map(|k| aid_of(k.app_id()))
            .collect();
        let geo_router = GeoRouter::new(cfg.affinity_bonus);

        let mut lp = GeoControlLp {
            cfg,
            topo,
            rec,
            queue: EventQueue::new(),
            hosts,
            cells,
            routers,
            geo_router,
            admission,
            rebalancer,
            fabrics,
            links,
            reqs: Vec::new(),
            migs: Vec::new(),
            control: GeoControlStats::default(),
            aids,
            user_base,
            driver,
            scn: (0, 0, 0),
            rng_svc,
            net_root,
            horizon,
            outstanding: 0,
        };
        lp.seed_events();
        lp
    }

    /// Seed arrivals region by region. Each region draws its own
    /// derived trace stream, phase-shifted by its timezone — the sun
    /// follows the regions around the ring.
    fn seed_events(&mut self) {
        let total_users: u32 = self.cfg.regions.iter().map(|r| r.users).sum();
        let mut rng_apps = SimRng::new(derive_seed(self.cfg.seed, STREAM_APPS));
        let weights = self.cfg.app_weights();
        let mut user_app: Vec<WorkloadKind> = (0..total_users)
            .map(|_| WorkloadKind::ALL[rng_apps.weighted_index(&weights)])
            .collect();
        if let Some(d) = &self.driver {
            for (u, app) in user_app.iter_mut().enumerate() {
                if let Some(k) = d.base_kind_override(u as u32) {
                    *app = k;
                }
            }
        }

        for (r, region) in self.cfg.regions.iter().enumerate() {
            let mut traffic = self.cfg.traffic.clone();
            traffic.users = region.users;
            traffic.seed = derive_seed(derive_seed(self.cfg.seed, STREAM_TRAFFIC), r as u64);
            let start_hour = 8.0 + region.tz_offset_h;
            let arrivals = traces::livelab::generate_with_start(&traffic, start_hour);
            for (u, times) in arrivals.into_iter().enumerate() {
                let user = self.user_base[r] + u as u32;
                for t in times {
                    self.queue.schedule(
                        t,
                        GeoCtlEvent::Arrive {
                            user,
                            kind: user_app[user as usize],
                        },
                    );
                }
            }
        }

        // Scenario injection: compiled arrivals enter as ordinary
        // `Arrive` events through the control queue, so serial and
        // sharded runs see an identical event stream. Synthetic users
        // (flash-crowd extras, storm containers) fold onto the real
        // population so `region_of_user` stays valid.
        if let Some(d) = &self.driver {
            self.scn.0 = d.injected();
            for a in d.arrivals() {
                if a.offload {
                    self.scn.1 += 1;
                    self.queue.schedule(
                        a.at,
                        GeoCtlEvent::Arrive {
                            user: a.user % total_users,
                            kind: a.kind,
                        },
                    );
                } else {
                    self.scn.2 += 1;
                }
            }
        }

        self.queue
            .schedule_in(self.cfg.scan_interval(), GeoCtlEvent::Scan);
    }

    /// Independent network stream for one request (fleet's scheme).
    fn req_rng(&self, req: usize, tag: u64) -> SimRng {
        SimRng::new(derive_seed(derive_seed(self.net_root, req as u64), tag))
    }

    fn region_of_user(&self, user: u32) -> usize {
        self.user_base.partition_point(|&b| b <= user) - 1
    }

    fn dispatch(&mut self, now: SimTime, ev: GeoCtlEvent, out: &mut Outbox<Wire>) {
        match ev {
            GeoCtlEvent::Arrive { user, kind } => self.on_arrive(now, user, kind),
            GeoCtlEvent::UploadDone { req, rgen } => self.on_upload_done(now, req, rgen, out),
            GeoCtlEvent::DownloadDone { req, rgen } => {
                if !self.stale(req, rgen) {
                    self.finish(now, req, Phase::Done);
                }
            }
            GeoCtlEvent::LocalDone { req } => self.finish(now, req, Phase::Done),
            GeoCtlEvent::HostUp { host, hgen } => self.on_host_up(now, host, hgen, out),
            GeoCtlEvent::FabricPoll { pair, epoch } => self.on_fabric_poll(now, pair, epoch),
            GeoCtlEvent::WanArrive { mig } => self.on_wan_arrive(now, mig, out),
            GeoCtlEvent::Scan => self.on_scan(now, out),
            GeoCtlEvent::Deliver { src, msg } => self.on_msg(now, src, msg, out),
        }
    }

    fn on_msg(&mut self, now: SimTime, src: usize, msg: Wire, out: &mut Outbox<Wire>) {
        let h = src - 1;
        match msg {
            Wire::Done { req, rgen } => self.on_done(now, req, rgen),
            Wire::WarmInfo { kind_ix, warm } => {
                let cell = self.hosts[h].cell;
                if warm {
                    self.cells[cell].warm[kind_ix].insert(h);
                } else {
                    self.cells[cell].warm[kind_ix].remove(&h);
                }
            }
            Wire::DrainEmpty => {
                if self.hosts[h].status == HostStatus::Draining && self.admission.depth(h) == 0 {
                    self.hosts[h].status = HostStatus::Standby;
                    out.send(now, src, Wire::FinishDrain);
                }
            }
            Wire::MigState { dst, ckpt } => self.on_mig_state(now, h, dst, ckpt),
            Wire::MigLanded { mig, bytes } => self.on_mig_landed(now, mig, bytes),
            _ => unreachable!("control-bound message"),
        }
    }

    // ----------------------------------------------------- request intake

    fn on_arrive(&mut self, now: SimTime, user: u32, kind: WorkloadKind) {
        let task = kind.profile().sample(&mut self.rng_svc);
        let req = self.reqs.len();
        self.reqs.push(ReqState {
            user,
            region: self.region_of_user(user),
            kind,
            task,
            arrival: now,
            finished: now,
            phase: Phase::Dispatch,
            fell_back: false,
            cell: None,
            host: None,
            cross_region: false,
            attempts: 1,
            reason: None,
            holding: false,
            gen: 0,
        });
        self.outstanding += 1;
        self.rec.set_current_request(Some(req as u64));
        self.route_request(now, req);
    }

    /// Route `req` through the geo router: pick a cell by latency and
    /// warmth, a host by the cell's own ring, admit, and start the
    /// upload — or shed to the resilience layer.
    fn route_request(&mut self, now: SimTime, req: usize) {
        let kix = kind_ix(self.reqs[req].kind);
        let aid = self.aids[kix].clone();
        let region = self.reqs[req].region;
        let warm_lists: Vec<Vec<usize>> = (0..self.topo.n_cells())
            .map(|cell| {
                self.cells[cell].warm[kix]
                    .iter()
                    .copied()
                    .filter(|&g| self.hosts[g].status == HostStatus::Active)
                    .collect()
            })
            .collect();
        let hosts = &self.hosts;
        let admission = &self.admission;
        let decision = self.geo_router.route(
            &self.topo,
            region,
            &aid,
            &self.routers,
            |cell| warm_lists[cell].clone(),
            |g| hosts[g].status == HostStatus::Active && admission.has_room(g),
        );
        match decision {
            Some(d) => {
                // The single-admission invariant's ground truth: a
                // request must never hold two slots at once, however
                // it spilled across regions.
                if self.reqs[req].holding {
                    self.control.double_admissions += 1;
                }
                assert!(
                    self.admission.admit(d.host),
                    "geo router picked a full host"
                );
                self.reqs[req].holding = true;
                match d.reason {
                    RouteReason::Affinity => self.control.affinity_routes += 1,
                    RouteReason::Hash => self.control.hash_routes += 1,
                    RouteReason::Spill => self.control.spill_routes += 1,
                }
                if d.cross_region {
                    self.control.cross_region_routes += 1;
                }
                self.reqs[req].cell = Some(d.cell);
                self.reqs[req].host = Some(d.host);
                self.reqs[req].cross_region = d.cross_region;
                self.reqs[req].reason = Some(d.reason);
                if self.rec.is_enabled() {
                    self.rec.instant(
                        Subsystem::Geo,
                        "route",
                        attrs![
                            ("cell", AttrValue::U64(d.cell as u64)),
                            ("region", AttrValue::U64(region as u64)),
                            ("host", AttrValue::U64(d.host as u64)),
                            ("reason", AttrValue::Str(d.reason.label())),
                            ("cross_region", AttrValue::Bool(d.cross_region)),
                        ],
                    );
                }
                self.begin_upload(now, req);
            }
            None => self.shed(now, req),
        }
    }

    /// Upload = the device's access radio plus the WAN leg toward the
    /// serving cell (zero when the home edge serves it).
    fn begin_upload(&mut self, now: SimTime, req: usize) {
        self.reqs[req].phase = Phase::DataTransferUp;
        let bytes = self.reqs[req].task.control_bytes + self.reqs[req].task.payload_bytes;
        let mut rng = self.req_rng(req, 10 + self.reqs[req].attempts as u64);
        let region = self.reqs[req].region;
        let cell = self.reqs[req].cell.expect("routed");
        let mut t = self.links[region].connect_time(&mut rng)
            + self.links[region].transfer_time(bytes, Direction::Upload, &mut rng);
        t += self.wan_leg(region, cell, bytes);
        let rgen = self.reqs[req].gen;
        self.queue
            .schedule(now.saturating_add(t), GeoCtlEvent::UploadDone { req, rgen });
    }

    /// The WAN contribution of serving `region`'s device from `cell`:
    /// the extra round trip plus the payload over the shared leg.
    fn wan_leg(&mut self, region: usize, cell: usize, bytes: u64) -> SimDuration {
        let rtt = self.topo.device_rtt(region, cell);
        match self.topo.device_bps(region, cell) {
            None => SimDuration::ZERO,
            Some(bps) => {
                self.control.wan_request_bytes += bytes;
                rtt + SimDuration::from_secs_f64(bytes as f64 / bps)
            }
        }
    }

    fn shed(&mut self, now: SimTime, req: usize) {
        self.control.shed += 1;
        self.admission.count_shed();
        self.reqs[req].cell = None;
        self.reqs[req].host = None;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Geo,
                "shed",
                attrs![("region", AttrValue::U64(self.reqs[req].region as u64))],
            );
        }
        if self.cfg.resilience.fallback_local {
            self.reqs[req].fell_back = true;
            self.reqs[req].phase = Phase::FallbackLocal;
            let device = self.cfg.regions[self.reqs[req].region].device;
            let t = device.local_execution_time(self.reqs[req].task.compute);
            self.queue
                .schedule(now.saturating_add(t), GeoCtlEvent::LocalDone { req });
        } else {
            self.finish(now, req, Phase::Abandoned);
        }
    }

    fn stale(&self, req: usize, rgen: u32) -> bool {
        self.reqs[req].gen != rgen || self.reqs[req].phase.is_terminal()
    }

    // ------------------------------------------------- service hand-off

    fn on_upload_done(&mut self, now: SimTime, req: usize, rgen: u32, out: &mut Outbox<Wire>) {
        if self.stale(req, rgen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        self.reqs[req].phase = Phase::RuntimePrep;
        let g = self.reqs[req].host.expect("routed");
        let req_seed = derive_seed(self.net_root, req as u64);
        out.send(
            now,
            g + 1,
            Wire::Start {
                req,
                rgen,
                task: self.reqs[req].task,
                xfer_seed: derive_seed(req_seed, 1000 + self.reqs[req].attempts as u64),
            },
        );
    }

    fn on_done(&mut self, now: SimTime, req: usize, rgen: u32) {
        if self.stale(req, rgen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        let g = self.reqs[req].host.expect("routed");
        debug_assert!(self.reqs[req].holding, "done without an admission slot");
        self.admission.release(g);
        self.reqs[req].holding = false;
        self.reqs[req].phase = Phase::DataTransferDown;
        let mut rng = self.req_rng(req, 1);
        let region = self.reqs[req].region;
        let cell = self.reqs[req].cell.expect("routed");
        let bytes = self.reqs[req].task.result_bytes;
        let mut t = self.links[region].transfer_time(bytes, Direction::Download, &mut rng);
        t += self.wan_leg(region, cell, bytes);
        self.queue.schedule(
            now.saturating_add(t),
            GeoCtlEvent::DownloadDone { req, rgen },
        );
    }

    fn finish(&mut self, now: SimTime, req: usize, phase: Phase) {
        debug_assert!(phase.is_terminal());
        self.rec.set_current_request(Some(req as u64));
        self.reqs[req].phase = phase;
        self.reqs[req].finished = now;
        self.outstanding -= 1;
        self.rec.set_current_request(None);
    }

    // ----------------------------------------------------------- scaling

    fn on_host_up(&mut self, now: SimTime, host: usize, hgen: u64, out: &mut Outbox<Wire>) {
        if self.hosts[host].gen != hgen || self.hosts[host].status != HostStatus::Booting {
            return;
        }
        self.hosts[host].status = HostStatus::Active;
        if self.hosts[host].scale_span != SpanId::NONE {
            self.rec.span_end_at(
                self.hosts[host].scale_span,
                now.as_micros(),
                attrs![("host", AttrValue::U64(host as u64))],
            );
            self.hosts[host].scale_span = SpanId::NONE;
        }
        self.rebuild_ring(self.hosts[host].cell);
        out.send(now, host + 1, Wire::Online);
    }

    /// Power on the first standby host of `cell`, on the tier's own
    /// boot clock. Returns whether a standby existed.
    fn activate_standby_in(&mut self, now: SimTime, cell: usize) -> bool {
        let Some(host) = self
            .topo
            .hosts_in(cell)
            .find(|&g| self.hosts[g].status == HostStatus::Standby)
        else {
            return false;
        };
        self.hosts[host].status = HostStatus::Booting;
        if self.rec.is_enabled() {
            self.hosts[host].scale_span = self.rec.span_start_at(
                Subsystem::Geo,
                "scale_up",
                SpanId::NONE,
                now.as_micros(),
                attrs![
                    ("host", AttrValue::U64(host as u64)),
                    ("cell", AttrValue::U64(cell as u64)),
                ],
            );
        }
        let hgen = self.hosts[host].gen;
        let boot = self.cfg.tier(cell).autoscale.host_boot;
        self.queue
            .schedule(now.saturating_add(boot), GeoCtlEvent::HostUp { host, hgen });
        true
    }

    fn drain(&mut self, now: SimTime, victim: usize, out: &mut Outbox<Wire>) {
        let cell = self.hosts[victim].cell;
        if self.hosts[victim].status != HostStatus::Active || self.cell_active(cell).len() < 2 {
            return;
        }
        self.hosts[victim].status = HostStatus::Draining;
        self.control.drains += 1;
        self.cells[cell].autoscaler.forget(victim);
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Geo,
                "drain",
                attrs![
                    ("host", AttrValue::U64(victim as u64)),
                    ("cell", AttrValue::U64(cell as u64)),
                ],
            );
        }
        self.rebuild_ring(cell);
        out.send(now, victim + 1, Wire::Drain);
    }

    /// The control loop: per-cell observation and scaling (with
    /// cloud-burst loans from edge to core), then the follow-the-sun
    /// rebalancer across edge PoPs.
    fn on_scan(&mut self, now: SimTime, out: &mut Outbox<Wire>) {
        self.rec.set_current_request(None);
        for cell in 0..self.topo.n_cells() {
            let active = self.cell_active(cell);
            for &g in &active {
                let depth = self.admission.depth(g) as u32;
                self.cells[cell].autoscaler.observe(g, depth);
            }
            let saturation = if active.is_empty() {
                0.0
            } else {
                active
                    .iter()
                    .map(|&g| self.admission.utilization(g))
                    .sum::<f64>()
                    / active.len() as f64
            };
            let standby_here = self
                .topo
                .hosts_in(cell)
                .any(|g| self.hosts[g].status == HostStatus::Standby);
            // Cloud-burst: a saturated edge PoP with no spare of its
            // own may borrow a standby from its region's core.
            let region = self.topo.region_of_cell(cell);
            let core = self.topo.core_cell(region);
            let burstable = self.topo.is_edge(cell)
                && self
                    .topo
                    .hosts_in(core)
                    .any(|g| self.hosts[g].status == HostStatus::Standby);
            let plan = self.cells[cell].autoscaler.plan(
                now,
                saturation,
                &active,
                standby_here || burstable,
            );
            match plan {
                Some(FleetAction::Activate) => {
                    if standby_here {
                        if self.activate_standby_in(now, cell) {
                            self.control.scale_ups += 1;
                        }
                    } else if burstable && self.activate_standby_in(now, core) {
                        self.control.bursts += 1;
                        if self.rec.is_enabled() {
                            self.rec.instant(
                                Subsystem::Geo,
                                "burst",
                                attrs![
                                    ("edge_cell", AttrValue::U64(cell as u64)),
                                    ("core_cell", AttrValue::U64(core as u64)),
                                ],
                            );
                        }
                    }
                }
                Some(FleetAction::Drain(victim)) => self.drain(now, victim, out),
                None => {}
            }
        }

        // Follow the sun: when the busiest edge host runs far hotter
        // than the idlest one anywhere on the ring, ship a warm
        // container toward the cold side over the WAN fabric.
        if let Some((hot, cold, gap)) = self.edge_hot_cold() {
            if let Some(mv) = self.rebalancer.plan(now, Some((hot, cold, gap))) {
                if self.hosts[mv.to].status == HostStatus::Active {
                    out.send(now, mv.from + 1, Wire::MigOut { dst: mv.to });
                }
            }
        }

        if now < self.horizon || self.outstanding > 0 {
            self.queue
                .schedule_in(self.cfg.scan_interval(), GeoCtlEvent::Scan);
        } else {
            for g in 0..self.hosts.len() {
                out.send(now, g + 1, Wire::Shutdown);
            }
        }
    }

    /// Hottest and coldest active edge host across every region, by
    /// each cell's own smoothed busy-fraction. Ties break toward the
    /// lowest host index.
    fn edge_hot_cold(&self) -> Option<(usize, usize, f64)> {
        let capacity = self.admission.capacity() as f64;
        let mut fracs: Vec<(usize, f64)> = Vec::new();
        for region in 0..self.topo.n_regions() {
            let cell = self.topo.edge_cell(region);
            for g in self.topo.hosts_in(cell) {
                if self.hosts[g].status == HostStatus::Active {
                    fracs.push((g, self.cells[cell].autoscaler.load_of(g) / capacity));
                }
            }
        }
        if fracs.len() < 2 {
            return None;
        }
        let &(hot, hi) = fracs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
            .expect("non-empty");
        let &(cold, lo) = fracs
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .expect("non-empty");
        if hot == cold {
            return None;
        }
        Some((hot, cold, hi - lo))
    }

    // ----------------------------------------------------------- migration

    /// A source host serialized a container: charge the state through
    /// the WAN fabric of the cell pair, then let it propagate.
    fn on_mig_state(&mut self, now: SimTime, from: usize, dst: usize, ckpt: Box<Checkpoint>) {
        if self.hosts[dst].status != HostStatus::Active {
            return; // destination left the topology while the state froze
        }
        let bytes_src = ckpt.state_bytes();
        let from_cell = self.hosts[from].cell;
        let to_cell = self.hosts[dst].cell;
        let pair = self.topo.pair_index(from_cell, to_cell);
        let mig = self.migs.len();
        self.migs.push(MigSlot {
            rec: GeoMigrationRecord {
                from_host: from,
                to_host: dst,
                from_cell,
                to_cell,
                bytes_src,
                // The fabric is charged exactly what the source
                // serialized; the conservation invariant holds this to
                // the destination's measurement.
                bytes_wire: bytes_src,
                bytes_dst: 0,
                completed: false,
            },
            ckpt: Some(ckpt),
            gen_to: self.hosts[dst].gen,
        });
        self.control.migrations_started += 1;
        self.rebalancer.committed(now);
        self.fabrics[pair].begin_transfer(now, bytes_src, mig);
        self.fabrics[pair].reschedule(now, &mut self.queue, |epoch| GeoCtlEvent::FabricPoll {
            pair,
            epoch,
        });
    }

    fn on_fabric_poll(&mut self, now: SimTime, pair: usize, epoch: u64) {
        let Some(finished) = self.fabrics[pair].poll(now, epoch) else {
            return;
        };
        for (_, mig) in finished {
            // Serialization drained through the fabric; the state
            // still rides the propagation delay of the pair.
            let rtt = self
                .topo
                .cell_rtt(self.migs[mig].rec.from_cell, self.migs[mig].rec.to_cell);
            self.queue
                .schedule(now.saturating_add(rtt), GeoCtlEvent::WanArrive { mig });
        }
        self.fabrics[pair].reschedule(now, &mut self.queue, |epoch| GeoCtlEvent::FabricPoll {
            pair,
            epoch,
        });
    }

    fn on_wan_arrive(&mut self, now: SimTime, mig: usize, out: &mut Outbox<Wire>) {
        let to = self.migs[mig].rec.to_host;
        if self.hosts[to].gen != self.migs[mig].gen_to
            || self.hosts[to].status != HostStatus::Active
        {
            return; // destination drained mid-flight; the move is orphaned
        }
        let ckpt = self.migs[mig].ckpt.take().expect("delivered once");
        out.send(now, to + 1, Wire::MigIn { mig, ckpt });
    }

    /// The destination restored the container; `bytes` is what it
    /// measured while restoring — the conservation check's third leg.
    fn on_mig_landed(&mut self, now: SimTime, mig: usize, bytes: u64) {
        let _ = now;
        self.migs[mig].rec.bytes_dst = bytes;
        self.migs[mig].rec.completed = true;
        let m = self.migs[mig].rec;
        self.hosts[m.from_host].migrations_out += 1;
        self.hosts[m.to_host].migrations_in += 1;
        self.control.migrations_completed += 1;
        self.control.migration_bytes += bytes;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Geo,
                "migration_done",
                attrs![
                    ("from_cell", AttrValue::U64(m.from_cell as u64)),
                    ("to_cell", AttrValue::U64(m.to_cell as u64)),
                    ("state_bytes", AttrValue::U64(bytes)),
                ],
            );
        }
    }

    // ------------------------------------------------------------- helpers

    fn cell_active(&self, cell: usize) -> BTreeSet<usize> {
        self.topo
            .hosts_in(cell)
            .filter(|&g| self.hosts[g].status == HostStatus::Active)
            .collect()
    }

    fn rebuild_ring(&mut self, cell: usize) {
        let active = self.cell_active(cell);
        self.routers[cell].rebuild(&active);
    }

    fn finish_lp(self) -> GeoCtlOut {
        self.rec.set_current_request(None);
        let records: Vec<GeoRequestRecord> = self
            .reqs
            .iter()
            .enumerate()
            .map(|(i, r)| GeoRequestRecord {
                id: i as u64,
                user: r.user,
                region: r.region,
                kind: r.kind,
                arrival: r.arrival,
                finished: r.finished,
                phase: r.phase,
                fell_back: r.fell_back,
                cell: r.cell,
                host: r.host,
                cross_region: r.cross_region,
                attempts: r.attempts,
                reason: r.reason,
            })
            .collect();
        let scenario = self.driver.as_ref().map(|d| GeoScenarioStats {
            name: d.name().to_string(),
            injected: self.scn.0,
            submitted: self.scn.1,
            suppressed: self.scn.2,
        });
        GeoCtlOut {
            records,
            control: self.control,
            scenario,
            host_migs: self
                .hosts
                .iter()
                .map(|h| (h.migrations_out, h.migrations_in))
                .collect(),
            migrations: self.migs.into_iter().map(|m| m.rec).collect(),
            snapshot: self.rec.snapshot(),
        }
    }
}

// ====================================================================
// LP plumbing
// ====================================================================

enum GeoLp {
    Ctl(Box<GeoControlLp>),
    Host(Box<HostLp>),
}

impl Lp for GeoLp {
    type Msg = Wire;

    fn next_time(&mut self) -> Option<SimTime> {
        match self {
            GeoLp::Ctl(lp) => lp.queue.peek_time(),
            GeoLp::Host(lp) => lp.next_time(),
        }
    }

    fn run_window(&mut self, bound: SimTime, out: &mut Outbox<Wire>) {
        match self {
            GeoLp::Ctl(lp) => {
                while lp.queue.peek_time().is_some_and(|t| t < bound) {
                    let (now, ev) = lp.queue.pop().expect("peeked");
                    lp.rec.set_now(now.as_micros());
                    lp.dispatch(now, ev, out);
                }
            }
            GeoLp::Host(lp) => lp.run_window(bound, out),
        }
    }

    fn accept(&mut self, at: SimTime, src: usize, msg: Wire) {
        match self {
            GeoLp::Ctl(lp) => {
                lp.queue.schedule(at, GeoCtlEvent::Deliver { src, msg });
            }
            GeoLp::Host(lp) => {
                let _ = src; // hosts only hear from control
                lp.accept(at, msg);
            }
        }
    }
}

struct GeoCtlOut {
    records: Vec<GeoRequestRecord>,
    control: GeoControlStats,
    scenario: Option<GeoScenarioStats>,
    /// Per host: (migrations_out, migrations_in).
    host_migs: Vec<(u64, u64)>,
    migrations: Vec<GeoMigrationRecord>,
    snapshot: TraceSnapshot,
}

enum GeoLpOut {
    Ctl(GeoCtlOut),
    Host(HostOut),
}

// ====================================================================
// Entry points
// ====================================================================

/// Run a geo scenario to completion (untraced, serial).
pub fn run_geo(cfg: &GeoConfig) -> GeoReport {
    run_geo_with(cfg, Recorder::disabled(), EngineMode::Serial)
}

/// Run a geo scenario with an observability recorder attached.
/// Recording must not perturb the simulation: the report digest is
/// identical with a disabled recorder.
pub fn run_geo_traced(cfg: &GeoConfig, rec: Recorder) -> GeoReport {
    run_geo_with(cfg, rec, EngineMode::Serial)
}

/// Run a geo scenario under an explicit [`EngineMode`]. All modes and
/// thread counts produce bit-identical reports.
pub fn run_geo_with(cfg: &GeoConfig, rec: Recorder, mode: EngineMode) -> GeoReport {
    run_geo_inner(cfg, rec, mode, None)
}

/// Run a geo scenario with every host shard charging compute through
/// `backend`. Executions are attributed to
/// [`exec::HostClass::EDGE_POP`] or [`exec::HostClass::REGIONAL_CORE`]
/// per tier, so one calibration map can price the two tiers apart.
pub fn run_geo_backend(
    cfg: &GeoConfig,
    rec: Recorder,
    mode: EngineMode,
    backend: exec::BackendHandle,
) -> GeoReport {
    run_geo_inner(cfg, rec, mode, Some(backend))
}

fn run_geo_inner(
    cfg: &GeoConfig,
    rec: Recorder,
    mode: EngineMode,
    backend: Option<exec::BackendHandle>,
) -> GeoReport {
    let topo = Topology::new(cfg);
    let shard_mode = match mode {
        EngineMode::Serial => ShardMode::Serial,
        EngineMode::Sharded(n) => ShardMode::Threads(n),
    };
    let cfg = Arc::new(cfg.clone());
    let cell_cfgs: Vec<Arc<fleet::FleetConfig>> = (0..topo.n_cells())
        .map(|cell| Arc::new(cfg.cell_fleet_config(cell)))
        .collect();
    let n_lps = topo.n_hosts() + 1;
    let rec_cfg = rec.config();

    let build = {
        let cfg = Arc::clone(&cfg);
        let topo = topo.clone();
        let cell_cfgs = cell_cfgs.clone();
        move |i: usize| {
            let lp_rec = match &rec_cfg {
                Some(c) => Recorder::enabled(c.clone()),
                None => Recorder::disabled(),
            };
            if i == CTL {
                GeoLp::Ctl(Box::new(GeoControlLp::new(
                    Arc::clone(&cfg),
                    topo.clone(),
                    lp_rec,
                )))
            } else {
                let g = i - 1;
                let cell = topo.cell_of_host(g);
                let mut host =
                    HostLp::new(Arc::clone(&cell_cfgs[cell]), topo.local_index(g), lp_rec);
                if let Some(b) = &backend {
                    host.set_backend(Arc::clone(b));
                }
                // Even cells are edge PoPs, odd cells regional cores
                // (see `GeoConfig::tier`).
                host.set_host_class(if cell.is_multiple_of(2) {
                    exec::HostClass::EDGE_POP
                } else {
                    exec::HostClass::REGIONAL_CORE
                });
                GeoLp::Host(Box::new(host))
            }
        }
    };
    let finish = |_: usize, lp: GeoLp| match lp {
        GeoLp::Ctl(c) => GeoLpOut::Ctl(c.finish_lp()),
        GeoLp::Host(h) => GeoLpOut::Host(h.finish_lp()),
    };

    let outs = run_sharded(n_lps, cfg.sync_window, shard_mode, build, finish);

    let mut records = Vec::new();
    let mut control = GeoControlStats::default();
    let mut migrations = Vec::new();
    let mut scenario = None;
    let mut hosts: Vec<GeoHostReport> = (0..topo.n_hosts())
        .map(|g| {
            let cell = topo.cell_of_host(g);
            GeoHostReport {
                cell,
                memory_bytes: cfg.tier(cell).spec.memory_bytes,
                ..GeoHostReport::default()
            }
        })
        .collect();
    for (i, lp_out) in outs.into_iter().enumerate() {
        match lp_out {
            GeoLpOut::Ctl(c) => {
                records = c.records;
                control = c.control;
                migrations = c.migrations;
                scenario = c.scenario;
                for (g, (m_out, m_in)) in c.host_migs.into_iter().enumerate() {
                    hosts[g].migrations_out = m_out;
                    hosts[g].migrations_in = m_in;
                }
                rec.import(&c.snapshot);
            }
            GeoLpOut::Host(o) => {
                let g = i - 1;
                hosts[g].served = o.served;
                hosts[g].peak_instances = o.peak_instances;
                hosts[g].peak_memory = o.peak_memory;
                rec.import(&o.snapshot);
            }
        }
    }
    let mut report = GeoReport::summarize(
        records,
        control,
        hosts,
        migrations,
        topo.n_regions(),
        cfg.traffic.duration,
    );
    report.scenario = scenario;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(regions: usize, seed: u64) -> GeoConfig {
        let mut cfg = GeoConfig::paper_default(regions, seed);
        for r in &mut cfg.regions {
            r.users = 8;
        }
        cfg.traffic.duration = SimDuration::from_secs(600);
        cfg
    }

    #[test]
    fn every_request_terminates_and_carries_its_region() {
        let cfg = small(2, 11);
        let rep = run_geo(&cfg);
        assert!(rep.summary.submitted > 0, "trace produced arrivals");
        for r in &rep.records {
            assert!(
                r.phase.is_terminal(),
                "request {} stuck in {:?}",
                r.id,
                r.phase
            );
            assert!(r.region < 2);
            if let (Some(cell), Some(host)) = (r.cell, r.host) {
                assert!(cell < 4);
                assert!(host < 8);
            }
        }
        assert_eq!(
            rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned,
            rep.summary.submitted
        );
        assert_eq!(rep.control.double_admissions, 0);
    }

    #[test]
    fn same_seed_same_digest() {
        let cfg = small(2, 42);
        assert_eq!(run_geo(&cfg).digest(), run_geo(&cfg).digest());
    }

    #[test]
    fn home_edge_serves_most_requests_under_light_load() {
        let rep = run_geo(&small(2, 5));
        let remote: Vec<_> = rep.records.iter().filter(|r| r.remote()).collect();
        assert!(!remote.is_empty());
        let home_edge = remote
            .iter()
            .filter(|r| !r.cross_region && r.cell.is_some_and(|c| c % 2 == 0))
            .count();
        assert!(
            home_edge * 2 > remote.len(),
            "home edge served only {home_edge}/{}",
            remote.len()
        );
    }

    #[test]
    fn scenario_injection_adds_load_and_stays_bit_identical() {
        let quiet = run_geo(&small(2, 7));
        let mut cfg = small(2, 7);
        cfg.scenario_plan = Some(scenario::ScenarioSpec::flash_crowd(
            16,
            8,
            SimTime::from_secs(120),
            SimDuration::from_secs(60),
        ));
        let rep = run_geo(&cfg);
        let s = rep.scenario.as_ref().expect("scenario runs carry stats");
        assert_eq!(
            s.injected,
            s.submitted + s.suppressed,
            "arrival conservation"
        );
        assert!(s.submitted > 0, "the burst must inject arrivals");
        assert!(
            rep.summary.submitted > quiet.summary.submitted,
            "injected load must show up in the summary ({} vs {})",
            rep.summary.submitted,
            quiet.summary.submitted
        );
        for r in &rep.records {
            assert!(r.phase.is_terminal(), "request {} stuck", r.id);
        }
        // Injection rides the ordinary control-queue event stream, so
        // the sharded engine replays it bit-identically.
        let sharded = run_geo_with(&cfg, Recorder::disabled(), EngineMode::Sharded(3));
        assert_eq!(rep.digest(), sharded.digest());
        // And the quiet config still digests identically to a build
        // without the scenario plane compiled in: `None` is the default.
        assert_eq!(quiet.digest(), run_geo(&small(2, 7)).digest());
    }

    #[test]
    fn migration_conservation_holds_end_to_end() {
        // Make cross-cell migration eager so the invariant has teeth.
        let mut cfg = small(2, 9);
        cfg.rebalance.imbalance_threshold = 0.05;
        cfg.rebalance.min_interval = SimDuration::from_secs(10);
        let rep = run_geo(&cfg);
        for m in &rep.migrations {
            assert_eq!(m.bytes_src, m.bytes_wire, "fabric charged wrong bytes");
            if m.completed {
                assert_eq!(m.bytes_src, m.bytes_dst, "state lost in flight");
            } else {
                assert_eq!(m.bytes_dst, 0, "orphaned move landed bytes");
            }
        }
    }
}
