//! Geo run results: per-request records with region provenance,
//! control-plane counters, per-host and per-migration accounting, and
//! the canonical digest the geo determinism suite pins.

use fleet::RouteReason;
use rattrap::{Phase, ReportHasher};
use simkit::{Cdf, SimDuration, SimTime};
use workloads::WorkloadKind;

/// One request's outcome in the multi-region topology.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoRequestRecord {
    /// Request id (arrival order).
    pub id: u64,
    /// Originating user (global device index).
    pub user: u32,
    /// The user's home region.
    pub region: usize,
    /// The app.
    pub kind: WorkloadKind,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Terminal instant.
    pub finished: SimTime,
    /// Terminal lifecycle phase.
    pub phase: Phase,
    /// Whether the task fell back to the device's own CPU.
    pub fell_back: bool,
    /// Cell that finally served it (`None` for shed requests).
    pub cell: Option<usize>,
    /// Host that finally served it (global index).
    pub host: Option<usize>,
    /// Whether the serving cell sat outside the home region.
    pub cross_region: bool,
    /// Service attempts consumed.
    pub attempts: u32,
    /// How the in-cell placement was chosen.
    pub reason: Option<RouteReason>,
}

impl GeoRequestRecord {
    /// End-to-end response time.
    pub fn response(&self) -> SimDuration {
        self.finished.saturating_since(self.arrival)
    }

    /// Whether the cloud served it (done, and not on the device).
    pub fn remote(&self) -> bool {
        self.phase == Phase::Done && !self.fell_back
    }
}

/// Counters for the geo control plane's own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeoControlStats {
    /// Requests placed by in-cell warm-container affinity.
    pub affinity_routes: u64,
    /// Requests placed on their in-cell consistent-hash home.
    pub hash_routes: u64,
    /// Requests spilled past refusing hosts inside their cell.
    pub spill_routes: u64,
    /// Requests served outside their home region.
    pub cross_region_routes: u64,
    /// Requests no host in any region admitted.
    pub shed: u64,
    /// In-tier standby activations (the cell had its own spare).
    pub scale_ups: u64,
    /// Cloud-burst activations: an edge PoP's sustained saturation
    /// powered on a regional-core standby on its behalf.
    pub bursts: u64,
    /// Active hosts drained by a cell's autoscaler.
    pub drains: u64,
    /// Cross-cell migrations started.
    pub migrations_started: u64,
    /// Cross-cell migrations completed (destination container live).
    pub migrations_completed: u64,
    /// Checkpoint bytes landed by completed migrations.
    pub migration_bytes: u64,
    /// Request payload bytes that crossed a WAN leg (upload +
    /// download of remotely served requests).
    pub wan_request_bytes: u64,
    /// Times a request was admitted while already holding an
    /// admission slot. Always zero — the geo-single-admission
    /// invariant; any spillover double-count shows up here.
    pub double_admissions: u64,
}

/// One cross-cell migration, with the state-conservation evidence the
/// simcheck invariant audits: the bytes the source serialized, the
/// bytes the WAN fabric carried, and the bytes the destination
/// measured while restoring must all agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeoMigrationRecord {
    /// Source host (global index).
    pub from_host: usize,
    /// Destination host (global index).
    pub to_host: usize,
    /// Source cell.
    pub from_cell: usize,
    /// Destination cell.
    pub to_cell: usize,
    /// Checkpoint bytes the source serialized.
    pub bytes_src: u64,
    /// Bytes charged through the WAN fabric.
    pub bytes_wire: u64,
    /// Bytes the destination measured while restoring (zero until the
    /// container lands).
    pub bytes_dst: u64,
    /// Whether the destination container went live.
    pub completed: bool,
}

/// Per-host accounting (global index order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeoHostReport {
    /// The cell the host belongs to.
    pub cell: usize,
    /// Requests this host completed.
    pub served: u64,
    /// Peak concurrently provisioned instances.
    pub peak_instances: usize,
    /// Peak reserved memory, bytes.
    pub peak_memory: u64,
    /// The host's DRAM.
    pub memory_bytes: u64,
    /// Containers migrated away.
    pub migrations_out: u64,
    /// Containers migrated in.
    pub migrations_in: u64,
}

/// Response-time shape of one region's own population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoRegionSummary {
    /// Requests submitted by devices homed here.
    pub submitted: u64,
    /// Served by the cloud (any region).
    pub completed_remote: u64,
    /// Served outside the home region.
    pub cross_region: u64,
    /// Median response of remote completions, seconds.
    pub p50_response_s: f64,
    /// 99th-percentile response of remote completions, seconds.
    pub p99_response_s: f64,
}

/// Aggregate outcome of a geo run.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoSummary {
    /// Requests submitted (trace arrivals, all regions).
    pub submitted: u64,
    /// Served by the cloud.
    pub completed_remote: u64,
    /// Degraded to on-device execution.
    pub fallback_local: u64,
    /// Abandoned.
    pub abandoned: u64,
    /// Cloud throughput over the trace duration, requests/second.
    pub throughput_rps: f64,
    /// Mean response time of remote completions, seconds.
    pub mean_response_s: f64,
    /// Median response time, seconds.
    pub p50_response_s: f64,
    /// 95th percentile, seconds.
    pub p95_response_s: f64,
    /// 99th percentile, seconds — the headline geo metric.
    pub p99_response_s: f64,
    /// Per-region response shape, region order.
    pub regions: Vec<GeoRegionSummary>,
    /// Trace duration, seconds.
    pub duration_s: f64,
}

/// Everything a geo run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoReport {
    /// Per-request outcomes, in arrival order.
    pub records: Vec<GeoRequestRecord>,
    /// Control-plane activity.
    pub control: GeoControlStats,
    /// Per-host accounting, global index order.
    pub hosts: Vec<GeoHostReport>,
    /// Every migration the control plane started, slot order.
    pub migrations: Vec<GeoMigrationRecord>,
    /// Aggregates.
    pub summary: GeoSummary,
    /// Scenario-plane accounting (`None` unless the config carried a
    /// scenario plan). Geo wiring injects arrivals; cohort windows and
    /// tenant splits are fleet-level (see `fleet::ScenarioStats`).
    pub scenario: Option<GeoScenarioStats>,
}

/// Geo-level scenario conservation counters: every scripted event is
/// submitted or suppressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeoScenarioStats {
    /// The spec's display name.
    pub name: String,
    /// Scripted events compiled into the run.
    pub injected: u64,
    /// Scripted events submitted as platform requests.
    pub submitted: u64,
    /// Scripted events handled device-locally.
    pub suppressed: u64,
}

fn response_cdf(records: &[GeoRequestRecord], keep: impl Fn(&GeoRequestRecord) -> bool) -> Cdf {
    Cdf::from_samples(
        records
            .iter()
            .filter(|r| r.remote() && keep(r))
            .map(|r| r.response().as_secs_f64())
            .collect(),
    )
}

impl GeoReport {
    /// Build the aggregate summary from the raw pieces.
    pub fn summarize(
        records: Vec<GeoRequestRecord>,
        control: GeoControlStats,
        hosts: Vec<GeoHostReport>,
        migrations: Vec<GeoMigrationRecord>,
        n_regions: usize,
        duration: SimDuration,
    ) -> Self {
        let submitted = records.len() as u64;
        let completed_remote = records.iter().filter(|r| r.remote()).count() as u64;
        let fallback_local = records
            .iter()
            .filter(|r| r.fell_back && r.phase == Phase::Done)
            .count() as u64;
        let abandoned = records
            .iter()
            .filter(|r| matches!(r.phase, Phase::Abandoned | Phase::Failed))
            .count() as u64;
        let remote: Vec<f64> = records
            .iter()
            .filter(|r| r.remote())
            .map(|r| r.response().as_secs_f64())
            .collect();
        let mean = if remote.is_empty() {
            0.0
        } else {
            remote.iter().sum::<f64>() / remote.len() as f64
        };
        let cdf = Cdf::from_samples(remote);
        let regions = (0..n_regions)
            .map(|reg| {
                let rc = response_cdf(&records, |r| r.region == reg);
                GeoRegionSummary {
                    submitted: records.iter().filter(|r| r.region == reg).count() as u64,
                    completed_remote: records
                        .iter()
                        .filter(|r| r.region == reg && r.remote())
                        .count() as u64,
                    cross_region: records
                        .iter()
                        .filter(|r| r.region == reg && r.remote() && r.cross_region)
                        .count() as u64,
                    p50_response_s: rc.median().unwrap_or(0.0),
                    p99_response_s: rc.quantile(0.99).unwrap_or(0.0),
                }
            })
            .collect();
        let duration_s = duration.as_secs_f64();
        let summary = GeoSummary {
            submitted,
            completed_remote,
            fallback_local,
            abandoned,
            throughput_rps: completed_remote as f64 / duration_s,
            mean_response_s: mean,
            p50_response_s: cdf.median().unwrap_or(0.0),
            p95_response_s: cdf.quantile(0.95).unwrap_or(0.0),
            p99_response_s: cdf.quantile(0.99).unwrap_or(0.0),
            regions,
            duration_s,
        };
        GeoReport {
            records,
            control,
            hosts,
            migrations,
            summary,
            scenario: None,
        }
    }

    /// Canonical digest over every observable field — the geo golden
    /// determinism contract.
    pub fn digest(&self) -> u64 {
        let mut h = ReportHasher::new();
        h.write_u64(self.records.len() as u64);
        for r in &self.records {
            h.write_u64(r.id);
            h.write_u64(r.user as u64);
            h.write_u64(r.region as u64);
            h.write(format!("{:?}", r.kind).as_bytes());
            h.write_u64(r.arrival.as_micros());
            h.write_u64(r.finished.as_micros());
            h.write(r.phase.name().as_bytes());
            h.write_u64(r.fell_back as u64);
            h.write_u64(r.cell.map(|x| x as u64 + 1).unwrap_or(0));
            h.write_u64(r.host.map(|x| x as u64 + 1).unwrap_or(0));
            h.write_u64(r.cross_region as u64);
            h.write_u64(r.attempts as u64);
            h.write(match r.reason {
                None => b"none" as &[u8],
                Some(x) => x.label().as_bytes(),
            });
        }
        let c = &self.control;
        for v in [
            c.affinity_routes,
            c.hash_routes,
            c.spill_routes,
            c.cross_region_routes,
            c.shed,
            c.scale_ups,
            c.bursts,
            c.drains,
            c.migrations_started,
            c.migrations_completed,
            c.migration_bytes,
            c.wan_request_bytes,
            c.double_admissions,
        ] {
            h.write_u64(v);
        }
        for hr in &self.hosts {
            h.write_u64(hr.cell as u64);
            h.write_u64(hr.served);
            h.write_u64(hr.peak_instances as u64);
            h.write_u64(hr.peak_memory);
            h.write_u64(hr.memory_bytes);
            h.write_u64(hr.migrations_out);
            h.write_u64(hr.migrations_in);
        }
        h.write_u64(self.migrations.len() as u64);
        for m in &self.migrations {
            h.write_u64(m.from_host as u64);
            h.write_u64(m.to_host as u64);
            h.write_u64(m.from_cell as u64);
            h.write_u64(m.to_cell as u64);
            h.write_u64(m.bytes_src);
            h.write_u64(m.bytes_wire);
            h.write_u64(m.bytes_dst);
            h.write_u64(m.completed as u64);
        }
        let s = &self.summary;
        h.write_u64(s.submitted);
        h.write_u64(s.completed_remote);
        h.write_u64(s.fallback_local);
        h.write_u64(s.abandoned);
        h.write_f64(s.throughput_rps);
        h.write_f64(s.mean_response_s);
        h.write_f64(s.p50_response_s);
        h.write_f64(s.p95_response_s);
        h.write_f64(s.p99_response_s);
        for reg in &s.regions {
            h.write_u64(reg.submitted);
            h.write_u64(reg.completed_remote);
            h.write_u64(reg.cross_region);
            h.write_f64(reg.p50_response_s);
            h.write_f64(reg.p99_response_s);
        }
        // Hashed only when present, so scenario-free runs keep the
        // digests pinned before the scenario plane existed.
        if let Some(sc) = &self.scenario {
            h.write(sc.name.as_bytes());
            h.write_u64(sc.injected);
            h.write_u64(sc.submitted);
            h.write_u64(sc.suppressed);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, region: usize, secs: u64) -> GeoRequestRecord {
        GeoRequestRecord {
            id,
            user: id as u32,
            region,
            kind: WorkloadKind::Ocr,
            arrival: SimTime::from_secs(1),
            finished: SimTime::from_secs(1 + secs),
            phase: Phase::Done,
            fell_back: false,
            cell: Some(region * 2),
            host: Some(0),
            cross_region: false,
            attempts: 1,
            reason: Some(RouteReason::Hash),
        }
    }

    #[test]
    fn summary_slices_per_region() {
        let recs = vec![record(0, 0, 2), record(1, 0, 4), record(2, 1, 8)];
        let rep = GeoReport::summarize(
            recs,
            GeoControlStats::default(),
            vec![],
            vec![],
            2,
            SimDuration::from_secs(10),
        );
        assert_eq!(rep.summary.submitted, 3);
        assert_eq!(rep.summary.regions.len(), 2);
        assert_eq!(rep.summary.regions[0].submitted, 2);
        assert_eq!(rep.summary.regions[1].submitted, 1);
        assert!(rep.summary.regions[1].p99_response_s > rep.summary.regions[0].p99_response_s);
        assert!(rep.summary.p99_response_s >= rep.summary.p95_response_s);
    }

    #[test]
    fn digest_sees_migration_and_admission_evidence() {
        let base = GeoReport::summarize(
            vec![record(0, 0, 2)],
            GeoControlStats::default(),
            vec![GeoHostReport::default()],
            vec![GeoMigrationRecord {
                from_host: 0,
                to_host: 1,
                from_cell: 0,
                to_cell: 2,
                bytes_src: 100,
                bytes_wire: 100,
                bytes_dst: 100,
                completed: true,
            }],
            1,
            SimDuration::from_secs(10),
        );
        let mut lost = base.clone();
        lost.migrations[0].bytes_dst = 99;
        assert_ne!(base.digest(), lost.digest(), "conservation bytes");
        let mut double = base.clone();
        double.control.double_admissions = 1;
        assert_ne!(base.digest(), double.digest(), "double admission");
        let mut moved = base.clone();
        moved.records[0].cross_region = true;
        assert_ne!(base.digest(), moved.digest(), "cross-region flag");
    }
}
