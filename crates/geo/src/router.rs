//! The geo router: latency-aware cell selection over the multi-region
//! topology, reusing the fleet's consistent-hash [`Router`] inside
//! each cell.
//!
//! A request homed in region `r` sees every cell priced as
//! `device RTT − affinity bonus` (the bonus applies when the cell
//! holds a warm container for the app), so a nearby edge PoP wins by
//! default, a warm regional core can beat a cold edge, and saturated
//! geographies spill clockwise around the region ring. Within the
//! chosen cell, placement is the fleet router's warm-affinity /
//! hash-home / clockwise-spill walk over the cell's own ring.

use crate::config::Topology;
use fleet::{RouteReason, Router};
use rattrap::warehouse::Aid;
use simkit::SimDuration;

/// Where the geo router decided to send a request, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeoDecision {
    /// The chosen cell.
    pub cell: usize,
    /// The chosen host (global index).
    pub host: usize,
    /// The in-cell router's reason (affinity / hash / spill).
    pub reason: RouteReason,
    /// Whether the cell sits outside the device's home region.
    pub cross_region: bool,
}

/// Latency-aware router over cells.
#[derive(Debug)]
pub struct GeoRouter {
    affinity_bonus: SimDuration,
}

impl GeoRouter {
    /// A router that values a warm code cache at `affinity_bonus` of
    /// proximity.
    pub fn new(affinity_bonus: SimDuration) -> Self {
        GeoRouter { affinity_bonus }
    }

    /// Cells in preference order for a device homed in `region`:
    /// ascending `device RTT − bonus·warm`, ties broken by clockwise
    /// ring distance from home, edge before core, then cell index —
    /// fully deterministic.
    pub fn cell_order(
        &self,
        topo: &Topology,
        region: usize,
        warm: impl Fn(usize) -> bool,
    ) -> Vec<usize> {
        let mut order: Vec<(i64, usize, usize, usize)> = (0..topo.n_cells())
            .map(|cell| {
                let mut cost = topo.device_rtt(region, cell).as_micros() as i64;
                if warm(cell) {
                    cost -= self.affinity_bonus.as_micros() as i64;
                }
                let hops = topo.clockwise_hops(region, topo.region_of_cell(cell));
                (cost, hops, cell % 2, cell)
            })
            .collect();
        order.sort_unstable();
        order.into_iter().map(|(_, _, _, cell)| cell).collect()
    }

    /// Route one request: walk cells in preference order, asking each
    /// cell's own ring for a placement; the first cell that admits
    /// wins. `None` means every host in every region refused.
    pub fn route(
        &self,
        topo: &Topology,
        region: usize,
        aid: &Aid,
        cell_routers: &[Router],
        cell_warm: impl Fn(usize) -> Vec<usize>,
        mut admissible: impl FnMut(usize) -> bool,
    ) -> Option<GeoDecision> {
        let order = self.cell_order(topo, region, |cell| !cell_warm(cell).is_empty());
        for cell in order {
            let warm = cell_warm(cell);
            if let Some(d) = cell_routers[cell].route(aid, &warm, &mut admissible) {
                return Some(GeoDecision {
                    cell,
                    host: d.host,
                    reason: d.reason,
                    cross_region: topo.region_of_cell(cell) != region,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeoConfig;
    use rattrap::warehouse::aid_of;

    fn topo3() -> Topology {
        Topology::new(&GeoConfig::paper_default(3, 7))
    }

    fn cell_routers(topo: &Topology) -> Vec<Router> {
        (0..topo.n_cells())
            .map(|cell| {
                let mut r = Router::new(64);
                r.rebuild(&topo.hosts_in(cell).collect());
                r
            })
            .collect()
    }

    #[test]
    fn home_edge_wins_when_everyone_is_cold() {
        let topo = topo3();
        let order = GeoRouter::new(SimDuration::from_millis(5)).cell_order(&topo, 1, |_| false);
        assert_eq!(order[0], topo.edge_cell(1), "home edge first");
        assert_eq!(order[1], topo.core_cell(1), "home core second");
    }

    #[test]
    fn warm_home_core_beats_cold_home_edge() {
        let topo = topo3();
        let r = GeoRouter::new(SimDuration::from_millis(5));
        // Bonus (5 ms) exceeds the metro RTT (2 ms): warmth wins.
        let order = r.cell_order(&topo, 0, |c| c == topo.core_cell(0));
        assert_eq!(order[0], topo.core_cell(0));
        // …but not a 40 ms ring hop: a remote warm edge stays behind
        // the whole home region.
        let order = r.cell_order(&topo, 0, |c| c == topo.edge_cell(1));
        assert_eq!(order[0], topo.edge_cell(0));
        assert_eq!(order[1], topo.core_cell(0));
    }

    #[test]
    fn saturated_home_region_spills_clockwise() {
        let topo = topo3();
        let routers = cell_routers(&topo);
        let r = GeoRouter::new(SimDuration::from_millis(5));
        let home: Vec<usize> = topo
            .hosts_in(topo.edge_cell(0))
            .chain(topo.hosts_in(topo.core_cell(0)))
            .collect();
        let d = r
            .route(
                &topo,
                0,
                &aid_of("com.bench.ocr"),
                &routers,
                |_| vec![],
                |h| !home.contains(&h),
            )
            .expect("someone admits");
        assert!(d.cross_region);
        // Regions 1 and 2 are both one hop away; clockwise tie-break
        // prefers region 1's edge.
        assert_eq!(d.cell, topo.edge_cell(1));
    }

    #[test]
    fn total_saturation_sheds() {
        let topo = topo3();
        let routers = cell_routers(&topo);
        let r = GeoRouter::new(SimDuration::from_millis(5));
        assert!(r
            .route(
                &topo,
                0,
                &aid_of("com.bench.ocr"),
                &routers,
                |_| vec![],
                |_| false
            )
            .is_none());
    }

    #[test]
    fn in_cell_placement_reuses_the_fleet_ring() {
        let topo = topo3();
        let routers = cell_routers(&topo);
        let r = GeoRouter::new(SimDuration::from_millis(5));
        let aid = aid_of("com.bench.chessgame");
        let warm_host = topo.hosts_in(0).next_back().unwrap();
        let d = r
            .route(
                &topo,
                0,
                &aid,
                &routers,
                |c| {
                    if c == 0 {
                        vec![warm_host]
                    } else {
                        vec![]
                    }
                },
                |_| true,
            )
            .expect("admits");
        assert_eq!(d.host, warm_host);
        assert_eq!(d.reason, RouteReason::Affinity);
        assert!(!d.cross_region);
    }
}
