//! Determinism and regression contracts for the geo engine.
//!
//! The geo layer inherits the fleet's reproducibility bar: the same
//! [`GeoConfig`] must produce bit-identical [`GeoReport`] digests
//! under the serial engine and under every sharded thread count, with
//! or without a recorder attached. The boot-time regression pins the
//! edge tier's default standby boot against the fleet golden digest,
//! so retuning the per-tier knob is a visible, deliberate act.

use fleet::{run_fleet, AutoscalePolicy, FleetConfig};
use geo::{run_geo, run_geo_traced, run_geo_with, EngineMode, GeoConfig, TierSpec};
use obsv::{Recorder, RecorderConfig};
use simkit::faults::FaultConfig;
use simkit::SimDuration;

/// Same seed the rattrap and fleet goldens pin.
const GOLDEN_SEED: u64 = 0x2017_0529;

/// The fleet's pinned canonical digest (see
/// `crates/fleet/tests/golden_determinism.rs`) — the boot-time
/// regression below must reproduce it.
const GOLDEN_FLEET_DIGEST: u64 = 0xc722_c512_a546_9f68;

/// A 3-region scenario small enough for CI but busy enough to route
/// cross-region, migrate over the WAN, and exercise every tier.
fn canonical_geo() -> GeoConfig {
    let mut cfg = GeoConfig::paper_default(3, GOLDEN_SEED);
    for r in &mut cfg.regions {
        r.users = 16;
    }
    cfg.traffic.duration = SimDuration::from_secs(1800);
    cfg
}

#[test]
fn serial_and_sharded_agree_bit_for_bit() {
    let cfg = canonical_geo();
    let serial = run_geo(&cfg);
    assert!(serial.summary.submitted > 0, "scenario produced traffic");
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for threads in [1, 2, ncores] {
        let sharded = run_geo_with(&cfg, Recorder::disabled(), EngineMode::Sharded(threads));
        assert_eq!(
            serial.digest(),
            sharded.digest(),
            "Sharded({threads}) diverged from Serial"
        );
    }
}

#[test]
fn tracing_is_digest_neutral() {
    let cfg = canonical_geo();
    let baseline = run_geo(&cfg).digest();
    let rec = Recorder::enabled(RecorderConfig::default());
    let rep = run_geo_traced(&cfg, rec.clone());
    assert_eq!(rep.digest(), baseline, "recorder perturbed the run");
    assert!(!rec.snapshot().events.is_empty(), "traced run recorded");

    let rec = Recorder::enabled(RecorderConfig::default());
    let rep = run_geo_with(&cfg, rec, EngineMode::Sharded(2));
    assert_eq!(rep.digest(), baseline, "traced sharded run diverged");
}

#[test]
fn neighbouring_seed_diverges() {
    let mut cfg = canonical_geo();
    let baseline = run_geo(&cfg).digest();
    cfg.seed ^= 1;
    assert_ne!(run_geo(&cfg).digest(), baseline, "digest is seed-blind");
}

#[test]
fn saturated_edge_spills_cross_region_and_bursts_to_the_core() {
    // One hot region with a single-host edge PoP and no edge standby:
    // overflow must spill around the ring and the edge must borrow
    // core capacity.
    let mut cfg = GeoConfig::paper_default(3, GOLDEN_SEED);
    cfg.admission_capacity = 2;
    cfg.regions[0].users = 48;
    cfg.regions[0].edge.hosts = 1;
    cfg.regions[0].edge.initial_active = 1;
    cfg.regions[1].users = 4;
    cfg.regions[2].users = 4;
    cfg.traffic.duration = SimDuration::from_secs(1800);
    let rep = run_geo(&cfg);
    assert!(
        rep.control.cross_region_routes > 0,
        "no request left its home region under saturation"
    );
    assert!(
        rep.control.bursts > 0,
        "the overloaded edge never borrowed core standby"
    );
    assert_eq!(rep.control.double_admissions, 0);
}

/// Satellite: the edge tier's standby boot time is the fleet's own
/// 45 s default, and feeding that per-tier knob back into the fleet's
/// canonical scenario reproduces the fleet golden digest exactly —
/// the geo refactor changed where the number lives, not what it is.
#[test]
fn edge_boot_default_reproduces_the_fleet_golden_digest() {
    assert_eq!(
        TierSpec::edge().autoscale.host_boot,
        AutoscalePolicy::standard().host_boot,
        "edge tier drifted from the fleet's standby boot default"
    );

    let mut cfg = FleetConfig::paper_default(4, GOLDEN_SEED);
    cfg.traffic.users = 200;
    cfg.faults = FaultConfig::scaled(0.5);
    cfg.autoscale.host_boot = TierSpec::edge().autoscale.host_boot;
    assert_eq!(
        run_fleet(&cfg).digest(),
        GOLDEN_FLEET_DIGEST,
        "routing host_boot through the tier spec moved the fleet golden"
    );
}
