//! The fleet control plane behind the `exec::serve` offload API.
//!
//! [`FleetHandler`] implements [`exec::serve::OffloadHandler`] with the
//! same front-end machinery the simulated fleet runs: requests are
//! keyed by AID, routed over the consistent-hash [`Router`] with
//! warm-cache affinity, admission-bounded per host, and then executed
//! *for real* on each host's bounded [`exec::RealBackend`] worker
//! pool. The response carries the deterministic kernel output checksum
//! plus the queue/execute timing breakdown — the paper's
//! route/admit/execute/copy-back loop, served over TCP:
//!
//! ```text
//! exec::serve::serve(addr, FleetHandler::new(hosts, workers, cap))
//! ```

use crate::router::Router;
use exec::serve::{OffloadHandler, OffloadRequest, OffloadResponse};
use exec::RealBackend;
use rattrap::warehouse::{aid_of, Aid};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use workloads::WorkloadKind;

/// One serving host: its worker pool, admission counter, and the set
/// of workloads it has warm code for.
#[derive(Debug)]
struct HostSlot {
    backend: RealBackend,
    in_flight: AtomicUsize,
    /// Workloads whose code this host has loaded before (the warm-set
    /// the router's affinity preference keys on).
    warm: Mutex<BTreeSet<WorkloadKind>>,
}

/// Routing + admission + real execution over a small host fleet.
#[derive(Debug)]
pub struct FleetHandler {
    router: Router,
    hosts: Vec<HostSlot>,
    aids: Vec<Aid>,
    /// Per-host concurrent-request bound; beyond it the router spills
    /// clockwise, and when every host is full the request is shed.
    max_in_flight: usize,
}

impl FleetHandler {
    /// A fleet of `hosts` hosts, each with `workers` pool threads and
    /// room for `max_in_flight` concurrent requests.
    pub fn new(hosts: usize, workers: usize, max_in_flight: usize) -> FleetHandler {
        assert!(hosts > 0, "at least one host");
        assert!(max_in_flight > 0, "admission bound must admit something");
        let mut router = Router::new(64);
        router.rebuild(&(0..hosts).collect());
        FleetHandler {
            router,
            hosts: (0..hosts)
                .map(|_| HostSlot {
                    backend: RealBackend::new(workers),
                    in_flight: AtomicUsize::new(0),
                    warm: Mutex::new(BTreeSet::new()),
                })
                .collect(),
            aids: WorkloadKind::ALL
                .iter()
                .map(|k| aid_of(k.app_id()))
                .collect(),
            max_in_flight,
        }
    }

    fn aid(&self, kind: WorkloadKind) -> &Aid {
        let i = WorkloadKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("every kind has an aid");
        &self.aids[i]
    }
}

impl OffloadHandler for FleetHandler {
    fn handle(&self, req: &OffloadRequest) -> OffloadResponse {
        let queued = Instant::now();

        // Route: warm-affinity first, then hash home, then spillover —
        // exactly the simulated front end's preference order.
        let warm: Vec<usize> = self
            .hosts
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.warm.lock().expect("warm set").contains(&req.kind))
            .map(|(h, _)| h)
            .collect();
        let decision = self.router.route(self.aid(req.kind), &warm, |h| {
            self.hosts[h].in_flight.load(Ordering::SeqCst) < self.max_in_flight
        });
        let Some(decision) = decision else {
            return OffloadResponse::error("admission: every host is full");
        };

        // Admit (racing submitters may overshoot the bound by the gap
        // between route and admit; the bound is capacity protection,
        // not a strict semaphore).
        let slot = &self.hosts[decision.host];
        slot.in_flight.fetch_add(1, Ordering::SeqCst);
        slot.warm.lock().expect("warm set").insert(req.kind);

        // Execute for real on the host's bounded pool.
        let (out, wall) = slot.backend.execute(req.kind, req.size, req.seed);
        slot.in_flight.fetch_sub(1, Ordering::SeqCst);

        let total = queued.elapsed().as_micros() as u64;
        OffloadResponse {
            ok: true,
            error: String::new(),
            checksum: out.checksum,
            host: decision.host,
            backend: "real".into(),
            queue_micros: total.saturating_sub(wall),
            exec_micros: wall,
            detail: format!("{} via {}", out.detail, decision.reason.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec::{execute_kernel, SizeClass};

    #[test]
    fn routes_and_executes_with_verifiable_checksum() {
        let handler = FleetHandler::new(3, 2, 4);
        let req = OffloadRequest {
            kind: WorkloadKind::Linpack,
            size: SizeClass::Small,
            seed: 99,
        };
        let resp = handler.handle(&req);
        assert!(resp.ok, "{}", resp.error);
        assert!(resp.host < 3);
        assert_eq!(
            resp.checksum,
            execute_kernel(req.kind, req.size, req.seed).checksum
        );
    }

    #[test]
    fn repeat_requests_stick_to_the_warm_host() {
        let handler = FleetHandler::new(4, 1, 8);
        let req = OffloadRequest {
            kind: WorkloadKind::ChessGame,
            size: SizeClass::Small,
            seed: 1,
        };
        let first = handler.handle(&req);
        assert!(first.ok);
        for seed in 2..6 {
            let resp = handler.handle(&OffloadRequest { seed, ..req });
            assert!(resp.ok);
            assert_eq!(resp.host, first.host, "affinity broke: {}", resp.detail);
            assert!(resp.detail.contains("affinity"), "{}", resp.detail);
        }
    }
}
