//! Migration-based rebalancing: when the load gap between the hottest
//! and coldest active host exceeds the policy threshold, one warm
//! container is checkpoint-migrated (`virt::migrate`) from hot to
//! cold. The engine charges the state transfer through the shared
//! interconnect fabric, so concurrent migrations contend for
//! bandwidth like any other flow.

use crate::config::RebalancePolicy;
use simkit::SimTime;

/// A planned move: migrate one container `from` → `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceMove {
    /// Overloaded source host.
    pub from: usize,
    /// Underloaded destination host.
    pub to: usize,
}

/// The rebalancer's pacing state.
#[derive(Debug)]
pub struct Rebalancer {
    policy: RebalancePolicy,
    last_move: Option<SimTime>,
}

impl Rebalancer {
    /// A rebalancer under `policy`.
    pub fn new(policy: RebalancePolicy) -> Self {
        Rebalancer {
            policy,
            last_move: None,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RebalancePolicy {
        self.policy
    }

    /// Given the autoscaler's hot/cold reading, decide whether to move
    /// now. The caller still has to find a migratable victim; it calls
    /// [`committed`](Rebalancer::committed) only once the migration
    /// actually starts, so a scan with no idle victim does not burn
    /// the pacing budget.
    pub fn plan(
        &self,
        now: SimTime,
        hot_cold: Option<(usize, usize, f64)>,
    ) -> Option<RebalanceMove> {
        if !self.policy.enabled {
            return None;
        }
        let (hot, cold, gap) = hot_cold?;
        if gap < self.policy.imbalance_threshold {
            return None;
        }
        if let Some(last) = self.last_move {
            if now.saturating_since(last) < self.policy.min_interval {
                return None;
            }
        }
        Some(RebalanceMove {
            from: hot,
            to: cold,
        })
    }

    /// Record that a migration started at `now` (starts the pacing
    /// window).
    pub fn committed(&mut self, now: SimTime) {
        self.last_move = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    #[test]
    fn below_threshold_no_move() {
        let r = Rebalancer::new(RebalancePolicy::standard());
        assert_eq!(r.plan(SimTime::ZERO, Some((0, 1, 0.2))), None);
        assert_eq!(r.plan(SimTime::ZERO, None), None);
    }

    #[test]
    fn above_threshold_moves_hot_to_cold() {
        let r = Rebalancer::new(RebalancePolicy::standard());
        assert_eq!(
            r.plan(SimTime::ZERO, Some((2, 0, 0.8))),
            Some(RebalanceMove { from: 2, to: 0 })
        );
    }

    #[test]
    fn pacing_window_throttles_moves() {
        let mut r = Rebalancer::new(RebalancePolicy::standard());
        let gap = Some((1, 0, 0.9));
        assert!(r.plan(SimTime::ZERO, gap).is_some());
        r.committed(SimTime::ZERO);
        let soon = SimTime::from_secs(5);
        assert_eq!(r.plan(soon, gap), None, "inside the pacing window");
        let later =
            SimTime::ZERO.saturating_add(r.policy().min_interval + SimDuration::from_secs(1));
        assert!(r.plan(later, gap).is_some());
    }

    #[test]
    fn disabled_never_moves() {
        let r = Rebalancer::new(RebalancePolicy::disabled());
        assert_eq!(r.plan(SimTime::ZERO, Some((1, 0, 10.0))), None);
    }
}
