//! Per-host admission control: bounded queues with backpressure.
//!
//! A host accepts at most `capacity` concurrently admitted requests
//! (waiting for a runtime + being served). The router treats a full
//! host as inadmissible, which first spills traffic around the ring
//! and — when the whole fleet is saturated — sheds the request to the
//! resilience layer (fallback-local or abandon). Depth is released
//! when service completes, fails, or the request is re-routed away.

/// Admission state for every host in the fleet.
#[derive(Debug)]
pub struct AdmissionCtl {
    capacity: usize,
    depth: Vec<usize>,
    admitted: Vec<u64>,
    shed: u64,
}

impl AdmissionCtl {
    /// Admission control over `hosts` hosts with the same per-host
    /// `capacity` bound.
    pub fn new(hosts: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "admission capacity must be positive");
        AdmissionCtl {
            capacity,
            depth: vec![0; hosts],
            admitted: vec![0; hosts],
            shed: 0,
        }
    }

    /// Whether `host` can take one more request.
    pub fn has_room(&self, host: usize) -> bool {
        self.depth[host] < self.capacity
    }

    /// Admit one request onto `host`. Returns `false` (and counts
    /// nothing) when the queue is full.
    pub fn admit(&mut self, host: usize) -> bool {
        if !self.has_room(host) {
            return false;
        }
        self.depth[host] += 1;
        self.admitted[host] += 1;
        true
    }

    /// Release one admitted slot (completion, failure, re-route).
    pub fn release(&mut self, host: usize) {
        debug_assert!(self.depth[host] > 0, "release without admit");
        self.depth[host] = self.depth[host].saturating_sub(1);
    }

    /// Count one fleet-wide shed (no host admitted the request).
    pub fn count_shed(&mut self) {
        self.shed += 1;
    }

    /// Current depth of `host`.
    pub fn depth(&self, host: usize) -> usize {
        self.depth[host]
    }

    /// Depth as a fraction of capacity (the backpressure signal).
    pub fn utilization(&self, host: usize) -> f64 {
        self.depth[host] as f64 / self.capacity as f64
    }

    /// Wipe `host`'s depth (host crash: every admitted request was
    /// already re-routed or failed individually).
    pub fn reset_host(&mut self, host: usize) {
        self.depth[host] = 0;
    }

    /// Total requests ever admitted per host.
    pub fn admitted(&self) -> &[u64] {
        &self.admitted
    }

    /// Total fleet-wide sheds.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The configured per-host bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_backpressures() {
        let mut a = AdmissionCtl::new(2, 2);
        assert!(a.admit(0));
        assert!(a.admit(0));
        assert!(!a.admit(0), "full host refuses");
        assert!(a.has_room(1));
        a.release(0);
        assert!(a.admit(0));
        assert_eq!(a.admitted()[0], 3);
    }

    #[test]
    fn reset_clears_depth_but_keeps_counters() {
        let mut a = AdmissionCtl::new(1, 4);
        a.admit(0);
        a.admit(0);
        a.reset_host(0);
        assert_eq!(a.depth(0), 0);
        assert_eq!(a.admitted()[0], 2);
    }

    #[test]
    fn utilization_is_the_backpressure_signal() {
        let mut a = AdmissionCtl::new(1, 4);
        a.admit(0);
        a.admit(0);
        assert!((a.utilization(0) - 0.5).abs() < 1e-12);
    }
}
