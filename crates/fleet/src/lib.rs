//! `fleet` — the deterministic multi-host control plane.
//!
//! One rattrap host (PRs 1–3) serves one server's worth of offloading
//! traffic; this crate runs N of them as a cluster under a single
//! event engine, adding the four control-plane mechanisms a real
//! Rattrap deployment would need in front of its hosts:
//!
//! * **Routing** ([`Router`]) — a consistent-hash ring over AIDs with
//!   code-cache-affinity: requests prefer a host whose App Warehouse
//!   already holds a warm container for the app (the CID hints of
//!   Fig. 8), fall back to their hash home, and spill clockwise when
//!   hosts refuse admission.
//! * **Admission control** ([`AdmissionCtl`]) — bounded per-host
//!   queues with backpressure; a saturated fleet sheds requests to
//!   PR 2's resilience policy (fallback-local or abandon).
//! * **Autoscaling** ([`Autoscaler`]) — `rattrap`'s EWMA [`Monitor`]
//!   lifted to host granularity, with credit-damped scale decisions:
//!   sustained saturation powers standby hosts on, sustained slack
//!   drains the coldest host.
//! * **Rebalancing** ([`Rebalancer`]) — when the hot/cold gap exceeds
//!   the policy threshold, one warm container is checkpoint-migrated
//!   (`virt::migrate`) hot → cold, its state charged through a shared
//!   interconnect fabric.
//!
//! The whole thing is seeded-deterministic (same [`FleetConfig`] ⇒
//! bit-identical [`FleetReport`]), fault-aware (a crash kills a whole
//! host's instances and re-routes its stranded requests), and
//! instrumented with `obsv` spans under [`obsv::Subsystem::Fleet`].
//!
//! [`Monitor`]: rattrap::Monitor

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod autoscaler;
pub mod config;
pub mod engine;
pub mod rebalance;
pub mod report;
pub mod router;
pub mod serve;

pub use admission::AdmissionCtl;
pub use autoscaler::{Autoscaler, FleetAction};
pub use config::{AutoscalePolicy, FleetConfig, RebalancePolicy};
pub use engine::{run_fleet, run_fleet_backend, run_fleet_traced, run_fleet_with, EngineMode};
pub use rebalance::{RebalanceMove, Rebalancer};
pub use report::{
    ControlStats, FleetReport, FleetRequestRecord, FleetSummary, HostReport, ScenarioStats,
    TenantStats,
};
pub use router::{RouteDecision, RouteReason, Router};
pub use serve::FleetHandler;
