//! Fleet-level configuration: which hosts exist, how traffic arrives,
//! and the policies governing admission, autoscaling, and rebalancing.

use hostkernel::HostSpec;
use netsim::NetworkScenario;
use rattrap::{DeviceSpec, PoolPolicy, ResiliencePolicy};
use simkit::faults::FaultConfig;
use simkit::SimDuration;
use traces::livelab::TraceConfig;
use virt::RuntimeClass;

/// Fleet autoscaling policy: when to bring standby hosts up and when
/// to drain active ones. The signal is the per-host EWMA of active
/// jobs (the same `rattrap::scheduler::Monitor` that drives per-host
/// warm pools, lifted to host granularity), compared against
/// watermarks expressed as a fraction of each host's service slots.
///
/// Decisions are damped by a credit counter (the EDGELESS idea):
/// sustained pressure earns credits, one scale action spends them —
/// a single bursty scan can never flap the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Master switch. Disabled means a static fleet: every configured
    /// host is active from t = 0 and none is ever drained.
    pub enabled: bool,
    /// Mean busy-fraction above which the fleet is saturated.
    pub high_watermark: f64,
    /// Mean busy-fraction below which the fleet has slack to drain.
    pub low_watermark: f64,
    /// Credits of sustained pressure required before acting.
    pub credits_to_scale: u32,
    /// Control-loop cadence.
    pub scan_interval: SimDuration,
    /// Time for a standby host to become routable (power-on + kernel +
    /// Android Container Driver + shared-layer publish).
    pub host_boot: SimDuration,
    /// EWMA smoothing factor for the per-host load signal.
    pub alpha: f64,
}

impl AutoscalePolicy {
    /// A static fleet: no scaling, scan loop still runs (it also
    /// drives warm pools, idle reclamation, and rebalancing).
    pub fn static_fleet() -> Self {
        AutoscalePolicy {
            enabled: false,
            ..AutoscalePolicy::standard()
        }
    }

    /// The default elastic policy.
    pub fn standard() -> Self {
        AutoscalePolicy {
            enabled: true,
            high_watermark: 0.80,
            low_watermark: 0.25,
            credits_to_scale: 3,
            scan_interval: SimDuration::from_secs(10),
            host_boot: SimDuration::from_secs(45),
            alpha: 0.3,
        }
    }
}

/// Migration-based rebalancing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePolicy {
    /// Master switch.
    pub enabled: bool,
    /// Busy-fraction gap between the hottest and coldest active host
    /// that triggers a migration.
    pub imbalance_threshold: f64,
    /// Minimum spacing between migrations (the fabric is shared, and
    /// a thrashing rebalancer is worse than none).
    pub min_interval: SimDuration,
}

impl RebalancePolicy {
    /// Rebalancing off.
    pub fn disabled() -> Self {
        RebalancePolicy {
            enabled: false,
            imbalance_threshold: 0.5,
            min_interval: SimDuration::from_secs(30),
        }
    }

    /// The default: migrate when hot − cold busy-fraction exceeds 0.5,
    /// at most one move per 30 s.
    pub fn standard() -> Self {
        RebalancePolicy {
            enabled: true,
            ..RebalancePolicy::disabled()
        }
    }
}

/// Complete description of one fleet scenario. Everything observable
/// in the run is a function of this value — same config, same report,
/// bit for bit.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Hardware of every host the fleet may ever use, index-stable.
    /// Heterogeneous specs are allowed; placement and watermarks use
    /// each host's own memory and core count.
    pub host_specs: Vec<HostSpec>,
    /// Hosts `0..initial_active` start routable; the rest are standby
    /// capacity only the autoscaler can bring up.
    pub initial_active: usize,
    /// Device ↔ cloud access network.
    pub scenario: NetworkScenario,
    /// Host ↔ host fabric bandwidth, bytes/s (migration traffic).
    pub interconnect_bps: f64,
    /// Arrival process (LiveLab-shaped; the seed field is overridden
    /// with a stream derived from [`FleetConfig::seed`]).
    pub traffic: TraceConfig,
    /// Zipf exponent of per-user app popularity: 0 = uniform over the
    /// four benchmark apps, larger = more skewed toward OCR. Skew is
    /// what makes code-cache affinity routing pay.
    pub app_skew: f64,
    /// Runtime class provisioned for every request.
    pub runtime: RuntimeClass,
    /// Per-host bound on concurrently admitted requests (queued +
    /// being served). Beyond it the router spills, then sheds.
    pub admission_capacity: usize,
    /// Per-host instance pool policy (warm spares, max instances,
    /// idle reclamation) — `rattrap`'s `PoolPolicy` applied per host.
    pub pool: PoolPolicy,
    /// Fleet scaling policy.
    pub autoscale: AutoscalePolicy,
    /// Migration-based rebalancing policy.
    pub rebalance: RebalancePolicy,
    /// Retry/backoff/fallback behaviour when a host crash strands a
    /// request (PR 2's policy, reused verbatim).
    pub resilience: ResiliencePolicy,
    /// Fault injection; only crash events are interpreted (each one
    /// takes down a whole host).
    pub faults: FaultConfig,
    /// Time for a crashed host to reboot and rejoin (empty).
    pub crash_reboot: SimDuration,
    /// Per-host App Warehouse capacity, bytes.
    pub warehouse_capacity: u64,
    /// The handset model used for shed-to-local fallback execution.
    pub device: DeviceSpec,
    /// Conservative synchronization window of the sharded engine: the
    /// minimum latency of any cross-host interaction (control-plane
    /// hop or fabric transfer start). Events inside one window never
    /// leave their host shard, so shards may run the window in
    /// parallel; everything cross-shard is exchanged at window
    /// boundaries. Both engine modes use the same window, which is
    /// why serial and sharded runs are bit-identical.
    pub sync_window: SimDuration,
    /// Optional adversarial-traffic scenario (flash crowds, correlated
    /// radio outages, tenant mixes, interaction storms) compiled onto
    /// the base traffic at seed time. `None` — the default — leaves
    /// the engine's event stream bit-identical to the pre-scenario
    /// engine, which is what keeps the pinned golden digests valid.
    pub scenario_plan: Option<scenario::ScenarioSpec>,
    /// Master seed; every stream in the run is derived from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A canonical fleet of `hosts` paper servers, all active, static
    /// scaling, standard rebalancing, standard resilience, no faults.
    pub fn paper_default(hosts: usize, seed: u64) -> Self {
        assert!(hosts > 0, "a fleet needs at least one host");
        FleetConfig {
            host_specs: vec![HostSpec::paper_server(); hosts],
            initial_active: hosts,
            scenario: NetworkScenario::LanWifi,
            interconnect_bps: 1.25e9, // 10 GbE fabric
            traffic: TraceConfig {
                users: 96,
                duration: SimDuration::from_secs(3600),
                sessions_per_hour: 6.0,
                mean_session_len: 22.0,
                intra_gap_s: 5.0,
                seed: 0, // overridden with a derived stream
            },
            app_skew: 1.2,
            runtime: RuntimeClass::CacOptimized,
            admission_capacity: 16,
            pool: PoolPolicy {
                warm_spares: 1,
                max_instances: 8,
                idle_teardown: SimDuration::from_secs(120),
            },
            autoscale: AutoscalePolicy::static_fleet(),
            rebalance: RebalancePolicy::standard(),
            resilience: ResiliencePolicy::standard(),
            faults: FaultConfig::none(),
            crash_reboot: SimDuration::from_secs(90),
            warehouse_capacity: 64 * 1024 * 1024,
            device: DeviceSpec::default_handset(),
            // 1 ms: the floor of a control-plane RPC on the 10 GbE
            // fabric (propagation + kernel + scheduler jitter), well
            // under every modelled service time (container setup is
            // 150 ms+), so windowing adds no observable latency.
            sync_window: SimDuration::from_millis(1),
            scenario_plan: None,
            seed,
        }
    }

    /// Per-user app weights under the configured Zipf skew, in
    /// [`workloads::WorkloadKind::ALL`] order.
    pub fn app_weights(&self) -> Vec<f64> {
        (1..=workloads::WorkloadKind::ALL.len())
            .map(|rank| 1.0 / (rank as f64).powf(self.app_skew))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_static_and_fault_free() {
        let cfg = FleetConfig::paper_default(4, 7);
        assert_eq!(cfg.host_specs.len(), 4);
        assert_eq!(cfg.initial_active, 4);
        assert!(!cfg.autoscale.enabled);
        assert!(cfg.faults.is_inert());
    }

    #[test]
    fn app_weights_are_skewed_and_ordered() {
        let cfg = FleetConfig::paper_default(1, 7);
        let w = cfg.app_weights();
        assert_eq!(w.len(), 4);
        assert!(w.windows(2).all(|p| p[0] > p[1]), "monotone skew");
        let mut uniform = FleetConfig::paper_default(1, 7);
        uniform.app_skew = 0.0;
        assert!(uniform.app_weights().iter().all(|&x| x == 1.0));
    }
}
