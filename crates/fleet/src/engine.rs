//! The fleet engine: N rattrap hosts under a sharded discrete-event
//! runtime, fronted by the Router and governed by admission control,
//! the Autoscaler, and the migration-based Rebalancer.
//!
//! The simulation is decomposed into logical processes for
//! [`simkit::shard`]: **LP 0 is the control plane** (router, admission,
//! autoscaler, rebalancer, the device access network, and the shared
//! interconnect fabric), and **LP `h + 1` is host `h`** — a real
//! `virt::CloudHost` (provisioning runs the full §IV-B pipeline
//! against the simulated kernel) paired with a fair-share CPU
//! executor, an App Warehouse for CID hints, and the host-local
//! instance pool. Each LP owns a private event queue and advances
//! freely inside one conservative sync window
//! ([`FleetConfig::sync_window`], the floor of any cross-host
//! interaction); everything cross-shard — request hand-off, completion
//! notices, crash/drain control, migration state — travels as ordered
//! messages delivered at the next window boundary.
//!
//! Both [`EngineMode::Serial`] and [`EngineMode::Sharded`] execute the
//! *same* windowed algorithm; threads change wall-clock time only, so
//! every report digest is bit-identical across modes and thread
//! counts. Every random draw comes from a stream derived from the
//! master seed (control-plane streams draw in event order; network
//! streams are derived per request), so the same [`FleetConfig`]
//! reproduces the same [`FleetReport`] bit for bit.

use crate::admission::AdmissionCtl;
use crate::autoscaler::{Autoscaler, FleetAction};
use crate::config::FleetConfig;
use crate::rebalance::Rebalancer;
use crate::report::{ControlStats, FleetReport, FleetRequestRecord, HostReport, ScenarioStats};
use crate::router::{RouteReason, Router};
use netsim::{Direction, Link, SharedLink};
use obsv::{attrs, AttrValue, Recorder, SpanId, Subsystem, TraceSnapshot};
use rattrap::warehouse::{aid_of, Aid};
use rattrap::{AppWarehouse, Phase};
use scenario::ScenarioDriver;
use simkit::faults::{FaultPlan, TransferOutcome};
use simkit::shard::{run_sharded, Lp, Outbox, ShardMode};
use simkit::{derive_seed, EventQueue, FairShareExecutor, JobId, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use virt::migrate::{checkpoint, restore, Checkpoint};
use virt::{CloudHost, InstanceId};
use workloads::{TaskRequest, WorkloadKind};

/// Virtual nodes per host on the router's consistent-hash ring.
const RING_VNODES: usize = 64;

/// Derived-stream tags (master seed × tag → independent stream).
const STREAM_TRAFFIC: u64 = 1;
const STREAM_APPS: u64 = 2;
const STREAM_NET: u64 = 3;
const STREAM_SVC: u64 = 4;
const STREAM_RETRY: u64 = 5;
const STREAM_FAULTS: u64 = 6;
const STREAM_SCENARIO: u64 = 7;

/// The LP index of the control plane.
const CTL: usize = 0;

/// Which runtime drives the windowed LP engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Every LP on the caller thread — the reference execution.
    Serial,
    /// LPs spread over `n` worker threads (clamped to the LP count).
    /// Bit-identical to [`EngineMode::Serial`] at any `n`.
    Sharded(usize),
}

/// Where a host sits in its lifecycle (control-plane view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostStatus {
    /// Routable and serving.
    Active,
    /// Powering on (autoscaler activation); not routable yet.
    Booting,
    /// Finishing its admitted work; not routable.
    Draining,
    /// Crashed; rebooting.
    Down,
    /// Powered-off spare capacity.
    Standby,
}

/// Cross-shard messages. Control → host messages carry the request
/// hand-off and lifecycle commands; host → control messages carry
/// completion notices and state the router needs (warm-hint flips).
///
/// Public (but doc-hidden) because the `geo` crate drives the same
/// host shards under its own multi-region control plane.
#[doc(hidden)]
#[derive(Debug)]
pub enum Wire {
    // ------------------------------------------------- control → host
    /// Serve `req`: the uploaded payload has arrived at the host.
    Start {
        /// Control-plane request index.
        req: usize,
        /// Request generation (stale hand-offs are dropped).
        rgen: u32,
        /// The sampled task.
        task: TaskRequest,
        /// Seed of the device code-push stream (used only when the
        /// App Warehouse misses everywhere on the host).
        xfer_seed: u64,
    },
    /// The host is routable again (reboot or activation complete).
    Online,
    /// Fault plan: the host dies now. All local state is lost.
    Crash,
    /// Stop refilling warm pools; report when admitted work is done.
    Drain,
    /// Drain acknowledged by control: release every instance and park.
    FinishDrain,
    /// Rebalancer: checkpoint one warm idle container and ship it to
    /// host `dst`.
    MigOut {
        /// Destination host (control-plane index space).
        dst: usize,
    },
    /// Migration state arrived over the fabric: restore it.
    MigIn {
        /// Control-plane migration slot.
        mig: usize,
        /// The serialized container state.
        ckpt: Box<Checkpoint>,
    },
    /// End of simulation: stop the maintenance loop.
    Shutdown,
    // ------------------------------------------------- host → control
    /// `req` finished on-host (compute + offload I/O); the result is
    /// ready to download.
    Done {
        /// Control-plane request index.
        req: usize,
        /// Request generation the host was started with.
        rgen: u32,
    },
    /// The host's warm-container hint for one app flipped.
    WarmInfo {
        /// Workload index in [`WorkloadKind::ALL`] order.
        kind_ix: usize,
        /// New warm/cold state.
        warm: bool,
    },
    /// A draining host has no busy, waiting, or restoring work left.
    DrainEmpty,
    /// Checkpoint serialized; ship `ckpt` to host `dst` over the
    /// fabric.
    MigState {
        /// Destination host (control-plane index space).
        dst: usize,
        /// The serialized container state.
        ckpt: Box<Checkpoint>,
    },
    /// The migrated container is restored and serving at the
    /// destination.
    MigLanded {
        /// Control-plane migration slot.
        mig: usize,
        /// State bytes the *destination* measured while restoring —
        /// an end-to-end conservation check against what the source
        /// serialized and what the fabric carried.
        bytes: u64,
    },
}

// ====================================================================
// Control plane (LP 0)
// ====================================================================

/// Control-plane events.
#[derive(Debug)]
enum CtlEvent {
    /// One trace arrival from `user`.
    Arrive { user: u32, kind: WorkloadKind },
    /// Request payload finished uploading.
    UploadDone { req: usize, rgen: u32 },
    /// Result reached the device.
    DownloadDone { req: usize, rgen: u32 },
    /// Backoff elapsed; re-route the request.
    RetryFire { req: usize, rgen: u32 },
    /// On-device (fallback) execution finished.
    LocalDone { req: usize },
    /// Fault plan: take a whole host down.
    HostCrash { selector: u64 },
    /// A crashed or activated host becomes routable.
    HostUp { host: usize, hgen: u64 },
    /// Interconnect fabric schedule point.
    FabricPoll { epoch: u64 },
    /// Control-loop tick: observe, scale, rebalance.
    Scan,
    /// A host message crossed the window boundary.
    Deliver { src: usize, msg: Wire },
}

/// One request's control-plane state.
#[derive(Debug)]
struct ReqState {
    user: u32,
    kind: WorkloadKind,
    task: TaskRequest,
    arrival: SimTime,
    finished: SimTime,
    phase: Phase,
    fell_back: bool,
    host: Option<usize>,
    attempts: u32,
    rerouted: u32,
    reason: Option<RouteReason>,
    /// Bumped on crash re-route; stale in-flight events and messages
    /// are dropped.
    gen: u32,
}

/// Per-host control-plane state (the host's own pool lives in its LP).
struct HostSlot {
    status: HostStatus,
    /// Bumped on crash; stale `HostUp` events and fabric deliveries
    /// are dropped.
    gen: u64,
    crashes: u64,
    migrations_out: u64,
    migrations_in: u64,
    /// Open `fleet.scale_up` span while booting (activation).
    scale_span: SpanId,
}

/// An in-flight migration (control side).
struct MigSlot {
    from: usize,
    to: usize,
    state_bytes: u64,
    /// Taken when the fabric delivers and the state is forwarded.
    ckpt: Option<Box<Checkpoint>>,
    /// Destination host generation at transfer start; a crash there
    /// orphans the move.
    gen_to: u64,
}

struct ControlLp {
    cfg: Arc<FleetConfig>,
    rec: Recorder,
    queue: EventQueue<CtlEvent>,
    hosts: Vec<HostSlot>,
    router: Router,
    admission: AdmissionCtl,
    autoscaler: Autoscaler,
    rebalancer: Rebalancer,
    fabric: SharedLink<usize>,
    link: Link,
    reqs: Vec<ReqState>,
    migs: Vec<MigSlot>,
    control: ControlStats,
    /// Hosts believed warm per workload ([`WorkloadKind::ALL`] order),
    /// maintained from [`Wire::WarmInfo`] flips. At most one window
    /// stale — an acceptable hint-propagation delay.
    warm_map: Vec<BTreeSet<usize>>,
    aids: Vec<Aid>,
    rng_svc: SimRng,
    rng_retry: SimRng,
    /// Root of the per-request network streams.
    net_root: u64,
    horizon: SimTime,
    outstanding: usize,
    /// Compiled scenario plan, when the config carries one. Compiled
    /// once at LP construction from its own derived stream
    /// ([`STREAM_SCENARIO`]), then read-only: injected arrivals enter
    /// through the ordinary event queue and cohort radio windows price
    /// uploads per event, so serial and sharded runs stay
    /// bit-identical under every scenario.
    driver: Option<ScenarioDriver>,
    /// Scenario conservation counters:
    /// (injected, submitted, suppressed, deferred).
    scn: (u64, u64, u64, u64),
}

/// Map an app id back to its workload (for code bytes on migration).
fn kind_of_app(app_id: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL.into_iter().find(|k| k.app_id() == app_id)
}

fn kind_ix(kind: WorkloadKind) -> usize {
    WorkloadKind::ALL
        .into_iter()
        .position(|k| k == kind)
        .expect("kind is one of ALL")
}

impl ControlLp {
    fn new(cfg: Arc<FleetConfig>, rec: Recorder) -> Self {
        let mut master = SimRng::new(cfg.seed);
        let net_root = derive_seed(cfg.seed, STREAM_NET);
        let rng_svc = master.fork(STREAM_SVC);
        let rng_retry = master.fork(STREAM_RETRY);

        let hosts: Vec<HostSlot> = (0..cfg.host_specs.len())
            .map(|i| HostSlot {
                status: if i < cfg.initial_active {
                    HostStatus::Active
                } else {
                    HostStatus::Standby
                },
                gen: 0,
                crashes: 0,
                migrations_out: 0,
                migrations_in: 0,
                scale_span: SpanId::NONE,
            })
            .collect();

        let mut router = Router::new(RING_VNODES);
        router.rebuild(&(0..cfg.initial_active).collect());

        let admission = AdmissionCtl::new(cfg.host_specs.len(), cfg.admission_capacity);
        let autoscaler = Autoscaler::new(cfg.autoscale);
        let rebalancer = Rebalancer::new(cfg.rebalance);
        let mut fabric = SharedLink::new(cfg.interconnect_bps, cfg.interconnect_bps);
        // Digest-neutral for the fleet (no per-pop sampling); see
        // FairShareExecutor::eager_check_cancel.
        fabric.eager_check_cancel();
        let link = Link::new(cfg.scenario);
        let horizon = SimTime::ZERO.saturating_add(cfg.traffic.duration);
        let aids: Vec<Aid> = WorkloadKind::ALL
            .iter()
            .map(|k| aid_of(k.app_id()))
            .collect();
        let warm_map = vec![BTreeSet::new(); WorkloadKind::ALL.len()];
        let driver = cfg.scenario_plan.as_ref().map(|spec| {
            ScenarioDriver::compile(
                spec,
                cfg.traffic.users,
                derive_seed(cfg.seed, STREAM_SCENARIO),
            )
        });

        let mut lp = ControlLp {
            cfg,
            rec,
            queue: EventQueue::new(),
            hosts,
            router,
            admission,
            autoscaler,
            rebalancer,
            fabric,
            link,
            reqs: Vec::new(),
            migs: Vec::new(),
            control: ControlStats::default(),
            warm_map,
            aids,
            rng_svc,
            rng_retry,
            net_root,
            horizon,
            outstanding: 0,
            driver,
            scn: (0, 0, 0, 0),
        };
        lp.seed_events();
        lp
    }

    fn seed_events(&mut self) {
        // Per-user home app under the configured Zipf skew: skewed
        // popularity is what makes code-cache-affinity routing pay.
        let mut rng_apps = SimRng::new(derive_seed(self.cfg.seed, STREAM_APPS));
        let weights = self.cfg.app_weights();
        let mut user_app: Vec<WorkloadKind> = (0..self.cfg.traffic.users)
            .map(|_| WorkloadKind::ALL[rng_apps.weighted_index(&weights)])
            .collect();
        // Explicit tenancy re-partitions the base population: each
        // base user's app comes from its tenant's mix instead of the
        // global Zipf draw.
        if let Some(d) = &self.driver {
            for (u, app) in user_app.iter_mut().enumerate() {
                if let Some(k) = d.base_kind_override(u as u32) {
                    *app = k;
                }
            }
        }

        let mut traffic = self.cfg.traffic.clone();
        traffic.seed = derive_seed(self.cfg.seed, STREAM_TRAFFIC);
        for (user, times) in traces::livelab::generate(&traffic).into_iter().enumerate() {
            for t in times {
                self.queue.schedule(
                    t,
                    CtlEvent::Arrive {
                        user: user as u32,
                        kind: user_app[user],
                    },
                );
            }
        }

        let plan = FaultPlan::generate(&self.cfg.faults, derive_seed(self.cfg.seed, STREAM_FAULTS));
        for (at, selector) in plan.crashes() {
            self.queue.schedule(at, CtlEvent::HostCrash { selector });
        }

        // Scenario arrival script: offload events enter the platform
        // as ordinary arrivals; device-local scripted interactions
        // (touches that never offload) are counted suppressed. The
        // conservation contract: injected == submitted + suppressed.
        if let Some(d) = &self.driver {
            self.scn.0 = d.injected();
            for a in d.arrivals() {
                if a.offload {
                    self.scn.1 += 1;
                    self.queue.schedule(
                        a.at,
                        CtlEvent::Arrive {
                            user: a.user,
                            kind: a.kind,
                        },
                    );
                } else {
                    self.scn.2 += 1;
                }
            }
        }

        self.queue
            .schedule_in(self.cfg.autoscale.scan_interval, CtlEvent::Scan);
    }

    /// Independent network stream for one request. Tags keep the
    /// upload attempts, the download, and the host-side code push on
    /// disjoint streams of the request's own seed, so host shards
    /// never contend with control for a shared generator.
    fn req_rng(&self, req: usize, tag: u64) -> SimRng {
        SimRng::new(derive_seed(derive_seed(self.net_root, req as u64), tag))
    }

    fn dispatch(&mut self, now: SimTime, ev: CtlEvent, out: &mut Outbox<Wire>) {
        match ev {
            CtlEvent::Arrive { user, kind } => self.on_arrive(now, user, kind),
            CtlEvent::UploadDone { req, rgen } => self.on_upload_done(now, req, rgen, out),
            CtlEvent::DownloadDone { req, rgen } => self.on_download_done(now, req, rgen),
            CtlEvent::RetryFire { req, rgen } => self.on_retry_fire(now, req, rgen),
            CtlEvent::LocalDone { req } => self.finish(now, req, Phase::Done),
            CtlEvent::HostCrash { selector } => self.on_host_crash(now, selector, out),
            CtlEvent::HostUp { host, hgen } => self.on_host_up(now, host, hgen, out),
            CtlEvent::FabricPoll { epoch } => self.on_fabric_poll(now, epoch, out),
            CtlEvent::Scan => self.on_scan(now, out),
            CtlEvent::Deliver { src, msg } => self.on_msg(now, src, msg, out),
        }
    }

    fn on_msg(&mut self, now: SimTime, src: usize, msg: Wire, out: &mut Outbox<Wire>) {
        let h = src - 1;
        match msg {
            Wire::Done { req, rgen } => self.on_done(now, req, rgen),
            Wire::WarmInfo { kind_ix, warm } => {
                if warm {
                    self.warm_map[kind_ix].insert(h);
                } else {
                    self.warm_map[kind_ix].remove(&h);
                }
            }
            Wire::DrainEmpty => {
                if self.hosts[h].status == HostStatus::Draining && self.admission.depth(h) == 0 {
                    self.hosts[h].status = HostStatus::Standby;
                    out.send(now, src, Wire::FinishDrain);
                }
            }
            Wire::MigState { dst, ckpt } => self.on_mig_state(now, h, dst, ckpt),
            Wire::MigLanded { mig, .. } => self.on_mig_landed(now, mig),
            _ => unreachable!("control-bound message"),
        }
    }

    // ----------------------------------------------------- request intake

    fn on_arrive(&mut self, now: SimTime, user: u32, kind: WorkloadKind) {
        let task = kind.profile().sample(&mut self.rng_svc);
        let req = self.reqs.len();
        self.reqs.push(ReqState {
            user,
            kind,
            task,
            arrival: now,
            finished: now,
            phase: Phase::Dispatch,
            fell_back: false,
            host: None,
            attempts: 1,
            rerouted: 0,
            reason: None,
            gen: 0,
        });
        self.outstanding += 1;
        self.rec.set_current_request(Some(req as u64));
        self.route_request(now, req);
    }

    /// Route (or re-route) `req`: admit onto a host and start the
    /// upload, or shed to the resilience layer.
    fn route_request(&mut self, now: SimTime, req: usize) {
        let kix = kind_ix(self.reqs[req].kind);
        let aid = self.aids[kix].clone();
        let warm: Vec<usize> = self.warm_map[kix]
            .iter()
            .copied()
            .filter(|&h| self.hosts[h].status == HostStatus::Active)
            .collect();
        let hosts = &self.hosts;
        let admission = &self.admission;
        let decision = self.router.route(&aid, &warm, |h| {
            hosts[h].status == HostStatus::Active && admission.has_room(h)
        });
        match decision {
            Some(d) => {
                assert!(self.admission.admit(d.host), "router picked a full host");
                match d.reason {
                    RouteReason::Affinity => self.control.affinity_routes += 1,
                    RouteReason::Hash => self.control.hash_routes += 1,
                    RouteReason::Spill => self.control.spill_routes += 1,
                }
                self.reqs[req].host = Some(d.host);
                self.reqs[req].reason = Some(d.reason);
                if self.rec.is_enabled() {
                    self.rec.instant(
                        Subsystem::Fleet,
                        "route",
                        attrs![
                            ("host", AttrValue::U64(d.host as u64)),
                            ("reason", AttrValue::Str(d.reason.label())),
                            ("aid", AttrValue::Text(aid.0.clone())),
                            ("depth", AttrValue::U64(self.admission.depth(d.host) as u64)),
                        ],
                    );
                }
                self.begin_upload(now, req);
            }
            None => self.shed(now, req),
        }
    }

    fn begin_upload(&mut self, now: SimTime, req: usize) {
        self.reqs[req].phase = Phase::DataTransferUp;
        let bytes = self.reqs[req].task.control_bytes + self.reqs[req].task.payload_bytes;
        let mut rng = self.req_rng(req, 10 + self.reqs[req].attempts as u64);
        let t = self.link.connect_time(&mut rng)
            + self.link.transfer_time(bytes, Direction::Upload, &mut rng);
        let rgen = self.reqs[req].gen;
        // Scenario cohort radio windows price the uplink: degradation
        // stretches the transfer, an outage cuts it and defers the
        // attempt to the window edge — where the whole cohort
        // re-offloads at once (the thundering herd).
        let outcome = match &self.driver {
            Some(d) => d.price_transfer(self.reqs[req].user, now, t),
            None => TransferOutcome::Completes {
                at: now.saturating_add(t),
            },
        };
        match outcome {
            TransferOutcome::Completes { at } => {
                self.queue.schedule(at, CtlEvent::UploadDone { req, rgen });
            }
            TransferOutcome::Interrupted { .. } => {
                let release = self
                    .driver
                    .as_ref()
                    .expect("an interrupted transfer implies a driver")
                    .release_time(self.reqs[req].user, now);
                self.defer_upload(now, req, release);
            }
        }
    }

    /// A cohort outage cut this upload: release the admitted slot and
    /// re-route when the radio returns (or degrade when the retry
    /// budget is spent). Every deferred request re-fires at the same
    /// window edge, so the restore instant is a genuine herd.
    fn defer_upload(&mut self, now: SimTime, req: usize, release: SimTime) {
        self.scn.3 += 1;
        if let Some(h) = self.reqs[req].host.take() {
            self.admission.release(h);
        }
        self.reqs[req].gen += 1;
        self.reqs[req].attempts += 1;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "radio_defer",
                attrs![
                    ("release_us", AttrValue::U64(release.as_micros())),
                    ("attempt", AttrValue::U64(self.reqs[req].attempts as u64)),
                ],
            );
        }
        if self.reqs[req].attempts <= self.cfg.resilience.max_retries + 1 {
            self.reqs[req].phase = Phase::Retrying;
            let rgen = self.reqs[req].gen;
            self.queue
                .schedule(release.max(now), CtlEvent::RetryFire { req, rgen });
        } else {
            self.degrade(now, req);
        }
    }

    /// No host admitted the request: degrade per the resilience policy.
    fn shed(&mut self, now: SimTime, req: usize) {
        self.control.shed += 1;
        self.admission.count_shed();
        self.reqs[req].host = None;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "shed",
                attrs![(
                    "fallback",
                    AttrValue::U64(self.cfg.resilience.fallback_local as u64),
                )],
            );
        }
        self.degrade(now, req);
    }

    /// Finish on-device or abandon, per policy.
    fn degrade(&mut self, now: SimTime, req: usize) {
        if self.cfg.resilience.fallback_local {
            self.reqs[req].fell_back = true;
            self.reqs[req].phase = Phase::FallbackLocal;
            let t = self
                .cfg
                .device
                .local_execution_time(self.reqs[req].task.compute);
            self.queue
                .schedule(now.saturating_add(t), CtlEvent::LocalDone { req });
        } else {
            self.finish(now, req, Phase::Abandoned);
        }
    }

    fn stale(&self, req: usize, rgen: u32) -> bool {
        self.reqs[req].gen != rgen || self.reqs[req].phase.is_terminal()
    }

    // ------------------------------------------------- service hand-off

    fn on_upload_done(&mut self, now: SimTime, req: usize, rgen: u32, out: &mut Outbox<Wire>) {
        if self.stale(req, rgen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        self.reqs[req].phase = Phase::RuntimePrep;
        let h = self.reqs[req].host.expect("routed");
        let req_seed = derive_seed(self.net_root, req as u64);
        out.send(
            now,
            h + 1,
            Wire::Start {
                req,
                rgen,
                task: self.reqs[req].task,
                xfer_seed: derive_seed(req_seed, 1000 + self.reqs[req].attempts as u64),
            },
        );
    }

    /// The host reported the result ready: release admission and start
    /// the download. Arrives one window after the host-side completion
    /// — the control plane's notification latency.
    fn on_done(&mut self, now: SimTime, req: usize, rgen: u32) {
        if self.stale(req, rgen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        let h = self.reqs[req].host.expect("routed");
        self.admission.release(h);
        self.reqs[req].phase = Phase::DataTransferDown;
        let mut rng = self.req_rng(req, 1);
        let t = self.link.transfer_time(
            self.reqs[req].task.result_bytes,
            Direction::Download,
            &mut rng,
        );
        self.queue
            .schedule(now.saturating_add(t), CtlEvent::DownloadDone { req, rgen });
    }

    fn on_download_done(&mut self, now: SimTime, req: usize, rgen: u32) {
        if self.stale(req, rgen) {
            return;
        }
        self.finish(now, req, Phase::Done);
    }

    fn finish(&mut self, now: SimTime, req: usize, phase: Phase) {
        debug_assert!(phase.is_terminal());
        self.rec.set_current_request(Some(req as u64));
        self.reqs[req].phase = phase;
        self.reqs[req].finished = now;
        self.outstanding -= 1;
        self.rec.set_current_request(None);
    }

    // ------------------------------------------------------------ failures

    fn on_retry_fire(&mut self, now: SimTime, req: usize, rgen: u32) {
        if self.stale(req, rgen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        self.route_request(now, req);
    }

    fn on_host_crash(&mut self, now: SimTime, selector: u64, out: &mut Outbox<Wire>) {
        self.rec.set_current_request(None);
        let live: Vec<usize> = (0..self.hosts.len())
            .filter(|&h| {
                matches!(
                    self.hosts[h].status,
                    HostStatus::Active | HostStatus::Draining
                )
            })
            .collect();
        if live.is_empty() {
            return;
        }
        let victim = live[(selector % live.len() as u64) as usize];
        self.control.host_crashes += 1;
        self.hosts[victim].crashes += 1;
        self.hosts[victim].gen += 1;
        self.hosts[victim].status = HostStatus::Down;
        self.admission.reset_host(victim);
        self.autoscaler.forget(victim);
        for warm in &mut self.warm_map {
            warm.remove(&victim);
        }
        self.rebuild_ring();
        out.send(now, victim + 1, Wire::Crash);

        // Every stranded request consumes one attempt and re-routes
        // after backoff (or degrades when the budget is gone). The
        // host learns of its own death one window later; any `Done` it
        // sent in the meantime carries a stale generation and is
        // dropped.
        let affected: Vec<usize> = (0..self.reqs.len())
            .filter(|&r| self.reqs[r].host == Some(victim) && !self.reqs[r].phase.is_terminal())
            .collect();
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "host_crash",
                attrs![
                    ("host", AttrValue::U64(victim as u64)),
                    ("stranded", AttrValue::U64(affected.len() as u64)),
                ],
            );
        }
        for req in affected {
            self.rec.set_current_request(Some(req as u64));
            self.reqs[req].gen += 1;
            self.reqs[req].host = None;
            self.reqs[req].attempts += 1;
            self.reqs[req].rerouted += 1;
            self.control.crash_reroutes += 1;
            if self.rec.is_enabled() {
                self.rec.instant(
                    Subsystem::Fleet,
                    "reroute",
                    attrs![
                        ("from_host", AttrValue::U64(victim as u64)),
                        ("attempt", AttrValue::U64(self.reqs[req].attempts as u64)),
                    ],
                );
            }
            if self.reqs[req].attempts <= self.cfg.resilience.max_retries + 1 {
                self.reqs[req].phase = Phase::Retrying;
                let backoff = self
                    .cfg
                    .resilience
                    .backoff_delay(self.reqs[req].attempts - 1, &mut self.rng_retry);
                let rgen = self.reqs[req].gen;
                self.queue.schedule(
                    now.saturating_add(backoff),
                    CtlEvent::RetryFire { req, rgen },
                );
            } else {
                self.degrade(now, req);
            }
        }
        self.rec.set_current_request(None);

        let hgen = self.hosts[victim].gen;
        self.queue.schedule(
            now.saturating_add(self.cfg.crash_reboot),
            CtlEvent::HostUp { host: victim, hgen },
        );
    }

    fn on_host_up(&mut self, now: SimTime, host: usize, hgen: u64, out: &mut Outbox<Wire>) {
        if self.hosts[host].gen != hgen {
            return;
        }
        if !matches!(
            self.hosts[host].status,
            HostStatus::Down | HostStatus::Booting
        ) {
            return;
        }
        self.hosts[host].status = HostStatus::Active;
        if self.hosts[host].scale_span != SpanId::NONE {
            self.rec.span_end_at(
                self.hosts[host].scale_span,
                now.as_micros(),
                attrs![("host", AttrValue::U64(host as u64))],
            );
            self.hosts[host].scale_span = SpanId::NONE;
        }
        self.rebuild_ring();
        out.send(now, host + 1, Wire::Online);
    }

    // ----------------------------------------------------------- migration

    /// A source host serialized a container: charge the state through
    /// the shared fabric toward `dst`.
    fn on_mig_state(&mut self, now: SimTime, from: usize, dst: usize, ckpt: Box<Checkpoint>) {
        if self.hosts[dst].status != HostStatus::Active {
            return; // destination left the fleet while the state froze
        }
        let state_bytes = ckpt.state_bytes();
        let mig = self.migs.len();
        self.migs.push(MigSlot {
            from,
            to: dst,
            state_bytes,
            ckpt: Some(ckpt),
            gen_to: self.hosts[dst].gen,
        });
        self.control.migrations_started += 1;
        self.rebalancer.committed(now);
        self.fabric.begin_transfer(now, state_bytes, mig);
        self.fabric
            .reschedule(now, &mut self.queue, |epoch| CtlEvent::FabricPoll { epoch });
    }

    fn on_fabric_poll(&mut self, now: SimTime, epoch: u64, out: &mut Outbox<Wire>) {
        let Some(finished) = self.fabric.poll(now, epoch) else {
            return;
        };
        for (_, mig) in finished {
            let to = self.migs[mig].to;
            if self.hosts[to].gen != self.migs[mig].gen_to
                || self.hosts[to].status != HostStatus::Active
            {
                continue; // destination crashed or drained mid-move
            }
            let ckpt = self.migs[mig].ckpt.take().expect("delivered once");
            out.send(now, to + 1, Wire::MigIn { mig, ckpt });
        }
        self.fabric
            .reschedule(now, &mut self.queue, |epoch| CtlEvent::FabricPoll { epoch });
    }

    /// The destination restored the container and it is serving.
    fn on_mig_landed(&mut self, now: SimTime, mig: usize) {
        let _ = now;
        let MigSlot {
            from,
            to,
            state_bytes,
            ..
        } = self.migs[mig];
        self.hosts[from].migrations_out += 1;
        self.hosts[to].migrations_in += 1;
        self.control.migrations_completed += 1;
        self.control.migration_bytes += state_bytes;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "migration_done",
                attrs![
                    ("from", AttrValue::U64(from as u64)),
                    ("to", AttrValue::U64(to as u64)),
                    ("state_bytes", AttrValue::U64(state_bytes)),
                ],
            );
        }
    }

    // -------------------------------------------------------- control loop

    fn on_scan(&mut self, now: SimTime, out: &mut Outbox<Wire>) {
        self.rec.set_current_request(None);
        let active = self.active_set();

        // Observe per-host pressure into the fleet EWMA monitor.
        for &h in &active {
            self.autoscaler.observe(h, self.admission.depth(h) as u32);
        }

        // Scale.
        let saturation = if active.is_empty() {
            0.0
        } else {
            active
                .iter()
                .map(|&h| self.admission.utilization(h))
                .sum::<f64>()
                / active.len() as f64
        };
        let standby = self.hosts.iter().any(|h| h.status == HostStatus::Standby);
        match self.autoscaler.plan(now, saturation, &active, standby) {
            Some(FleetAction::Activate) => self.activate_standby(now),
            Some(FleetAction::Drain(victim)) => self.drain(now, victim, out),
            None => {}
        }

        // Rebalance: ask the hottest host to ship one warm container
        // to the coldest when the gap warrants it. The source commits
        // the move (or silently declines if it has nothing warm).
        let capacity = self.admission.capacity() as f64;
        let hot_cold = self.autoscaler.hot_cold(&self.active_set(), |_| capacity);
        if let Some(mv) = self.rebalancer.plan(now, hot_cold) {
            if self.hosts[mv.to].status == HostStatus::Active {
                out.send(now, mv.from + 1, Wire::MigOut { dst: mv.to });
            }
        }

        if now < self.horizon || self.outstanding > 0 {
            self.queue
                .schedule_in(self.cfg.autoscale.scan_interval, CtlEvent::Scan);
        } else {
            // Horizon passed with nothing in flight: stop every host's
            // maintenance loop so the simulation drains.
            for h in 0..self.hosts.len() {
                out.send(now, h + 1, Wire::Shutdown);
            }
        }
    }

    fn activate_standby(&mut self, now: SimTime) {
        let Some(host) =
            (0..self.hosts.len()).find(|&h| self.hosts[h].status == HostStatus::Standby)
        else {
            return;
        };
        self.hosts[host].status = HostStatus::Booting;
        self.control.scale_ups += 1;
        if self.rec.is_enabled() {
            self.hosts[host].scale_span = self.rec.span_start_at(
                Subsystem::Fleet,
                "scale_up",
                SpanId::NONE,
                now.as_micros(),
                attrs![("host", AttrValue::U64(host as u64))],
            );
        }
        let hgen = self.hosts[host].gen;
        self.queue.schedule(
            now.saturating_add(self.cfg.autoscale.host_boot),
            CtlEvent::HostUp { host, hgen },
        );
    }

    fn drain(&mut self, now: SimTime, victim: usize, out: &mut Outbox<Wire>) {
        if self.hosts[victim].status != HostStatus::Active || self.active_set().len() < 2 {
            return;
        }
        self.hosts[victim].status = HostStatus::Draining;
        self.control.drains += 1;
        self.autoscaler.forget(victim);
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "drain",
                attrs![("host", AttrValue::U64(victim as u64))],
            );
        }
        self.rebuild_ring();
        out.send(now, victim + 1, Wire::Drain);
    }

    // ------------------------------------------------------------- helpers

    fn active_set(&self) -> BTreeSet<usize> {
        (0..self.hosts.len())
            .filter(|&h| self.hosts[h].status == HostStatus::Active)
            .collect()
    }

    fn rebuild_ring(&mut self) {
        self.router.rebuild(&self.active_set());
    }

    fn finish_lp(self) -> CtlOut {
        self.rec.set_current_request(None);
        let records: Vec<FleetRequestRecord> = self
            .reqs
            .iter()
            .enumerate()
            .map(|(i, r)| FleetRequestRecord {
                id: i as u64,
                user: r.user,
                kind: r.kind,
                arrival: r.arrival,
                finished: r.finished,
                phase: r.phase,
                fell_back: r.fell_back,
                host: r.host,
                attempts: r.attempts,
                rerouted: r.rerouted,
                reason: r.reason,
            })
            .collect();
        let scenario = self.driver.as_ref().map(|d| {
            ScenarioStats::build(
                d.name(),
                self.scn,
                d.tenant_names(),
                |user| d.tenant_of(user),
                &records,
            )
        });
        CtlOut {
            records,
            control: self.control,
            hosts: self
                .hosts
                .iter()
                .map(|h| (h.crashes, h.migrations_out, h.migrations_in))
                .collect(),
            scenario,
            snapshot: self.rec.snapshot(),
        }
    }
}

// ====================================================================
// Host shard (LP h + 1)
// ====================================================================

/// Host-shard events. All carry the host's epoch (bumped on crash,
/// drain completion, and shutdown) so events scheduled against a dead
/// incarnation drop on the floor.
#[derive(Debug)]
enum HostEvent {
    /// A provisioned instance finished booting.
    BootDone { inst: InstanceId, epoch: u64 },
    /// Mobile code finished loading; computation can start.
    CodeLoaded { inst: InstanceId, epoch: u64 },
    /// CPU executor schedule point (guarded by the executor's own
    /// epoch, not the host epoch).
    CpuPoll { cpu_epoch: u64 },
    /// Offloading I/O finished; the instance frees up.
    IoDone { inst: InstanceId, epoch: u64 },
    /// Checkpoint serialization (freeze) finished; ship the state.
    MigFrozen {
        dst: usize,
        ckpt: Box<Checkpoint>,
        epoch: u64,
    },
    /// A migrated-in container finished restoring. `bytes` is the
    /// checkpoint size measured on the destination before restore, so
    /// control can verify end-to-end state conservation.
    MigReady {
        inst: InstanceId,
        mig: usize,
        bytes: u64,
        epoch: u64,
    },
    /// Pool maintenance tick: reclaim idle, refill warm spares.
    Maintain { epoch: u64 },
    /// A control message crossed the window boundary.
    Deliver { msg: Wire },
}

/// One admitted request waiting for (or holding) an instance.
#[derive(Debug, Clone, Copy)]
struct Pending {
    req: usize,
    rgen: u32,
    task: TaskRequest,
    xfer_seed: u64,
}

/// A single cloud host as a logical process: instance pool, CPU
/// executor, code warehouse, and device-side link. Public (but
/// doc-hidden) so the `geo` crate can embed fleet host shards in a
/// multi-region topology; everything else should go through
/// [`run_fleet`].
#[doc(hidden)]
pub struct HostLp {
    h: usize,
    cfg: Arc<FleetConfig>,
    rec: Recorder,
    queue: EventQueue<HostEvent>,
    host: CloudHost,
    cpu: FairShareExecutor<InstanceId>,
    warehouse: AppWarehouse,
    link: Link,
    /// Idle instances and when they went idle.
    idle: BTreeMap<InstanceId, SimTime>,
    /// Busy instances and the request each is serving.
    busy: BTreeMap<InstanceId, Pending>,
    /// CPU job per busy instance (absent during code load / I/O).
    jobs: BTreeMap<InstanceId, JobId>,
    /// Instances provisioned but still booting.
    booting: BTreeSet<InstanceId>,
    /// Instances restored by an in-flight migration.
    pending_mig: BTreeSet<InstanceId>,
    /// Admitted requests waiting for an instance.
    wait: VecDeque<Pending>,
    /// Last warm/cold hint published to control, per workload.
    published: Vec<bool>,
    aids: Vec<Aid>,
    serving: bool,
    drain_mode: bool,
    shut: bool,
    epoch: u64,
    served: u64,
    peak_instances: usize,
    peak_memory: u64,
    /// Compute backend pricing every request's compute phase (default
    /// [`exec::Modeled`], bit-identical to the cycle model).
    backend: exec::BackendHandle,
    /// Hardware class this host's executions are attributed to in
    /// calibration keys (geo overrides per tier).
    host_class: exec::HostClass,
}

impl HostLp {
    /// Build host `h` of `cfg`, recording into `rec`. Hosts with
    /// `h < cfg.initial_active` start serving (and filling their warm
    /// pool) at `t = 0`; the rest wait in standby for an activation.
    pub fn new(cfg: Arc<FleetConfig>, h: usize, rec: Recorder) -> Self {
        let spec = cfg.host_specs[h];
        let mut host = CloudHost::new(spec);
        host.kernel.load_android_container_driver();
        host.attach_recorder(rec.clone());
        let mut cpu = FairShareExecutor::new(spec.cores as f64, 1.0);
        // The fleet samples no per-pop state, so dropping superseded
        // completion checks from the pop stream is digest-neutral here
        // (locked by the fleet golden test) and saves a stale pop per
        // job-set mutation — exp_mega reschedules millions of times.
        cpu.eager_check_cancel();
        let warehouse = AppWarehouse::new(cfg.warehouse_capacity);
        let link = Link::new(cfg.scenario);
        let aids: Vec<Aid> = WorkloadKind::ALL
            .iter()
            .map(|k| aid_of(k.app_id()))
            .collect();
        let serving = h < cfg.initial_active;
        let mut queue = EventQueue::new();
        if serving {
            // Initially active hosts fill their warm pools from t = 0.
            queue.schedule(SimTime::ZERO, HostEvent::Maintain { epoch: 0 });
        }
        HostLp {
            h,
            cfg,
            rec,
            queue,
            host,
            cpu,
            warehouse,
            link,
            idle: BTreeMap::new(),
            busy: BTreeMap::new(),
            jobs: BTreeMap::new(),
            booting: BTreeSet::new(),
            pending_mig: BTreeSet::new(),
            wait: VecDeque::new(),
            published: vec![false; WorkloadKind::ALL.len()],
            aids,
            serving,
            drain_mode: false,
            shut: false,
            epoch: 0,
            served: 0,
            peak_instances: 0,
            peak_memory: 0,
            backend: exec::modeled(),
            host_class: exec::HostClass::PAPER_SERVER,
        }
    }

    /// Swap the compute backend for this host shard (default
    /// [`exec::Modeled`], which reproduces the fleet golden digest).
    pub fn set_backend(&mut self, backend: exec::BackendHandle) {
        self.backend = backend;
    }

    /// Attribute this host's executions to a hardware class in
    /// calibration keys (geo tiers override the default).
    pub fn set_host_class(&mut self, class: exec::HostClass) {
        self.host_class = class;
    }

    fn dispatch(&mut self, now: SimTime, ev: HostEvent, out: &mut Outbox<Wire>) {
        match ev {
            HostEvent::BootDone { inst, epoch } => {
                if epoch == self.epoch {
                    self.booting.remove(&inst);
                    self.idle.insert(inst, now);
                    self.pump(now, out);
                }
            }
            HostEvent::CodeLoaded { inst, epoch } => {
                if epoch == self.epoch {
                    self.on_code_loaded(now, inst);
                }
            }
            HostEvent::CpuPoll { cpu_epoch } => self.on_cpu_poll(now, cpu_epoch),
            HostEvent::IoDone { inst, epoch } => {
                if epoch == self.epoch {
                    self.on_io_done(now, inst, out);
                }
            }
            HostEvent::MigFrozen { dst, ckpt, epoch } => {
                if epoch == self.epoch {
                    out.send(now, CTL, Wire::MigState { dst, ckpt });
                }
            }
            HostEvent::MigReady {
                inst,
                mig,
                bytes,
                epoch,
            } => {
                if epoch == self.epoch {
                    self.on_mig_ready(now, inst, mig, bytes, out);
                }
            }
            HostEvent::Maintain { epoch } => {
                if epoch == self.epoch {
                    self.on_maintain(now, out);
                }
            }
            HostEvent::Deliver { msg } => self.on_msg(now, msg, out),
        }
    }

    fn on_msg(&mut self, now: SimTime, msg: Wire, out: &mut Outbox<Wire>) {
        match msg {
            Wire::Start {
                req,
                rgen,
                task,
                xfer_seed,
            } => {
                // A `Start` racing this host's crash arrives after the
                // `Crash` message (per-source FIFO) and is dropped:
                // control has already stranded and re-routed the
                // request.
                if self.serving {
                    self.rec.set_current_request(Some(req as u64));
                    self.attach_or_queue(
                        now,
                        Pending {
                            req,
                            rgen,
                            task,
                            xfer_seed,
                        },
                        out,
                    );
                }
            }
            Wire::Online => self.on_online(now),
            Wire::Crash => self.on_crash(now, out),
            Wire::Drain => self.drain_mode = true,
            Wire::FinishDrain => self.on_finish_drain(now, out),
            Wire::MigOut { dst } => self.on_mig_out(now, dst, out),
            Wire::MigIn { mig, ckpt } => self.on_mig_in(now, mig, &ckpt),
            Wire::Shutdown => {
                self.shut = true;
                self.serving = false;
                self.epoch += 1;
            }
            _ => unreachable!("host-bound message"),
        }
    }

    // --------------------------------------------------- request service

    /// Give the request an idle instance, provision a new one, or park
    /// it in the wait queue.
    fn attach_or_queue(&mut self, now: SimTime, pend: Pending, out: &mut Outbox<Wire>) {
        if let Some(inst) = self.pick_idle(pend.task.kind) {
            self.start_code_load(now, pend, inst, out);
            return;
        }
        // No idle instance: grow the pool if the policy and DRAM allow.
        if self.host.instance_count() < self.cfg.pool.max_instances {
            if let Ok((inst, setup)) = self.host.provision(self.cfg.runtime) {
                self.note_provisioned();
                self.booting.insert(inst);
                let epoch = self.epoch;
                self.queue.schedule(
                    now.saturating_add(setup),
                    HostEvent::BootDone { inst, epoch },
                );
            }
        }
        self.wait.push_back(pend);
    }

    /// Prefer an idle instance that already holds the app's code.
    fn pick_idle(&self, kind: WorkloadKind) -> Option<InstanceId> {
        let app_id = kind.app_id();
        let with_app = self.idle.keys().copied().find(|&i| {
            self.host
                .instance(i)
                .map(|r| r.apps_loaded.contains(app_id))
                .unwrap_or(false)
        });
        with_app.or_else(|| self.idle.keys().next().copied())
    }

    /// Load the app into `inst` (free when resident), charging a code
    /// upload from the device when even the App Warehouse misses.
    fn start_code_load(
        &mut self,
        now: SimTime,
        pend: Pending,
        inst: InstanceId,
        out: &mut Outbox<Wire>,
    ) {
        self.idle.remove(&inst);
        let kind = pend.task.kind;
        let app_id = kind.app_id();
        let aid = self.aids[kind_ix(kind)].clone();
        let code_bytes = kind.profile().app_code_bytes;
        let resident = self
            .host
            .instance(inst)
            .map(|r| r.apps_loaded.contains(app_id))
            .unwrap_or(false);
        let mut t = SimDuration::ZERO;
        if !resident && !self.warehouse.lookup(&aid) {
            // Cold everywhere: the device must push the code first.
            let mut rng = SimRng::new(pend.xfer_seed);
            t += self
                .link
                .transfer_time(code_bytes, Direction::Upload, &mut rng);
            self.warehouse.insert(aid.clone(), app_id, code_bytes);
        }
        t += self
            .host
            .load_app(inst, app_id, code_bytes)
            .expect("instance is live");
        self.warehouse.note_loaded(&aid, inst);
        self.busy.insert(inst, pend);
        self.publish_warm(now, out);
        let epoch = self.epoch;
        self.queue
            .schedule(now.saturating_add(t), HostEvent::CodeLoaded { inst, epoch });
    }

    fn on_code_loaded(&mut self, now: SimTime, inst: InstanceId) {
        let pend = self.busy[&inst];
        self.rec.set_current_request(Some(pend.req as u64));
        let spec = self.cfg.runtime.spec();
        let ghz = self.host.host_spec().clock_ghz;
        let ctx = exec::ComputeCtx {
            kind: pend.task.kind,
            size: exec::SizeClass::of(&pend.task),
            host: self.host_class,
            clock_ghz: ghz,
            cpu_efficiency: spec.cpu_efficiency,
            // Disjoint stream tag from the xfer (1000+attempt) tags.
            input_seed: derive_seed(pend.xfer_seed, 0xE8EC_0000_0000_0001),
        };
        let work = self.backend.charge(&ctx, &pend.task);
        let job = self.cpu.submit(now, work, inst);
        self.jobs.insert(inst, job);
        self.cpu
            .reschedule(now, &mut self.queue, |cpu_epoch| HostEvent::CpuPoll {
                cpu_epoch,
            });
    }

    fn on_cpu_poll(&mut self, now: SimTime, cpu_epoch: u64) {
        let Some(finished) = self.cpu.poll(now, cpu_epoch) else {
            return; // stale schedule point
        };
        for (_, inst) in finished {
            self.jobs.remove(&inst);
            let pend = self.busy[&inst];
            self.rec.set_current_request(Some(pend.req as u64));
            let t = self.io_time(pend.task.io_bytes);
            let epoch = self.epoch;
            self.queue
                .schedule(now.saturating_add(t), HostEvent::IoDone { inst, epoch });
        }
        self.cpu
            .reschedule(now, &mut self.queue, |cpu_epoch| HostEvent::CpuPoll {
                cpu_epoch,
            });
    }

    /// Offloading-I/O wall time: the shared in-memory layer for the
    /// optimized class, the virtualized disk path otherwise.
    fn io_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let spec = self.cfg.runtime.spec();
        if spec.uses_shared_io_layer {
            SimDuration::from_secs_f64(bytes as f64 / virt::TMPFS_BANDWIDTH)
        } else {
            let disk = self.cfg.host_specs[self.h].disk_bandwidth;
            SimDuration::from_secs_f64(bytes as f64 / (disk * spec.io_efficiency))
        }
    }

    fn on_io_done(&mut self, now: SimTime, inst: InstanceId, out: &mut Outbox<Wire>) {
        let pend = self.busy.remove(&inst).expect("instance was serving");
        self.rec.set_current_request(Some(pend.req as u64));
        self.idle.insert(inst, now);
        self.served += 1;
        out.send(
            now,
            CTL,
            Wire::Done {
                req: pend.req,
                rgen: pend.rgen,
            },
        );
        self.pump(now, out);
    }

    /// Hand idle instances to waiting requests, in FIFO order.
    fn pump(&mut self, now: SimTime, out: &mut Outbox<Wire>) {
        while !self.idle.is_empty() {
            let Some(pend) = self.wait.pop_front() else {
                return;
            };
            self.rec.set_current_request(Some(pend.req as u64));
            let inst = self.pick_idle(pend.task.kind).expect("idle non-empty");
            self.start_code_load(now, pend, inst, out);
        }
    }

    // ----------------------------------------------------------- lifecycle

    fn on_online(&mut self, now: SimTime) {
        if self.shut {
            return;
        }
        self.serving = true;
        self.drain_mode = false;
        self.epoch += 1;
        let epoch = self.epoch;
        self.queue.schedule(now, HostEvent::Maintain { epoch });
    }

    /// The host dies: every instance, job, and cached byte is lost.
    fn on_crash(&mut self, now: SimTime, out: &mut Outbox<Wire>) {
        self.serving = false;
        self.drain_mode = false;
        self.epoch += 1;
        for (_, job) in std::mem::take(&mut self.jobs) {
            self.cpu.cancel(now, job);
        }
        self.cpu
            .reschedule(now, &mut self.queue, |cpu_epoch| HostEvent::CpuPoll {
                cpu_epoch,
            });
        self.teardown_all();
        self.publish_warm(now, out);
    }

    fn on_finish_drain(&mut self, now: SimTime, out: &mut Outbox<Wire>) {
        if self.shut {
            return;
        }
        self.serving = false;
        self.drain_mode = false;
        self.epoch += 1;
        self.teardown_all();
        self.publish_warm(now, out);
    }

    fn teardown_all(&mut self) {
        for inst in self.host.instance_ids() {
            let _ = self.host.teardown(inst);
        }
        self.idle.clear();
        self.busy.clear();
        self.jobs.clear();
        self.booting.clear();
        self.pending_mig.clear();
        self.wait.clear();
        self.warehouse = AppWarehouse::new(self.cfg.warehouse_capacity);
    }

    /// Pool maintenance: reclaim instances idle past the policy
    /// window, keep the warm-spare floor, and report drain progress.
    /// Replaces the monolithic engine's central scan for everything
    /// host-local.
    fn on_maintain(&mut self, now: SimTime, out: &mut Outbox<Wire>) {
        self.rec.set_current_request(None);
        if !self.serving {
            return;
        }
        let floor = if self.drain_mode {
            0
        } else {
            self.cfg.pool.warm_spares
        };
        self.reclaim_idle(now, floor, out);
        if self.drain_mode {
            if self.busy.is_empty() && self.wait.is_empty() && self.pending_mig.is_empty() {
                out.send(now, CTL, Wire::DrainEmpty);
            }
        } else {
            self.fill_warm_pool(now);
        }
        let epoch = self.epoch;
        self.queue.schedule_in(
            self.cfg.autoscale.scan_interval,
            HostEvent::Maintain { epoch },
        );
    }

    fn reclaim_idle(&mut self, now: SimTime, floor: usize, out: &mut Outbox<Wire>) {
        let expired: Vec<InstanceId> = self
            .idle
            .iter()
            .filter(|&(_, &since)| now.saturating_since(since) >= self.cfg.pool.idle_teardown)
            .map(|(&i, _)| i)
            .collect();
        let mut changed = false;
        for inst in expired {
            if self.idle.len() <= floor {
                break;
            }
            let _ = self.host.teardown(inst);
            self.idle.remove(&inst);
            self.warehouse.invalidate_container(inst);
            changed = true;
        }
        if changed {
            self.publish_warm(now, out);
        }
    }

    /// Keep `warm_spares` instances idle or booting.
    fn fill_warm_pool(&mut self, now: SimTime) {
        while self.idle.len() + self.booting.len() < self.cfg.pool.warm_spares
            && self.host.instance_count() < self.cfg.pool.max_instances
        {
            match self.host.provision(self.cfg.runtime) {
                Ok((inst, setup)) => {
                    self.note_provisioned();
                    self.booting.insert(inst);
                    let epoch = self.epoch;
                    self.queue.schedule(
                        now.saturating_add(setup),
                        HostEvent::BootDone { inst, epoch },
                    );
                }
                Err(_) => break, // DRAM exhausted: stop growing
            }
        }
    }

    // ----------------------------------------------------------- migration

    /// Control asked this host to ship one warm container to `dst`:
    /// checkpoint the lowest-id idle instance that has an app loaded.
    fn on_mig_out(&mut self, now: SimTime, dst: usize, out: &mut Outbox<Wire>) {
        if !self.serving {
            return;
        }
        let victim = self.idle.keys().copied().find(|&i| {
            self.host
                .instance(i)
                .map(|r| !r.apps_loaded.is_empty())
                .unwrap_or(false)
        });
        let Some(victim) = victim else {
            return; // nothing warm to move; control's pacing is not spent
        };
        self.rec.set_current_request(None);
        let Ok((ckpt, freeze)) = checkpoint(&self.host, victim) else {
            return;
        };
        if self.rec.is_enabled() {
            let span = self.rec.span_start_at(
                Subsystem::Virt,
                "migrate",
                SpanId::NONE,
                now.as_micros(),
                attrs![
                    ("instance", AttrValue::U64(victim.0 as u64)),
                    ("dst", AttrValue::U64(dst as u64)),
                    ("state_bytes", AttrValue::U64(ckpt.state_bytes())),
                ],
            );
            self.rec
                .span_end_at(span, now.saturating_add(freeze).as_micros(), vec![]);
        }
        let _ = self.host.teardown(victim);
        self.idle.remove(&victim);
        self.warehouse.invalidate_container(victim);
        self.publish_warm(now, out);
        let epoch = self.epoch;
        self.queue.schedule(
            now.saturating_add(freeze),
            HostEvent::MigFrozen {
                dst,
                ckpt: Box::new(ckpt),
                epoch,
            },
        );
    }

    /// Migration state arrived over the fabric: rebuild the container.
    fn on_mig_in(&mut self, now: SimTime, mig: usize, ckpt: &Checkpoint) {
        if !self.serving || self.host.instance_count() >= self.cfg.pool.max_instances {
            return; // the move is orphaned; control never sees MigLanded
        }
        self.rec.set_current_request(None);
        let bytes = ckpt.state_bytes();
        let Ok((inst, d)) = restore(&mut self.host, ckpt) else {
            return; // DRAM is full — the state is dropped
        };
        self.note_provisioned();
        self.pending_mig.insert(inst);
        let epoch = self.epoch;
        self.queue.schedule(
            now.saturating_add(d),
            HostEvent::MigReady {
                inst,
                mig,
                bytes,
                epoch,
            },
        );
    }

    fn on_mig_ready(
        &mut self,
        now: SimTime,
        inst: InstanceId,
        mig: usize,
        bytes: u64,
        out: &mut Outbox<Wire>,
    ) {
        self.pending_mig.remove(&inst);
        self.idle.insert(inst, now);
        // Publish the arrived container's apps as warm CID hints.
        let apps: Vec<String> = self
            .host
            .instance(inst)
            .map(|r| r.apps_loaded.iter().cloned().collect())
            .unwrap_or_default();
        for app_id in apps {
            if let Some(kind) = kind_of_app(&app_id) {
                let aid = self.aids[kind_ix(kind)].clone();
                self.warehouse
                    .insert(aid.clone(), &app_id, kind.profile().app_code_bytes);
                self.warehouse.note_loaded(&aid, inst);
            }
        }
        self.publish_warm(now, out);
        out.send(now, CTL, Wire::MigLanded { mig, bytes });
        self.pump(now, out);
    }

    // ------------------------------------------------------------- helpers

    /// Diff the warehouse's warm set against what control last heard
    /// and send only the flips — the router's affinity hints.
    fn publish_warm(&mut self, now: SimTime, out: &mut Outbox<Wire>) {
        for ix in 0..self.aids.len() {
            let warm = !self.warehouse.containers_with(&self.aids[ix]).is_empty();
            if warm != self.published[ix] {
                self.published[ix] = warm;
                out.send(now, CTL, Wire::WarmInfo { kind_ix: ix, warm });
            }
        }
    }

    fn note_provisioned(&mut self) {
        self.peak_instances = self.peak_instances.max(self.host.instance_count());
        self.peak_memory = self.peak_memory.max(self.host.memory_reserved());
    }

    /// Earliest pending local event, if any (the LP's `next_time`).
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drain local events strictly below `bound` (the LP's
    /// `run_window`), emitting control-bound messages into `out`.
    pub fn run_window(&mut self, bound: SimTime, out: &mut Outbox<Wire>) {
        while self.queue.peek_time().is_some_and(|t| t < bound) {
            let (now, ev) = self.queue.pop().expect("peeked");
            self.rec.set_now(now.as_micros());
            self.dispatch(now, ev, out);
        }
    }

    /// Deliver a control-plane message at `at` (the LP's `accept`).
    /// Hosts only ever hear from their control LP, so no source index
    /// is taken.
    pub fn accept(&mut self, at: SimTime, msg: Wire) {
        self.queue.schedule(at, HostEvent::Deliver { msg });
    }

    /// Consume the shard and surface its lifetime counters.
    pub fn finish_lp(self) -> HostOut {
        self.rec.set_current_request(None);
        HostOut {
            served: self.served,
            peak_instances: self.peak_instances,
            peak_memory: self.peak_memory,
            snapshot: self.rec.snapshot(),
        }
    }
}

// ====================================================================
// LP plumbing
// ====================================================================

enum FleetLp {
    Ctl(Box<ControlLp>),
    Host(Box<HostLp>),
}

impl Lp for FleetLp {
    type Msg = Wire;

    fn next_time(&mut self) -> Option<SimTime> {
        match self {
            FleetLp::Ctl(lp) => lp.queue.peek_time(),
            FleetLp::Host(lp) => lp.next_time(),
        }
    }

    fn run_window(&mut self, bound: SimTime, out: &mut Outbox<Wire>) {
        match self {
            FleetLp::Ctl(lp) => {
                while lp.queue.peek_time().is_some_and(|t| t < bound) {
                    let (now, ev) = lp.queue.pop().expect("peeked");
                    lp.rec.set_now(now.as_micros());
                    lp.dispatch(now, ev, out);
                }
            }
            FleetLp::Host(lp) => lp.run_window(bound, out),
        }
    }

    fn accept(&mut self, at: SimTime, src: usize, msg: Wire) {
        match self {
            FleetLp::Ctl(lp) => {
                lp.queue.schedule(at, CtlEvent::Deliver { src, msg });
            }
            FleetLp::Host(lp) => {
                let _ = src; // hosts only hear from control
                lp.accept(at, msg);
            }
        }
    }
}

struct CtlOut {
    records: Vec<FleetRequestRecord>,
    control: ControlStats,
    /// Per host: (crashes, migrations_out, migrations_in).
    hosts: Vec<(u64, u64, u64)>,
    /// Scenario-plane accounting, when the run carried a plan.
    scenario: Option<ScenarioStats>,
    snapshot: TraceSnapshot,
}

/// What a host shard reports when its run ends. Doc-hidden, public
/// for the `geo` crate (see [`HostLp`]).
#[doc(hidden)]
pub struct HostOut {
    /// Requests this host completed.
    pub served: u64,
    /// High-water mark of concurrently provisioned instances.
    pub peak_instances: usize,
    /// High-water mark of reserved memory, bytes.
    pub peak_memory: u64,
    /// The host's trace buffer, for merging in LP order.
    pub snapshot: TraceSnapshot,
}

enum LpOut {
    Ctl(CtlOut),
    Host(HostOut),
}

// ====================================================================
// Entry points
// ====================================================================

/// Run a fleet scenario to completion (untraced, serial).
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    run_fleet_with(cfg, Recorder::disabled(), EngineMode::Serial)
}

/// Run a fleet scenario with an observability recorder attached.
/// Recording must not perturb the simulation: the report digest is
/// identical with a disabled recorder.
pub fn run_fleet_traced(cfg: &FleetConfig, rec: Recorder) -> FleetReport {
    run_fleet_with(cfg, rec, EngineMode::Serial)
}

/// Run a fleet scenario under an explicit [`EngineMode`]. All modes
/// and thread counts produce bit-identical reports; `Sharded` trades
/// memory for wall-clock time on large fleets.
pub fn run_fleet_with(cfg: &FleetConfig, rec: Recorder, mode: EngineMode) -> FleetReport {
    run_fleet_inner(cfg, rec, mode, None)
}

/// Run a fleet scenario with every host shard charging compute through
/// `backend` ([`exec::RealBackend`] executes the kernels for real;
/// [`exec::ReplayBackend`] replays a committed calibration
/// deterministically). `run_fleet_with` is the `Modeled` special case.
pub fn run_fleet_backend(
    cfg: &FleetConfig,
    rec: Recorder,
    mode: EngineMode,
    backend: exec::BackendHandle,
) -> FleetReport {
    run_fleet_inner(cfg, rec, mode, Some(backend))
}

fn run_fleet_inner(
    cfg: &FleetConfig,
    rec: Recorder,
    mode: EngineMode,
    backend: Option<exec::BackendHandle>,
) -> FleetReport {
    assert!(
        cfg.initial_active >= 1 && cfg.initial_active <= cfg.host_specs.len(),
        "initial_active must name a non-empty prefix of host_specs"
    );
    let shard_mode = match mode {
        EngineMode::Serial => ShardMode::Serial,
        EngineMode::Sharded(n) => ShardMode::Threads(n),
    };
    let cfg = Arc::new(cfg.clone());
    let n_lps = cfg.host_specs.len() + 1;
    let rec_cfg = rec.config();

    let build = {
        let cfg = Arc::clone(&cfg);
        move |i: usize| {
            // Each LP records into its own single-threaded recorder;
            // the snapshots merge below in LP order, so traced and
            // untraced runs pop identical event sequences.
            let lp_rec = match &rec_cfg {
                Some(c) => Recorder::enabled(c.clone()),
                None => Recorder::disabled(),
            };
            if i == CTL {
                FleetLp::Ctl(Box::new(ControlLp::new(Arc::clone(&cfg), lp_rec)))
            } else {
                let mut host = HostLp::new(Arc::clone(&cfg), i - 1, lp_rec);
                if let Some(b) = &backend {
                    host.set_backend(Arc::clone(b));
                }
                FleetLp::Host(Box::new(host))
            }
        }
    };
    let finish = |_: usize, lp: FleetLp| match lp {
        FleetLp::Ctl(c) => LpOut::Ctl(c.finish_lp()),
        FleetLp::Host(h) => LpOut::Host(h.finish_lp()),
    };

    let outs = run_sharded(n_lps, cfg.sync_window, shard_mode, build, finish);

    let mut records = Vec::new();
    let mut control = ControlStats::default();
    let mut scenario = None;
    let mut hosts: Vec<HostReport> = cfg
        .host_specs
        .iter()
        .map(|s| HostReport {
            served: 0,
            peak_instances: 0,
            peak_memory: 0,
            memory_bytes: s.memory_bytes,
            migrations_out: 0,
            migrations_in: 0,
            crashes: 0,
        })
        .collect();
    for (i, lp_out) in outs.into_iter().enumerate() {
        match lp_out {
            LpOut::Ctl(c) => {
                records = c.records;
                control = c.control;
                scenario = c.scenario;
                for (h, (crashes, out, inn)) in c.hosts.into_iter().enumerate() {
                    hosts[h].crashes = crashes;
                    hosts[h].migrations_out = out;
                    hosts[h].migrations_in = inn;
                }
                rec.import(&c.snapshot);
            }
            LpOut::Host(o) => {
                let h = i - 1;
                hosts[h].served = o.served;
                hosts[h].peak_instances = o.peak_instances;
                hosts[h].peak_memory = o.peak_memory;
                rec.import(&o.snapshot);
            }
        }
    }
    let mut report = FleetReport::summarize(records, control, hosts, cfg.traffic.duration);
    report.scenario = scenario;
    report
}

/// Collect the AIDs currently warm (live container hints) on a host —
/// exposed for tests.
#[doc(hidden)]
pub fn warm_hosts_for(aid: &Aid, warehouses: &mut [AppWarehouse]) -> Vec<usize> {
    warehouses
        .iter_mut()
        .enumerate()
        .filter(|(_, w)| !w.containers_with(aid).is_empty())
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::faults::FaultConfig;

    fn small(hosts: usize, seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::paper_default(hosts, seed);
        cfg.traffic.users = 12;
        cfg.traffic.duration = SimDuration::from_secs(600);
        cfg
    }

    #[test]
    fn every_request_terminates() {
        let rep = run_fleet(&small(2, 11));
        assert!(rep.summary.submitted > 0, "trace produced arrivals");
        for r in &rep.records {
            assert!(
                r.phase.is_terminal(),
                "request {} stuck in {:?}",
                r.id,
                r.phase
            );
        }
        assert_eq!(
            rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned,
            rep.summary.submitted
        );
    }

    #[test]
    fn same_seed_same_digest() {
        let cfg = small(3, 42);
        let a = run_fleet(&cfg);
        let b = run_fleet(&cfg);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn different_seed_different_digest() {
        assert_ne!(
            run_fleet(&small(2, 1)).digest(),
            run_fleet(&small(2, 2)).digest()
        );
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let cfg = small(2, 77);
        let untraced = run_fleet(&cfg);
        let rec = Recorder::enabled(obsv::RecorderConfig::default());
        let traced = run_fleet_traced(&cfg, rec.clone());
        assert_eq!(untraced.digest(), traced.digest());
        assert!(!rec.snapshot().events.is_empty(), "spans were recorded");
    }

    #[test]
    fn memory_is_never_oversubscribed() {
        let rep = run_fleet(&small(2, 5));
        for h in &rep.hosts {
            assert!(h.peak_memory <= h.memory_bytes);
        }
    }

    #[test]
    fn host_crash_reroutes_without_losing_requests() {
        let mut cfg = small(3, 9);
        cfg.faults = FaultConfig::scaled(1.5);
        let rep = run_fleet(&cfg);
        for r in &rep.records {
            assert!(r.phase.is_terminal());
        }
        if rep.control.host_crashes > 0 {
            assert_eq!(
                rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned,
                rep.summary.submitted
            );
        }
    }

    #[test]
    fn sharded_engine_matches_serial_bit_for_bit() {
        let mut cfg = small(3, 21);
        cfg.faults = FaultConfig::scaled(1.0);
        let serial = run_fleet(&cfg);
        for threads in [1, 2, 4] {
            let sharded = run_fleet_with(&cfg, Recorder::disabled(), EngineMode::Sharded(threads));
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "Sharded({threads}) diverged from Serial"
            );
        }
    }

    #[test]
    fn migration_accounting_balances_under_churn() {
        // Faults + rebalancing exercise every drop path: out must
        // still equal in, and starts must bound completions.
        let mut cfg = small(4, 33);
        cfg.faults = FaultConfig::scaled(1.0);
        let rep = run_fleet(&cfg);
        let out: u64 = rep.hosts.iter().map(|h| h.migrations_out).sum();
        let inn: u64 = rep.hosts.iter().map(|h| h.migrations_in).sum();
        assert_eq!(out, inn);
        assert!(rep.control.migrations_completed <= rep.control.migrations_started);
    }

    #[test]
    fn warehouse_helper_reports_warm_hosts() {
        let mut ws = vec![AppWarehouse::new(1 << 20), AppWarehouse::new(1 << 20)];
        let aid = aid_of("com.bench.ocr");
        ws[1].insert(aid.clone(), "com.bench.ocr", 1024);
        ws[1].note_loaded(&aid, InstanceId(3));
        assert_eq!(warm_hosts_for(&aid, &mut ws), vec![1]);
    }
}
