//! The fleet engine: N rattrap hosts under one deterministic event
//! loop, fronted by the Router and governed by admission control, the
//! Autoscaler, and the migration-based Rebalancer.
//!
//! Each host is a real `virt::CloudHost` (provisioning runs the full
//! §IV-B pipeline against the simulated kernel) paired with a
//! fair-share CPU executor, an App Warehouse for CID hints, and a
//! bounded admission queue. Devices reach the fleet over one access
//! network ([`netsim::Link`]); hosts reach each other over a shared
//! interconnect fabric ([`netsim::SharedLink`]) that migration state
//! transfers contend on. Every random draw comes from a stream forked
//! off the master seed in event order, so the same [`FleetConfig`]
//! reproduces the same [`FleetReport`] bit for bit.

use crate::admission::AdmissionCtl;
use crate::autoscaler::{Autoscaler, FleetAction};
use crate::config::FleetConfig;
use crate::rebalance::Rebalancer;
use crate::report::{ControlStats, FleetReport, FleetRequestRecord, HostReport};
use crate::router::{RouteReason, Router};
use netsim::{Direction, Link, SharedLink};
use obsv::{AttrValue, Recorder, SpanId, Subsystem};
use rattrap::warehouse::{aid_of, Aid};
use rattrap::{AppWarehouse, Phase};
use simkit::faults::FaultPlan;
use simkit::{derive_seed, EventQueue, FairShareExecutor, JobId, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use virt::{migrate, Cluster, InstanceId};
use workloads::{TaskRequest, WorkloadKind};

/// Virtual nodes per host on the router's consistent-hash ring.
const RING_VNODES: usize = 64;

/// Derived-stream tags (master seed × tag → independent stream).
const STREAM_TRAFFIC: u64 = 1;
const STREAM_APPS: u64 = 2;
const STREAM_NET: u64 = 3;
const STREAM_SVC: u64 = 4;
const STREAM_RETRY: u64 = 5;
const STREAM_FAULTS: u64 = 6;

/// Where a host sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostStatus {
    /// Routable and serving.
    Active,
    /// Powering on (autoscaler activation); not routable yet.
    Booting,
    /// Finishing its admitted work; not routable.
    Draining,
    /// Crashed; rebooting.
    Down,
    /// Powered-off spare capacity.
    Standby,
}

/// Discrete events of the fleet simulation.
#[derive(Debug)]
enum Event {
    /// One trace arrival from `user`.
    Arrive { user: u32, kind: WorkloadKind },
    /// Request payload finished uploading.
    UploadDone { req: usize, gen: u32 },
    /// A provisioned instance finished booting.
    BootDone {
        host: usize,
        inst: InstanceId,
        gen: u64,
    },
    /// Mobile code finished loading; computation can start.
    CodeLoaded { req: usize, gen: u32 },
    /// A host CPU executor schedule point.
    CpuPoll { host: usize, epoch: u64 },
    /// Offloading I/O finished; the instance frees up.
    IoDone { req: usize, gen: u32 },
    /// Result reached the device.
    DownloadDone { req: usize, gen: u32 },
    /// Backoff elapsed; re-route the request.
    RetryFire { req: usize, gen: u32 },
    /// On-device (fallback) execution finished.
    LocalDone { req: usize },
    /// Fault plan: take a whole host down.
    HostCrash { selector: u64 },
    /// A crashed or activated host becomes routable.
    HostUp { host: usize, gen: u64 },
    /// Interconnect fabric schedule point.
    FabricPoll { epoch: u64 },
    /// Migration state landed and the container restored at `dst`.
    MigrationDone { mig: usize },
    /// Control-loop tick: observe, scale, rebalance, reclaim.
    Scan,
}

/// One request's engine-side state.
#[derive(Debug)]
struct ReqState {
    user: u32,
    kind: WorkloadKind,
    task: TaskRequest,
    arrival: SimTime,
    finished: SimTime,
    phase: Phase,
    fell_back: bool,
    host: Option<usize>,
    instance: Option<InstanceId>,
    cpu_job: Option<JobId>,
    attempts: u32,
    rerouted: u32,
    reason: Option<RouteReason>,
    /// Bumped on crash re-route; stale in-flight events are dropped.
    gen: u32,
}

/// Per-host control state (the `CloudHost` itself lives in the
/// `virt::Cluster`).
struct HostCtl {
    status: HostStatus,
    /// Bumped on crash; stale `BootDone`/`HostUp`/`MigrationDone`
    /// events are dropped.
    gen: u64,
    cpu: FairShareExecutor<usize>,
    warehouse: AppWarehouse,
    /// Idle instances and when they went idle.
    idle: BTreeMap<InstanceId, SimTime>,
    /// Busy instances and the request each is serving.
    busy: BTreeMap<InstanceId, usize>,
    /// Instances provisioned but still booting.
    booting: BTreeSet<InstanceId>,
    /// Instances restored by an in-flight migration.
    pending_mig: BTreeSet<InstanceId>,
    /// Admitted requests waiting for an instance.
    wait: VecDeque<usize>,
    served: u64,
    peak_instances: usize,
    peak_memory: u64,
    migrations_out: u64,
    migrations_in: u64,
    crashes: u64,
    /// Open `fleet.scale` span while booting (activation).
    scale_span: SpanId,
}

/// An in-flight migration.
#[derive(Debug, Clone, Copy)]
struct Migration {
    from: usize,
    to: usize,
    new_inst: InstanceId,
    state_bytes: u64,
    /// Freeze + restore time (the non-transfer part of downtime),
    /// appended after the fabric delivers the state.
    fixed: SimDuration,
    /// Destination host generation at start; a crash there orphans
    /// the move.
    gen_to: u64,
}

/// The engine.
struct Engine {
    cfg: FleetConfig,
    rec: Recorder,
    queue: EventQueue<Event>,
    cluster: Cluster,
    hosts: Vec<HostCtl>,
    router: Router,
    admission: AdmissionCtl,
    autoscaler: Autoscaler,
    rebalancer: Rebalancer,
    fabric: SharedLink<usize>,
    link: Link,
    reqs: Vec<ReqState>,
    migs: Vec<Migration>,
    control: ControlStats,
    rng_net: SimRng,
    rng_svc: SimRng,
    rng_retry: SimRng,
    horizon: SimTime,
    outstanding: usize,
}

/// Map an app id back to its workload (for code bytes on migration).
fn kind_of_app(app_id: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL.into_iter().find(|k| k.app_id() == app_id)
}

/// Run a fleet scenario to completion (untraced).
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    run_fleet_traced(cfg, Recorder::disabled())
}

/// Run a fleet scenario with an observability recorder attached.
/// Recording must not perturb the simulation: the report digest is
/// identical with a disabled recorder.
pub fn run_fleet_traced(cfg: &FleetConfig, rec: Recorder) -> FleetReport {
    let mut engine = Engine::new(cfg.clone(), rec);
    engine.run()
}

impl Engine {
    fn new(cfg: FleetConfig, rec: Recorder) -> Self {
        assert!(
            cfg.initial_active >= 1 && cfg.initial_active <= cfg.host_specs.len(),
            "initial_active must name a non-empty prefix of host_specs"
        );
        let mut master = SimRng::new(cfg.seed);
        let rng_net = master.fork(STREAM_NET);
        let rng_svc = master.fork(STREAM_SVC);
        let rng_retry = master.fork(STREAM_RETRY);

        let mut cluster = Cluster::from_specs(cfg.host_specs.clone());
        cluster.attach_recorder(rec.clone());

        let hosts: Vec<HostCtl> = cfg
            .host_specs
            .iter()
            .enumerate()
            .map(|(i, spec)| HostCtl {
                status: if i < cfg.initial_active {
                    HostStatus::Active
                } else {
                    HostStatus::Standby
                },
                gen: 0,
                cpu: FairShareExecutor::new(spec.cores as f64, 1.0),
                warehouse: AppWarehouse::new(cfg.warehouse_capacity),
                idle: BTreeMap::new(),
                busy: BTreeMap::new(),
                booting: BTreeSet::new(),
                pending_mig: BTreeSet::new(),
                wait: VecDeque::new(),
                served: 0,
                peak_instances: 0,
                peak_memory: 0,
                migrations_out: 0,
                migrations_in: 0,
                crashes: 0,
                scale_span: SpanId::NONE,
            })
            .collect();

        let mut router = Router::new(RING_VNODES);
        router.rebuild(&(0..cfg.initial_active).collect());

        let admission = AdmissionCtl::new(cfg.host_specs.len(), cfg.admission_capacity);
        let autoscaler = Autoscaler::new(cfg.autoscale);
        let rebalancer = Rebalancer::new(cfg.rebalance);
        let fabric = SharedLink::new(cfg.interconnect_bps, cfg.interconnect_bps);
        let link = Link::new(cfg.scenario);
        let horizon = SimTime::ZERO.saturating_add(cfg.traffic.duration);

        Engine {
            cfg,
            rec,
            queue: EventQueue::new(),
            cluster,
            hosts,
            router,
            admission,
            autoscaler,
            rebalancer,
            fabric,
            link,
            reqs: Vec::new(),
            migs: Vec::new(),
            control: ControlStats::default(),
            rng_net,
            rng_svc,
            rng_retry,
            horizon,
            outstanding: 0,
        }
    }

    // ---------------------------------------------------------------- setup

    fn seed_events(&mut self) {
        // Per-user home app under the configured Zipf skew: skewed
        // popularity is what makes code-cache-affinity routing pay.
        let mut rng_apps = SimRng::new(derive_seed(self.cfg.seed, STREAM_APPS));
        let weights = self.cfg.app_weights();
        let user_app: Vec<WorkloadKind> = (0..self.cfg.traffic.users)
            .map(|_| WorkloadKind::ALL[rng_apps.weighted_index(&weights)])
            .collect();

        let mut traffic = self.cfg.traffic.clone();
        traffic.seed = derive_seed(self.cfg.seed, STREAM_TRAFFIC);
        for (user, times) in traces::livelab::generate(&traffic).into_iter().enumerate() {
            for t in times {
                self.queue.schedule(
                    t,
                    Event::Arrive {
                        user: user as u32,
                        kind: user_app[user],
                    },
                );
            }
        }

        let plan = FaultPlan::generate(&self.cfg.faults, derive_seed(self.cfg.seed, STREAM_FAULTS));
        for (at, selector) in plan.crashes() {
            self.queue.schedule(at, Event::HostCrash { selector });
        }

        // Warm pools for the initially active hosts boot from t = 0.
        for h in 0..self.cfg.initial_active {
            self.fill_warm_pool(SimTime::ZERO, h);
        }

        self.queue
            .schedule_in(self.cfg.autoscale.scan_interval, Event::Scan);
    }

    fn run(&mut self) -> FleetReport {
        self.seed_events();
        while let Some((now, ev)) = self.queue.pop() {
            self.rec.set_now(now.as_micros());
            self.dispatch(now, ev);
        }
        self.rec.set_current_request(None);
        let records: Vec<FleetRequestRecord> = self
            .reqs
            .iter()
            .enumerate()
            .map(|(i, r)| FleetRequestRecord {
                id: i as u64,
                user: r.user,
                kind: r.kind,
                arrival: r.arrival,
                finished: r.finished,
                phase: r.phase,
                fell_back: r.fell_back,
                host: r.host,
                attempts: r.attempts,
                rerouted: r.rerouted,
                reason: r.reason,
            })
            .collect();
        let hosts: Vec<HostReport> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| HostReport {
                served: h.served,
                peak_instances: h.peak_instances,
                peak_memory: h.peak_memory,
                memory_bytes: self.cfg.host_specs[i].memory_bytes,
                migrations_out: h.migrations_out,
                migrations_in: h.migrations_in,
                crashes: h.crashes,
            })
            .collect();
        FleetReport::summarize(records, self.control, hosts, self.cfg.traffic.duration)
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrive { user, kind } => self.on_arrive(now, user, kind),
            Event::UploadDone { req, gen } => self.on_upload_done(now, req, gen),
            Event::BootDone { host, inst, gen } => self.on_boot_done(now, host, inst, gen),
            Event::CodeLoaded { req, gen } => self.on_code_loaded(now, req, gen),
            Event::CpuPoll { host, epoch } => self.on_cpu_poll(now, host, epoch),
            Event::IoDone { req, gen } => self.on_io_done(now, req, gen),
            Event::DownloadDone { req, gen } => self.on_download_done(now, req, gen),
            Event::RetryFire { req, gen } => self.on_retry_fire(now, req, gen),
            Event::LocalDone { req } => self.finish(now, req, Phase::Done),
            Event::HostCrash { selector } => self.on_host_crash(now, selector),
            Event::HostUp { host, gen } => self.on_host_up(now, host, gen),
            Event::FabricPoll { epoch } => self.on_fabric_poll(now, epoch),
            Event::MigrationDone { mig } => self.on_migration_done(now, mig),
            Event::Scan => self.on_scan(now),
        }
    }

    // ------------------------------------------------------- request intake

    fn on_arrive(&mut self, now: SimTime, user: u32, kind: WorkloadKind) {
        let task = kind.profile().sample(&mut self.rng_svc);
        let req = self.reqs.len();
        self.reqs.push(ReqState {
            user,
            kind,
            task,
            arrival: now,
            finished: now,
            phase: Phase::Dispatch,
            fell_back: false,
            host: None,
            instance: None,
            cpu_job: None,
            attempts: 1,
            rerouted: 0,
            reason: None,
            gen: 0,
        });
        self.outstanding += 1;
        self.rec.set_current_request(Some(req as u64));
        self.route_request(now, req);
    }

    /// Route (or re-route) `req`: admit onto a host and start the
    /// upload, or shed to the resilience layer.
    fn route_request(&mut self, now: SimTime, req: usize) {
        let aid = aid_of(self.reqs[req].kind.app_id());
        let warm: Vec<usize> = (0..self.hosts.len())
            .filter(|&h| {
                self.hosts[h].status == HostStatus::Active
                    && !self.hosts[h].warehouse.containers_with(&aid).is_empty()
            })
            .collect();
        let hosts = &self.hosts;
        let admission = &self.admission;
        let decision = self.router.route(&aid, &warm, |h| {
            hosts[h].status == HostStatus::Active && admission.has_room(h)
        });
        match decision {
            Some(d) => {
                assert!(self.admission.admit(d.host), "router picked a full host");
                match d.reason {
                    RouteReason::Affinity => self.control.affinity_routes += 1,
                    RouteReason::Hash => self.control.hash_routes += 1,
                    RouteReason::Spill => self.control.spill_routes += 1,
                }
                self.reqs[req].host = Some(d.host);
                self.reqs[req].reason = Some(d.reason);
                if self.rec.is_enabled() {
                    self.rec.instant(
                        Subsystem::Fleet,
                        "route",
                        vec![
                            ("host", AttrValue::U64(d.host as u64)),
                            ("reason", AttrValue::Str(d.reason.label())),
                            ("aid", AttrValue::Text(aid.0.clone())),
                            ("depth", AttrValue::U64(self.admission.depth(d.host) as u64)),
                        ],
                    );
                }
                self.begin_upload(now, req);
            }
            None => self.shed(now, req),
        }
    }

    fn begin_upload(&mut self, now: SimTime, req: usize) {
        self.reqs[req].phase = Phase::DataTransferUp;
        let bytes = self.reqs[req].task.control_bytes + self.reqs[req].task.payload_bytes;
        let t = self.link.connect_time(&mut self.rng_net)
            + self
                .link
                .transfer_time(bytes, Direction::Upload, &mut self.rng_net);
        let gen = self.reqs[req].gen;
        self.queue
            .schedule(now.saturating_add(t), Event::UploadDone { req, gen });
    }

    /// No host admitted the request: degrade per the resilience policy.
    fn shed(&mut self, now: SimTime, req: usize) {
        self.control.shed += 1;
        self.admission.count_shed();
        self.reqs[req].host = None;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "shed",
                vec![(
                    "fallback",
                    AttrValue::U64(self.cfg.resilience.fallback_local as u64),
                )],
            );
        }
        self.degrade(now, req);
    }

    /// Finish on-device or abandon, per policy.
    fn degrade(&mut self, now: SimTime, req: usize) {
        if self.cfg.resilience.fallback_local {
            self.reqs[req].fell_back = true;
            self.reqs[req].phase = Phase::FallbackLocal;
            let t = self
                .cfg
                .device
                .local_execution_time(self.reqs[req].task.compute);
            self.queue
                .schedule(now.saturating_add(t), Event::LocalDone { req });
        } else {
            self.finish(now, req, Phase::Abandoned);
        }
    }

    fn stale(&self, req: usize, gen: u32) -> bool {
        self.reqs[req].gen != gen || self.reqs[req].phase.is_terminal()
    }

    // ---------------------------------------------------- runtime lifecycle

    fn on_upload_done(&mut self, now: SimTime, req: usize, gen: u32) {
        if self.stale(req, gen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        self.reqs[req].phase = Phase::RuntimePrep;
        self.attach_or_queue(now, req);
    }

    /// Give `req` an idle instance on its host, provision a new one,
    /// or park it in the host's wait queue.
    fn attach_or_queue(&mut self, now: SimTime, req: usize) {
        let h = self.reqs[req].host.expect("routed");
        let app_id = self.reqs[req].kind.app_id();
        // Prefer an idle instance that already holds the app's code.
        let chosen = {
            let host = self.cluster.host(h);
            let with_app = self.hosts[h].idle.keys().copied().find(|&i| {
                host.instance(i)
                    .map(|r| r.apps_loaded.contains(app_id))
                    .unwrap_or(false)
            });
            with_app.or_else(|| self.hosts[h].idle.keys().next().copied())
        };
        if let Some(inst) = chosen {
            self.start_code_load(now, req, h, inst);
            return;
        }
        // No idle instance: grow the pool if the policy and DRAM allow.
        if self.cluster.host(h).instance_count() < self.cfg.pool.max_instances {
            if let Ok((inst, setup)) = self.cluster.host_mut(h).provision(self.cfg.runtime) {
                self.note_provisioned(h);
                self.hosts[h].booting.insert(inst);
                let hgen = self.hosts[h].gen;
                self.queue.schedule(
                    now.saturating_add(setup),
                    Event::BootDone {
                        host: h,
                        inst,
                        gen: hgen,
                    },
                );
            }
        }
        self.hosts[h].wait.push_back(req);
    }

    /// Load the app into `inst` (free when resident), charging a code
    /// upload from the device when even the App Warehouse misses.
    fn start_code_load(&mut self, now: SimTime, req: usize, h: usize, inst: InstanceId) {
        self.hosts[h].idle.remove(&inst);
        self.hosts[h].busy.insert(inst, req);
        self.reqs[req].instance = Some(inst);
        self.reqs[req].phase = Phase::CodeLoad;
        let app_id = self.reqs[req].kind.app_id();
        let aid = aid_of(app_id);
        let code_bytes = self.reqs[req].kind.profile().app_code_bytes;
        let resident = self
            .cluster
            .host(h)
            .instance(inst)
            .map(|r| r.apps_loaded.contains(app_id))
            .unwrap_or(false);
        let mut t = SimDuration::ZERO;
        if !resident && !self.hosts[h].warehouse.lookup(&aid) {
            // Cold everywhere: the device must push the code first.
            t += self
                .link
                .transfer_time(code_bytes, Direction::Upload, &mut self.rng_net);
            self.hosts[h]
                .warehouse
                .insert(aid.clone(), app_id, code_bytes);
        }
        t += self
            .cluster
            .host_mut(h)
            .load_app(inst, app_id, code_bytes)
            .expect("instance is live");
        self.hosts[h].warehouse.note_loaded(&aid, inst);
        let gen = self.reqs[req].gen;
        self.queue
            .schedule(now.saturating_add(t), Event::CodeLoaded { req, gen });
    }

    fn on_boot_done(&mut self, now: SimTime, host: usize, inst: InstanceId, gen: u64) {
        if self.hosts[host].gen != gen {
            return; // the host crashed while this instance booted
        }
        self.hosts[host].booting.remove(&inst);
        self.hosts[host].idle.insert(inst, now);
        self.pump(now, host);
    }

    /// Hand idle instances to waiting requests, in FIFO order.
    fn pump(&mut self, now: SimTime, host: usize) {
        while !self.hosts[host].idle.is_empty() {
            let Some(req) = self.hosts[host].wait.pop_front() else {
                return;
            };
            if self.reqs[req].phase.is_terminal() || self.reqs[req].host != Some(host) {
                continue; // re-routed or degraded while waiting
            }
            self.rec.set_current_request(Some(req as u64));
            let app_id = self.reqs[req].kind.app_id();
            let chosen = {
                let chost = self.cluster.host(host);
                let with_app = self.hosts[host].idle.keys().copied().find(|&i| {
                    chost
                        .instance(i)
                        .map(|r| r.apps_loaded.contains(app_id))
                        .unwrap_or(false)
                });
                with_app.or_else(|| self.hosts[host].idle.keys().next().copied())
            };
            let inst = chosen.expect("idle non-empty");
            self.start_code_load(now, req, host, inst);
        }
    }

    fn on_code_loaded(&mut self, now: SimTime, req: usize, gen: u32) {
        if self.stale(req, gen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        self.reqs[req].phase = Phase::Compute;
        let h = self.reqs[req].host.expect("routed");
        let spec = self.cfg.runtime.spec();
        let ghz = self.cluster.host(h).host_spec().clock_ghz;
        let work = self.reqs[req]
            .task
            .compute
            .seconds_at(ghz, spec.cpu_efficiency);
        let job = self.hosts[h].cpu.submit(now, work, req);
        self.reqs[req].cpu_job = Some(job);
        self.hosts[h]
            .cpu
            .reschedule(now, &mut self.queue, |epoch| Event::CpuPoll {
                host: h,
                epoch,
            });
    }

    fn on_cpu_poll(&mut self, now: SimTime, host: usize, epoch: u64) {
        let Some(finished) = self.hosts[host].cpu.poll(now, epoch) else {
            return; // stale schedule point
        };
        for (_, req) in finished {
            self.rec.set_current_request(Some(req as u64));
            self.reqs[req].cpu_job = None;
            self.reqs[req].phase = Phase::OffloadIo;
            let t = self.io_time(host, self.reqs[req].task.io_bytes);
            let gen = self.reqs[req].gen;
            self.queue
                .schedule(now.saturating_add(t), Event::IoDone { req, gen });
        }
        self.hosts[host]
            .cpu
            .reschedule(now, &mut self.queue, |epoch| Event::CpuPoll { host, epoch });
    }

    /// Offloading-I/O wall time: the shared in-memory layer for the
    /// optimized class, the virtualized disk path otherwise.
    fn io_time(&self, host: usize, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let spec = self.cfg.runtime.spec();
        if spec.uses_shared_io_layer {
            SimDuration::from_secs_f64(bytes as f64 / virt::TMPFS_BANDWIDTH)
        } else {
            let disk = self.cfg.host_specs[host].disk_bandwidth;
            SimDuration::from_secs_f64(bytes as f64 / (disk * spec.io_efficiency))
        }
    }

    fn on_io_done(&mut self, now: SimTime, req: usize, gen: u32) {
        if self.stale(req, gen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        let h = self.reqs[req].host.expect("routed");
        if let Some(inst) = self.reqs[req].instance.take() {
            self.hosts[h].busy.remove(&inst);
            self.hosts[h].idle.insert(inst, now);
        }
        self.hosts[h].served += 1;
        self.admission.release(h);
        self.reqs[req].phase = Phase::DataTransferDown;
        let t = self.link.transfer_time(
            self.reqs[req].task.result_bytes,
            Direction::Download,
            &mut self.rng_net,
        );
        self.queue
            .schedule(now.saturating_add(t), Event::DownloadDone { req, gen });
        self.pump(now, h);
    }

    fn on_download_done(&mut self, now: SimTime, req: usize, gen: u32) {
        if self.stale(req, gen) {
            return;
        }
        self.finish(now, req, Phase::Done);
    }

    fn finish(&mut self, now: SimTime, req: usize, phase: Phase) {
        debug_assert!(phase.is_terminal());
        self.rec.set_current_request(Some(req as u64));
        self.reqs[req].phase = phase;
        self.reqs[req].finished = now;
        self.outstanding -= 1;
        self.rec.set_current_request(None);
    }

    // ------------------------------------------------------------ failures

    fn on_retry_fire(&mut self, now: SimTime, req: usize, gen: u32) {
        if self.stale(req, gen) {
            return;
        }
        self.rec.set_current_request(Some(req as u64));
        self.route_request(now, req);
    }

    fn on_host_crash(&mut self, now: SimTime, selector: u64) {
        self.rec.set_current_request(None);
        let live: Vec<usize> = (0..self.hosts.len())
            .filter(|&h| {
                matches!(
                    self.hosts[h].status,
                    HostStatus::Active | HostStatus::Draining
                )
            })
            .collect();
        if live.is_empty() {
            return;
        }
        let victim = live[(selector % live.len() as u64) as usize];
        self.control.host_crashes += 1;
        self.hosts[victim].crashes += 1;
        self.hosts[victim].gen += 1;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "host_crash",
                vec![
                    ("host", AttrValue::U64(victim as u64)),
                    (
                        "instances_lost",
                        AttrValue::U64(self.cluster.host(victim).instance_count() as u64),
                    ),
                ],
            );
        }

        // Kill every CPU job the host was running.
        let serving: Vec<usize> = self.hosts[victim].busy.values().copied().collect();
        for &req in &serving {
            if let Some(job) = self.reqs[req].cpu_job.take() {
                self.hosts[victim].cpu.cancel(now, job);
            }
        }
        self.hosts[victim]
            .cpu
            .reschedule(now, &mut self.queue, |epoch| Event::CpuPoll {
                host: victim,
                epoch,
            });

        // Destroy every instance and the warehouse with it.
        for inst in self.cluster.host(victim).instance_ids() {
            let _ = self.cluster.host_mut(victim).teardown(inst);
        }
        self.hosts[victim].idle.clear();
        self.hosts[victim].busy.clear();
        self.hosts[victim].booting.clear();
        self.hosts[victim].pending_mig.clear();
        self.hosts[victim].wait.clear();
        self.hosts[victim].warehouse = AppWarehouse::new(self.cfg.warehouse_capacity);
        self.admission.reset_host(victim);
        self.autoscaler.forget(victim);
        self.hosts[victim].status = HostStatus::Down;
        self.rebuild_ring();

        // Every stranded request consumes one attempt and re-routes
        // after backoff (or degrades when the budget is gone).
        let affected: Vec<usize> = (0..self.reqs.len())
            .filter(|&r| self.reqs[r].host == Some(victim) && !self.reqs[r].phase.is_terminal())
            .collect();
        for req in affected {
            self.rec.set_current_request(Some(req as u64));
            self.reqs[req].gen += 1;
            self.reqs[req].instance = None;
            self.reqs[req].cpu_job = None;
            self.reqs[req].host = None;
            self.reqs[req].attempts += 1;
            self.reqs[req].rerouted += 1;
            self.control.crash_reroutes += 1;
            if self.rec.is_enabled() {
                self.rec.instant(
                    Subsystem::Fleet,
                    "reroute",
                    vec![
                        ("from_host", AttrValue::U64(victim as u64)),
                        ("attempt", AttrValue::U64(self.reqs[req].attempts as u64)),
                    ],
                );
            }
            if self.reqs[req].attempts <= self.cfg.resilience.max_retries + 1 {
                self.reqs[req].phase = Phase::Retrying;
                let backoff = self
                    .cfg
                    .resilience
                    .backoff_delay(self.reqs[req].attempts - 1, &mut self.rng_retry);
                let gen = self.reqs[req].gen;
                self.queue
                    .schedule(now.saturating_add(backoff), Event::RetryFire { req, gen });
            } else {
                self.degrade(now, req);
            }
        }
        self.rec.set_current_request(None);

        let gen = self.hosts[victim].gen;
        self.queue.schedule(
            now.saturating_add(self.cfg.crash_reboot),
            Event::HostUp { host: victim, gen },
        );
    }

    fn on_host_up(&mut self, now: SimTime, host: usize, gen: u64) {
        if self.hosts[host].gen != gen {
            return;
        }
        if !matches!(
            self.hosts[host].status,
            HostStatus::Down | HostStatus::Booting
        ) {
            return;
        }
        self.hosts[host].status = HostStatus::Active;
        if self.hosts[host].scale_span != SpanId::NONE {
            self.rec.span_end_at(
                self.hosts[host].scale_span,
                now.as_micros(),
                vec![("host", AttrValue::U64(host as u64))],
            );
            self.hosts[host].scale_span = SpanId::NONE;
        }
        self.rebuild_ring();
        self.fill_warm_pool(now, host);
    }

    // ----------------------------------------------------------- migration

    fn on_fabric_poll(&mut self, now: SimTime, epoch: u64) {
        let Some(finished) = self.fabric.poll(now, epoch) else {
            return;
        };
        for (_, mig) in finished {
            let fixed = self.migs[mig].fixed;
            self.queue
                .schedule(now.saturating_add(fixed), Event::MigrationDone { mig });
        }
        self.fabric
            .reschedule(now, &mut self.queue, |epoch| Event::FabricPoll { epoch });
    }

    fn on_migration_done(&mut self, now: SimTime, mig: usize) {
        self.rec.set_current_request(None);
        let Migration {
            from,
            to,
            new_inst,
            state_bytes,
            gen_to,
            ..
        } = self.migs[mig];
        if self.hosts[to].gen != gen_to {
            return; // destination crashed mid-move; the container is gone
        }
        self.hosts[to].pending_mig.remove(&new_inst);
        self.hosts[to].idle.insert(new_inst, now);
        self.hosts[to].migrations_in += 1;
        self.control.migrations_completed += 1;
        self.control.migration_bytes += state_bytes;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "migration_done",
                vec![
                    ("from", AttrValue::U64(from as u64)),
                    ("to", AttrValue::U64(to as u64)),
                    ("state_bytes", AttrValue::U64(state_bytes)),
                ],
            );
        }
        // Publish the arrived container's apps as warm CID hints.
        let apps: Vec<String> = self
            .cluster
            .host(to)
            .instance(new_inst)
            .map(|r| r.apps_loaded.iter().cloned().collect())
            .unwrap_or_default();
        for app_id in apps {
            if let Some(kind) = kind_of_app(&app_id) {
                let aid = aid_of(&app_id);
                self.hosts[to].warehouse.insert(
                    aid.clone(),
                    &app_id,
                    kind.profile().app_code_bytes,
                );
                self.hosts[to].warehouse.note_loaded(&aid, new_inst);
            }
        }
        self.pump(now, to);
    }

    /// Try one rebalancing migration `from → to`. Picks the lowest-id
    /// idle container that has an app loaded; charges the state bytes
    /// through the shared fabric.
    fn try_migrate(&mut self, now: SimTime, from: usize, to: usize) -> bool {
        if self.hosts[to].status != HostStatus::Active
            || self.cluster.host(to).instance_count() >= self.cfg.pool.max_instances
        {
            return false;
        }
        let victim = {
            let host = self.cluster.host(from);
            self.hosts[from].idle.keys().copied().find(|&i| {
                host.instance(i)
                    .map(|r| !r.apps_loaded.is_empty())
                    .unwrap_or(false)
            })
        };
        let Some(victim) = victim else {
            return false;
        };
        self.rec.set_current_request(None);
        let (src, dst) = self.cluster.host_pair_mut(from, to);
        let receipt = match migrate(src, victim, dst, self.cfg.interconnect_bps, now) {
            Ok(r) => r,
            Err(_) => return false, // destination DRAM is full — skip
        };
        self.hosts[from].idle.remove(&victim);
        self.hosts[from].warehouse.invalidate_container(victim);
        self.hosts[from].migrations_out += 1;
        self.control.migrations_started += 1;
        self.note_provisioned(to);
        self.hosts[to].pending_mig.insert(receipt.new_id);
        let ideal =
            SimDuration::from_secs_f64(receipt.state_bytes as f64 / self.cfg.interconnect_bps);
        let mig = self.migs.len();
        self.migs.push(Migration {
            from,
            to,
            new_inst: receipt.new_id,
            state_bytes: receipt.state_bytes,
            fixed: receipt.downtime.saturating_sub(ideal),
            gen_to: self.hosts[to].gen,
        });
        self.fabric.begin_transfer(now, receipt.state_bytes, mig);
        self.fabric
            .reschedule(now, &mut self.queue, |epoch| Event::FabricPoll { epoch });
        self.rebalancer.committed(now);
        true
    }

    // -------------------------------------------------------- control loop

    fn on_scan(&mut self, now: SimTime) {
        self.rec.set_current_request(None);
        let active = self.active_set();

        // Observe per-host pressure into the fleet EWMA monitor.
        for &h in &active {
            self.autoscaler.observe(h, self.admission.depth(h) as u32);
        }

        // Reclaim instances idle past the policy window (keeping the
        // warm-spare floor on active hosts).
        for h in 0..self.hosts.len() {
            match self.hosts[h].status {
                HostStatus::Active => self.reclaim_idle(now, h, self.cfg.pool.warm_spares),
                HostStatus::Draining => {
                    self.reclaim_idle(now, h, 0);
                    self.maybe_finish_drain(h);
                }
                _ => {}
            }
        }

        // Refill warm pools.
        for &h in &active {
            self.fill_warm_pool(now, h);
        }

        // Scale.
        let saturation = if active.is_empty() {
            0.0
        } else {
            active
                .iter()
                .map(|&h| self.admission.utilization(h))
                .sum::<f64>()
                / active.len() as f64
        };
        let standby = self.hosts.iter().any(|h| h.status == HostStatus::Standby);
        match self.autoscaler.plan(now, saturation, &active, standby) {
            Some(FleetAction::Activate) => self.activate_standby(now),
            Some(FleetAction::Drain(victim)) => self.drain(victim),
            None => {}
        }

        // Rebalance: migrate one warm container from the hottest to
        // the coldest active host when the gap warrants it.
        let capacity = self.admission.capacity() as f64;
        let hot_cold = self.autoscaler.hot_cold(&self.active_set(), |_| capacity);
        if let Some(mv) = self.rebalancer.plan(now, hot_cold) {
            self.try_migrate(now, mv.from, mv.to);
        }

        if now < self.horizon || self.outstanding > 0 {
            self.queue
                .schedule_in(self.cfg.autoscale.scan_interval, Event::Scan);
        }
    }

    fn activate_standby(&mut self, now: SimTime) {
        let Some(host) =
            (0..self.hosts.len()).find(|&h| self.hosts[h].status == HostStatus::Standby)
        else {
            return;
        };
        self.hosts[host].status = HostStatus::Booting;
        self.control.scale_ups += 1;
        if self.rec.is_enabled() {
            self.hosts[host].scale_span = self.rec.span_start_at(
                Subsystem::Fleet,
                "scale_up",
                SpanId::NONE,
                now.as_micros(),
                vec![("host", AttrValue::U64(host as u64))],
            );
        }
        let gen = self.hosts[host].gen;
        self.queue.schedule(
            now.saturating_add(self.cfg.autoscale.host_boot),
            Event::HostUp { host, gen },
        );
    }

    fn drain(&mut self, victim: usize) {
        if self.hosts[victim].status != HostStatus::Active || self.active_set().len() < 2 {
            return;
        }
        self.hosts[victim].status = HostStatus::Draining;
        self.control.drains += 1;
        self.autoscaler.forget(victim);
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Fleet,
                "drain",
                vec![("host", AttrValue::U64(victim as u64))],
            );
        }
        self.rebuild_ring();
    }

    /// A draining host with no admitted work releases its instances
    /// and parks as standby capacity.
    fn maybe_finish_drain(&mut self, host: usize) {
        if !self.hosts[host].busy.is_empty()
            || !self.hosts[host].wait.is_empty()
            || !self.hosts[host].pending_mig.is_empty()
            || self.admission.depth(host) > 0
        {
            return;
        }
        for inst in self.cluster.host(host).instance_ids() {
            let _ = self.cluster.host_mut(host).teardown(inst);
        }
        self.hosts[host].idle.clear();
        self.hosts[host].booting.clear();
        self.hosts[host].warehouse = AppWarehouse::new(self.cfg.warehouse_capacity);
        self.hosts[host].status = HostStatus::Standby;
    }

    fn reclaim_idle(&mut self, now: SimTime, host: usize, floor: usize) {
        let expired: Vec<InstanceId> = self.hosts[host]
            .idle
            .iter()
            .filter(|&(_, &since)| now.saturating_since(since) >= self.cfg.pool.idle_teardown)
            .map(|(&i, _)| i)
            .collect();
        for inst in expired {
            if self.hosts[host].idle.len() <= floor {
                break;
            }
            let _ = self.cluster.host_mut(host).teardown(inst);
            self.hosts[host].idle.remove(&inst);
            self.hosts[host].warehouse.invalidate_container(inst);
        }
    }

    /// Keep `warm_spares` instances idle or booting on an active host.
    fn fill_warm_pool(&mut self, now: SimTime, host: usize) {
        while self.hosts[host].idle.len() + self.hosts[host].booting.len()
            < self.cfg.pool.warm_spares
            && self.cluster.host(host).instance_count() < self.cfg.pool.max_instances
        {
            match self.cluster.host_mut(host).provision(self.cfg.runtime) {
                Ok((inst, setup)) => {
                    self.note_provisioned(host);
                    self.hosts[host].booting.insert(inst);
                    let gen = self.hosts[host].gen;
                    self.queue.schedule(
                        now.saturating_add(setup),
                        Event::BootDone { host, inst, gen },
                    );
                }
                Err(_) => break, // DRAM exhausted: stop growing
            }
        }
    }

    // ------------------------------------------------------------- helpers

    fn active_set(&self) -> BTreeSet<usize> {
        (0..self.hosts.len())
            .filter(|&h| self.hosts[h].status == HostStatus::Active)
            .collect()
    }

    fn rebuild_ring(&mut self) {
        self.router.rebuild(&self.active_set());
    }

    fn note_provisioned(&mut self, host: usize) {
        let count = self.cluster.host(host).instance_count();
        let mem = self.cluster.host(host).memory_reserved();
        self.hosts[host].peak_instances = self.hosts[host].peak_instances.max(count);
        self.hosts[host].peak_memory = self.hosts[host].peak_memory.max(mem);
    }
}

/// Collect the AIDs currently warm (live container hints) on a host —
/// exposed for tests.
#[doc(hidden)]
pub fn warm_hosts_for(aid: &Aid, warehouses: &mut [AppWarehouse]) -> Vec<usize> {
    warehouses
        .iter_mut()
        .enumerate()
        .filter(|(_, w)| !w.containers_with(aid).is_empty())
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::faults::FaultConfig;

    fn small(hosts: usize, seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::paper_default(hosts, seed);
        cfg.traffic.users = 12;
        cfg.traffic.duration = SimDuration::from_secs(600);
        cfg
    }

    #[test]
    fn every_request_terminates() {
        let rep = run_fleet(&small(2, 11));
        assert!(rep.summary.submitted > 0, "trace produced arrivals");
        for r in &rep.records {
            assert!(
                r.phase.is_terminal(),
                "request {} stuck in {:?}",
                r.id,
                r.phase
            );
        }
        assert_eq!(
            rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned,
            rep.summary.submitted
        );
    }

    #[test]
    fn same_seed_same_digest() {
        let cfg = small(3, 42);
        let a = run_fleet(&cfg);
        let b = run_fleet(&cfg);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn different_seed_different_digest() {
        assert_ne!(
            run_fleet(&small(2, 1)).digest(),
            run_fleet(&small(2, 2)).digest()
        );
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let cfg = small(2, 77);
        let untraced = run_fleet(&cfg);
        let rec = Recorder::enabled(obsv::RecorderConfig::default());
        let traced = run_fleet_traced(&cfg, rec.clone());
        assert_eq!(untraced.digest(), traced.digest());
        assert!(!rec.snapshot().events.is_empty(), "spans were recorded");
    }

    #[test]
    fn memory_is_never_oversubscribed() {
        let rep = run_fleet(&small(2, 5));
        for h in &rep.hosts {
            assert!(h.peak_memory <= h.memory_bytes);
        }
    }

    #[test]
    fn host_crash_reroutes_without_losing_requests() {
        let mut cfg = small(3, 9);
        cfg.faults = FaultConfig::scaled(1.5);
        let rep = run_fleet(&cfg);
        for r in &rep.records {
            assert!(r.phase.is_terminal());
        }
        if rep.control.host_crashes > 0 {
            assert_eq!(
                rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned,
                rep.summary.submitted
            );
        }
    }

    #[test]
    fn warehouse_helper_reports_warm_hosts() {
        let mut ws = vec![AppWarehouse::new(1 << 20), AppWarehouse::new(1 << 20)];
        let aid = aid_of("com.bench.ocr");
        ws[1].insert(aid.clone(), "com.bench.ocr", 1024);
        ws[1].note_loaded(&aid, InstanceId(3));
        assert_eq!(warm_hosts_for(&aid, &mut ws), vec![1]);
    }
}
