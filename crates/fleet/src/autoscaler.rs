//! The fleet Autoscaler: `rattrap::scheduler::Monitor` lifted to host
//! granularity.
//!
//! Each scan observes every active host's admitted-request count into
//! the same EWMA monitor the per-host scheduler uses for containers
//! (hosts are keyed as pseudo-instances). Sustained saturation earns
//! scale-up credits, sustained slack earns scale-down credits; an
//! action fires only when the credit budget is spent, so one bursty
//! scan can never flap the fleet.

use crate::config::AutoscalePolicy;
use rattrap::Monitor;
use simkit::SimTime;
use std::collections::BTreeSet;
use virt::InstanceId;

/// What the autoscaler wants done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// Bring one standby host up.
    Activate,
    /// Drain this active host (stop routing to it; release it once
    /// its queue empties).
    Drain(usize),
}

/// The fleet autoscaler.
#[derive(Debug)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    monitor: Monitor,
    credits: i64,
}

impl Autoscaler {
    /// An autoscaler under `policy`.
    pub fn new(policy: AutoscalePolicy) -> Self {
        Autoscaler {
            policy,
            monitor: Monitor::new(policy.alpha),
            credits: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> AutoscalePolicy {
        self.policy
    }

    /// Feed one host's admitted-request count for this scan.
    pub fn observe(&mut self, host: usize, admitted: u32) {
        self.monitor.observe(InstanceId(host as u32), admitted);
    }

    /// Drop a host's signal (crash or release).
    pub fn forget(&mut self, host: usize) {
        self.monitor.forget(InstanceId(host as u32));
    }

    /// Smoothed load of `host`.
    pub fn load_of(&self, host: usize) -> f64 {
        self.monitor.load_of(InstanceId(host as u32))
    }

    /// Hottest and coldest of `active` by smoothed busy-fraction
    /// (`load / slots(host)`), with the gap — the rebalancer's input.
    /// Ties break toward the lowest index. `None` below two hosts.
    pub fn hot_cold(
        &self,
        active: &BTreeSet<usize>,
        slots: impl Fn(usize) -> f64,
    ) -> Option<(usize, usize, f64)> {
        if active.len() < 2 {
            return None;
        }
        let frac: Vec<(usize, f64)> = active
            .iter()
            .map(|&h| (h, self.load_of(h) / slots(h).max(1.0)))
            .collect();
        let &(hot, hi) = frac
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
            .expect("non-empty");
        let &(cold, lo) = frac
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .expect("non-empty");
        if hot == cold {
            return None;
        }
        Some((hot, cold, hi - lo))
    }

    /// One control decision. `saturation` is the fleet-mean busy
    /// fraction over active hosts; `standby` says whether any host is
    /// left to activate. At most one action per scan.
    pub fn plan(
        &mut self,
        _now: SimTime,
        saturation: f64,
        active: &BTreeSet<usize>,
        standby: bool,
    ) -> Option<FleetAction> {
        if !self.policy.enabled {
            return None;
        }
        if saturation >= self.policy.high_watermark {
            self.credits = (self.credits.max(0)) + 1;
        } else if saturation <= self.policy.low_watermark {
            self.credits = (self.credits.min(0)) - 1;
        } else {
            // Comfortable band: pressure credits decay toward zero.
            self.credits -= self.credits.signum();
        }
        let budget = self.policy.credits_to_scale as i64;
        if self.credits >= budget {
            self.credits = 0;
            if standby {
                return Some(FleetAction::Activate);
            }
        } else if self.credits <= -budget {
            self.credits = 0;
            if active.len() > 1 {
                // Drain the coldest host.
                let victim = active
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        self.load_of(a)
                            .partial_cmp(&self.load_of(b))
                            .unwrap()
                            .then(a.cmp(&b))
                    })
                    .expect("non-empty");
                return Some(FleetAction::Drain(victim));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active(n: usize) -> BTreeSet<usize> {
        (0..n).collect()
    }

    #[test]
    fn sustained_saturation_activates_after_credits() {
        let mut a = Autoscaler::new(AutoscalePolicy::standard());
        let now = SimTime::ZERO;
        for _ in 0..2 {
            assert_eq!(a.plan(now, 0.95, &active(2), true), None, "still earning");
        }
        assert_eq!(
            a.plan(now, 0.95, &active(2), true),
            Some(FleetAction::Activate)
        );
        // Credits were spent: the next scan starts over.
        assert_eq!(a.plan(now, 0.95, &active(3), true), None);
    }

    #[test]
    fn one_burst_does_not_scale() {
        let mut a = Autoscaler::new(AutoscalePolicy::standard());
        let now = SimTime::ZERO;
        assert_eq!(a.plan(now, 0.95, &active(2), true), None);
        // Back in band: the credit decays instead of accumulating.
        assert_eq!(a.plan(now, 0.5, &active(2), true), None);
        assert_eq!(a.plan(now, 0.95, &active(2), true), None);
        assert_eq!(a.plan(now, 0.95, &active(2), true), None);
    }

    #[test]
    fn sustained_slack_drains_the_coldest() {
        let mut a = Autoscaler::new(AutoscalePolicy::standard());
        let now = SimTime::ZERO;
        a.observe(0, 6);
        a.observe(1, 0);
        for _ in 0..2 {
            assert_eq!(a.plan(now, 0.05, &active(2), false), None);
        }
        assert_eq!(
            a.plan(now, 0.05, &active(2), false),
            Some(FleetAction::Drain(1))
        );
    }

    #[test]
    fn never_drains_the_last_host() {
        let mut a = Autoscaler::new(AutoscalePolicy::standard());
        let now = SimTime::ZERO;
        for _ in 0..10 {
            assert_eq!(a.plan(now, 0.0, &active(1), false), None);
        }
    }

    #[test]
    fn disabled_policy_is_inert() {
        let mut a = Autoscaler::new(AutoscalePolicy::static_fleet());
        for _ in 0..10 {
            assert_eq!(a.plan(SimTime::ZERO, 1.0, &active(2), true), None);
        }
    }

    #[test]
    fn hot_cold_uses_per_host_slots() {
        let mut a = Autoscaler::new(AutoscalePolicy::standard());
        for _ in 0..20 {
            a.observe(0, 8);
            a.observe(1, 4);
        }
        // Equal slots: host 0 is hot.
        let (hot, cold, gap) = a.hot_cold(&active(2), |_| 8.0).unwrap();
        assert_eq!((hot, cold), (0, 1));
        assert!(gap > 0.3);
        // Host 0 twice the slots: busy fractions even out exactly, so
        // there is no hot/cold pair to report.
        assert!(a
            .hot_cold(&active(2), |h| if h == 0 { 16.0 } else { 8.0 })
            .is_none());
    }
}
