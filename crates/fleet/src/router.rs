//! The front-end Router: code-cache-affinity routing over a
//! consistent-hash ring.
//!
//! Requests are keyed by AID (the App Warehouse cache key, Fig. 8).
//! Routing prefers a host that already holds a warm container for the
//! app (the per-host warehouse's CID hints), falls back to the AID's
//! consistent-hash home host, and spills clockwise around the ring
//! when the preferred hosts refuse admission. Adding or removing one
//! host only remaps the ring arcs that host owned — the rest of the
//! fleet keeps its code caches warm.

use rattrap::warehouse::Aid;
use std::collections::BTreeSet;

/// Why the router picked the host it picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RouteReason {
    /// A warm container for the AID already lives there.
    Affinity,
    /// The AID's consistent-hash home host.
    Hash,
    /// Home (and any warm hosts) refused admission; spilled clockwise.
    Spill,
}

impl RouteReason {
    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            RouteReason::Affinity => "affinity",
            RouteReason::Hash => "hash",
            RouteReason::Spill => "spill",
        }
    }
}

/// A routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Target host index.
    pub host: usize,
    /// Why.
    pub reason: RouteReason,
}

/// Consistent-hash ring over the currently routable hosts.
#[derive(Debug)]
pub struct Router {
    /// (ring point, host), sorted by point.
    points: Vec<(u64, usize)>,
    vnodes: usize,
}

/// FNV-1a over a byte string, with a final avalanche so vnode points
/// spread even for short keys.
fn hash_bytes(bytes: &[u8], salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Router {
    /// An empty ring with `vnodes` points per host. More vnodes means
    /// smoother arc ownership; 64 is plenty for single-digit fleets.
    pub fn new(vnodes: usize) -> Self {
        assert!(vnodes > 0, "at least one virtual node per host");
        Router {
            points: Vec::new(),
            vnodes,
        }
    }

    /// Rebuild the ring over `routable`. Called whenever membership
    /// changes (activation, drain, crash, rejoin) — placement of every
    /// AID whose arc owner survived is unchanged.
    pub fn rebuild(&mut self, routable: &BTreeSet<usize>) {
        self.points.clear();
        for &h in routable {
            for v in 0..self.vnodes {
                let key = [h.to_le_bytes(), v.to_le_bytes()].concat();
                self.points.push((hash_bytes(&key, 0x9e37_79b9), h));
            }
        }
        self.points.sort_unstable();
    }

    /// Number of distinct hosts on the ring.
    pub fn host_count(&self) -> usize {
        self.points
            .iter()
            .map(|&(_, h)| h)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Hosts in ring order starting at `key`'s arc, deduplicated —
    /// the spillover order.
    fn ring_walk(&self, key: u64) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut seen = BTreeSet::new();
        let mut order = Vec::new();
        for i in 0..self.points.len() {
            let (_, h) = self.points[(start + i) % self.points.len()];
            if seen.insert(h) {
                order.push(h);
            }
        }
        order
    }

    /// Route one request.
    ///
    /// * `warm` — hosts whose warehouse holds a live container for the
    ///   AID (CID hints), in ascending host order.
    /// * `admissible` — whether a host will accept one more request
    ///   (active, queue not full).
    ///
    /// Preference: warm hosts (first admissible), then the hash home,
    /// then clockwise spillover. `None` means every routable host
    /// refused admission — the caller sheds.
    pub fn route(
        &self,
        aid: &Aid,
        warm: &[usize],
        mut admissible: impl FnMut(usize) -> bool,
    ) -> Option<RouteDecision> {
        if let Some(&h) = warm.iter().find(|&&h| admissible(h)) {
            return Some(RouteDecision {
                host: h,
                reason: RouteReason::Affinity,
            });
        }
        let order = self.ring_walk(hash_bytes(aid.0.as_bytes(), 0));
        for (i, h) in order.into_iter().enumerate() {
            if admissible(h) {
                return Some(RouteDecision {
                    host: h,
                    reason: if i == 0 {
                        RouteReason::Hash
                    } else {
                        RouteReason::Spill
                    },
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rattrap::warehouse::aid_of;

    fn ring(hosts: &[usize]) -> Router {
        let mut r = Router::new(64);
        r.rebuild(&hosts.iter().copied().collect());
        r
    }

    #[test]
    fn routing_is_deterministic_and_stable() {
        let r = ring(&[0, 1, 2, 3]);
        let aid = aid_of("com.bench.ocr");
        let a = r.route(&aid, &[], |_| true).unwrap();
        let b = r.route(&aid, &[], |_| true).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.reason, RouteReason::Hash);
    }

    #[test]
    fn warm_host_wins_over_hash_home() {
        let r = ring(&[0, 1, 2, 3]);
        let aid = aid_of("com.bench.ocr");
        let home = r.route(&aid, &[], |_| true).unwrap().host;
        let warm = (home + 1) % 4;
        let d = r.route(&aid, &[warm], |_| true).unwrap();
        assert_eq!(d.host, warm);
        assert_eq!(d.reason, RouteReason::Affinity);
    }

    #[test]
    fn spillover_walks_the_ring_past_full_hosts() {
        let r = ring(&[0, 1, 2, 3]);
        let aid = aid_of("com.bench.chessgame");
        let home = r.route(&aid, &[], |_| true).unwrap().host;
        let d = r.route(&aid, &[], |h| h != home).unwrap();
        assert_ne!(d.host, home);
        assert_eq!(d.reason, RouteReason::Spill);
    }

    #[test]
    fn all_full_sheds() {
        let r = ring(&[0, 1]);
        assert!(r.route(&aid_of("com.bench.ocr"), &[], |_| false).is_none());
    }

    #[test]
    fn membership_change_only_remaps_lost_arcs() {
        let four = ring(&[0, 1, 2, 3]);
        let three = ring(&[0, 1, 2]);
        // Every AID routed to a surviving host keeps its placement.
        for app in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            let aid = aid_of(app);
            let before = four.route(&aid, &[], |_| true).unwrap().host;
            let after = three.route(&aid, &[], |_| true).unwrap().host;
            if before != 3 {
                assert_eq!(before, after, "surviving arc moved for {app}");
            }
        }
    }

    #[test]
    fn vnodes_spread_hosts_over_the_ring() {
        let r = ring(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(r.host_count(), 8);
        // Many distinct keys must not all land on one host.
        let mut hit = BTreeSet::new();
        for i in 0..64 {
            let aid = aid_of(&format!("app{i}"));
            hit.insert(r.route(&aid, &[], |_| true).unwrap().host);
        }
        assert!(hit.len() >= 6, "only {} hosts hit", hit.len());
    }
}
