//! Fleet run results: per-request records, control-plane event
//! counts, per-host accounting, and the canonical digest the golden
//! determinism suite pins.

use crate::router::RouteReason;
use rattrap::{Phase, ReportHasher};
use simkit::{Cdf, SimDuration, SimTime};
use workloads::WorkloadKind;

/// One request's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRequestRecord {
    /// Request id (arrival order).
    pub id: u64,
    /// Originating user (device).
    pub user: u32,
    /// The app.
    pub kind: WorkloadKind,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Terminal instant.
    pub finished: SimTime,
    /// Terminal lifecycle phase (always satisfies
    /// [`Phase::is_terminal`]).
    pub phase: Phase,
    /// Whether the task finished on the device's own CPU (shed or
    /// retry-budget exhaustion, per the resilience policy).
    pub fell_back: bool,
    /// Host that finally served it (None for shed/local requests).
    pub host: Option<usize>,
    /// Service attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// Crash-triggered re-routes survived.
    pub rerouted: u32,
    /// How the final placement was chosen.
    pub reason: Option<RouteReason>,
}

impl FleetRequestRecord {
    /// End-to-end response time.
    pub fn response(&self) -> SimDuration {
        self.finished.saturating_since(self.arrival)
    }

    /// Whether the cloud served it (done, and not on the device).
    pub fn remote(&self) -> bool {
        self.phase == Phase::Done && !self.fell_back
    }
}

/// Counters for the control plane's own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Requests routed by warm-container affinity.
    pub affinity_routes: u64,
    /// Requests routed to their consistent-hash home.
    pub hash_routes: u64,
    /// Requests spilled past refusing hosts.
    pub spill_routes: u64,
    /// Requests no host admitted (shed to the resilience layer).
    pub shed: u64,
    /// Host crashes injected.
    pub host_crashes: u64,
    /// Requests re-routed off a crashed host.
    pub crash_reroutes: u64,
    /// Rebalancing migrations started.
    pub migrations_started: u64,
    /// Rebalancing migrations that completed (dest container live).
    pub migrations_completed: u64,
    /// Bytes moved by completed migrations.
    pub migration_bytes: u64,
    /// Standby hosts activated by the autoscaler.
    pub scale_ups: u64,
    /// Active hosts drained by the autoscaler.
    pub drains: u64,
}

/// Per-host accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostReport {
    /// Requests this host completed.
    pub served: u64,
    /// Peak concurrently provisioned instances.
    pub peak_instances: usize,
    /// Peak reserved memory, bytes.
    pub peak_memory: u64,
    /// The host's DRAM (the bound `peak_memory` must respect).
    pub memory_bytes: u64,
    /// Containers migrated away.
    pub migrations_out: u64,
    /// Containers migrated in.
    pub migrations_in: u64,
    /// Crashes suffered.
    pub crashes: u64,
}

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Requests submitted (trace arrivals).
    pub submitted: u64,
    /// Served by the cloud.
    pub completed_remote: u64,
    /// Degraded to on-device execution.
    pub fallback_local: u64,
    /// Abandoned (no fallback in policy).
    pub abandoned: u64,
    /// Cloud throughput over the trace duration, requests/second.
    pub throughput_rps: f64,
    /// Mean response time of remote completions, seconds.
    pub mean_response_s: f64,
    /// Median response time of remote completions, seconds.
    pub p50_response_s: f64,
    /// 95th-percentile response time of remote completions, seconds.
    pub p95_response_s: f64,
    /// Trace duration, seconds.
    pub duration_s: f64,
}

/// Per-tenant accounting when a scenario declares explicit tenants
/// (every request belongs to exactly one tenant, so these partition
/// the run — the `tenant-isolation-accounting` invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant display name.
    pub name: String,
    /// Requests submitted by this tenant's devices.
    pub submitted: u64,
    /// Served by the cloud.
    pub completed_remote: u64,
    /// Degraded to on-device execution.
    pub fallback_local: u64,
    /// Abandoned or failed.
    pub abandoned: u64,
    /// Mean response time of this tenant's remote completions, seconds.
    pub mean_response_s: f64,
    /// 99th-percentile response of remote completions, seconds.
    pub p99_response_s: f64,
}

/// Scenario-plane accounting, present only when the run carried a
/// [`scenario::ScenarioSpec`]. The conservation contract
/// (`scenario-arrival-conservation`): every scripted event is either
/// submitted to the platform or suppressed on-device —
/// `injected == submitted + suppressed`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStats {
    /// The spec's display name.
    pub name: String,
    /// Scripted events compiled into the run.
    pub injected: u64,
    /// Scripted events that entered the platform as requests.
    pub submitted: u64,
    /// Scripted events handled device-locally (never offloaded).
    pub suppressed: u64,
    /// Upload attempts cut by a cohort radio outage and re-offloaded
    /// at restore (the thundering herd, counted per deferral).
    pub deferred: u64,
    /// Per-tenant split of *all* requests in the run, tenant order.
    pub tenants: Vec<TenantStats>,
}

impl ScenarioStats {
    /// Build the per-tenant split from the finished records plus the
    /// control plane's scenario counters. `tenant_of` maps any user
    /// index to its tenant.
    pub fn build(
        name: &str,
        counters: (u64, u64, u64, u64),
        tenant_names: &[String],
        tenant_of: impl Fn(u32) -> u32,
        records: &[FleetRequestRecord],
    ) -> Self {
        let (injected, submitted, suppressed, deferred) = counters;
        let tenants = tenant_names
            .iter()
            .enumerate()
            .map(|(t, name)| {
                let mine: Vec<&FleetRequestRecord> = records
                    .iter()
                    .filter(|r| tenant_of(r.user) == t as u32)
                    .collect();
                let remote: Vec<f64> = mine
                    .iter()
                    .filter(|r| r.remote())
                    .map(|r| r.response().as_secs_f64())
                    .collect();
                let mean = if remote.is_empty() {
                    0.0
                } else {
                    remote.iter().sum::<f64>() / remote.len() as f64
                };
                let completed_remote = remote.len() as u64;
                let cdf = Cdf::from_samples(remote);
                TenantStats {
                    name: name.clone(),
                    submitted: mine.len() as u64,
                    completed_remote,
                    fallback_local: mine
                        .iter()
                        .filter(|r| r.fell_back && r.phase == Phase::Done)
                        .count() as u64,
                    abandoned: mine
                        .iter()
                        .filter(|r| matches!(r.phase, Phase::Abandoned | Phase::Failed))
                        .count() as u64,
                    mean_response_s: mean,
                    p99_response_s: cdf.quantile(0.99).unwrap_or(0.0),
                }
            })
            .collect();
        ScenarioStats {
            name: name.to_string(),
            injected,
            submitted,
            suppressed,
            deferred,
            tenants,
        }
    }
}

/// Everything a fleet run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-request outcomes, in arrival order.
    pub records: Vec<FleetRequestRecord>,
    /// Control-plane activity.
    pub control: ControlStats,
    /// Per-host accounting, index order.
    pub hosts: Vec<HostReport>,
    /// Aggregates.
    pub summary: FleetSummary,
    /// Scenario-plane accounting (`None` unless the config carried a
    /// scenario plan).
    pub scenario: Option<ScenarioStats>,
}

impl FleetReport {
    /// Build the aggregate summary from records + the trace duration.
    pub fn summarize(
        records: Vec<FleetRequestRecord>,
        control: ControlStats,
        hosts: Vec<HostReport>,
        duration: SimDuration,
    ) -> Self {
        let submitted = records.len() as u64;
        let completed_remote = records.iter().filter(|r| r.remote()).count() as u64;
        let fallback_local = records
            .iter()
            .filter(|r| r.fell_back && r.phase == Phase::Done)
            .count() as u64;
        let abandoned = records
            .iter()
            .filter(|r| matches!(r.phase, Phase::Abandoned | Phase::Failed))
            .count() as u64;
        let remote: Vec<f64> = records
            .iter()
            .filter(|r| r.remote())
            .map(|r| r.response().as_secs_f64())
            .collect();
        let mean = if remote.is_empty() {
            0.0
        } else {
            remote.iter().sum::<f64>() / remote.len() as f64
        };
        let cdf = Cdf::from_samples(remote);
        let duration_s = duration.as_secs_f64();
        let summary = FleetSummary {
            submitted,
            completed_remote,
            fallback_local,
            abandoned,
            throughput_rps: completed_remote as f64 / duration_s,
            mean_response_s: mean,
            p50_response_s: cdf.median().unwrap_or(0.0),
            p95_response_s: cdf.quantile(0.95).unwrap_or(0.0),
            duration_s,
        };
        FleetReport {
            records,
            control,
            hosts,
            summary,
            scenario: None,
        }
    }

    /// Canonical digest over every observable field — the golden
    /// determinism contract. Any microsecond, byte, or float bit that
    /// moves in the report moves this. The scenario block is hashed
    /// only when present, so scenario-free runs keep the digests
    /// pinned before the scenario plane existed.
    pub fn digest(&self) -> u64 {
        let mut h = ReportHasher::new();
        h.write_u64(self.records.len() as u64);
        for r in &self.records {
            h.write_u64(r.id);
            h.write_u64(r.user as u64);
            h.write(format!("{:?}", r.kind).as_bytes());
            h.write_u64(r.arrival.as_micros());
            h.write_u64(r.finished.as_micros());
            h.write(r.phase.name().as_bytes());
            h.write_u64(r.fell_back as u64);
            h.write_u64(r.host.map(|x| x as u64 + 1).unwrap_or(0));
            h.write_u64(r.attempts as u64);
            h.write_u64(r.rerouted as u64);
            h.write(match r.reason {
                None => b"none" as &[u8],
                Some(x) => x.label().as_bytes(),
            });
        }
        let c = &self.control;
        for v in [
            c.affinity_routes,
            c.hash_routes,
            c.spill_routes,
            c.shed,
            c.host_crashes,
            c.crash_reroutes,
            c.migrations_started,
            c.migrations_completed,
            c.migration_bytes,
            c.scale_ups,
            c.drains,
        ] {
            h.write_u64(v);
        }
        for hr in &self.hosts {
            h.write_u64(hr.served);
            h.write_u64(hr.peak_instances as u64);
            h.write_u64(hr.peak_memory);
            h.write_u64(hr.memory_bytes);
            h.write_u64(hr.migrations_out);
            h.write_u64(hr.migrations_in);
            h.write_u64(hr.crashes);
        }
        let s = &self.summary;
        h.write_u64(s.submitted);
        h.write_u64(s.completed_remote);
        h.write_u64(s.fallback_local);
        h.write_u64(s.abandoned);
        h.write_f64(s.throughput_rps);
        h.write_f64(s.mean_response_s);
        h.write_f64(s.p50_response_s);
        h.write_f64(s.p95_response_s);
        if let Some(sc) = &self.scenario {
            h.write(sc.name.as_bytes());
            h.write_u64(sc.injected);
            h.write_u64(sc.submitted);
            h.write_u64(sc.suppressed);
            h.write_u64(sc.deferred);
            h.write_u64(sc.tenants.len() as u64);
            for t in &sc.tenants {
                h.write(t.name.as_bytes());
                h.write_u64(t.submitted);
                h.write_u64(t.completed_remote);
                h.write_u64(t.fallback_local);
                h.write_u64(t.abandoned);
                h.write_f64(t.mean_response_s);
                h.write_f64(t.p99_response_s);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, phase: Phase, secs: u64) -> FleetRequestRecord {
        FleetRequestRecord {
            id,
            user: 1,
            kind: WorkloadKind::Ocr,
            arrival: SimTime::from_secs(1),
            finished: SimTime::from_secs(1 + secs),
            phase,
            fell_back: false,
            host: Some(0),
            attempts: 1,
            rerouted: 0,
            reason: Some(RouteReason::Hash),
        }
    }

    #[test]
    fn summary_counts_dispositions() {
        let mut local = record(2, Phase::Done, 9);
        local.fell_back = true;
        let recs = vec![
            record(0, Phase::Done, 2),
            record(1, Phase::Done, 4),
            local,
            record(3, Phase::Abandoned, 1),
        ];
        let rep = FleetReport::summarize(
            recs,
            ControlStats::default(),
            vec![HostReport::default()],
            SimDuration::from_secs(10),
        );
        assert_eq!(rep.summary.submitted, 4);
        assert_eq!(rep.summary.completed_remote, 2);
        assert_eq!(rep.summary.fallback_local, 1);
        assert_eq!(rep.summary.abandoned, 1);
        assert!((rep.summary.throughput_rps - 0.2).abs() < 1e-12);
        assert!((rep.summary.mean_response_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn digest_sees_every_field() {
        let base = FleetReport::summarize(
            vec![record(0, Phase::Done, 2)],
            ControlStats::default(),
            vec![HostReport::default()],
            SimDuration::from_secs(10),
        );
        let mut moved = base.clone();
        moved.records[0].finished = SimTime::from_secs(4);
        assert_ne!(base.digest(), moved.digest(), "finish time");
        let mut routed = base.clone();
        routed.records[0].reason = Some(RouteReason::Spill);
        assert_ne!(base.digest(), routed.digest(), "route reason");
        let mut ctl = base.clone();
        ctl.control.migrations_completed = 1;
        assert_ne!(base.digest(), ctl.digest(), "control stats");
    }

    #[test]
    fn digest_sees_the_scenario_block_only_when_present() {
        let base = FleetReport::summarize(
            vec![record(0, Phase::Done, 2)],
            ControlStats::default(),
            vec![HostReport::default()],
            SimDuration::from_secs(10),
        );
        let mut with = base.clone();
        with.scenario = Some(ScenarioStats::build(
            "s",
            (3, 2, 1, 0),
            &["default".to_string()],
            |_| 0,
            &with.records,
        ));
        assert_ne!(base.digest(), with.digest(), "scenario block is hashed");
        let mut moved = with.clone();
        moved.scenario.as_mut().unwrap().deferred = 7;
        assert_ne!(with.digest(), moved.digest(), "deferred count");
        let mut tenant = with.clone();
        tenant.scenario.as_mut().unwrap().tenants[0].submitted += 1;
        assert_ne!(with.digest(), tenant.digest(), "tenant split");
    }

    #[test]
    fn tenant_split_partitions_the_records() {
        let recs = vec![
            record(0, Phase::Done, 2),
            record(1, Phase::Abandoned, 1),
            record(2, Phase::Done, 4),
        ];
        let names = vec!["even".to_string(), "odd".to_string()];
        let s = ScenarioStats::build("s", (0, 0, 0, 0), &names, |u| u % 2, &recs);
        // All three test records come from user 1 (odd).
        assert_eq!(s.tenants[0].submitted, 0);
        assert_eq!(s.tenants[1].submitted, 3);
        assert_eq!(s.tenants[1].completed_remote, 2);
        assert_eq!(s.tenants[1].abandoned, 1);
        assert_eq!(
            s.tenants.iter().map(|t| t.submitted).sum::<u64>(),
            recs.len() as u64
        );
    }
}
