//! End-to-end offload serving: a TCP client submits requests to an
//! `exec::serve` server backed by the fleet control plane
//! ([`fleet::FleetHandler`]) and verifies the returned checksums
//! against local kernel execution — the full submit → route/admit →
//! execute-for-real → copy-back loop of the paper's platform.

use exec::serve::{serve, submit, OffloadRequest};
use exec::{execute_kernel, SizeClass};
use fleet::FleetHandler;
use workloads::WorkloadKind;

#[test]
fn served_checksums_match_local_execution_for_every_kernel() {
    let mut server = serve("127.0.0.1:0", FleetHandler::new(2, 2, 4)).expect("bind loopback");
    let addr = server.addr();
    for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let req = OffloadRequest {
            kind,
            size: SizeClass::Small,
            seed: 0x2017_0529 + i as u64,
        };
        let resp = submit(addr, &req).expect("round trip");
        assert!(resp.ok, "{}: {}", kind.label(), resp.error);
        assert_eq!(
            resp.checksum,
            execute_kernel(req.kind, req.size, req.seed).checksum,
            "{} served a wrong result",
            kind.label()
        );
        assert!(resp.exec_micros > 0, "{}", kind.label());
        assert_eq!(resp.backend, "real");
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_are_all_served_correctly() {
    let mut server = serve("127.0.0.1:0", FleetHandler::new(3, 2, 8)).expect("bind loopback");
    let addr = server.addr();
    let handles: Vec<_> = (0..8u64)
        .map(|i| {
            std::thread::spawn(move || {
                let kind = WorkloadKind::ALL[(i % 4) as usize];
                let req = OffloadRequest {
                    kind,
                    size: SizeClass::Small,
                    seed: 1000 + i,
                };
                let resp = submit(addr, &req).expect("round trip");
                (req, resp)
            })
        })
        .collect();
    for h in handles {
        let (req, resp) = h.join().expect("client thread");
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(
            resp.checksum,
            execute_kernel(req.kind, req.size, req.seed).checksum
        );
    }
    server.shutdown();
}
