//! Property tests for the fleet control plane (ISSUE PR 4):
//!
//! 1. Migration preserves a container's loaded-app set and its private
//!    upper layer byte-for-byte.
//! 2. The router/admission path never oversubscribes any host's DRAM.
//! 3. Every request reaches a terminal lifecycle phase under arbitrary
//!    fault plans, including whole-host crashes.
//! 4. The sharded engine is bit-identical to the serial engine across
//!    seeds × fault intensities × thread counts.

use containerfs::{FileCategory, FileEntry, LayerStore};
use fleet::{run_fleet, run_fleet_with, EngineMode, FleetConfig};
use hostkernel::HostSpec;
use obsv::Recorder;
use proptest::prelude::*;
use simkit::faults::FaultConfig;
use simkit::{SimDuration, SimTime};
use virt::{migrate, CloudHost, RuntimeClass};
use workloads::WorkloadKind;

/// Snapshot of an upper layer: (path, size, category) triples in path
/// order — byte-for-byte comparable.
fn upper_snapshot(host: &CloudHost, id: virt::InstanceId) -> Vec<(String, u64, FileCategory)> {
    host.instance(id)
        .unwrap()
        .mount
        .as_ref()
        .map(|m| {
            m.upper()
                .iter()
                .map(|(p, e)| (p.to_string(), e.size, e.category))
                .collect()
        })
        .unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint/transfer/restore moves the container's warm state
    /// intact: same loaded apps, same private upper layer, file for
    /// file and byte for byte.
    #[test]
    fn migration_preserves_apps_and_upper_layer(
        apps in prop::collection::btree_set(0usize..4, 0..4),
        files in prop::collection::vec((0u8..24, 1u64..200_000), 0..12),
    ) {
        let mut src = CloudHost::new(HostSpec::paper_server());
        let mut dst = CloudHost::new(HostSpec::paper_server());
        let (id, _) = src.provision(RuntimeClass::CacOptimized).unwrap();
        for &a in &apps {
            let kind = WorkloadKind::ALL[a];
            src.load_app(id, kind.app_id(), kind.profile().app_code_bytes)
                .unwrap();
        }
        // Dirty the private upper layer with offload scratch files.
        let store = LayerStore::new();
        for &(i, size) in &files {
            let inst = src.instance_mut(id).unwrap();
            if let Some(m) = inst.mount.as_mut() {
                m.write(
                    &store,
                    &format!("/data/scratch/f{i}"),
                    FileEntry::new(size, FileCategory::SystemData),
                );
            }
        }
        let apps_before: Vec<String> = src
            .instance(id)
            .unwrap()
            .apps_loaded
            .iter()
            .cloned()
            .collect();
        let upper_before = upper_snapshot(&src, id);

        let receipt = migrate(&mut src, id, &mut dst, 1.25e9, SimTime::ZERO).unwrap();

        let apps_after: Vec<String> = dst
            .instance(receipt.new_id)
            .unwrap()
            .apps_loaded
            .iter()
            .cloned()
            .collect();
        prop_assert_eq!(apps_before, apps_after, "loaded-app set moved intact");
        prop_assert_eq!(
            upper_before,
            upper_snapshot(&dst, receipt.new_id),
            "private upper layer moved byte-for-byte"
        );
        // And the source slot is gone.
        prop_assert!(src.instance(id).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// However the router, warm pools, migrations, and crash recovery
    /// interleave, no host's reserved DRAM ever exceeds its capacity
    /// (provisioning fails closed and the request queues instead).
    #[test]
    fn fleet_never_oversubscribes_host_memory(
        seed in any::<u64>(),
        hosts in 1usize..4,
        users in 4u32..24,
        capacity in 2usize..20,
        intensity in 0.0f64..2.0,
    ) {
        let mut cfg = FleetConfig::paper_default(hosts, seed);
        cfg.traffic.users = users;
        cfg.traffic.duration = SimDuration::from_secs(900);
        cfg.admission_capacity = capacity;
        cfg.faults = FaultConfig::scaled(intensity);
        let rep = run_fleet(&cfg);
        for (i, h) in rep.hosts.iter().enumerate() {
            prop_assert!(
                h.peak_memory <= h.memory_bytes,
                "host {i}: {} reserved of {}",
                h.peak_memory,
                h.memory_bytes
            );
        }
    }

    /// Every admitted request terminates — served, degraded to the
    /// device, or abandoned — under arbitrary fault plans including
    /// whole-host crashes; nothing is lost or double-counted.
    #[test]
    fn every_request_terminates_under_faults(
        seed in any::<u64>(),
        hosts in 1usize..5,
        users in 4u32..24,
        intensity in 0.0f64..3.0,
    ) {
        let mut cfg = FleetConfig::paper_default(hosts, seed);
        cfg.traffic.users = users;
        cfg.traffic.duration = SimDuration::from_secs(900);
        cfg.faults = FaultConfig::scaled(intensity);
        let rep = run_fleet(&cfg);
        for r in &rep.records {
            prop_assert!(
                r.phase.is_terminal(),
                "request {} ended in non-terminal {:?}",
                r.id,
                r.phase
            );
            prop_assert!(r.finished >= r.arrival);
        }
        prop_assert_eq!(
            rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned,
            rep.summary.submitted,
            "every submitted request is accounted for exactly once"
        );
        // Crash re-routes show up in the records they touched.
        let rerouted: u64 = rep.records.iter().map(|r| r.rerouted as u64).sum();
        prop_assert_eq!(rerouted, rep.control.crash_reroutes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conservative-window parallelism may never leak into results:
    /// whatever the seed, fleet size, and fault intensity, the sharded
    /// engine at 1, 2, and ncores threads reproduces the serial digest
    /// bit for bit.
    #[test]
    fn sharded_engine_is_bit_identical_to_serial(
        seed in any::<u64>(),
        hosts in 1usize..5,
        users in 4u32..24,
        intensity in 0.0f64..2.0,
    ) {
        let mut cfg = FleetConfig::paper_default(hosts, seed);
        cfg.traffic.users = users;
        cfg.traffic.duration = SimDuration::from_secs(900);
        cfg.faults = FaultConfig::scaled(intensity);
        let serial = run_fleet(&cfg);
        let ncores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for threads in [1, 2, ncores] {
            let sharded =
                run_fleet_with(&cfg, Recorder::disabled(), EngineMode::Sharded(threads));
            prop_assert_eq!(
                serial.digest(),
                sharded.digest(),
                "Sharded({}) diverged from Serial at seed {:#x}",
                threads,
                seed
            );
        }
    }
}
