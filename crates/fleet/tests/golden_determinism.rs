//! Golden determinism for the fleet control plane.
//!
//! One canonical 4-host run is pinned by digest, alongside rattrap's
//! six per-platform goldens. Any change to routing, admission,
//! autoscaling, rebalancing, the event engine, or the report layout
//! moves this number — bump it ONLY for an intentional behavioural
//! change, and say so in the commit message.

use fleet::{run_fleet, run_fleet_traced, run_fleet_with, EngineMode, FleetConfig};
use obsv::{Recorder, RecorderConfig};
use simkit::faults::FaultConfig;

/// Same seed the rattrap goldens pin (2017-05-29, Rattrap's IPDPS
/// submission year/date motif).
const GOLDEN_SEED: u64 = 0x2017_0529;

/// Digest of the canonical 4-host run. Regenerated once for the
/// sharded LP engine: cross-host interactions (completion notices,
/// crash/drain control, migration hand-off) now cross a one-window
/// message boundary, which legitimately shifts their timing.
const GOLDEN_FLEET_DIGEST: u64 = 0xc722_c512_a546_9f68;

/// The canonical fleet scenario: four paper servers, a skewed LiveLab
/// day of traffic, mild faults so crash-recovery code is on the golden
/// path, and the standard rebalance policy.
fn canonical() -> FleetConfig {
    let mut cfg = FleetConfig::paper_default(4, GOLDEN_SEED);
    cfg.traffic.users = 200;
    cfg.faults = FaultConfig::scaled(0.5);
    cfg
}

#[test]
fn fleet_golden_digest_is_pinned() {
    let rep = run_fleet(&canonical());
    assert!(rep.summary.submitted > 0, "canonical run serves traffic");
    assert_eq!(
        rep.digest(),
        GOLDEN_FLEET_DIGEST,
        "canonical 4-host fleet digest moved: {:#018x} (submitted={} remote={} \
         crashes={} reroutes={} migrations={})",
        rep.digest(),
        rep.summary.submitted,
        rep.summary.completed_remote,
        rep.control.host_crashes,
        rep.control.crash_reroutes,
        rep.control.migrations_completed,
    );
}

#[test]
fn traced_run_reproduces_the_golden_digest() {
    // Observation must not perturb the run: the traced replay hits the
    // same pinned digest and actually records fleet activity.
    let rec = Recorder::enabled(RecorderConfig::default());
    let rep = run_fleet_traced(&canonical(), rec.clone());
    assert_eq!(rep.digest(), GOLDEN_FLEET_DIGEST);
    let snap = rec.snapshot();
    assert!(!snap.events.is_empty(), "traced run recorded events");
}

#[test]
fn sharded_engine_reproduces_the_golden_digest() {
    // The parallel engine is not allowed to be "close": every thread
    // count must land on the exact pinned digest, traced or not.
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for threads in [1, 2, ncores] {
        let rep = run_fleet_with(
            &canonical(),
            Recorder::disabled(),
            EngineMode::Sharded(threads),
        );
        assert_eq!(
            rep.digest(),
            GOLDEN_FLEET_DIGEST,
            "Sharded({threads}) diverged from the pinned digest"
        );
    }
    let rec = Recorder::enabled(RecorderConfig::default());
    let rep = run_fleet_with(&canonical(), rec.clone(), EngineMode::Sharded(2));
    assert_eq!(rep.digest(), GOLDEN_FLEET_DIGEST);
    assert!(!rec.snapshot().events.is_empty(), "sharded run traced");
}

#[test]
fn neighbouring_seed_diverges() {
    let mut cfg = canonical();
    cfg.seed = GOLDEN_SEED + 1;
    let rep = run_fleet(&cfg);
    assert_ne!(
        rep.digest(),
        GOLDEN_FLEET_DIGEST,
        "digest must be seed-sensitive"
    );
}
