//! Scenario-plane conformance: one pinned golden digest per scenario
//! family (the `golden_determinism.rs` contract extended to
//! adversarial traffic), plus property tests that arbitrary
//! `ScenarioSpec`s — composed with arbitrary FaultPlans — leave every
//! request terminal and conserve the fleet's request accounting.
//!
//! If an intentional engine change moves a digest, regenerate with:
//!
//! ```text
//! cargo test -p fleet --test scenario_conformance -- --nocapture
//! ```
//!
//! and update the constant the failure message prints.

use fleet::{run_fleet, run_fleet_with, EngineMode, FleetConfig, FleetReport};
use obsv::Recorder;
use proptest::prelude::*;
use rattrap::Phase;
use scenario::{PhaseAction, PhaseSpec, ScenarioFamily, ScenarioSpec, TenantSpec};
use simkit::faults::FaultConfig;
use simkit::{SimDuration, SimTime};

/// Same master seed as the fleet golden suite.
const GOLDEN_SEED: u64 = 0x2017_0529;

/// Pinned digests, [`ScenarioFamily::ALL`] order.
const FAMILY_GOLDEN: [(ScenarioFamily, u64); 4] = [
    (ScenarioFamily::FlashCrowd, 0x928f_f3ed_5d0f_a2e1),
    (ScenarioFamily::CorrelatedFailure, 0xc857_65e2_1bec_854b),
    (ScenarioFamily::NoisyNeighbor, 0x8c9b_8334_f499_96c3),
    (ScenarioFamily::InteractionStorm, 0x875f_79ab_0174_557c),
];

/// The canonical small fleet every family golden runs on.
fn base(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::paper_default(3, seed);
    cfg.traffic.users = 48;
    cfg.traffic.duration = SimDuration::from_secs(900);
    cfg
}

/// The canonical spec for one family, sized for the golden fleet.
pub fn family_spec(family: ScenarioFamily) -> ScenarioSpec {
    match family {
        ScenarioFamily::FlashCrowd => {
            ScenarioSpec::flash_crowd(48, 12, SimTime::from_secs(300), SimDuration::from_secs(60))
        }
        ScenarioFamily::CorrelatedFailure => ScenarioSpec::correlated_failure(
            50,
            SimTime::from_secs(200),
            SimDuration::from_secs(120),
        ),
        ScenarioFamily::NoisyNeighbor => ScenarioSpec::noisy_neighbor(1, 2),
        ScenarioFamily::InteractionStorm => ScenarioSpec::interaction_storm(
            240,
            SimTime::from_secs(60),
            SimDuration::from_secs(300),
            55,
        ),
    }
}

fn family_cfg(family: ScenarioFamily) -> FleetConfig {
    let mut cfg = base(GOLDEN_SEED);
    cfg.scenario_plan = Some(family_spec(family));
    if family == ScenarioFamily::CorrelatedFailure {
        // The family composes the radio outage with PR 2's FaultPlan:
        // host crashes land while the cohort radio is down.
        cfg.faults = FaultConfig::scaled(0.5);
    }
    cfg
}

fn assert_conserved(rep: &FleetReport) {
    for r in &rep.records {
        assert!(
            r.phase.is_terminal(),
            "request {} not terminal: {:?}",
            r.id,
            r.phase
        );
    }
    assert_eq!(
        rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned,
        rep.summary.submitted,
        "request accounting must partition submissions"
    );
    let s = rep.scenario.as_ref().expect("scenario runs carry stats");
    assert_eq!(
        s.injected,
        s.submitted + s.suppressed,
        "scenario arrival conservation"
    );
    assert_eq!(
        s.tenants.iter().map(|t| t.submitted).sum::<u64>(),
        rep.summary.submitted,
        "tenant split must partition the run"
    );
    for t in &s.tenants {
        assert_eq!(
            t.completed_remote + t.fallback_local + t.abandoned,
            t.submitted,
            "tenant {} accounting must partition its submissions",
            t.name
        );
    }
}

#[test]
fn family_digests_are_pinned() {
    let mut moved = Vec::new();
    for (family, want) in FAMILY_GOLDEN {
        let rep = run_fleet(&family_cfg(family));
        assert_conserved(&rep);
        if rep.digest() != want {
            moved.push(format!(
                "{}: got {:#018x}, pinned {want:#018x}",
                family.label(),
                rep.digest()
            ));
        }
    }
    assert!(
        moved.is_empty(),
        "family digests moved — if intentional, repin:\n{}",
        moved.join("\n")
    );
}

#[test]
fn every_family_is_serial_sharded_bit_identical() {
    for (family, _) in FAMILY_GOLDEN {
        let cfg = family_cfg(family);
        let serial = run_fleet(&cfg);
        for n in [2usize, 4] {
            let sharded = run_fleet_with(&cfg, Recorder::disabled(), EngineMode::Sharded(n));
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "{}: Sharded({n}) diverged from serial",
                family.label()
            );
        }
    }
}

#[test]
fn flash_crowd_actually_ramps_and_correlated_failure_actually_herds() {
    let quiet = run_fleet(&base(GOLDEN_SEED));
    let crowd = run_fleet(&family_cfg(ScenarioFamily::FlashCrowd));
    assert!(
        crowd.summary.submitted > quiet.summary.submitted * 2,
        "flash crowd must visibly ramp load ({} vs {})",
        crowd.summary.submitted,
        quiet.summary.submitted
    );
    let storm = run_fleet(&family_cfg(ScenarioFamily::CorrelatedFailure));
    let s = storm.scenario.as_ref().unwrap();
    assert!(s.deferred > 0, "the outage must cut uploads mid-flight");
}

#[test]
fn noisy_neighbor_splits_tenants_and_sees_interference() {
    let rep = run_fleet(&family_cfg(ScenarioFamily::NoisyNeighbor));
    let s = rep.scenario.as_ref().unwrap();
    assert_eq!(s.tenants.len(), 2);
    let batch = &s.tenants[0];
    let interactive = &s.tenants[1];
    assert!(batch.submitted > 0 && interactive.submitted > 0);
    assert!(batch.p99_response_s > 0.0 && interactive.p99_response_s > 0.0);
    // Tenancy binds the workload mix: the batch tenant's devices run
    // only the heavy apps, the interactive tenant's only the
    // latency-sensitive ones.
    let heavy = |k: workloads::WorkloadKind| {
        matches!(
            k,
            workloads::WorkloadKind::VirusScan | workloads::WorkloadKind::Linpack
        )
    };
    let spec = family_spec(ScenarioFamily::NoisyNeighbor);
    let driver = scenario::ScenarioDriver::compile(&spec, 48, 0);
    for r in &rep.records {
        assert_eq!(
            heavy(r.kind),
            driver.tenant_of(r.user) == 0,
            "request {} app {:?} does not match its tenant's mix",
            r.id,
            r.kind
        );
    }
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        0u32..24,      // burst users
        200u32..5_000, // burst mean iat ms
        1u8..=100,     // cohort pct
        0usize..4,     // rate arm, mapped below (bias toward hard outages)
        0u32..32,      // containers
        0u8..=100,     // offload pct
        0usize..=2,    // tenancy arm
    )
        .prop_map(
            |(burst, iat, cohort, rate_arm, containers, offload, tenancy)| ScenarioSpec {
                name: "prop".to_string(),
                family: ScenarioFamily::InteractionStorm,
                tenants: match tenancy {
                    0 => Vec::new(),
                    1 => vec![
                        TenantSpec::heavy("b", 1),
                        TenantSpec::latency_sensitive("i", 1),
                    ],
                    _ => vec![
                        TenantSpec::heavy("b", 2),
                        TenantSpec::latency_sensitive("i", 3),
                        TenantSpec {
                            name: "mixed".to_string(),
                            share: 1,
                            mix: [1, 1, 1, 1],
                        },
                    ],
                },
                phases: vec![
                    PhaseSpec {
                        start: SimTime::from_secs(30),
                        duration: SimDuration::from_secs(90),
                        action: PhaseAction::ArrivalBurst {
                            users: burst,
                            mean_iat_ms: iat,
                        },
                    },
                    PhaseSpec {
                        start: SimTime::from_secs(60),
                        duration: SimDuration::from_secs(80),
                        action: PhaseAction::RadioOutage {
                            cohort_pct: cohort,
                            rate_pct: [0u8, 0, 25, 60][rate_arm],
                        },
                    },
                    PhaseSpec {
                        start: SimTime::from_secs(100),
                        duration: SimDuration::from_secs(60),
                        action: PhaseAction::ScriptReplay {
                            containers,
                            gap_ms: 1_100,
                            offload_pct: offload,
                        },
                    },
                ],
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any scenario composed with any fault intensity terminates every
    /// request and conserves both the fleet's and the scenario's
    /// accounting — and stays serial ≡ sharded bit-identical.
    #[test]
    fn arbitrary_scenarios_conserve_accounting_under_faults(
        seed in 0u64..1_000_000,
        fault_arm in 0usize..3,
        spec in arb_spec(),
    ) {
        let mut cfg = base(seed);
        cfg.traffic.users = 24;
        cfg.traffic.duration = SimDuration::from_secs(400);
        cfg.faults = FaultConfig::scaled([0.0, 0.25, 0.75][fault_arm]);
        cfg.scenario_plan = Some(spec);
        let rep = run_fleet(&cfg);
        assert_conserved(&rep);
        let sharded = run_fleet_with(&cfg, Recorder::disabled(), EngineMode::Sharded(2));
        prop_assert_eq!(rep.digest(), sharded.digest(), "serial ≡ sharded");
        // Abandonment is only reachable when the policy abandons.
        if rep.summary.abandoned > 0 {
            prop_assert!(
                rep.records.iter().any(|r| matches!(r.phase, Phase::Abandoned | Phase::Failed))
            );
        }
    }
}
