//! The seed/fault-plan explorer: swarm-test the engines under every
//! auditor, with metamorphic oracles layered on top.
//!
//! Oracles, in the order they run:
//!
//! 1. **Model audits** — the component-level scripts from
//!    [`crate::models`], once per exploration.
//! 2. **Golden gate** (optional, on in the CLI) — the fault-free
//!    metamorphic anchor: the six pinned rattrap digests and the pinned
//!    fleet digest must still hold. A fault-plan intensity of zero is
//!    *defined* to reproduce them.
//! 3. **Swarm samples** — `budget` derived samples, each run twice
//!    (digest stability); traced samples replay untraced, so the
//!    "observation must not perturb" oracle is folded into the same
//!    digest-stability invariant.
//! 4. **Parallel ≡ serial** — a replication stripe computed with the
//!    data-parallel runtime must be bit-identical to the serial loop.

use crate::audit::{fnv1a, Audit};
use crate::harness::{run_model_audits, run_sample};
use crate::invariants::DIGEST_STABILITY;
use crate::sample::Sample;
use rattrap::{run_scenario, PlatformKind, ScenarioConfig};
use rayon::prelude::*;
use workloads::WorkloadKind;

/// The seed the golden tables pin (shared with the repo's golden
/// determinism tests).
pub const GOLDEN_SEED: u64 = 0x2017_0529;

/// The six pinned rattrap digests — `(platform, workload, digest)` at
/// [`GOLDEN_SEED`]; keep in sync with
/// `crates/rattrap/tests/golden_determinism.rs`.
pub const RATTRAP_GOLDEN: &[(PlatformKind, WorkloadKind, u64)] = &[
    (
        PlatformKind::VmBaseline,
        WorkloadKind::Ocr,
        0x6d96c6bde469f110,
    ),
    (
        PlatformKind::RattrapWithout,
        WorkloadKind::Ocr,
        0x256e66f827b2e478,
    ),
    (PlatformKind::Rattrap, WorkloadKind::Ocr, 0x988d5275376ae587),
    (
        PlatformKind::VmBaseline,
        WorkloadKind::ChessGame,
        0x97c8e42d90150c02,
    ),
    (
        PlatformKind::RattrapWithout,
        WorkloadKind::ChessGame,
        0x72954e4daf2737e8,
    ),
    (
        PlatformKind::Rattrap,
        WorkloadKind::ChessGame,
        0x412b19c69fb41ff3,
    ),
];

/// The pinned canonical 4-host fleet digest — keep in sync with
/// `crates/fleet/tests/golden_determinism.rs`.
pub const FLEET_GOLDEN_DIGEST: u64 = 0xc722_c512_a546_9f68;

/// What to explore.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Master seed; the whole swarm derives from it.
    pub seed: u64,
    /// Number of swarm samples.
    pub budget: u32,
    /// Run the golden-digest gate (slow: seven paper-sized runs).
    pub golden_gate: bool,
    /// Run every `n`-th sample through the parallel ≡ serial oracle
    /// (0 disables the stripe).
    pub parallel_stride: u32,
}

impl ExplorerConfig {
    /// The CLI default: gate on, parallel stripe every 16 samples.
    pub fn standard(seed: u64, budget: u32) -> Self {
        ExplorerConfig {
            seed,
            budget,
            golden_gate: true,
            parallel_stride: 16,
        }
    }

    /// The fast profile tests use: no golden gate, sparse stripe.
    pub fn quick(seed: u64, budget: u32) -> Self {
        ExplorerConfig {
            seed,
            budget,
            golden_gate: false,
            parallel_stride: 8,
        }
    }
}

/// One sample whose audit fired, with the evidence.
#[derive(Debug)]
pub struct FailedSample {
    /// The exact point in the search space.
    pub sample: Sample,
    /// What fired.
    pub audit: Audit,
}

/// The outcome of one exploration.
#[derive(Debug)]
pub struct ExplorerReport {
    /// Samples executed.
    pub samples_run: u32,
    /// Samples whose audit fired, in swarm order.
    pub failures: Vec<FailedSample>,
    /// The component-model audit ledger.
    pub model_audit: Audit,
    /// Invariant names evaluated anywhere in the exploration.
    pub invariants_checked: Vec<&'static str>,
    /// Order-sensitive digest over everything observed — two
    /// explorations of the same config must agree bit for bit.
    pub digest: u64,
}

impl ExplorerReport {
    /// `true` when nothing fired anywhere.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.model_audit.is_clean()
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "simcheck: {} samples, {} failing, report digest {:#018x}\n",
            self.samples_run,
            self.failures.len(),
            self.digest
        ));
        out.push_str(&format!(
            "invariants evaluated: {}\n",
            self.invariants_checked.join(", ")
        ));
        for v in self.model_audit.violations() {
            out.push_str(&format!("model: {v}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("sample {}:\n", f.sample.index));
            for v in f.audit.violations() {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// Explore the search space under `cfg`. Deterministic: the same
/// config yields the same report digest, sample for sample.
pub fn explore(cfg: &ExplorerConfig) -> ExplorerReport {
    let mut failures = Vec::new();
    let mut checked = std::collections::BTreeSet::new();
    let mut digest = fnv1a(0xcbf2_9ce4_8422_2325, &cfg.seed.to_le_bytes());

    let model_audit = run_model_audits(cfg.seed);
    checked.extend(model_audit.invariants_checked());
    digest = fnv1a(digest, &model_audit.digest().to_le_bytes());

    let mut golden_audit = Audit::new();
    if cfg.golden_gate {
        audit_golden_gate(&mut golden_audit);
        checked.extend(golden_audit.invariants_checked());
        digest = fnv1a(digest, &golden_audit.digest().to_le_bytes());
        if !golden_audit.is_clean() {
            failures.push(FailedSample {
                // Attribute the gate to a synthetic fault-free sample
                // at the golden seed so a repro bundle can name it.
                sample: golden_sample(),
                audit: golden_audit,
            });
        }
    }

    for index in 0..cfg.budget {
        let sample = Sample::draw(cfg.seed, index);
        let outcome = run_sample(&sample);
        checked.extend(outcome.audit.invariants_checked());
        digest = fnv1a(digest, &outcome.digest.to_le_bytes());
        digest = fnv1a(digest, &outcome.audit.digest().to_le_bytes());

        let mut audit = outcome.audit;
        if cfg.parallel_stride != 0 && index % cfg.parallel_stride == 0 {
            audit_parallel_replications(&sample, &mut audit);
        }
        if !audit.is_clean() {
            checked.extend(audit.invariants_checked());
            failures.push(FailedSample { sample, audit });
        }
    }

    for f in &failures {
        digest = fnv1a(digest, &f.audit.digest().to_le_bytes());
    }

    ExplorerReport {
        samples_run: cfg.budget,
        failures,
        model_audit,
        invariants_checked: checked.into_iter().collect(),
        digest,
    }
}

/// A synthetic sample naming the golden anchor (used to attribute
/// golden-gate failures in repro bundles).
fn golden_sample() -> Sample {
    let mut s = Sample::draw(GOLDEN_SEED, 0);
    s.seed = GOLDEN_SEED;
    s.fault_pct = 0;
    s
}

/// The fault-free metamorphic anchor: every pinned digest must hold.
fn audit_golden_gate(audit: &mut Audit) {
    for &(platform, workload, want) in RATTRAP_GOLDEN {
        let cfg = ScenarioConfig::paper_default(platform.config(), workload, GOLDEN_SEED);
        let got = run_scenario(cfg).digest();
        audit.ensure(
            DIGEST_STABILITY,
            got == want,
            format!("golden {platform:?}/{workload:?}"),
            || format!("pinned digest {want:#018x}, engine produced {got:#018x}"),
        );
    }
    let mut fleet_cfg = fleet::FleetConfig::paper_default(4, GOLDEN_SEED);
    fleet_cfg.traffic.users = 200;
    fleet_cfg.faults = simkit::faults::FaultConfig::scaled(0.5);
    let got = fleet::run_fleet(&fleet_cfg).digest();
    audit.ensure(
        DIGEST_STABILITY,
        got == FLEET_GOLDEN_DIGEST,
        "golden fleet",
        || format!("pinned digest {FLEET_GOLDEN_DIGEST:#018x}, engine produced {got:#018x}"),
    );
    // The sharded engine must hit the same anchor, not merely agree
    // with whatever the serial engine produced today.
    let sharded = fleet::run_fleet_with(
        &fleet_cfg,
        obsv::Recorder::disabled(),
        fleet::EngineMode::Sharded(2),
    )
    .digest();
    audit.ensure(
        DIGEST_STABILITY,
        sharded == FLEET_GOLDEN_DIGEST,
        "golden fleet (sharded)",
        || format!("pinned digest {FLEET_GOLDEN_DIGEST:#018x}, sharded engine produced {sharded:#018x}"),
    );
}

/// Parallel ≡ serial: three replications of the sample's scenario
/// computed on the data-parallel runtime must match the serial loop
/// bit for bit — scheduling must never leak into results.
fn audit_parallel_replications(sample: &Sample, audit: &mut Audit) {
    let configs: Vec<ScenarioConfig> = (0..3)
        .map(|i| {
            let mut s = sample.clone();
            s.seed = s.seed.wrapping_add(i);
            s.scenario_config()
        })
        .collect();
    let serial: Vec<u64> = configs
        .iter()
        .map(|c| run_scenario(c.clone()).digest())
        .collect();
    let parallel: Vec<u64> = configs
        .par_iter()
        .map(|c| run_scenario(c.clone()).digest())
        .collect();
    audit.ensure(
        DIGEST_STABILITY,
        serial == parallel,
        format!("sample {} parallel replications", sample.index),
        || format!("serial digests {serial:x?} != parallel digests {parallel:x?}"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_exploration_is_deterministic_and_clean() {
        let cfg = ExplorerConfig::quick(7, 3);
        let a = explore(&cfg);
        let b = explore(&cfg);
        assert_eq!(a.digest, b.digest, "exploration must be deterministic");
        assert!(a.is_clean(), "{}", a.render());
        assert_eq!(a.samples_run, 3);
    }

    #[test]
    fn parallel_replication_oracle_passes_on_the_real_engine() {
        let sample = Sample::draw(11, 0);
        let mut audit = Audit::new();
        audit_parallel_replications(&sample, &mut audit);
        assert!(audit.is_clean());
    }
}
