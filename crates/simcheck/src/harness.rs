//! Run one sample under every auditor and fold the evidence into a
//! single outcome the explorer (and the minimizer) can compare.

use crate::audit::Audit;
use crate::invariants::{
    audit_backend_inertness, audit_digest_stability, audit_fleet_report, audit_geo_report,
    audit_simulation_report, audit_trace, LifecycleAuditor,
};
use crate::models::{
    audit_code_cache, audit_device_gate, audit_medium, audit_timeline, EngineTimeline, FairLink,
    KernelGate,
};
use crate::sample::{Sample, SampleKind};
use obsv::{Recorder, RecorderConfig, TraceSnapshot};
use rattrap::{AppWarehouse, Simulation};

/// Everything observed about one audited run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The engine's own report digest (first run).
    pub digest: u64,
    /// The merged audit ledger for this sample.
    pub audit: Audit,
    /// The trace, when the sample ran with a recorder attached.
    pub trace: Option<TraceSnapshot>,
}

impl RunOutcome {
    /// `true` when no invariant fired.
    pub fn is_clean(&self) -> bool {
        self.audit.is_clean()
    }
}

/// Run `sample` twice (digest-stability is itself an invariant: the
/// same seed must reproduce the same report bit for bit) under the
/// live lifecycle auditor and the post-run report auditors.
pub fn run_sample(sample: &Sample) -> RunOutcome {
    match sample.kind {
        SampleKind::Rattrap => run_rattrap(sample),
        SampleKind::Fleet => run_fleet_sample(sample),
        SampleKind::Geo => run_geo_sample(sample),
        SampleKind::Scenario => run_scenario_sample(sample),
    }
}

fn recorder_for(sample: &Sample) -> Recorder {
    if sample.traced {
        Recorder::enabled(RecorderConfig::default())
    } else {
        Recorder::disabled()
    }
}

fn run_rattrap(sample: &Sample) -> RunOutcome {
    let cfg = sample.scenario_config();
    let mut audit = Audit::new();

    let lifecycle = LifecycleAuditor::default();
    let rec = recorder_for(sample);
    let mut sim = Simulation::new(cfg.clone());
    sim.set_recorder(rec.clone());
    sim.add_observer(Box::new(lifecycle.clone()));
    let report = sim.run();
    audit.merge(lifecycle.finish());

    let dram = hostkernel::HostSpec::paper_server().memory_bytes;
    audit_simulation_report(&report, dram, &mut audit);

    let trace = if rec.is_enabled() {
        let snap = rec.snapshot();
        audit_trace(&snap, &mut audit);
        Some(snap)
    } else {
        None
    };

    // Same seed, fresh engine: the report must be bit-identical.
    let replay = Simulation::new(cfg.clone()).run();
    audit_digest_stability(
        &format!("rattrap sample {}", sample.index),
        &[report.digest(), replay.digest()],
        &mut audit,
    );

    // Backend seam: the identity Replay backend must be inert.
    let mut with_backend = Simulation::new(cfg);
    with_backend.set_backend(std::sync::Arc::new(exec::ReplayBackend::identity()));
    audit_backend_inertness(
        &format!(
            "rattrap sample {} (modeled ≡ replay-identity)",
            sample.index
        ),
        report.digest(),
        with_backend.run().digest(),
        &mut audit,
    );

    RunOutcome {
        digest: report.digest(),
        audit,
        trace,
    }
}

fn run_fleet_sample(sample: &Sample) -> RunOutcome {
    let cfg = sample.fleet_config();
    let mut audit = Audit::new();

    let rec = recorder_for(sample);
    let report = fleet::run_fleet_traced(&cfg, rec.clone());
    audit_fleet_report(&report, &mut audit);

    let trace = if rec.is_enabled() {
        let snap = rec.snapshot();
        audit_trace(&snap, &mut audit);
        Some(snap)
    } else {
        None
    };

    // Three-way metamorphic oracle: traced serial, untraced serial
    // replay, and the sharded engine at two threads must all agree
    // bit for bit — parallel window execution may never leak into
    // results, under any fault intensity the swarm draws.
    let replay = fleet::run_fleet(&cfg);
    let sharded = fleet::run_fleet_with(&cfg, Recorder::disabled(), fleet::EngineMode::Sharded(2));
    audit_digest_stability(
        &format!("fleet sample {} (serial ≡ replay ≡ sharded)", sample.index),
        &[report.digest(), replay.digest(), sharded.digest()],
        &mut audit,
    );

    // Backend seam, one layer up: identity Replay through every host
    // LP must be inert.
    let with_backend = fleet::run_fleet_backend(
        &cfg,
        Recorder::disabled(),
        fleet::EngineMode::Serial,
        std::sync::Arc::new(exec::ReplayBackend::identity()),
    );
    audit_backend_inertness(
        &format!("fleet sample {} (modeled ≡ replay-identity)", sample.index),
        report.digest(),
        with_backend.digest(),
        &mut audit,
    );

    RunOutcome {
        digest: report.digest(),
        audit,
        trace,
    }
}

/// The scenario stripe: a fleet run under an adversarial scenario
/// plan. Rides the fleet auditors (which pick up the scenario block's
/// arrival-conservation and tenant-isolation invariants when present)
/// plus the serial ≡ sharded metamorphic oracle — adversarial traffic
/// must not open a determinism seam.
fn run_scenario_sample(sample: &Sample) -> RunOutcome {
    let cfg = sample.scenario_fleet_config();
    let mut audit = Audit::new();

    let rec = recorder_for(sample);
    let report = fleet::run_fleet_traced(&cfg, rec.clone());
    audit_fleet_report(&report, &mut audit);

    let trace = if rec.is_enabled() {
        let snap = rec.snapshot();
        audit_trace(&snap, &mut audit);
        Some(snap)
    } else {
        None
    };

    let replay = fleet::run_fleet(&cfg);
    let sharded = fleet::run_fleet_with(&cfg, Recorder::disabled(), fleet::EngineMode::Sharded(2));
    audit_digest_stability(
        &format!(
            "scenario sample {} ({}; serial ≡ replay ≡ sharded)",
            sample.index,
            sample.scenario_family().label()
        ),
        &[report.digest(), replay.digest(), sharded.digest()],
        &mut audit,
    );

    RunOutcome {
        digest: report.digest(),
        audit,
        trace,
    }
}

fn run_geo_sample(sample: &Sample) -> RunOutcome {
    let cfg = sample.geo_config();
    let mut audit = Audit::new();

    let rec = recorder_for(sample);
    let report = geo::run_geo_traced(&cfg, rec.clone());
    audit_geo_report(&report, &mut audit);

    let trace = if rec.is_enabled() {
        let snap = rec.snapshot();
        audit_trace(&snap, &mut audit);
        Some(snap)
    } else {
        None
    };

    // Same three-way metamorphic oracle as the fleet stripe, one layer
    // up: traced serial, untraced serial replay, and the sharded
    // engine must agree bit for bit across the whole topology.
    let replay = geo::run_geo(&cfg);
    let sharded = geo::run_geo_with(&cfg, Recorder::disabled(), geo::EngineMode::Sharded(2));
    audit_digest_stability(
        &format!("geo sample {} (serial ≡ replay ≡ sharded)", sample.index),
        &[report.digest(), replay.digest(), sharded.digest()],
        &mut audit,
    );

    // Backend seam across the whole topology: identity Replay through
    // every edge and core host must be inert.
    let with_backend = geo::run_geo_backend(
        &cfg,
        Recorder::disabled(),
        geo::EngineMode::Serial,
        std::sync::Arc::new(exec::ReplayBackend::identity()),
    );
    audit_backend_inertness(
        &format!("geo sample {} (modeled ≡ replay-identity)", sample.index),
        report.digest(),
        with_backend.digest(),
        &mut audit,
    );

    RunOutcome {
        digest: report.digest(),
        audit,
        trace,
    }
}

/// Run the component-model audits (shared link vs the fair-share
/// closed form, ENODEV gating, warehouse shadow model, event-queue
/// ordering) — the invariants no single scenario run can exercise as
/// sharply as a dedicated seeded script.
pub fn run_model_audits(seed: u64) -> Audit {
    let mut audit = Audit::new();
    audit_medium(FairLink::new, seed ^ 0x11, 6, &mut audit);
    audit_device_gate(&mut KernelGate::new(), seed ^ 0x22, 120, &mut audit);
    audit_code_cache(
        // Large capacity: the shadow model is exact only below the
        // eviction threshold, which its script stays well under.
        &mut AppWarehouse::new(64 * 1024 * 1024),
        seed ^ 0x33,
        160,
        &mut audit,
    );
    audit_timeline(&mut EngineTimeline::default(), seed ^ 0x44, 96, &mut audit);
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_audits_are_clean_on_the_real_components() {
        let audit = run_model_audits(0xC0FFEE);
        assert!(
            audit.is_clean(),
            "model audits fired on production components:\n{}",
            audit
                .violations()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // All four model invariants actually ran.
        let checked: Vec<_> = audit.invariants_checked().collect();
        for inv in [
            crate::invariants::LINK_CONSERVATION,
            crate::invariants::ENODEV_GATE,
            crate::invariants::WAREHOUSE_CONSISTENCY,
            crate::invariants::EVENT_MONOTONICITY,
        ] {
            assert!(checked.contains(&inv), "{inv} never evaluated");
        }
    }

    #[test]
    fn a_small_clean_sample_passes_every_auditor() {
        let mut s = Sample::draw(42, 0);
        s.fault_pct = 0;
        s.traced = true;
        let outcome = run_sample(&s);
        assert!(
            outcome.is_clean(),
            "clean sample produced violations:\n{}",
            outcome
                .audit
                .violations()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(outcome.trace.is_some());
    }
}
