//! simcheck — a deterministic model-checking harness for the whole
//! simulation stack.
//!
//! Three pillars, mirroring how a model checker earns trust:
//!
//! 1. **Invariant auditor** ([`invariants`], [`audit`]) — ~a dozen
//!    named cross-layer invariants checked live (a [`rattrap::PhaseObserver`]
//!    watching every lifecycle transition) and post-run (report,
//!    fleet, and trace auditors), plus component-model audits
//!    ([`models`]) that drive the shared link, the kernel's module
//!    gate, the App Warehouse, and the event queue against independent
//!    reference models.
//! 2. **Explorer** ([`explorer`], the `simcheck_explore` binary) —
//!    swarm testing over derived seeds × fault-plan intensities ×
//!    config mutations, with metamorphic oracles: a fault intensity of
//!    zero must reproduce the pinned golden digests, tracing must not
//!    perturb a run, and parallel replications must be bit-identical
//!    to serial ones.
//! 3. **Minimizer** ([`minimize`], [`repro`]) — greedy bounded delta
//!    debugging over a failing sample's integer knobs, accepting a
//!    shrink only when the *same* invariant still fires, then writing
//!    a replayable repro bundle (config JSON, Chrome trace, causal
//!    request timeline) under `results/repros/`.
//!
//! Everything is deterministic: the same `--seed`/`--budget` produces
//! the same samples, the same violations, and the same report digest —
//! that property is itself pinned by `tests/explorer_determinism.rs`.

pub mod audit;
pub mod explorer;
pub mod harness;
pub mod invariants;
pub mod minimize;
pub mod models;
pub mod repro;
pub mod sample;

pub use audit::{Audit, Violation};
pub use explorer::{explore, ExplorerConfig, ExplorerReport, FailedSample};
pub use harness::{run_model_audits, run_sample, RunOutcome};
pub use invariants::{
    audit_digest_stability, audit_fleet_report, audit_geo_report, audit_simulation_report,
    audit_trace, LifecycleAuditor, CATALOGUE,
};
pub use minimize::{minimize, Minimized};
pub use repro::{replay, write_bundle};
pub use sample::{Sample, SampleKind};
