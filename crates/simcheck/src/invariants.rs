//! The concrete cross-layer invariant catalogue.
//!
//! Each invariant has a stable kebab-case name; [`CATALOGUE`] is the
//! full list the explorer must exercise. Three kinds of checker feed
//! the same [`Audit`] ledger:
//!
//! - **live**: [`LifecycleAuditor`] rides a rattrap run as a
//!   [`PhaseObserver`], validating every phase edge as it happens;
//! - **post-run**: [`audit_simulation_report`] / [`audit_fleet_report`]
//!   check conservation laws on the finished report;
//! - **trace**: [`audit_trace`] checks span-tree well-formedness on an
//!   obsv snapshot.
//!
//! The model-based invariants (shared-link conservation, ENODEV
//! gating, warehouse hints, event-queue monotonicity) live in
//! [`crate::models`].

use crate::audit::Audit;
use fleet::FleetReport;
use obsv::{SpanId, TraceEvent, TraceSnapshot};
use rattrap::{Phase, PhaseObserver, RequestRecord, SimulationReport};
use simkit::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Every invariant the harness knows, in catalogue order.
pub const CATALOGUE: &[&str] = &[
    LIFECYCLE_MONOTONE,
    LIFECYCLE_TERMINAL,
    WORK_CONSERVATION,
    BYTE_CONSERVATION,
    MEMORY_BOUND,
    FLEET_ACCOUNTING,
    LINK_CONSERVATION,
    ENODEV_GATE,
    WAREHOUSE_CONSISTENCY,
    GEO_MIGRATION_CONSERVATION,
    GEO_SINGLE_ADMISSION,
    SPAN_TREE,
    EVENT_MONOTONICITY,
    DIGEST_STABILITY,
    BACKEND_INERTNESS,
    SCENARIO_ARRIVAL_CONSERVATION,
    TENANT_ISOLATION_ACCOUNTING,
];

/// Phase transitions are monotone: edges chain (`from` equals the
/// previous `to`), time never runs backwards, and nothing leaves a
/// terminal phase.
pub const LIFECYCLE_MONOTONE: &str = "lifecycle-monotone";
/// Every request observed in flight reaches a terminal [`Phase`].
pub const LIFECYCLE_TERMINAL: &str = "lifecycle-terminal";
/// Served work equals submitted work: each record's phase breakdown
/// sums to its response time (within µs rounding).
pub const WORK_CONSERVATION: &str = "work-conservation";
/// Byte accounting is consistent per request and with the warehouse.
pub const BYTE_CONSERVATION: &str = "byte-conservation";
/// Host DRAM is never oversubscribed — rattrap peak and every fleet
/// host's peak stay within physical memory.
pub const MEMORY_BOUND: &str = "memory-bound";
/// Fleet conservation: completed + fallback + abandoned == submitted,
/// and migrations out == migrations in.
pub const FLEET_ACCOUNTING: &str = "fleet-accounting";
/// SharedLink conserves bytes: charged == delivered + reversed on
/// interruption, against the closed-form fair-share model.
pub const LINK_CONSERVATION: &str = "link-conservation";
/// Device access succeeds iff the providing module is resident
/// (`ENODEV` exactly when unloaded).
pub const ENODEV_GATE: &str = "enodev-gate";
/// Warehouse CID hints only name containers actually warm (noted
/// loaded, never invalidated), and its stats match a shadow model.
pub const WAREHOUSE_CONSISTENCY: &str = "warehouse-consistency";
/// Cross-region migration conserves container state byte for byte:
/// what the source serialized equals what the WAN fabric was charged
/// equals what the destination measured while restoring. Orphaned
/// moves (destination drained mid-flight) must land nothing.
pub const GEO_MIGRATION_CONSERVATION: &str = "geo-migration-conservation";
/// No request is ever admitted twice across regions: however routing
/// spills clockwise under saturation, a request holds at most one
/// admission slot at a time.
pub const GEO_SINGLE_ADMISSION: &str = "geo-single-admission";
/// Span-tree well-formedness: every span closed, end ≥ begin, parents
/// open before children.
pub const SPAN_TREE: &str = "span-tree";
/// The event queue pops in (time, insertion) order and cancelled
/// events never fire — slot-generation monotonicity at the engine
/// root.
pub const EVENT_MONOTONICITY: &str = "event-monotonicity";
/// Two same-seed runs in one process produce identical digests.
pub const DIGEST_STABILITY: &str = "digest-stability";
/// Swapping the default `Modeled` compute backend for
/// `Replay(identity)` is inert: the report digest must not move
/// (`modeled × 1.0` is exact in IEEE arithmetic, so any divergence
/// means the backend seam leaked into engine state).
pub const BACKEND_INERTNESS: &str = "backend-inertness";
/// The scenario plane loses nothing: every compiled scripted event is
/// either submitted to the engine or deliberately suppressed
/// (device-local touches), so `injected == submitted + suppressed`.
pub const SCENARIO_ARRIVAL_CONSERVATION: &str = "scenario-arrival-conservation";
/// Per-tenant accounting partitions the run: tenant `submitted` sums
/// to the fleet total, and each tenant's terminal split partitions its
/// own submissions — no request is double-billed or unbilled.
pub const TENANT_ISOLATION_ACCOUNTING: &str = "tenant-isolation-accounting";

/// Tolerance for µs-rounded phase bookkeeping: each of the ~6 phase
/// buckets rounds independently, so allow a handful of microseconds.
const PHASE_SUM_SLACK: SimDuration = SimDuration::from_micros(64);

// ---------------------------------------------------------------------
// Live auditor
// ---------------------------------------------------------------------

/// A [`PhaseObserver`] that validates every lifecycle edge live and
/// checks terminal coverage at the end of the run.
///
/// Cloneable handle pattern: attach `Box::new(auditor.clone())` to the
/// simulation, keep the original, and call [`LifecycleAuditor::finish`]
/// after `run()` to collect the ledger.
#[derive(Clone, Default)]
pub struct LifecycleAuditor {
    state: Rc<RefCell<LifecycleState>>,
}

#[derive(Default)]
struct LifecycleState {
    audit: Audit,
    /// request id → (last phase entered, instant it was entered).
    last: BTreeMap<u64, (Phase, SimTime)>,
}

impl LifecycleAuditor {
    /// A fresh auditor with an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Close the ledger: every request still mid-flight is a
    /// terminal-coverage violation. Consumes this handle's view.
    pub fn finish(&self) -> Audit {
        let mut st = self.state.borrow_mut();
        st.audit.checked(LIFECYCLE_TERMINAL);
        let stuck: Vec<(u64, Phase)> = st
            .last
            .iter()
            .filter(|(_, (p, _))| !p.is_terminal())
            .map(|(&id, &(p, _))| (id, p))
            .collect();
        for (id, p) in stuck {
            st.audit.fail(
                LIFECYCLE_TERMINAL,
                format!("request {id}"),
                format!("run ended with the request still in {p:?}"),
            );
        }
        std::mem::take(&mut st.audit)
    }
}

impl PhaseObserver for LifecycleAuditor {
    fn on_transition(
        &mut self,
        record: &RequestRecord,
        from: Phase,
        to: Phase,
        _dwell: SimDuration,
        now: SimTime,
    ) {
        let mut st = self.state.borrow_mut();
        st.audit.checked(LIFECYCLE_MONOTONE);
        if let Some(&(prev, at)) = st.last.get(&record.id) {
            if prev.is_terminal() {
                st.audit.fail(
                    LIFECYCLE_MONOTONE,
                    format!("request {}", record.id),
                    format!("transition {from:?} → {to:?} after terminal {prev:?}"),
                );
            }
            if prev != from {
                st.audit.fail(
                    LIFECYCLE_MONOTONE,
                    format!("request {}", record.id),
                    format!("edge {from:?} → {to:?} does not chain from {prev:?}"),
                );
            }
            if now < at {
                st.audit.fail(
                    LIFECYCLE_MONOTONE,
                    format!("request {}", record.id),
                    format!("clock ran backwards: {at} then {now}"),
                );
            }
        }
        st.last.insert(record.id, (to, now));
    }
}

// ---------------------------------------------------------------------
// Post-run report audits
// ---------------------------------------------------------------------

/// Conservation checks on a finished rattrap run. `dram_bytes` is the
/// serving host's physical memory (the [`MEMORY_BOUND`] ceiling).
pub fn audit_simulation_report(report: &SimulationReport, dram_bytes: u64, audit: &mut Audit) {
    audit.ensure(
        MEMORY_BOUND,
        report.peak_memory_bytes <= dram_bytes,
        "host",
        || {
            format!(
                "peak memory {} exceeds DRAM {}",
                report.peak_memory_bytes, dram_bytes
            )
        },
    );

    let mut fallbacks = 0u64;
    let mut abandoned = 0u64;
    for r in &report.requests {
        let subject = format!("request {}", r.id);
        // Served work == submitted work: the phase buckets partition
        // the response time exactly (µs-rounding slack only).
        let total = r.phases.total();
        let resp = r.response_time();
        let drift = if total > resp {
            total - resp
        } else {
            resp - total
        };
        audit.ensure(
            WORK_CONSERVATION,
            drift <= PHASE_SUM_SLACK,
            &subject,
            || format!("phase sum {total} vs response time {resp} (drift {drift})"),
        );

        // Byte accounting per request.
        audit.ensure(
            BYTE_CONSERVATION,
            r.code_transferred == (r.code_bytes_sent > 0),
            &subject,
            || {
                format!(
                    "code_transferred={} but code_bytes_sent={}",
                    r.code_transferred, r.code_bytes_sent
                )
            },
        );
        // On the first attempt an affinity hit and a code push are
        // mutually exclusive; retries may re-place onto a cold
        // container and legitimately add code bytes afterwards.
        if r.cid_affinity_hit && r.retries == 0 {
            audit.ensure(BYTE_CONSERVATION, r.code_bytes_sent == 0, &subject, || {
                format!(
                    "CID-affinity hit still sent {} code bytes",
                    r.code_bytes_sent
                )
            });
        }
        if r.executed_locally {
            audit.ensure(
                BYTE_CONSERVATION,
                r.upload_bytes == 0 && r.download_bytes == 0,
                &subject,
                || {
                    format!(
                        "locally-executed request moved up={} down={} bytes",
                        r.upload_bytes, r.download_bytes
                    )
                },
            );
        } else if !(r.fell_back_local || r.abandoned) {
            // Fallback/abandoned records may retain bytes from partial
            // attempts; a successful cloud round-trip must move both
            // directions.
            audit.ensure(
                BYTE_CONSERVATION,
                r.upload_bytes > 0 && r.download_bytes > 0,
                &subject,
                || {
                    format!(
                        "cloud-served request moved up={} down={} bytes",
                        r.upload_bytes, r.download_bytes
                    )
                },
            );
        }
        fallbacks += r.fell_back_local as u64;
        abandoned += r.abandoned as u64;
    }

    // Fault-plane accounting agrees with the per-request flags.
    audit.ensure(
        BYTE_CONSERVATION,
        report.fault_stats.fallbacks == fallbacks && report.fault_stats.abandoned == abandoned,
        "fault_stats",
        || {
            format!(
                "stats say fallbacks={} abandoned={}, records say {}/{}",
                report.fault_stats.fallbacks, report.fault_stats.abandoned, fallbacks, abandoned
            )
        },
    );
    // The warehouse cannot save bytes without a hit.
    let ws = &report.warehouse_stats;
    audit.ensure(
        BYTE_CONSERVATION,
        ws.hits > 0 || ws.bytes_saved == 0,
        "warehouse",
        || format!("{} bytes saved with zero hits", ws.bytes_saved),
    );
}

/// Conservation checks on a finished fleet run.
pub fn audit_fleet_report(report: &FleetReport, audit: &mut Audit) {
    let s = &report.summary;
    audit.ensure(
        FLEET_ACCOUNTING,
        s.completed_remote + s.fallback_local + s.abandoned == s.submitted,
        "summary",
        || {
            format!(
                "remote {} + fallback {} + abandoned {} != submitted {}",
                s.completed_remote, s.fallback_local, s.abandoned, s.submitted
            )
        },
    );
    audit.ensure(
        FLEET_ACCOUNTING,
        report.records.len() as u64 == s.submitted,
        "records",
        || {
            format!(
                "{} records for {} submitted requests",
                report.records.len(),
                s.submitted
            )
        },
    );
    for r in &report.records {
        audit.ensure(
            FLEET_ACCOUNTING,
            r.phase.is_terminal(),
            format!("request {}", r.id),
            || format!("record finalized in non-terminal {:?}", r.phase),
        );
    }
    let (out, inn) = report.hosts.iter().fold((0u64, 0u64), |(o, i), h| {
        (o + h.migrations_out, i + h.migrations_in)
    });
    audit.ensure(FLEET_ACCOUNTING, out == inn, "migrations", || {
        format!("{out} containers left hosts but {inn} arrived")
    });
    for (i, h) in report.hosts.iter().enumerate() {
        audit.ensure(
            MEMORY_BOUND,
            h.peak_memory <= h.memory_bytes,
            format!("host {i}"),
            || {
                format!(
                    "peak memory {} exceeds DRAM {}",
                    h.peak_memory, h.memory_bytes
                )
            },
        );
    }
    if let Some(sc) = &report.scenario {
        audit_scenario_stats(sc, s.submitted, audit);
    }
}

/// Conservation checks on a fleet run's scenario block: arrival
/// conservation and per-tenant isolation accounting.
pub fn audit_scenario_stats(sc: &fleet::ScenarioStats, fleet_submitted: u64, audit: &mut Audit) {
    audit.ensure(
        SCENARIO_ARRIVAL_CONSERVATION,
        sc.injected == sc.submitted + sc.suppressed,
        format!("scenario {}", sc.name),
        || {
            format!(
                "injected {} != submitted {} + suppressed {}",
                sc.injected, sc.submitted, sc.suppressed
            )
        },
    );
    audit.checked(TENANT_ISOLATION_ACCOUNTING);
    let tenant_total: u64 = sc.tenants.iter().map(|t| t.submitted).sum();
    if tenant_total != fleet_submitted {
        audit.fail(
            TENANT_ISOLATION_ACCOUNTING,
            format!("scenario {}", sc.name),
            format!(
                "tenant submissions sum to {tenant_total} but the fleet served {fleet_submitted}"
            ),
        );
    }
    for t in &sc.tenants {
        audit.ensure(
            TENANT_ISOLATION_ACCOUNTING,
            t.completed_remote + t.fallback_local + t.abandoned == t.submitted,
            format!("tenant {}", t.name),
            || {
                format!(
                    "remote {} + fallback {} + abandoned {} != submitted {}",
                    t.completed_remote, t.fallback_local, t.abandoned, t.submitted
                )
            },
        );
    }
}

/// Conservation checks on a finished geo run: the fleet-style
/// accounting laws, plus the two geo-specific invariants — migration
/// byte conservation across the WAN fabric and single admission under
/// cross-region spillover.
pub fn audit_geo_report(report: &geo::GeoReport, audit: &mut Audit) {
    let s = &report.summary;
    audit.ensure(
        FLEET_ACCOUNTING,
        s.completed_remote + s.fallback_local + s.abandoned == s.submitted,
        "geo summary",
        || {
            format!(
                "remote {} + fallback {} + abandoned {} != submitted {}",
                s.completed_remote, s.fallback_local, s.abandoned, s.submitted
            )
        },
    );
    audit.ensure(
        FLEET_ACCOUNTING,
        report.records.len() as u64 == s.submitted,
        "geo records",
        || {
            format!(
                "{} records for {} submitted requests",
                report.records.len(),
                s.submitted
            )
        },
    );
    for r in &report.records {
        audit.ensure(
            FLEET_ACCOUNTING,
            r.phase.is_terminal(),
            format!("geo request {}", r.id),
            || format!("record finalized in non-terminal {:?}", r.phase),
        );
    }
    for (i, h) in report.hosts.iter().enumerate() {
        audit.ensure(
            MEMORY_BOUND,
            h.peak_memory <= h.memory_bytes,
            format!("geo host {i}"),
            || {
                format!(
                    "peak memory {} exceeds DRAM {}",
                    h.peak_memory, h.memory_bytes
                )
            },
        );
    }

    // Migration byte conservation, end to end: source serialization ==
    // fabric charge == destination restore, and an orphaned move lands
    // nothing.
    let c = &report.control;
    for (i, m) in report.migrations.iter().enumerate() {
        let subject = format!("migration {i} ({} → {})", m.from_host, m.to_host);
        audit.ensure(
            GEO_MIGRATION_CONSERVATION,
            m.bytes_wire == m.bytes_src,
            &subject,
            || {
                format!(
                    "source serialized {} bytes but the fabric carried {}",
                    m.bytes_src, m.bytes_wire
                )
            },
        );
        if m.completed {
            audit.ensure(
                GEO_MIGRATION_CONSERVATION,
                m.bytes_dst == m.bytes_src,
                &subject,
                || {
                    format!(
                        "source serialized {} bytes but the destination restored {}",
                        m.bytes_src, m.bytes_dst
                    )
                },
            );
        } else {
            audit.ensure(
                GEO_MIGRATION_CONSERVATION,
                m.bytes_dst == 0,
                &subject,
                || format!("orphaned move still landed {} bytes", m.bytes_dst),
            );
        }
    }
    let completed = report.migrations.iter().filter(|m| m.completed).count() as u64;
    let landed: u64 = report
        .migrations
        .iter()
        .filter(|m| m.completed)
        .map(|m| m.bytes_dst)
        .sum();
    audit.ensure(
        GEO_MIGRATION_CONSERVATION,
        c.migrations_started == report.migrations.len() as u64
            && c.migrations_completed == completed
            && c.migration_bytes == landed,
        "geo migration ledger",
        || {
            format!(
                "control says {}/{} moves and {} bytes, records say {}/{} and {}",
                c.migrations_started,
                c.migrations_completed,
                c.migration_bytes,
                report.migrations.len(),
                completed,
                landed
            )
        },
    );
    let (out, inn) = report.hosts.iter().fold((0u64, 0u64), |(o, i), h| {
        (o + h.migrations_out, i + h.migrations_in)
    });
    audit.ensure(
        GEO_MIGRATION_CONSERVATION,
        out == completed && inn == completed,
        "geo host migration counters",
        || format!("{completed} moves completed but hosts recorded {out} out / {inn} in"),
    );

    // Single admission: the engine counts any request that acquired a
    // second slot while still holding one; spillover must never do it.
    audit.ensure(
        GEO_SINGLE_ADMISSION,
        c.double_admissions == 0,
        "geo admission",
        || {
            format!(
                "{} requests held two admission slots at once",
                c.double_admissions
            )
        },
    );
    for r in &report.records {
        if r.phase == rattrap::Phase::Done && !r.fell_back {
            audit.ensure(
                GEO_SINGLE_ADMISSION,
                r.cell.is_some() && r.host.is_some(),
                format!("geo request {}", r.id),
                || "remotely completed without a recorded placement".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Trace audit
// ---------------------------------------------------------------------

/// Span-tree well-formedness over an obsv snapshot. Skipped when the
/// ring dropped events (a truncated tree is legitimately ragged).
pub fn audit_trace(snap: &TraceSnapshot, audit: &mut Audit) {
    audit.checked(SPAN_TREE);
    if snap.dropped > 0 {
        return;
    }
    // span id → (begin instant, closed?)
    let mut open: BTreeMap<SpanId, (u64, bool)> = BTreeMap::new();
    for ev in &snap.events {
        match *ev {
            TraceEvent::Begin {
                id, parent, at_us, ..
            } => {
                if open.insert(id, (at_us, false)).is_some() {
                    audit.fail(
                        SPAN_TREE,
                        format!("span {}", id.0),
                        "span id opened twice".to_string(),
                    );
                }
                if parent.is_some() {
                    match open.get(&parent) {
                        None => audit.fail(
                            SPAN_TREE,
                            format!("span {}", id.0),
                            format!("parent {} opened after child (or never)", parent.0),
                        ),
                        Some(&(p_at, closed)) => {
                            if closed {
                                audit.fail(
                                    SPAN_TREE,
                                    format!("span {}", id.0),
                                    format!("parent {} already closed", parent.0),
                                );
                            }
                            if p_at > at_us {
                                audit.fail(
                                    SPAN_TREE,
                                    format!("span {}", id.0),
                                    format!("child began {at_us}µs before parent {p_at}µs"),
                                );
                            }
                        }
                    }
                }
            }
            TraceEvent::End { id, at_us, .. } => match open.get_mut(&id) {
                None => audit.fail(
                    SPAN_TREE,
                    format!("span {}", id.0),
                    "end without begin".to_string(),
                ),
                Some(entry) => {
                    if entry.1 {
                        audit.fail(
                            SPAN_TREE,
                            format!("span {}", id.0),
                            "span closed twice".to_string(),
                        );
                    }
                    if at_us < entry.0 {
                        audit.fail(
                            SPAN_TREE,
                            format!("span {}", id.0),
                            format!("ended at {at_us}µs before it began at {}µs", entry.0),
                        );
                    }
                    entry.1 = true;
                }
            },
            TraceEvent::Instant { .. } => {}
        }
    }
    for (id, (at, closed)) in &open {
        if !closed {
            audit.fail(
                SPAN_TREE,
                format!("span {}", id.0),
                format!("never closed (opened at {at}µs)"),
            );
        }
    }
}

/// The same-seed digest-divergence invariant (satellite of the
/// determinism-hazard fix): every digest from repeated in-process runs
/// of one configuration must be identical.
/// The compute-backend inertness invariant: the identity `Replay`
/// backend must reproduce the `Modeled` digest bit for bit.
pub fn audit_backend_inertness(context: &str, modeled: u64, replay: u64, audit: &mut Audit) {
    audit.checked(BACKEND_INERTNESS);
    if modeled != replay {
        audit.fail(
            BACKEND_INERTNESS,
            context.to_string(),
            format!("modeled digest {modeled:#018x} != identity-replay digest {replay:#018x}"),
        );
    }
}

pub fn audit_digest_stability(context: &str, digests: &[u64], audit: &mut Audit) {
    audit.checked(DIGEST_STABILITY);
    if let Some(&first) = digests.first() {
        if digests.iter().any(|&d| d != first) {
            audit.fail(
                DIGEST_STABILITY,
                context.to_string(),
                format!(
                    "same-seed digests diverged: {:?}",
                    digests
                        .iter()
                        .map(|d| format!("{d:#018x}"))
                        .collect::<Vec<_>>()
                ),
            );
        }
    }
}
