//! Model-based audits: seeded scripts drive a component alongside an
//! independent reference model (closed-form fair sharing, a shadow
//! cache, a sorted replay), and any disagreement is a violation.
//!
//! Every audit is generic over a small trait so the planted-bug tests
//! can substitute a deliberately lying implementation and watch the
//! auditor fire; production code always audits the real component via
//! the provided adapters.

use crate::audit::Audit;
use crate::invariants::{
    ENODEV_GATE, EVENT_MONOTONICITY, LINK_CONSERVATION, WAREHOUSE_CONSISTENCY,
};
use hostkernel::{DeviceKind, HostSpec, Kernel, KernelError};
use netsim::SharedLink;
use rattrap::{aid_of, Aid, AppWarehouse};
use simkit::{EventQueue, JobId, SimRng, SimTime};
use virt::InstanceId;

// ---------------------------------------------------------------------
// Shared-link byte conservation
// ---------------------------------------------------------------------

/// A contended byte medium under audit.
pub trait Medium {
    /// Start a transfer of `bytes` tagged `tag` at `now`.
    fn begin(&mut self, now: SimTime, bytes: u64, tag: u32);
    /// Interrupt the transfer tagged `tag`; bytes NOT yet delivered.
    fn interrupt(&mut self, now: SimTime, tag: u32) -> Option<f64>;
    /// Drive to quiescence; completions as `(finish, tag)`.
    fn drain(&mut self) -> Vec<(SimTime, u32)>;
}

/// The real [`SharedLink`] behind the [`Medium`] trait.
pub struct FairLink {
    link: SharedLink<u32>,
    queue: EventQueue<u64>,
    jobs: Vec<(u32, JobId)>,
}

impl FairLink {
    /// A link of `capacity_bps` aggregate bandwidth, no per-flow cap.
    pub fn new(capacity_bps: f64) -> Self {
        FairLink {
            link: SharedLink::new(capacity_bps, capacity_bps),
            queue: EventQueue::new(),
            jobs: Vec::new(),
        }
    }
}

impl Medium for FairLink {
    fn begin(&mut self, now: SimTime, bytes: u64, tag: u32) {
        let job = self.link.begin_transfer(now, bytes, tag);
        self.jobs.push((tag, job));
        self.link.reschedule(now, &mut self.queue, |e| e);
    }

    fn interrupt(&mut self, now: SimTime, tag: u32) -> Option<f64> {
        let job = self.jobs.iter().find(|(t, _)| *t == tag)?.1;
        let (_, remaining) = self.link.interrupt(now, job)?;
        self.link.reschedule(now, &mut self.queue, |e| e);
        Some(remaining)
    }

    fn drain(&mut self) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some((now, epoch)) = self.queue.pop() {
            if let Some(done) = self.link.poll(now, epoch) {
                out.extend(done.into_iter().map(|(_, tag)| (now, tag)));
                self.link.reschedule(now, &mut self.queue, |e| e);
            }
        }
        out
    }
}

/// Audit byte conservation on a fair-shared medium against the
/// closed-form model: `flows` equal transfers of `bytes` starting
/// together each get `capacity/flows`; interrupting one at `t_cut`
/// must report exactly `bytes - (capacity/flows)·t_cut` bytes
/// reversed, and the survivors — whose share rises — finish when the
/// remaining work drains at the new rate. Charged == delivered +
/// reversed, job by job.
pub fn audit_medium<M: Medium>(make: impl Fn(f64) -> M, seed: u64, rounds: u32, audit: &mut Audit) {
    let mut rng = SimRng::new(seed);
    for round in 0..rounds {
        let capacity = 250_000.0 * rng.uniform_u64(2, 16) as f64;
        let flows = rng.uniform_u64(2, 5) as u32;
        let bytes = rng.uniform_u64(200_000, 2_000_000);
        let mut m = make(capacity);
        for tag in 0..flows {
            m.begin(SimTime::ZERO, bytes, tag);
        }
        // Cut flow 0 somewhere strictly inside its fair-share lifetime.
        let full_span = flows as f64 * bytes as f64 / capacity;
        let t_cut = SimTime::from_secs_f64(full_span * rng.uniform(0.15, 0.85));
        let share = capacity / flows as f64;
        let expect_reversed = bytes as f64 - share * t_cut.as_secs_f64();
        let subject = format!("round {round} (c={capacity} n={flows} b={bytes})");

        match m.interrupt(t_cut, 0) {
            None => audit.fail(
                LINK_CONSERVATION,
                subject.clone(),
                "in-flight transfer not interruptible".to_string(),
            ),
            Some(reversed) => {
                // Conservation: delivered + reversed == charged, where
                // delivered is what the fair-share model says crossed.
                let tol = (bytes as f64).max(1.0) * 1e-6 + capacity * 2e-6;
                audit.ensure(
                    LINK_CONSERVATION,
                    (reversed - expect_reversed).abs() <= tol,
                    subject.clone(),
                    || {
                        format!(
                            "interrupt at {t_cut} reversed {reversed} bytes, model says {expect_reversed}"
                        )
                    },
                );
            }
        }

        // Survivors: remaining work per flow drains at the post-cut
        // share capacity/(flows-1), all finishing together.
        let done_each = share * t_cut.as_secs_f64();
        let expect_finish =
            t_cut.as_secs_f64() + (bytes as f64 - done_each) * (flows - 1) as f64 / capacity;
        let completions = m.drain();
        audit.ensure(
            LINK_CONSERVATION,
            completions.len() == (flows - 1) as usize,
            subject.clone(),
            || {
                format!(
                    "{} survivors completed, expected {}",
                    completions.len(),
                    flows - 1
                )
            },
        );
        for (at, tag) in &completions {
            audit.ensure(
                LINK_CONSERVATION,
                (at.as_secs_f64() - expect_finish).abs() <= expect_finish * 1e-4 + 0.01,
                subject.clone(),
                || {
                    format!(
                        "flow {tag} finished at {at}, fair-share model says {expect_finish:.6}s"
                    )
                },
            );
        }
    }
}

// ---------------------------------------------------------------------
// ENODEV gating
// ---------------------------------------------------------------------

/// Result of touching a device node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevAccess {
    /// The driver answered.
    Granted,
    /// `ENODEV` — the module is gone.
    Enodev,
    /// Any other error.
    Other,
}

/// A kernel's module/device surface under audit.
pub trait DeviceGate {
    /// `insmod`; idempotent.
    fn load(&mut self, module: &'static str);
    /// `rmmod`; `false` if it could not unload.
    fn unload(&mut self, module: &'static str) -> bool;
    /// Whether the module is resident.
    fn loaded(&self, module: &'static str) -> bool;
    /// Touch the device node backed by `module`.
    fn touch(&mut self, module: &'static str) -> DevAccess;
}

/// The real [`Kernel`] behind [`DeviceGate`], one namespace with every
/// Android device pre-opened.
pub struct KernelGate {
    k: Kernel,
    ns: u32,
}

impl KernelGate {
    /// A booted kernel with the full Android container driver and one
    /// namespace holding all four device nodes.
    pub fn new() -> Self {
        let mut k = Kernel::new(HostSpec::paper_server());
        k.load_android_container_driver();
        let ns = k.create_namespace();
        for kind in [
            DeviceKind::Binder,
            DeviceKind::Alarm,
            DeviceKind::Logger,
            DeviceKind::Ashmem,
        ] {
            k.open_device(ns, kind).expect("driver loaded");
        }
        KernelGate { k, ns }
    }
}

impl Default for KernelGate {
    fn default() -> Self {
        Self::new()
    }
}

/// The modules the gate audit toggles, with the driver surface each
/// one backs.
pub const GATED_MODULES: &[&str] = &["android_alarm.ko", "android_logger.ko", "ashmem.ko"];

impl DeviceGate for KernelGate {
    fn load(&mut self, module: &'static str) {
        self.k.load_module(module).expect("known module loads");
    }

    fn unload(&mut self, module: &'static str) -> bool {
        self.k.unload_module(module).is_ok()
    }

    fn loaded(&self, module: &'static str) -> bool {
        self.k.module_loaded(module)
    }

    fn touch(&mut self, module: &'static str) -> DevAccess {
        let res: Result<(), KernelError> = match module {
            "android_alarm.ko" => self.k.alarm_mut(self.ns).map(|_| ()),
            "android_logger.ko" => self.k.logger_mut(self.ns).map(|_| ()),
            "ashmem.ko" => self.k.ashmem_mut(self.ns).map(|_| ()),
            _ => self.k.binder_mut(self.ns).map(|_| ()),
        };
        match res {
            Ok(()) => DevAccess::Granted,
            Err(KernelError::NoSuchDevice { .. }) => DevAccess::Enodev,
            Err(_) => DevAccess::Other,
        }
    }
}

/// Audit the ENODEV contract: touching a device answers iff its module
/// is resident, and fails with exactly `ENODEV` otherwise — under a
/// seeded load/unload/touch script.
pub fn audit_device_gate<G: DeviceGate>(gate: &mut G, seed: u64, steps: u32, audit: &mut Audit) {
    let mut rng = SimRng::new(seed);
    for step in 0..steps {
        let module = GATED_MODULES[rng.uniform_u64(0, GATED_MODULES.len() as u64 - 1) as usize];
        match rng.uniform_u64(0, 3) {
            0 => gate.load(module),
            1 => {
                gate.unload(module);
            }
            _ => {
                let resident = gate.loaded(module);
                let access = gate.touch(module);
                let expect = if resident {
                    DevAccess::Granted
                } else {
                    DevAccess::Enodev
                };
                audit.ensure(
                    ENODEV_GATE,
                    access == expect,
                    format!("step {step}: {module}"),
                    || format!("module resident={resident}, access was {access:?}"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Warehouse CID-hint consistency
// ---------------------------------------------------------------------

/// A code cache under audit (the App Warehouse surface the dispatcher
/// trusts for CID-affinity placement).
pub trait CodeCache {
    /// Was the code cached? (Counts a hit or a miss.)
    fn lookup(&mut self, aid: &Aid) -> bool;
    /// Store code after a transfer.
    fn insert(&mut self, aid: Aid, app_id: &str, code_bytes: u64);
    /// Record that `container` holds `aid`'s code warm.
    fn note_loaded(&mut self, aid: &Aid, container: InstanceId);
    /// Forget a torn-down container everywhere.
    fn invalidate(&mut self, container: InstanceId);
    /// Containers advertised as warm for `aid`.
    fn containers_with(&self, aid: &Aid) -> Vec<InstanceId>;
    /// (hits, misses, bytes_saved).
    fn stats(&self) -> (u64, u64, u64);
}

impl CodeCache for AppWarehouse {
    fn lookup(&mut self, aid: &Aid) -> bool {
        AppWarehouse::lookup(self, aid)
    }
    fn insert(&mut self, aid: Aid, app_id: &str, code_bytes: u64) {
        AppWarehouse::insert(self, aid, app_id, code_bytes)
    }
    fn note_loaded(&mut self, aid: &Aid, container: InstanceId) {
        AppWarehouse::note_loaded(self, aid, container)
    }
    fn invalidate(&mut self, container: InstanceId) {
        AppWarehouse::invalidate_container(self, container)
    }
    fn containers_with(&self, aid: &Aid) -> Vec<InstanceId> {
        AppWarehouse::containers_with(self, aid).to_vec()
    }
    fn stats(&self) -> (u64, u64, u64) {
        let s = AppWarehouse::stats(self);
        (s.hits, s.misses, s.bytes_saved)
    }
}

/// Audit warehouse/CID-hint consistency against a shadow model: a hint
/// may only name a container that was noted warm for that app and not
/// invalidated since, and hit/miss/bytes-saved counters must match the
/// shadow exactly. The script stays under the eviction threshold so the
/// shadow is exact.
pub fn audit_code_cache<C: CodeCache>(cache: &mut C, seed: u64, steps: u32, audit: &mut Audit) {
    use std::collections::{BTreeMap, BTreeSet};
    let mut rng = SimRng::new(seed);
    let apps: Vec<(Aid, String, u64)> = (0..6)
        .map(|i| {
            let name = format!("com.audit.app{i}");
            (aid_of(&name), name, 50_000 + 10_000 * i)
        })
        .collect();
    // Shadow: aid → (bytes, warm containers), plus expected counters.
    let mut shadow: BTreeMap<Aid, (u64, BTreeSet<InstanceId>)> = BTreeMap::new();
    let (mut hits, mut misses, mut saved) = (0u64, 0u64, 0u64);
    for step in 0..steps {
        let (aid, name, bytes) = &apps[rng.uniform_u64(0, apps.len() as u64 - 1) as usize];
        match rng.uniform_u64(0, 4) {
            0 => {
                cache.insert(aid.clone(), name, *bytes);
                shadow.insert(aid.clone(), (*bytes, BTreeSet::new()));
            }
            1 => {
                let c = InstanceId(rng.uniform_u64(0, 7) as u32);
                cache.note_loaded(aid, c);
                if let Some((_, warm)) = shadow.get_mut(aid) {
                    warm.insert(c);
                }
            }
            2 => {
                let c = InstanceId(rng.uniform_u64(0, 7) as u32);
                cache.invalidate(c);
                for (_, warm) in shadow.values_mut() {
                    warm.remove(&c);
                }
            }
            _ => {
                let hit = cache.lookup(aid);
                let cached = shadow.contains_key(aid);
                audit.ensure(
                    WAREHOUSE_CONSISTENCY,
                    hit == cached,
                    format!("step {step}: lookup {name}"),
                    || format!("cache said hit={hit}, shadow says cached={cached}"),
                );
                if cached {
                    hits += 1;
                    saved += shadow[aid].0;
                } else {
                    misses += 1;
                }
            }
        }
        // Hints must be a subset of the shadow's warm set, always.
        let hinted = cache.containers_with(aid);
        let warm = shadow.get(aid).map(|(_, w)| w.clone()).unwrap_or_default();
        for c in &hinted {
            audit.ensure(
                WAREHOUSE_CONSISTENCY,
                warm.contains(c),
                format!("step {step}: hints for {name}"),
                || format!("hint names container {} which is not warm", c.0),
            );
        }
    }
    let (ch, cm, cs) = cache.stats();
    audit.ensure(
        WAREHOUSE_CONSISTENCY,
        (ch, cm, cs) == (hits, misses, saved),
        "stats",
        || {
            format!(
                "cache counters (h={ch} m={cm} saved={cs}) vs shadow (h={hits} m={misses} saved={saved})"
            )
        },
    );
}

// ---------------------------------------------------------------------
// Event-queue monotonicity (slot generations at the engine root)
// ---------------------------------------------------------------------

/// A deterministic timeline under audit.
pub trait Timeline {
    /// Schedule `tag` at `at`; returns a cancellation handle.
    fn schedule(&mut self, at: SimTime, tag: u32) -> u64;
    /// Cancel a handle; `true` if it had not fired.
    fn cancel(&mut self, id: u64) -> bool;
    /// Pop the next event.
    fn pop(&mut self) -> Option<(SimTime, u32)>;
}

/// The real [`EventQueue`] behind [`Timeline`].
#[derive(Default)]
pub struct EngineTimeline {
    q: EventQueue<u32>,
    ids: Vec<simkit::EventId>,
}

impl Timeline for EngineTimeline {
    fn schedule(&mut self, at: SimTime, tag: u32) -> u64 {
        let id = self.q.schedule(at, tag);
        self.ids.push(id);
        self.ids.len() as u64 - 1
    }
    fn cancel(&mut self, id: u64) -> bool {
        self.q.cancel(self.ids[id as usize])
    }
    fn pop(&mut self) -> Option<(SimTime, u32)> {
        self.q.pop()
    }
}

/// Audit the engine-root ordering contract: pops are non-decreasing in
/// time, same-instant events pop in scheduling order (the generation /
/// slot-reuse guarantee every upper layer leans on), cancelled events
/// never fire, and nothing is lost or invented.
pub fn audit_timeline<T: Timeline>(timeline: &mut T, seed: u64, events: u32, audit: &mut Audit) {
    let mut rng = SimRng::new(seed);
    // Schedule with deliberately heavy timestamp collisions.
    let mut expected: Vec<(SimTime, u32)> = Vec::new(); // live events in scheduling order
    let mut handles = Vec::new();
    for tag in 0..events {
        let at = SimTime::from_secs(rng.uniform_u64(0, 7));
        handles.push((timeline.schedule(at, tag), at, tag));
    }
    let mut cancelled = std::collections::BTreeSet::new();
    for &(h, _, tag) in &handles {
        if rng.bernoulli(0.3) && timeline.cancel(h) {
            cancelled.insert(tag);
        }
    }
    for &(_, at, tag) in &handles {
        if !cancelled.contains(&tag) {
            expected.push((at, tag));
        }
    }
    // Reference order: stable sort by time keeps scheduling order for
    // ties — exactly the FIFO-tie contract.
    expected.sort_by_key(|&(at, _)| at);
    let mut popped = Vec::new();
    while let Some(ev) = timeline.pop() {
        popped.push(ev);
    }
    audit.ensure(
        EVENT_MONOTONICITY,
        popped.len() == expected.len(),
        "timeline",
        || {
            format!(
                "{} events popped, {} live after cancellations",
                popped.len(),
                expected.len()
            )
        },
    );
    let mut last = SimTime::ZERO;
    for (i, &(at, tag)) in popped.iter().enumerate() {
        audit.ensure(EVENT_MONOTONICITY, at >= last, format!("pop {i}"), || {
            format!("time ran backwards: {last} then {at}")
        });
        last = at;
        audit.ensure(
            EVENT_MONOTONICITY,
            !cancelled.contains(&tag),
            format!("pop {i}"),
            || format!("cancelled event {tag} fired anyway"),
        );
        if let Some(&(e_at, e_tag)) = expected.get(i) {
            audit.ensure(
                EVENT_MONOTONICITY,
                (at, tag) == (e_at, e_tag),
                format!("pop {i}"),
                || format!("popped ({at}, {tag}), reference order says ({e_at}, {e_tag})"),
            );
        }
    }

    // Phase 2: interleaved schedule/pop/cancel under churn. The bulk
    // phase above loads everything up front; real engines mix the three
    // constantly, and deltas here deliberately span every wheel regime —
    // same-instant bursts, bottom-level, cross-level cascades, and
    // far-future timers past the 2^42 µs horizon (overflow heap).
    let mut now = last;
    // Live events in scheduling order: (handle, at, tag). Tags increase
    // with scheduling, so min-by (at, tag) is exactly the FIFO-tie
    // reference order.
    let mut live: Vec<(u64, SimTime, u32)> = Vec::new();
    let mut next_tag = events;
    for step in 0..events * 2 {
        let op = rng.uniform_u64(0, 9);
        if op < 4 {
            let delta = match rng.uniform_u64(0, 3) {
                0 => 0,
                1 => rng.uniform_u64(0, 63),
                2 => rng.uniform_u64(64, 1 << 24),
                _ => rng.uniform_u64(1 << 24, 1 << 43),
            };
            let at = SimTime::from_micros(now.as_micros() + delta);
            let h = timeline.schedule(at, next_tag);
            live.push((h, at, next_tag));
            next_tag += 1;
        } else if op < 8 || live.is_empty() {
            let reference = live
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(_, at, tag))| (at, tag))
                .map(|(i, _)| i);
            match (timeline.pop(), reference) {
                (Some((at, tag)), Some(i)) => {
                    let (_, e_at, e_tag) = live.remove(i);
                    audit.ensure(
                        EVENT_MONOTONICITY,
                        (at, tag) == (e_at, e_tag),
                        format!("churn step {step}"),
                        || format!("popped ({at}, {tag}), reference says ({e_at}, {e_tag})"),
                    );
                    audit.ensure(
                        EVENT_MONOTONICITY,
                        at >= now,
                        format!("churn step {step}"),
                        || format!("time ran backwards: {now} then {at}"),
                    );
                    now = at;
                }
                (None, None) => {}
                (got, want) => {
                    audit.ensure(
                        EVENT_MONOTONICITY,
                        false,
                        format!("churn step {step}"),
                        || format!("pop returned {got:?} but reference index is {want:?}"),
                    );
                    // Keep the audit clock in sync with whatever the
                    // (buggy) queue returned, so later schedules stay
                    // legal and the audit records failures instead of
                    // tripping the queue's own past-schedule assert.
                    if let Some((at, _)) = got {
                        now = now.max(at);
                    }
                }
            }
        } else {
            let i = rng.uniform_u64(0, live.len() as u64 - 1) as usize;
            let (h, _, _) = live.remove(i);
            audit.ensure(
                EVENT_MONOTONICITY,
                timeline.cancel(h),
                format!("churn step {step}"),
                || "live event refused cancellation".to_owned(),
            );
        }
    }
    // Drain what churn left behind; the full remainder must come out in
    // reference order.
    live.sort_by_key(|&(_, at, tag)| (at, tag));
    for (i, &(_, e_at, e_tag)) in live.iter().enumerate() {
        let got = timeline.pop();
        audit.ensure(
            EVENT_MONOTONICITY,
            got == Some((e_at, e_tag)),
            format!("churn drain {i}"),
            || format!("popped {got:?}, reference says ({e_at}, {e_tag})"),
        );
    }
    audit.ensure(
        EVENT_MONOTONICITY,
        timeline.pop().is_none(),
        "churn drain end",
        || "queue still yields events after the reference model is empty".to_owned(),
    );
}
