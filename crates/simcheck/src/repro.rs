//! Repro bundles: everything a developer needs to replay a minimized
//! failure, written as plain files under `results/repros/`.
//!
//! A bundle holds the shrunk sample (`config.json`, exact-round-trip
//! JSON), the original pre-shrink sample, the audit evidence
//! (`report.txt`), a Chrome-format trace of the failing run
//! (`trace.json`, load via `chrome://tracing` or Perfetto), and the
//! causal timeline of the implicated request (`timeline.txt`).

use crate::harness::{run_sample, RunOutcome};
use crate::minimize::Minimized;
use crate::sample::Sample;
use std::io;
use std::path::{Path, PathBuf};

/// Write the bundle for one minimized failure; returns its directory.
pub fn write_bundle(root: &Path, m: &Minimized) -> io::Result<PathBuf> {
    let tag = format!(
        "sample-{:04}-{}",
        m.original.index,
        m.invariants.first().copied().unwrap_or("clean")
    );
    let dir = root.join(tag);
    std::fs::create_dir_all(&dir)?;

    std::fs::write(dir.join("config.json"), m.shrunk.to_json())?;
    std::fs::write(dir.join("original.json"), m.original.to_json())?;

    let mut report = String::new();
    report.push_str(&format!(
        "invariants: {}\nshrink steps: {} (in {} candidate runs)\n\nviolations:\n",
        m.invariants.join(", "),
        m.steps,
        m.runs
    ));
    for v in m.audit.violations() {
        report.push_str(&format!("  {v}\n"));
    }
    report.push_str("\nreplay: simcheck_explore --replay <this dir>/config.json\n");
    std::fs::write(dir.join("report.txt"), report)?;

    // Re-run the shrunk sample with tracing forced on so the bundle
    // carries a trace even when the shrink turned the recorder off
    // (tracing is digest-neutral, so this replays the same run).
    let mut traced = m.shrunk.clone();
    traced.traced = true;
    let outcome = run_sample(&traced);
    if let Some(snap) = &outcome.trace {
        std::fs::write(dir.join("trace.json"), snap.chrome_trace())?;
        let req = m
            .audit
            .violations()
            .iter()
            .find_map(|v| v.subject.strip_prefix("request ")?.parse::<u64>().ok())
            .unwrap_or(0);
        std::fs::write(dir.join("timeline.txt"), snap.request_timeline(req))?;
    }
    Ok(dir)
}

/// Replay a bundle's `config.json` (or a bare sample JSON file) and
/// return the re-audited outcome.
pub fn replay(config: &Path) -> Result<(Sample, RunOutcome), String> {
    let text = std::fs::read_to_string(config).map_err(|e| format!("{}: {e}", config.display()))?;
    let sample = Sample::from_json(&text)?;
    let outcome = run_sample(&sample);
    Ok((sample, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize::minimize;

    #[test]
    fn bundle_round_trips_through_replay() {
        let mut s = Sample::draw(3, 0);
        s.devices = 1;
        s.requests_per_device = 1;
        s.fault_pct = 0;
        let m = minimize(&s, 2);
        let root = std::env::temp_dir().join("simcheck-bundle-test");
        let dir = write_bundle(&root, &m).expect("bundle written");
        let (back, outcome) = replay(&dir.join("config.json")).expect("replays");
        assert_eq!(back, m.shrunk);
        assert!(outcome.is_clean());
        assert!(dir.join("report.txt").exists());
        assert!(dir.join("trace.json").exists());
        assert!(dir.join("timeline.txt").exists());
        std::fs::remove_dir_all(&root).ok();
    }
}
