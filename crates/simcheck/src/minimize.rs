//! The failing-run minimizer: greedy bounded delta debugging over a
//! [`Sample`]'s integer knobs.
//!
//! A shrink is *accepted* when the candidate still fires at least one
//! of the same invariants the original fired — not merely "still
//! fails", which would let the minimizer wander onto an unrelated bug
//! and hand back a repro for the wrong defect.

use crate::audit::Audit;
use crate::harness::run_sample;
use crate::sample::{Sample, SampleKind};
use std::collections::BTreeSet;

/// The result of minimizing one failing sample.
#[derive(Debug)]
pub struct Minimized {
    /// The sample as the explorer found it.
    pub original: Sample,
    /// The smallest equivalent failure found.
    pub shrunk: Sample,
    /// The shrunk sample's audit (evidence for the repro bundle).
    pub audit: Audit,
    /// Accepted shrink steps.
    pub steps: u32,
    /// Candidate runs spent (accepted + rejected).
    pub runs: u32,
    /// The invariants the shrink preserved.
    pub invariants: Vec<&'static str>,
}

fn fired(audit: &Audit) -> BTreeSet<&'static str> {
    audit.violations().iter().map(|v| v.invariant).collect()
}

/// Every single-knob shrink candidate of `s`, most aggressive first.
/// Integer knobs halve (delta debugging's classic geometry); seeds get
/// a small neighbourhood probe — a failure that survives a seed nudge
/// is structural rather than a measure-zero RNG coincidence, and the
/// nudged repro often shrinks further.
fn candidates(s: &Sample) -> Vec<Sample> {
    let mut out = Vec::new();
    let mut push = |mutate: &dyn Fn(&mut Sample)| {
        let mut c = s.clone();
        mutate(&mut c);
        if c != *s {
            out.push(c);
        }
    };
    push(&|c| c.fault_pct = 0);
    push(&|c| c.fault_pct /= 2);
    push(&|c| c.resilience = 0);
    push(&|c| c.traced = false);
    match s.kind {
        SampleKind::Rattrap => {
            push(&|c| c.devices = (c.devices / 2).max(1));
            push(&|c| c.devices = 1);
            push(&|c| c.requests_per_device = (c.requests_per_device / 2).max(1));
            push(&|c| c.requests_per_device = 1);
        }
        SampleKind::Fleet => {
            push(&|c| c.hosts = (c.hosts / 2).max(1));
            push(&|c| c.users = (c.users / 2).max(1));
            push(&|c| c.users = 1);
            push(&|c| c.duration_s = (c.duration_s / 2).max(60));
        }
        SampleKind::Geo => {
            push(&|c| c.regions = 2);
            push(&|c| c.users = (c.users / 2).max(1));
            push(&|c| c.users = 1);
            push(&|c| c.duration_s = (c.duration_s / 2).max(60));
        }
        SampleKind::Scenario => {
            // Shrink the fleet under the plan first; dropping to a
            // plain fleet sample (no scenario) is the last resort —
            // a failure that survives it was never scenario-specific.
            push(&|c| c.hosts = (c.hosts / 2).max(1));
            push(&|c| c.users = (c.users / 2).max(1));
            push(&|c| c.duration_s = (c.duration_s / 2).max(60));
            push(&|c| c.kind = SampleKind::Fleet);
        }
    }
    push(&|c| c.seed = c.seed.wrapping_sub(1));
    push(&|c| c.seed = c.seed.wrapping_add(1));
    push(&|c| c.seed &= 0xFFFF);
    out
}

/// Shrink `sample` while its failure (same invariant names) keeps
/// reproducing. `max_runs` bounds total engine executions so a
/// pathological landscape cannot stall the nightly job.
pub fn minimize(sample: &Sample, max_runs: u32) -> Minimized {
    let original_outcome = run_sample(sample);
    let target = fired(&original_outcome.audit);
    let mut best = sample.clone();
    let mut best_audit = original_outcome.audit;
    let mut steps = 0;
    let mut runs = 1;

    if !target.is_empty() {
        // Greedy passes until a whole pass accepts nothing.
        'outer: loop {
            let mut improved = false;
            for cand in candidates(&best) {
                if runs >= max_runs {
                    break 'outer;
                }
                let outcome = run_sample(&cand);
                runs += 1;
                if fired(&outcome.audit).intersection(&target).next().is_some() {
                    best = cand;
                    best_audit = outcome.audit;
                    steps += 1;
                    improved = true;
                    break; // restart candidate generation from the new best
                }
            }
            if !improved {
                break;
            }
        }
    }

    Minimized {
        original: sample.clone(),
        shrunk: best,
        audit: best_audit,
        steps,
        runs,
        invariants: target.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_sample_minimizes_to_itself() {
        let mut s = Sample::draw(5, 0);
        s.fault_pct = 0;
        s.devices = 1;
        s.requests_per_device = 1;
        let m = minimize(&s, 4);
        assert_eq!(m.shrunk, s);
        assert_eq!(m.steps, 0);
        assert!(m.invariants.is_empty());
    }

    #[test]
    fn candidates_shrink_and_never_echo_the_input() {
        // Index 2 is a rattrap sample (the scenario stripe took 1).
        let s = Sample::draw(5, 2);
        for c in candidates(&s) {
            assert_ne!(c, s);
        }
        let mut one = s.clone();
        one.devices = 1;
        one.requests_per_device = 1;
        one.fault_pct = 0;
        one.resilience = 0;
        one.traced = false;
        // Fully shrunk integer knobs leave only the seed probes.
        assert_eq!(candidates(&one).len(), 3);
    }
}
