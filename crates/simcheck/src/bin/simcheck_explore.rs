//! `simcheck_explore` — drive the explorer from the command line.
//!
//! ```text
//! simcheck_explore [--budget N] [--seed S] [--out DIR] [--no-golden-gate]
//! simcheck_explore --replay PATH/config.json
//! ```
//!
//! Exit codes: 0 clean, 2 violations found (repro bundles written
//! under `--out`, default `results/repros/`), 1 usage or I/O error.

use simcheck::explorer::{explore, ExplorerConfig};
use simcheck::minimize::minimize;
use simcheck::repro::{replay, write_bundle};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    budget: u32,
    seed: u64,
    out: PathBuf,
    golden_gate: bool,
    replay: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        budget: 500,
        seed: 7,
        out: PathBuf::from("results/repros"),
        golden_gate: true,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--budget" => {
                args.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--no-golden-gate" => args.golden_gate = false,
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simcheck_explore: {e}");
            return ExitCode::from(1);
        }
    };

    if let Some(config) = &args.replay {
        return match replay(config) {
            Ok((sample, outcome)) => {
                println!(
                    "replayed sample {} (seed {:016x}): digest {:#018x}",
                    sample.index, sample.seed, outcome.digest
                );
                if outcome.is_clean() {
                    println!("clean: no invariant fired");
                    ExitCode::SUCCESS
                } else {
                    for v in outcome.audit.violations() {
                        println!("{v}");
                    }
                    ExitCode::from(2)
                }
            }
            Err(e) => {
                eprintln!("simcheck_explore: {e}");
                ExitCode::from(1)
            }
        };
    }

    let mut cfg = ExplorerConfig::standard(args.seed, args.budget);
    cfg.golden_gate = args.golden_gate;
    let report = explore(&cfg);
    print!("{}", report.render());

    if report.is_clean() {
        return ExitCode::SUCCESS;
    }
    // Minimize each failure and write a repro bundle. The run budget
    // per failure is generous but bounded; shrinking small swarm
    // samples converges in far fewer runs.
    for f in &report.failures {
        let m = minimize(&f.sample, 64);
        match write_bundle(&args.out, &m) {
            Ok(dir) => println!(
                "repro: {} ({} shrink steps, invariants: {})",
                dir.display(),
                m.steps,
                m.invariants.join(", ")
            ),
            Err(e) => eprintln!("simcheck_explore: writing bundle: {e}"),
        }
    }
    ExitCode::from(2)
}
