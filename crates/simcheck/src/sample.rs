//! Swarm samples: one integer-only value describes everything the
//! explorer varies about a run, so a sample round-trips through JSON
//! bit-exactly (seeds travel as hex strings — JSON numbers are f64 and
//! would silently round a u64 seed) and a repro bundle replays the
//! exact run that failed.

use fleet::FleetConfig;
use geo::GeoConfig;
use rattrap::{PlatformKind, ResiliencePolicy, ScenarioConfig};
use simkit::faults::FaultConfig;
use simkit::{derive_seed, SimDuration, SimRng};
use workloads::WorkloadKind;

/// Which engine a sample drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Single-host `rattrap::run_scenario`.
    Rattrap,
    /// Multi-host `fleet::run_fleet`.
    Fleet,
    /// Multi-region `geo::run_geo`.
    Geo,
    /// A fleet run driven by a scenario plan (flash crowds, correlated
    /// outages, noisy neighbors, interaction storms).
    Scenario,
}

/// One point in the explorer's search space. Every field is an integer
/// (or bool) on purpose: the JSON round-trip must be exact, and the
/// minimizer shrinks by halving integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Position in the swarm (0-based); also the derivation stream.
    pub index: u32,
    /// The run's master seed.
    pub seed: u64,
    /// Engine under test.
    pub kind: SampleKind,
    /// Platform index into [`Sample::PLATFORMS`] (rattrap only).
    pub platform: u8,
    /// Workload index into [`WorkloadKind::ALL`] (rattrap only).
    pub workload: u8,
    /// Client devices (rattrap only).
    pub devices: u32,
    /// Closed-loop requests per device (rattrap only).
    pub requests_per_device: u32,
    /// Fleet hosts (fleet only).
    pub hosts: u32,
    /// Trace users (fleet only).
    pub users: u32,
    /// Trace horizon, seconds (fleet only).
    pub duration_s: u32,
    /// Geo regions (geo only).
    pub regions: u32,
    /// Fault-plan intensity as a percentage: `FaultConfig::scaled(pct/100)`,
    /// 0 meaning a fault-free run (the metamorphic golden gate).
    pub fault_pct: u32,
    /// Scenario family index into [`scenario::ScenarioFamily::ALL`]
    /// (scenario stripe only).
    pub scenario_family: u8,
    /// Resilience policy: 0 none, 1 retry-only, 2 standard.
    pub resilience: u8,
    /// Attach an enabled recorder (the traced ≡ untraced oracle runs
    /// both ways regardless; this picks the default for auditing).
    pub traced: bool,
}

impl Sample {
    /// Platform axis, index-stable for JSON.
    pub const PLATFORMS: [PlatformKind; 3] = [
        PlatformKind::VmBaseline,
        PlatformKind::RattrapWithout,
        PlatformKind::Rattrap,
    ];

    /// Draw sample `index` of the swarm rooted at `master` — swarm
    /// testing over seeds × fault intensities × config mutations.
    /// Mostly small rattrap scenarios (they are cheap, so the swarm is
    /// wide) with sparse stripes of small fleets and small geo
    /// topologies.
    pub fn draw(master: u64, index: u32) -> Sample {
        let mut rng = SimRng::new(derive_seed(master, 0x5A4D_0000 + index as u64));
        let kind = match index % 7 {
            1 => SampleKind::Scenario,
            3 => SampleKind::Fleet,
            5 => SampleKind::Geo,
            _ => SampleKind::Rattrap,
        };
        Sample {
            index,
            seed: derive_seed(master, 0xA5A5_0000 + index as u64),
            kind,
            platform: rng.uniform_u64(0, 2) as u8,
            workload: rng.uniform_u64(0, WorkloadKind::ALL.len() as u64 - 1) as u8,
            devices: rng.uniform_u64(1, 8) as u32,
            requests_per_device: rng.uniform_u64(1, 6) as u32,
            hosts: rng.uniform_u64(1, 3) as u32,
            users: rng.uniform_u64(4, 24) as u32,
            duration_s: rng.uniform_u64(240, 720) as u32,
            // Weighted toward faulty runs but keeping a fault-free
            // stripe alive for the golden-digest oracle.
            fault_pct: match rng.uniform_u64(0, 9) {
                0 | 1 => 0,
                n => (n * 25) as u32, // 50..=225 %
            },
            resilience: rng.uniform_u64(0, 2) as u8,
            traced: rng.bernoulli(0.5),
            // Drawn last so the geo stripe leaves the older axes'
            // derivations untouched.
            regions: rng.uniform_u64(2, 3) as u32,
            // Likewise drawn after everything older: the scenario
            // stripe must not perturb pre-existing sample axes.
            scenario_family: rng.uniform_u64(0, 3) as u8,
        }
    }

    /// The resilience policy this sample selects.
    pub fn resilience_policy(&self) -> ResiliencePolicy {
        match self.resilience {
            0 => ResiliencePolicy::none(),
            1 => ResiliencePolicy::retry_only(),
            _ => ResiliencePolicy::standard(),
        }
    }

    /// The fault plan intensity this sample selects.
    pub fn fault_config(&self) -> FaultConfig {
        if self.fault_pct == 0 {
            FaultConfig::none()
        } else {
            FaultConfig::scaled(self.fault_pct as f64 / 100.0)
        }
    }

    /// Materialise the rattrap scenario (valid for any sample; the
    /// minimizer uses this even on fleet samples it has re-pointed).
    pub fn scenario_config(&self) -> ScenarioConfig {
        let platform = Self::PLATFORMS[self.platform as usize % 3];
        let workload = WorkloadKind::ALL[self.workload as usize % WorkloadKind::ALL.len()];
        let mut cfg = ScenarioConfig::paper_default(platform.config(), workload, self.seed);
        cfg.devices = self.devices.max(1);
        cfg.requests_per_device = self.requests_per_device.max(1);
        cfg.faults = self.fault_config();
        cfg.resilience = self.resilience_policy();
        cfg
    }

    /// Materialise the fleet config.
    pub fn fleet_config(&self) -> FleetConfig {
        let mut cfg = FleetConfig::paper_default(self.hosts.max(1) as usize, self.seed);
        cfg.traffic.users = self.users.max(1);
        cfg.traffic.duration = SimDuration::from_secs(self.duration_s.max(60) as u64);
        cfg.faults = self.fault_config();
        cfg.resilience = self.resilience_policy();
        cfg
    }

    /// The scenario family this sample drives (scenario stripe).
    pub fn scenario_family(&self) -> scenario::ScenarioFamily {
        let all = scenario::ScenarioFamily::ALL;
        all[self.scenario_family as usize % all.len()]
    }

    /// Materialise the scenario spec, sized for this sample's fleet:
    /// phase timing scales with the trace horizon so the adversarial
    /// window always lands inside the run.
    pub fn scenario_spec(&self) -> scenario::ScenarioSpec {
        let users = self.users.max(1);
        let horizon = self.duration_s.max(60) as u64;
        let start = simkit::SimTime::from_secs(horizon / 4);
        let window = SimDuration::from_secs(horizon / 6);
        match self.scenario_family() {
            scenario::ScenarioFamily::FlashCrowd => {
                scenario::ScenarioSpec::flash_crowd(users, 8, start, window)
            }
            scenario::ScenarioFamily::CorrelatedFailure => {
                scenario::ScenarioSpec::correlated_failure(50, start, window)
            }
            scenario::ScenarioFamily::NoisyNeighbor => scenario::ScenarioSpec::noisy_neighbor(1, 2),
            scenario::ScenarioFamily::InteractionStorm => {
                scenario::ScenarioSpec::interaction_storm((users * 4).min(160), start, window, 55)
            }
        }
    }

    /// Materialise the fleet config with this sample's scenario plan
    /// attached (the scenario stripe's engine input).
    pub fn scenario_fleet_config(&self) -> FleetConfig {
        let mut cfg = self.fleet_config();
        cfg.scenario_plan = Some(self.scenario_spec());
        cfg
    }

    /// Materialise the geo config. Users are spread across regions and
    /// the rebalancer is eager so even small swarm runs exercise
    /// cross-region migration over the WAN fabric.
    pub fn geo_config(&self) -> GeoConfig {
        let regions = (self.regions.max(2) as usize).min(4);
        let mut cfg = GeoConfig::paper_default(regions, self.seed);
        let per_region = (self.users / regions as u32).max(2);
        for r in &mut cfg.regions {
            r.users = per_region;
        }
        cfg.traffic.duration = SimDuration::from_secs(self.duration_s.max(60) as u64);
        cfg.resilience = self.resilience_policy();
        cfg.rebalance.imbalance_threshold = 0.05;
        cfg.rebalance.min_interval = SimDuration::from_secs(30);
        cfg
    }

    /// Serialise to JSON. Integers are emitted verbatim; the seed as a
    /// 16-digit hex string so the round-trip is exact.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"index\": {},\n",
                "  \"seed\": \"{:016x}\",\n",
                "  \"kind\": \"{}\",\n",
                "  \"platform\": {},\n",
                "  \"workload\": {},\n",
                "  \"devices\": {},\n",
                "  \"requests_per_device\": {},\n",
                "  \"hosts\": {},\n",
                "  \"users\": {},\n",
                "  \"duration_s\": {},\n",
                "  \"regions\": {},\n",
                "  \"fault_pct\": {},\n",
                "  \"scenario_family\": {},\n",
                "  \"resilience\": {},\n",
                "  \"traced\": {}\n",
                "}}\n"
            ),
            self.index,
            self.seed,
            match self.kind {
                SampleKind::Rattrap => "rattrap",
                SampleKind::Fleet => "fleet",
                SampleKind::Geo => "geo",
                SampleKind::Scenario => "scenario",
            },
            self.platform,
            self.workload,
            self.devices,
            self.requests_per_device,
            self.hosts,
            self.users,
            self.duration_s,
            self.regions,
            self.fault_pct,
            self.scenario_family,
            self.resilience,
            self.traced,
        )
    }

    /// Parse a sample back from [`Sample::to_json`] output.
    pub fn from_json(text: &str) -> Result<Sample, String> {
        let v = obsv::json::parse(text)?;
        let int = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|f| f.as_f64())
                .map(|f| f as u64)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };
        let seed_hex = v
            .get("seed")
            .and_then(|s| s.as_str())
            .ok_or("missing `seed` hex string")?;
        let seed =
            u64::from_str_radix(seed_hex, 16).map_err(|e| format!("bad seed `{seed_hex}`: {e}"))?;
        let kind = match v.get("kind").and_then(|s| s.as_str()) {
            Some("rattrap") => SampleKind::Rattrap,
            Some("fleet") => SampleKind::Fleet,
            Some("geo") => SampleKind::Geo,
            Some("scenario") => SampleKind::Scenario,
            other => return Err(format!("bad kind {other:?}")),
        };
        let traced = match v.get("traced") {
            Some(obsv::json::Value::Bool(b)) => *b,
            _ => return Err("missing bool field `traced`".into()),
        };
        Ok(Sample {
            index: int("index")? as u32,
            seed,
            kind,
            platform: int("platform")? as u8,
            workload: int("workload")? as u8,
            devices: int("devices")? as u32,
            requests_per_device: int("requests_per_device")? as u32,
            hosts: int("hosts")? as u32,
            users: int("users")? as u32,
            duration_s: int("duration_s")? as u32,
            regions: int("regions")? as u32,
            fault_pct: int("fault_pct")? as u32,
            scenario_family: int("scenario_family")? as u8,
            resilience: int("resilience")? as u8,
            traced,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic() {
        assert_eq!(Sample::draw(7, 13), Sample::draw(7, 13));
        assert_ne!(Sample::draw(7, 13).seed, Sample::draw(7, 14).seed);
    }

    #[test]
    fn json_round_trip_is_exact() {
        for index in 0..32 {
            let s = Sample::draw(0xB0B, index);
            let back = Sample::from_json(&s.to_json()).expect("round trip");
            assert_eq!(s, back);
        }
    }

    #[test]
    fn fleet_geo_and_scenario_stripes_are_sparse_but_present() {
        let kinds: Vec<_> = (0..28).map(|i| Sample::draw(1, i).kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == SampleKind::Fleet).count(), 4);
        assert_eq!(kinds.iter().filter(|k| **k == SampleKind::Geo).count(), 4);
        assert_eq!(
            kinds.iter().filter(|k| **k == SampleKind::Scenario).count(),
            4
        );
    }

    #[test]
    fn the_scenario_stripe_cycles_through_every_family() {
        let families: std::collections::BTreeSet<_> = (0..64)
            .map(|i| Sample::draw(1, i))
            .filter(|s| s.kind == SampleKind::Scenario)
            .map(|s| s.scenario_family().label())
            .collect();
        assert_eq!(families.len(), scenario::ScenarioFamily::ALL.len());
    }
}
