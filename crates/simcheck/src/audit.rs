//! The audit ledger: what was checked and what was violated.

use std::collections::BTreeSet;

/// One invariant breach, attributed to the invariant's stable name and
/// a concrete subject (a request, a host, a span, a job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name from [`crate::invariants::CATALOGUE`].
    pub invariant: &'static str,
    /// What broke it (e.g. `request 17`, `host 2`, `span 41`).
    pub subject: String,
    /// Human-readable evidence: expected vs observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.invariant, self.subject, self.detail)
    }
}

/// Accumulates violations plus the set of invariants that actually ran
/// — "no violations" is only meaningful alongside "and these checks
/// executed".
#[derive(Debug, Default, Clone)]
pub struct Audit {
    violations: Vec<Violation>,
    checked: BTreeSet<&'static str>,
}

impl Audit {
    /// An empty ledger.
    pub fn new() -> Self {
        Audit::default()
    }

    /// Record that `invariant` was evaluated (whether or not it fired).
    pub fn checked(&mut self, invariant: &'static str) {
        self.checked.insert(invariant);
    }

    /// Record a breach. Also marks the invariant as checked.
    pub fn fail(
        &mut self,
        invariant: &'static str,
        subject: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.checked.insert(invariant);
        self.violations.push(Violation {
            invariant,
            subject: subject.into(),
            detail: detail.into(),
        });
    }

    /// Assert-style helper: fail unless `ok`.
    pub fn ensure(
        &mut self,
        invariant: &'static str,
        ok: bool,
        subject: impl Into<String>,
        detail: impl FnOnce() -> String,
    ) {
        self.checked.insert(invariant);
        if !ok {
            self.violations.push(Violation {
                invariant,
                subject: subject.into(),
                detail: detail(),
            });
        }
    }

    /// All recorded breaches, in discovery order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Invariants that were evaluated at least once.
    pub fn invariants_checked(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.checked.iter().copied()
    }

    /// `true` when nothing fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold another ledger into this one.
    pub fn merge(&mut self, other: Audit) {
        self.violations.extend(other.violations);
        self.checked.extend(other.checked);
    }

    /// Order-sensitive FNV-1a digest over every violation — two audits
    /// of the same run must produce the same digest, which is what the
    /// explorer's own determinism contract pins.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(0xcbf2_9ce4_8422_2325, &[self.violations.len() as u8]);
        for v in &self.violations {
            h = fnv1a(h, v.invariant.as_bytes());
            h = fnv1a(h, v.subject.as_bytes());
            h = fnv1a(h, v.detail.as_bytes());
        }
        for name in &self.checked {
            h = fnv1a(h, name.as_bytes());
        }
        h
    }
}

/// FNV-1a continuation over `bytes` from state `h`.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_covers_violations_and_checked_set() {
        let mut a = Audit::new();
        a.checked("x");
        let base = a.digest();
        a.fail("x", "request 1", "boom");
        assert_ne!(a.digest(), base);
        let mut b = Audit::new();
        b.checked("x");
        b.fail("x", "request 1", "boom");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn ensure_fires_only_on_false() {
        let mut a = Audit::new();
        a.ensure("inv", true, "s", || unreachable!());
        assert!(a.is_clean());
        a.ensure("inv", false, "s", || "bad".into());
        assert_eq!(a.violations().len(), 1);
    }
}
