//! Every invariant in the catalogue fires when a bug is planted for
//! it — the auditor is only trustworthy if each check has been seen
//! catching a real defect. Post-run invariants corrupt a genuine
//! engine report; live invariants feed the observer fabricated
//! transitions; model invariants substitute lying component
//! implementations behind the audit traits.

use obsv::{SpanId, Subsystem, TraceEvent, TraceSnapshot};
use rattrap::{Phase, PhaseObserver, RequestRecord};
use simcheck::audit::Audit;
use simcheck::invariants::{
    audit_digest_stability, audit_fleet_report, audit_geo_report, audit_simulation_report,
    audit_trace, LifecycleAuditor, BYTE_CONSERVATION, CATALOGUE, DIGEST_STABILITY, ENODEV_GATE,
    EVENT_MONOTONICITY, FLEET_ACCOUNTING, GEO_MIGRATION_CONSERVATION, GEO_SINGLE_ADMISSION,
    LIFECYCLE_MONOTONE, LIFECYCLE_TERMINAL, LINK_CONSERVATION, MEMORY_BOUND,
    SCENARIO_ARRIVAL_CONSERVATION, SPAN_TREE, TENANT_ISOLATION_ACCOUNTING, WAREHOUSE_CONSISTENCY,
    WORK_CONSERVATION,
};
use simcheck::models::{
    audit_code_cache, audit_device_gate, audit_medium, audit_timeline, CodeCache, DevAccess,
    DeviceGate, EngineTimeline, FairLink, KernelGate, Medium, Timeline,
};
use simcheck::sample::Sample;
use simkit::{SimDuration, SimTime};
use workloads::WorkloadKind;

fn fired(audit: &Audit, invariant: &str) -> bool {
    audit.violations().iter().any(|v| v.invariant == invariant)
}

/// A small real rattrap report to corrupt.
fn real_report() -> rattrap::SimulationReport {
    let mut sample = Sample::draw(99, 0);
    sample.fault_pct = 0;
    sample.devices = 2;
    sample.requests_per_device = 2;
    rattrap::run_scenario(sample.scenario_config())
}

/// A small real fleet report to corrupt.
fn real_fleet_report() -> fleet::FleetReport {
    let mut sample = Sample::draw(99, 3);
    sample.fault_pct = 0;
    sample.hosts = 2;
    sample.users = 6;
    sample.duration_s = 240;
    fleet::run_fleet(&sample.fleet_config())
}

/// A small real geo report to corrupt, tuned so cross-region
/// migrations actually happen (eager rebalance over two regions).
fn real_geo_report() -> geo::GeoReport {
    let mut cfg = geo::GeoConfig::paper_default(2, 9);
    for r in &mut cfg.regions {
        r.users = 8;
    }
    cfg.traffic.duration = SimDuration::from_secs(600);
    cfg.rebalance.imbalance_threshold = 0.05;
    cfg.rebalance.min_interval = SimDuration::from_secs(10);
    geo::run_geo(&cfg)
}

const DRAM: u64 = 16 * 1024 * 1024 * 1024;

fn record(id: u64) -> RequestRecord {
    RequestRecord {
        id,
        device: 0,
        kind: WorkloadKind::Ocr,
        scenario: netsim::NetworkScenario::LanWifi,
        seq_on_device: 0,
        arrived_at: SimTime::ZERO,
        completed_at: SimTime::from_secs(1),
        phases: Default::default(),
        upload_bytes: 0,
        code_bytes_sent: 0,
        download_bytes: 0,
        code_transferred: false,
        cid_affinity_hit: false,
        local_execution: SimDuration::from_secs(1),
        upload_time: SimDuration::ZERO,
        download_time: SimDuration::ZERO,
        executed_locally: false,
        retries: 0,
        fell_back_local: false,
        abandoned: false,
    }
}

// ---------------------------------------------------------------------
// Live lifecycle invariants
// ---------------------------------------------------------------------

#[test]
fn lifecycle_monotone_fires_on_a_transition_out_of_a_terminal_phase() {
    let auditor = LifecycleAuditor::new();
    let mut obs = auditor.clone();
    let r = record(1);
    let t = |s| SimTime::from_secs(s);
    obs.on_transition(&r, Phase::Compute, Phase::Done, SimDuration::ZERO, t(1));
    obs.on_transition(&r, Phase::Done, Phase::Retrying, SimDuration::ZERO, t(2));
    assert!(fired(&auditor.finish(), LIFECYCLE_MONOTONE));
}

#[test]
fn lifecycle_monotone_fires_on_a_non_chaining_edge_and_a_backwards_clock() {
    let auditor = LifecycleAuditor::new();
    let mut obs = auditor.clone();
    let r = record(2);
    let t = |s| SimTime::from_secs(s);
    obs.on_transition(
        &r,
        Phase::Dispatch,
        Phase::DataTransferUp,
        SimDuration::ZERO,
        t(1),
    );
    // Edge claims to come from Compute, but the request is in
    // DataTransferUp — and time runs backwards while it does so.
    obs.on_transition(
        &r,
        Phase::Compute,
        Phase::OffloadIo,
        SimDuration::ZERO,
        t(0),
    );
    let audit = auditor.finish();
    let monotone: Vec<_> = audit
        .violations()
        .iter()
        .filter(|v| v.invariant == LIFECYCLE_MONOTONE)
        .collect();
    assert!(monotone.len() >= 2, "both defects detected: {monotone:?}");
}

#[test]
fn lifecycle_terminal_fires_on_a_request_stuck_mid_flight() {
    let auditor = LifecycleAuditor::new();
    let mut obs = auditor.clone();
    let r = record(3);
    obs.on_transition(
        &r,
        Phase::Dispatch,
        Phase::Compute,
        SimDuration::ZERO,
        SimTime::from_secs(1),
    );
    assert!(fired(&auditor.finish(), LIFECYCLE_TERMINAL));
}

// ---------------------------------------------------------------------
// Post-run report invariants (corrupt a real report, re-audit)
// ---------------------------------------------------------------------

#[test]
fn work_conservation_fires_when_a_phase_bucket_is_inflated() {
    let mut report = real_report();
    report.requests[0].phases.computation_execution += SimDuration::from_secs(5);
    let mut audit = Audit::new();
    audit_simulation_report(&report, DRAM, &mut audit);
    assert!(fired(&audit, WORK_CONSERVATION));
}

#[test]
fn byte_conservation_fires_on_a_phantom_code_transfer() {
    let mut report = real_report();
    report.requests[0].code_transferred = true;
    report.requests[0].code_bytes_sent = 0;
    let mut audit = Audit::new();
    audit_simulation_report(&report, DRAM, &mut audit);
    assert!(fired(&audit, BYTE_CONSERVATION));
}

#[test]
fn byte_conservation_fires_on_an_affinity_hit_that_still_shipped_code() {
    let mut report = real_report();
    report.requests[0].cid_affinity_hit = true;
    report.requests[0].code_bytes_sent = 1024;
    report.requests[0].code_transferred = true;
    let mut audit = Audit::new();
    audit_simulation_report(&report, DRAM, &mut audit);
    assert!(fired(&audit, BYTE_CONSERVATION));
}

#[test]
fn memory_bound_fires_when_the_host_oversubscribes_dram() {
    let mut report = real_report();
    report.peak_memory_bytes = DRAM + 1;
    let mut audit = Audit::new();
    audit_simulation_report(&report, DRAM, &mut audit);
    assert!(fired(&audit, MEMORY_BOUND));
}

#[test]
fn fleet_accounting_fires_when_a_request_is_lost() {
    let mut report = real_fleet_report();
    assert!(report.summary.submitted > 0, "fleet run served traffic");
    report.summary.submitted += 1;
    let mut audit = Audit::new();
    audit_fleet_report(&report, &mut audit);
    assert!(fired(&audit, FLEET_ACCOUNTING));
}

#[test]
fn fleet_memory_bound_fires_on_an_oversubscribed_host() {
    let mut report = real_fleet_report();
    report.hosts[0].peak_memory = report.hosts[0].memory_bytes + 1;
    let mut audit = Audit::new();
    audit_fleet_report(&report, &mut audit);
    assert!(fired(&audit, MEMORY_BOUND));
}

// ---------------------------------------------------------------------
// Scenario-plane invariants (corrupt a real scenario-striped fleet
// report, re-audit)
// ---------------------------------------------------------------------

/// A small real fleet report carrying a scenario block to corrupt.
fn real_scenario_report() -> fleet::FleetReport {
    let mut sample = Sample::draw(99, 1);
    assert_eq!(sample.kind, simcheck::sample::SampleKind::Scenario);
    sample.fault_pct = 0;
    sample.hosts = 2;
    sample.users = 12;
    sample.duration_s = 600;
    // The noisy-neighbor family carries a tenant split, so both new
    // invariants have material to check.
    sample.scenario_family = 2;
    let report = fleet::run_fleet(&sample.scenario_fleet_config());
    assert!(
        report
            .scenario
            .as_ref()
            .is_some_and(|s| s.tenants.len() > 1),
        "scenario stripe must produce a multi-tenant block"
    );
    report
}

#[test]
fn scenario_arrival_conservation_fires_when_an_injected_event_vanishes() {
    let mut report = real_scenario_report();
    // A clean report passes.
    let mut clean = Audit::new();
    audit_fleet_report(&report, &mut clean);
    assert!(!fired(&clean, SCENARIO_ARRIVAL_CONSERVATION));
    // Lose one injected event: the plan claims more scripted arrivals
    // than the engine ever saw or suppressed.
    report.scenario.as_mut().unwrap().injected += 1;
    let mut audit = Audit::new();
    audit_fleet_report(&report, &mut audit);
    assert!(fired(&audit, SCENARIO_ARRIVAL_CONSERVATION));
}

#[test]
fn tenant_isolation_accounting_fires_on_a_double_billed_tenant() {
    let mut report = real_scenario_report();
    let mut clean = Audit::new();
    audit_fleet_report(&report, &mut clean);
    assert!(!fired(&clean, TENANT_ISOLATION_ACCOUNTING));
    // Bill one request to a second tenant: the per-tenant submissions
    // no longer partition the fleet total.
    let sc = report.scenario.as_mut().unwrap();
    sc.tenants[0].submitted += 1;
    sc.tenants[0].completed_remote += 1;
    let mut audit = Audit::new();
    audit_fleet_report(&report, &mut audit);
    assert!(fired(&audit, TENANT_ISOLATION_ACCOUNTING));
}

#[test]
fn tenant_isolation_accounting_fires_when_a_tenant_breakdown_leaks() {
    let mut report = real_scenario_report();
    // Keep the cross-tenant total intact but move one billed request
    // between tenants without its terminal outcome: both tenants'
    // internal splits now disagree with their submissions.
    let sc = report.scenario.as_mut().unwrap();
    assert!(sc.tenants[1].submitted > 0, "tenant 1 saw traffic");
    sc.tenants[0].submitted += 1;
    sc.tenants[1].submitted -= 1;
    let mut audit = Audit::new();
    audit_fleet_report(&report, &mut audit);
    assert!(fired(&audit, TENANT_ISOLATION_ACCOUNTING));
}

// ---------------------------------------------------------------------
// Geo invariants (corrupt a real multi-region report, re-audit)
// ---------------------------------------------------------------------

#[test]
fn geo_report_is_clean_before_corruption() {
    let report = real_geo_report();
    assert!(
        !report.migrations.is_empty(),
        "scenario must migrate for the planted bugs to mean anything"
    );
    let mut audit = Audit::new();
    audit_geo_report(&report, &mut audit);
    assert!(
        audit.is_clean(),
        "real geo report failed its own audit:\n{}",
        audit
            .violations()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn geo_migration_conservation_fires_when_state_is_lost_in_flight() {
    let mut report = real_geo_report();
    // The destination restores fewer bytes than the source serialized
    // — state silently truncated somewhere across the WAN.
    report.migrations[0].bytes_dst = report.migrations[0].bytes_src / 2;
    let mut audit = Audit::new();
    audit_geo_report(&report, &mut audit);
    assert!(fired(&audit, GEO_MIGRATION_CONSERVATION));
}

#[test]
fn geo_migration_conservation_fires_when_the_fabric_is_undercharged() {
    let mut report = real_geo_report();
    // The fabric carried fewer bytes than the checkpoint holds — a
    // free lunch on the shared WAN link.
    report.migrations[0].bytes_wire = report.migrations[0].bytes_src - 1;
    let mut audit = Audit::new();
    audit_geo_report(&report, &mut audit);
    assert!(fired(&audit, GEO_MIGRATION_CONSERVATION));
}

#[test]
fn geo_single_admission_fires_on_a_double_admitted_spillover() {
    let mut report = real_geo_report();
    report.control.double_admissions = 1;
    let mut audit = Audit::new();
    audit_geo_report(&report, &mut audit);
    assert!(fired(&audit, GEO_SINGLE_ADMISSION));
}

#[test]
fn geo_single_admission_fires_on_a_completion_with_no_placement() {
    let mut report = real_geo_report();
    let victim = report
        .records
        .iter()
        .position(|r| r.remote())
        .expect("some request completed remotely");
    report.records[victim].host = None;
    let mut audit = Audit::new();
    audit_geo_report(&report, &mut audit);
    assert!(fired(&audit, GEO_SINGLE_ADMISSION));
}

// ---------------------------------------------------------------------
// Trace invariant (hand-built snapshot)
// ---------------------------------------------------------------------

#[test]
fn span_tree_fires_on_unclosed_orphaned_and_inverted_spans() {
    let snap = TraceSnapshot {
        events: vec![
            TraceEvent::Begin {
                id: SpanId(1),
                parent: SpanId::NONE,
                subsystem: Subsystem::Rattrap,
                name: "request",
                at_us: 10,
                attrs: obsv::Attrs::new(),
            },
            // Child of a span that never opened.
            TraceEvent::Begin {
                id: SpanId(2),
                parent: SpanId(7),
                subsystem: Subsystem::Netsim,
                name: "transfer",
                at_us: 20,
                attrs: obsv::Attrs::new(),
            },
            // Ends before it began.
            TraceEvent::End {
                id: SpanId(2),
                at_us: 5,
                attrs: obsv::Attrs::new(),
            },
            // Span 1 never closes.
        ],
        ..TraceSnapshot::default()
    };
    let mut audit = Audit::new();
    audit_trace(&snap, &mut audit);
    let span_bugs = audit
        .violations()
        .iter()
        .filter(|v| v.invariant == SPAN_TREE)
        .count();
    assert!(span_bugs >= 3, "orphan + inversion + unclosed all caught");
}

#[test]
fn span_tree_stays_quiet_on_a_real_traced_run() {
    let mut sample = Sample::draw(99, 1);
    sample.traced = true;
    sample.fault_pct = 0;
    let outcome = simcheck::run_sample(&sample);
    assert!(outcome.is_clean());
    assert!(outcome.trace.is_some());
}

// ---------------------------------------------------------------------
// Digest stability
// ---------------------------------------------------------------------

#[test]
fn digest_stability_fires_on_divergent_same_seed_digests() {
    let mut audit = Audit::new();
    audit_digest_stability("planted", &[1, 1, 2], &mut audit);
    assert!(fired(&audit, DIGEST_STABILITY));
    let mut clean = Audit::new();
    audit_digest_stability("planted", &[1, 1, 1], &mut clean);
    assert!(clean.is_clean());
}

// ---------------------------------------------------------------------
// Model invariants (lying implementations behind the audit traits)
// ---------------------------------------------------------------------

/// A link that silently drops a third of the reversed bytes on
/// interrupt — the classic lost-accounting bug.
struct LeakyLink(FairLink);

impl Medium for LeakyLink {
    fn begin(&mut self, now: SimTime, bytes: u64, tag: u32) {
        self.0.begin(now, bytes, tag)
    }
    fn interrupt(&mut self, now: SimTime, tag: u32) -> Option<f64> {
        self.0.interrupt(now, tag).map(|r| r * 0.66)
    }
    fn drain(&mut self) -> Vec<(SimTime, u32)> {
        self.0.drain()
    }
}

#[test]
fn link_conservation_fires_on_a_link_that_leaks_reversed_bytes() {
    let mut audit = Audit::new();
    audit_medium(|c| LeakyLink(FairLink::new(c)), 0xA1, 4, &mut audit);
    assert!(fired(&audit, LINK_CONSERVATION));
}

/// A kernel that keeps answering on device nodes after rmmod.
struct GhostDriverKernel(KernelGate);

impl DeviceGate for GhostDriverKernel {
    fn load(&mut self, module: &'static str) {
        self.0.load(module)
    }
    fn unload(&mut self, module: &'static str) -> bool {
        self.0.unload(module)
    }
    fn loaded(&self, module: &'static str) -> bool {
        self.0.loaded(module)
    }
    fn touch(&mut self, module: &'static str) -> DevAccess {
        // The planted bug: never report ENODEV.
        match self.0.touch(module) {
            DevAccess::Enodev => DevAccess::Granted,
            other => other,
        }
    }
}

#[test]
fn enodev_gate_fires_on_a_driver_that_survives_rmmod() {
    let mut audit = Audit::new();
    audit_device_gate(
        &mut GhostDriverKernel(KernelGate::new()),
        0xB2,
        200,
        &mut audit,
    );
    assert!(fired(&audit, ENODEV_GATE));
}

/// A warehouse that forgets to drop CID hints when a container dies.
struct StaleHintCache {
    inner: rattrap::AppWarehouse,
}

impl CodeCache for StaleHintCache {
    fn lookup(&mut self, aid: &rattrap::Aid) -> bool {
        CodeCache::lookup(&mut self.inner, aid)
    }
    fn insert(&mut self, aid: rattrap::Aid, app_id: &str, code_bytes: u64) {
        CodeCache::insert(&mut self.inner, aid, app_id, code_bytes)
    }
    fn note_loaded(&mut self, aid: &rattrap::Aid, container: virt::InstanceId) {
        CodeCache::note_loaded(&mut self.inner, aid, container)
    }
    fn invalidate(&mut self, _container: virt::InstanceId) {
        // The planted bug: teardown never reaches the hint table.
    }
    fn containers_with(&self, aid: &rattrap::Aid) -> Vec<virt::InstanceId> {
        CodeCache::containers_with(&self.inner, aid)
    }
    fn stats(&self) -> (u64, u64, u64) {
        CodeCache::stats(&self.inner)
    }
}

#[test]
fn warehouse_consistency_fires_on_stale_cid_hints() {
    let mut audit = Audit::new();
    audit_code_cache(
        &mut StaleHintCache {
            inner: rattrap::AppWarehouse::new(64 * 1024 * 1024),
        },
        0xC3,
        400,
        &mut audit,
    );
    assert!(fired(&audit, WAREHOUSE_CONSISTENCY));
}

/// A queue that lets cancelled events fire anyway.
#[derive(Default)]
struct ZombieTimeline {
    inner: EngineTimeline,
}

impl Timeline for ZombieTimeline {
    fn schedule(&mut self, at: SimTime, tag: u32) -> u64 {
        self.inner.schedule(at, tag)
    }
    fn cancel(&mut self, _id: u64) -> bool {
        // The planted bug: claim success, remove nothing.
        true
    }
    fn pop(&mut self) -> Option<(SimTime, u32)> {
        self.inner.pop()
    }
}

#[test]
fn event_monotonicity_fires_when_cancelled_events_still_pop() {
    let mut audit = Audit::new();
    audit_timeline(&mut ZombieTimeline::default(), 0xD4, 64, &mut audit);
    assert!(fired(&audit, EVENT_MONOTONICITY));
}

/// A timeline that pops ties in reverse scheduling order (the slot
/// generation bug the BTreeSet fix in simkit guards against).
struct LifoTiesTimeline {
    events: Vec<(SimTime, u32, bool)>, // (at, tag, cancelled)
}

impl Timeline for LifoTiesTimeline {
    fn schedule(&mut self, at: SimTime, tag: u32) -> u64 {
        self.events.push((at, tag, false));
        self.events.len() as u64 - 1
    }
    fn cancel(&mut self, id: u64) -> bool {
        let slot = &mut self.events[id as usize];
        let was_live = !slot.2;
        slot.2 = true;
        was_live
    }
    fn pop(&mut self) -> Option<(SimTime, u32)> {
        // Min time, but LAST insertion among ties — LIFO, not FIFO.
        let (idx, _) = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.2)
            .max_by(|(ai, a), (bi, b)| b.0.cmp(&a.0).then(ai.cmp(bi)))?;
        // Tombstone rather than remove: handles are positional and must
        // stay valid for cancels that arrive after pops.
        let (at, tag, _) = self.events[idx];
        self.events[idx].2 = true;
        Some((at, tag))
    }
}

#[test]
fn event_monotonicity_fires_on_lifo_tie_breaking() {
    let mut audit = Audit::new();
    audit_timeline(
        &mut LifoTiesTimeline { events: Vec::new() },
        0xE5,
        64,
        &mut audit,
    );
    assert!(fired(&audit, EVENT_MONOTONICITY));
}

// ---------------------------------------------------------------------
// Coverage: the full catalogue is exercised by this suite plus the
// harness' clean-run audits.
// ---------------------------------------------------------------------

#[test]
fn every_catalogue_invariant_is_exercised() {
    // The planted bugs above prove each auditor can fire. This test
    // proves the clean pipeline *evaluates* every invariant, so a
    // passing exploration genuinely vouches for the whole catalogue.
    let mut checked: std::collections::BTreeSet<&'static str> = std::collections::BTreeSet::new();
    checked.extend(simcheck::run_model_audits(0xF00D).invariants_checked());
    let mut sample = Sample::draw(99, 2);
    sample.traced = true;
    let outcome = simcheck::run_sample(&sample);
    checked.extend(outcome.audit.invariants_checked());
    let mut fleet_sample = Sample::draw(99, 3);
    fleet_sample.traced = true;
    fleet_sample.users = 6;
    fleet_sample.duration_s = 240;
    let fleet_outcome = simcheck::run_sample(&fleet_sample);
    checked.extend(fleet_outcome.audit.invariants_checked());
    let mut geo_sample = Sample::draw(99, 5);
    geo_sample.traced = true;
    geo_sample.users = 8;
    geo_sample.duration_s = 240;
    let geo_outcome = simcheck::run_sample(&geo_sample);
    checked.extend(geo_outcome.audit.invariants_checked());
    let mut scenario_sample = Sample::draw(99, 1);
    scenario_sample.traced = true;
    scenario_sample.users = 8;
    scenario_sample.duration_s = 240;
    let scenario_outcome = simcheck::run_sample(&scenario_sample);
    checked.extend(scenario_outcome.audit.invariants_checked());
    for inv in CATALOGUE {
        assert!(checked.contains(inv), "`{inv}` never evaluated");
    }
}
