//! The explorer's own determinism contract: the same seed and budget
//! must reproduce the same samples, the same violations, and the same
//! report digest — twice in one process and on every machine.

use simcheck::explorer::{explore, ExplorerConfig};
use simcheck::sample::Sample;

#[test]
fn same_seed_same_budget_means_identical_reports() {
    let cfg = ExplorerConfig::quick(7, 24);
    let first = explore(&cfg);
    let second = explore(&cfg);
    assert_eq!(
        first.digest, second.digest,
        "explorer report digest diverged between identical runs"
    );
    assert_eq!(first.failures.len(), second.failures.len());
    for (a, b) in first.failures.iter().zip(&second.failures) {
        assert_eq!(a.sample, b.sample);
        assert_eq!(a.audit.digest(), b.audit.digest());
    }
    assert_eq!(first.invariants_checked, second.invariants_checked);
    assert!(
        first.is_clean(),
        "the production engines violate an invariant:\n{}",
        first.render()
    );
}

#[test]
fn different_seeds_explore_different_samples() {
    let a = explore(&ExplorerConfig::quick(7, 4));
    let b = explore(&ExplorerConfig::quick(8, 4));
    assert_ne!(a.digest, b.digest, "seed must steer the swarm");
}

#[test]
fn the_swarm_is_seed_stable_sample_by_sample() {
    // Pin the derivation itself: sample i of seed 7 is a function of
    // (7, i) alone, so resuming or sharding an exploration is sound.
    for i in 0..16 {
        assert_eq!(Sample::draw(7, i), Sample::draw(7, i));
    }
    assert_ne!(Sample::draw(7, 0), Sample::draw(8, 0));
}
