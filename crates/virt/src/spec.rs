//! Runtime-environment classes and their resource specifications
//! (Table I).

use crate::boot::{android_vm_boot, cac_optimized_boot, cac_unoptimized_boot, BootSequence};
use simkit::units::mib;

/// The three code runtime environments the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuntimeClass {
    /// Android-x86 in VirtualBox — the VM-based cloud baseline.
    AndroidVm,
    /// Cloud Android Container without OS optimization — Rattrap(W/O).
    CacUnoptimized,
    /// Fully optimized Cloud Android Container — Rattrap.
    CacOptimized,
}

impl RuntimeClass {
    /// All classes, VM first (the paper's table order).
    pub const ALL: [RuntimeClass; 3] = [
        RuntimeClass::AndroidVm,
        RuntimeClass::CacUnoptimized,
        RuntimeClass::CacOptimized,
    ];

    /// Table label.
    pub const fn label(self) -> &'static str {
        match self {
            RuntimeClass::AndroidVm => "Android VM",
            RuntimeClass::CacUnoptimized => "CAC (non-optimized)",
            RuntimeClass::CacOptimized => "CAC",
        }
    }

    /// Is this a container (i.e. needs the Android Container Driver)?
    pub const fn is_container(self) -> bool {
        !matches!(self, RuntimeClass::AndroidVm)
    }

    /// Resource specification.
    pub fn spec(self) -> RuntimeSpec {
        match self {
            RuntimeClass::AndroidVm => RuntimeSpec {
                class: self,
                memory_bytes: mib(512), // "recommended to run with 512MB"
                vcpus: 1,
                cpu_efficiency: 0.95, // hardware-virtualization overhead
                io_efficiency: 0.55,  // VirtualBox emulated disk path
                peak_memory_bytes: mib(512),
                uses_shared_io_layer: false,
            },
            RuntimeClass::CacUnoptimized => RuntimeSpec {
                class: self,
                memory_bytes: mib(128), // max observed usage 110.56 MB
                vcpus: 1,
                cpu_efficiency: 0.995,
                io_efficiency: 0.90,
                peak_memory_bytes: 110_560_000, // 110.56 MB (decimal, as PowerTutor-era tools report)
                uses_shared_io_layer: false,
            },
            RuntimeClass::CacOptimized => RuntimeSpec {
                class: self,
                memory_bytes: mib(96), // max observed usage 96.35 MB
                vcpus: 1,
                cpu_efficiency: 0.995,
                io_efficiency: 0.90,
                peak_memory_bytes: 96_350_000, // 96.35 MB (decimal)
                uses_shared_io_layer: true,    // tmpfs Sharing Offloading I/O
            },
        }
    }

    /// Boot sequence for this class.
    pub fn boot_sequence(self) -> BootSequence {
        match self {
            RuntimeClass::AndroidVm => android_vm_boot(),
            RuntimeClass::CacUnoptimized => cac_unoptimized_boot(),
            RuntimeClass::CacOptimized => cac_optimized_boot(),
        }
    }

    /// Bytes read from disk while booting (Fig. 2's early read plateau):
    /// a VM streams most of its image, an unoptimized container its
    /// rootfs, an optimized container only the shared-layer metadata.
    pub fn boot_read_bytes(self) -> f64 {
        match self {
            RuntimeClass::AndroidVm => 350.0e6,
            RuntimeClass::CacUnoptimized => 150.0e6,
            RuntimeClass::CacOptimized => 25.0e6,
        }
    }
}

/// Static resource requirements of a runtime class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeSpec {
    /// Which class this spec describes.
    pub class: RuntimeClass,
    /// Memory allocated to the instance (Table I).
    pub memory_bytes: u64,
    /// vCPUs allocated (all classes use 1, Table I).
    pub vcpus: u32,
    /// Useful-cycles fraction for CPU work (1.0 = bare metal).
    pub cpu_efficiency: f64,
    /// Useful-bandwidth fraction for disk I/O.
    pub io_efficiency: f64,
    /// Peak memory actually observed during offloading (§VI-B).
    pub peak_memory_bytes: u64,
    /// Does offloading I/O go through the shared in-memory layer?
    pub uses_shared_io_layer: bool,
}

/// Bandwidth of the in-memory Sharing Offloading I/O layer, bytes/s.
/// tmpfs writes move at memory speed; 2 GB/s is conservative for the
/// paper's DDR3 server.
pub const TMPFS_BANDWIDTH: f64 = 2.0 * 1024.0 * 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_matches_table1() {
        assert_eq!(RuntimeClass::AndroidVm.spec().memory_bytes, mib(512));
        assert_eq!(RuntimeClass::CacUnoptimized.spec().memory_bytes, mib(128));
        assert_eq!(RuntimeClass::CacOptimized.spec().memory_bytes, mib(96));
    }

    #[test]
    fn memory_saving_is_75_percent() {
        // "saves as much as 75% memory footprint": 512 → 128 MB.
        let vm = RuntimeClass::AndroidVm.spec().memory_bytes as f64;
        let cac = RuntimeClass::CacUnoptimized.spec().memory_bytes as f64;
        assert!((1.0 - cac / vm - 0.75).abs() < 1e-9);
        // The optimized container saves even more.
        let opt = RuntimeClass::CacOptimized.spec().memory_bytes as f64;
        assert!(1.0 - opt / vm > 0.75);
    }

    #[test]
    fn allocations_cover_observed_peaks() {
        for class in RuntimeClass::ALL {
            let s = class.spec();
            assert!(s.memory_bytes >= s.peak_memory_bytes, "{}", class.label());
        }
    }

    #[test]
    fn every_class_gets_one_vcpu() {
        assert!(RuntimeClass::ALL.iter().all(|c| c.spec().vcpus == 1));
    }

    #[test]
    fn containers_beat_vm_on_both_efficiencies() {
        let vm = RuntimeClass::AndroidVm.spec();
        for c in [RuntimeClass::CacUnoptimized, RuntimeClass::CacOptimized] {
            let s = c.spec();
            assert!(s.cpu_efficiency > vm.cpu_efficiency);
            assert!(s.io_efficiency > vm.io_efficiency);
        }
    }

    #[test]
    fn only_optimized_cac_uses_shared_io() {
        assert!(RuntimeClass::CacOptimized.spec().uses_shared_io_layer);
        assert!(!RuntimeClass::CacUnoptimized.spec().uses_shared_io_layer);
        assert!(!RuntimeClass::AndroidVm.spec().uses_shared_io_layer);
    }

    #[test]
    fn container_flag() {
        assert!(!RuntimeClass::AndroidVm.is_container());
        assert!(RuntimeClass::CacUnoptimized.is_container());
        assert!(RuntimeClass::CacOptimized.is_container());
    }
}
