//! Container checkpoint/restore and live migration between cloud
//! hosts — the Zap-style process-group migration the paper cites as a
//! container advantage ("low-overhead process migration", §VII \[7\]).
//!
//! A Cloud Android Container is just a process group over a private
//! upper layer, so migrating one means: freeze, serialize the dirty
//! state (resident pages + private files + loaded-app metadata), move
//! it, and rebuild namespaces/cgroups/process tree on the destination.
//! Unlike a VM, none of the 1 GiB image travels — the destination
//! mounts its own Shared Resource Layer.

use crate::host::{CloudHost, HostError, InstanceId};
use crate::spec::RuntimeClass;
use containerfs::FsImage;
use obsv::{attrs, AttrValue, SpanId, Subsystem};
use simkit::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Serialized container state (the CRIU image, in spirit).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Runtime class of the source container.
    pub class: RuntimeClass,
    /// Apps whose code was loaded in the runtime.
    pub apps: BTreeSet<String>,
    /// The private upper layer (instance config + offload scratch).
    pub upper: FsImage,
    /// Resident memory pages to transfer.
    pub memory_bytes: u64,
}

impl Checkpoint {
    /// Total bytes that must cross the wire.
    pub fn state_bytes(&self) -> u64 {
        self.memory_bytes + self.upper.total_bytes()
    }
}

/// Outcome of a migration.
#[derive(Debug)]
pub struct MigrationReceipt {
    /// Instance id on the destination host.
    pub new_id: InstanceId,
    /// Stop-and-copy downtime (freeze + transfer + restore).
    pub downtime: SimDuration,
    /// Bytes transferred.
    pub state_bytes: u64,
}

/// Serialization throughput of the checkpoint engine, bytes/s.
const CHECKPOINT_BANDWIDTH: f64 = 800.0e6;
/// Fixed restore cost: namespaces, cgroups, process-tree rebuild.
const RESTORE_FIXED: SimDuration = SimDuration::from_millis(350);

/// Freeze `id` on `host` and serialize its state. The container keeps
/// running until [`migrate`] tears it down; checkpoint alone is also
/// the snapshot path for fault tolerance.
pub fn checkpoint(
    host: &CloudHost,
    id: InstanceId,
) -> Result<(Checkpoint, SimDuration), HostError> {
    let at = host.recorder().now_us();
    checkpoint_traced(host, id, SpanId::NONE, at)
}

/// [`checkpoint`] with explicit span parentage and start instant —
/// [`migrate`] nests the freeze under its own root span at sim time.
fn checkpoint_traced(
    host: &CloudHost,
    id: InstanceId,
    parent: SpanId,
    at_us: u64,
) -> Result<(Checkpoint, SimDuration), HostError> {
    let inst = host.instance(id)?;
    if !inst.class.is_container() {
        return Err(HostError::Kernel(hostkernel::KernelError::NotPermitted {
            reason: "VMs migrate as whole disk images, not process checkpoints".into(),
        }));
    }
    let upper = match &inst.mount {
        Some(m) => m.upper().clone(),
        None => FsImage::new(),
    };
    let ckpt = Checkpoint {
        class: inst.class,
        apps: inst.apps_loaded.clone(),
        upper,
        memory_bytes: inst.class.spec().peak_memory_bytes,
    };
    let freeze = SimDuration::from_secs_f64(ckpt.state_bytes() as f64 / CHECKPOINT_BANDWIDTH);
    let rec = host.recorder();
    if rec.is_enabled() {
        let span = rec.span_start_at(
            Subsystem::Virt,
            "migrate.checkpoint",
            parent,
            at_us,
            attrs![
                ("instance", AttrValue::U64(id.0 as u64)),
                ("state_bytes", AttrValue::U64(ckpt.state_bytes())),
                ("apps", AttrValue::U64(ckpt.apps.len() as u64)),
            ],
        );
        rec.span_end_at(span, at_us + freeze.as_micros(), vec![]);
    }
    Ok((ckpt, freeze))
}

/// Rebuild a checkpointed container on `host`. Returns the new instance
/// and the restore latency. Restore replaces the Android boot: the
/// process tree comes back from the image instead of re-running init
/// and Zygote preload.
pub fn restore(
    host: &mut CloudHost,
    ckpt: &Checkpoint,
) -> Result<(InstanceId, SimDuration), HostError> {
    let at = host.recorder().now_us();
    restore_traced(host, ckpt, SpanId::NONE, at)
}

/// [`restore`] with explicit span parentage and start instant. The
/// parent id is only meaningful when source and destination hosts share
/// one recorder (a fleet trace); with separate recorders the span still
/// records, parented to the destination's ambient span.
fn restore_traced(
    host: &mut CloudHost,
    ckpt: &Checkpoint,
    parent: SpanId,
    at_us: u64,
) -> Result<(InstanceId, SimDuration), HostError> {
    let (id, _boot_setup) = host.provision(ckpt.class)?;
    // Process tree, namespaces and mounts exist; reinstate the
    // container's logical state.
    {
        let inst = host.instance_mut(id)?;
        inst.apps_loaded = ckpt.apps.clone();
        // The writable layer comes back verbatim from the checkpoint,
        // replacing the fresh instance's default upper.
        if let Some(m) = inst.mount.as_mut() {
            m.restore_upper(ckpt.upper.clone());
        }
    }
    let unpack = SimDuration::from_secs_f64(ckpt.state_bytes() as f64 / CHECKPOINT_BANDWIDTH);
    let total = RESTORE_FIXED + unpack;
    let rec = host.recorder();
    if rec.is_enabled() {
        let span = rec.span_start_at(
            Subsystem::Virt,
            "migrate.restore",
            parent,
            at_us,
            attrs![
                ("instance", AttrValue::U64(id.0 as u64)),
                ("state_bytes", AttrValue::U64(ckpt.state_bytes())),
            ],
        );
        rec.span_end_at(span, at_us + total.as_micros(), vec![]);
    }
    Ok((id, total))
}

/// Stop-and-copy migration of `id` from `src` to `dst` over a link of
/// `link_bps` bytes/second.
///
/// When the hosts carry a recorder, the whole move is traced: a root
/// `migrate` span with `migrate.checkpoint` → `migrate.transfer` →
/// `migrate.restore` children, each carrying `state_bytes`. The spans
/// are stamped with the recorder's current request (if any), so a
/// migration triggered on a request's behalf merges into that
/// request's causal timeline.
pub fn migrate(
    src: &mut CloudHost,
    id: InstanceId,
    dst: &mut CloudHost,
    link_bps: f64,
    now: SimTime,
) -> Result<MigrationReceipt, HostError> {
    assert!(link_bps > 0.0, "link bandwidth must be positive");
    let rec = src.recorder().clone();
    let t0 = now.as_micros();
    let root = rec.span_start_at(
        Subsystem::Virt,
        "migrate",
        SpanId::NONE,
        t0,
        attrs![
            ("instance", AttrValue::U64(id.0 as u64)),
            ("mode", AttrValue::Str("stop_and_copy")),
        ],
    );
    let (ckpt, freeze) = checkpoint_traced(src, id, root, t0)?;
    let transfer = SimDuration::from_secs_f64(ckpt.state_bytes() as f64 / link_bps);
    let transfer_starts = t0 + freeze.as_micros();
    if rec.is_enabled() {
        let span = rec.span_start_at(
            Subsystem::Virt,
            "migrate.transfer",
            root,
            transfer_starts,
            attrs![
                ("state_bytes", AttrValue::U64(ckpt.state_bytes())),
                ("link_bps", AttrValue::F64(link_bps)),
            ],
        );
        rec.span_end_at(span, transfer_starts + transfer.as_micros(), vec![]);
    }
    let (new_id, restore_time) =
        restore_traced(dst, &ckpt, root, transfer_starts + transfer.as_micros())?;
    src.teardown(id)?;
    let downtime = freeze + transfer + restore_time;
    rec.span_end_at(
        root,
        t0 + downtime.as_micros(),
        attrs![
            ("state_bytes", AttrValue::U64(ckpt.state_bytes())),
            ("new_instance", AttrValue::U64(new_id.0 as u64)),
        ],
    );
    Ok(MigrationReceipt {
        new_id,
        downtime,
        state_bytes: ckpt.state_bytes(),
    })
}

/// Fraction of resident pages re-dirtied while one pre-copy round
/// streams (a chatty Android runtime dirties its heap fairly fast).
const DIRTY_RATE: f64 = 0.18;

/// Pre-copy (iterative) migration: stream memory while the container
/// keeps running, then stop-and-copy only the pages dirtied during the
/// last round. Trades extra transferred bytes for much less downtime —
/// the live-migration mode a production Rattrap would use.
pub fn migrate_precopy(
    src: &mut CloudHost,
    id: InstanceId,
    dst: &mut CloudHost,
    link_bps: f64,
    rounds: u32,
    now: SimTime,
) -> Result<MigrationReceipt, HostError> {
    assert!(link_bps > 0.0, "link bandwidth must be positive");
    assert!(rounds >= 1, "at least one pre-copy round");
    let rec = src.recorder().clone();
    let t0 = now.as_micros();
    let root = rec.span_start_at(
        Subsystem::Virt,
        "migrate",
        SpanId::NONE,
        t0,
        attrs![
            ("instance", AttrValue::U64(id.0 as u64)),
            ("mode", AttrValue::Str("precopy")),
            ("rounds", AttrValue::U64(rounds as u64)),
        ],
    );
    let (ckpt, _freeze) = checkpoint_traced(src, id, root, t0)?;
    // Round 1 streams all pages; each later round streams what the
    // previous round left dirty. The container runs throughout.
    let mut dirty = ckpt.memory_bytes as f64;
    let mut total_bytes = ckpt.upper.total_bytes() as f64;
    for _ in 0..rounds {
        total_bytes += dirty;
        dirty *= DIRTY_RATE;
    }
    let stream = SimDuration::from_secs_f64(total_bytes / link_bps);
    if rec.is_enabled() {
        let span = rec.span_start_at(
            Subsystem::Virt,
            "migrate.transfer",
            root,
            t0,
            attrs![
                (
                    "state_bytes",
                    AttrValue::U64(total_bytes as u64 + dirty as u64),
                ),
                ("link_bps", AttrValue::F64(link_bps)),
            ],
        );
        rec.span_end_at(span, t0 + stream.as_micros(), vec![]);
    }
    // Stop-and-copy the residual dirty set + restore.
    let final_freeze = SimDuration::from_secs_f64(dirty / CHECKPOINT_BANDWIDTH);
    let final_transfer = SimDuration::from_secs_f64(dirty / link_bps);
    let (new_id, restore_fixed) = restore_traced(dst, &ckpt, root, t0 + stream.as_micros())?;
    // Restore unpack already counted full state; for pre-copy the bulk
    // arrived ahead of the switchover, so downtime only pays the fixed
    // restore plus the residual.
    let downtime = final_freeze + final_transfer + RESTORE_FIXED;
    let _ = restore_fixed;
    src.teardown(id)?;
    let state_bytes = total_bytes as u64 + dirty as u64;
    rec.span_end_at(
        root,
        t0 + stream.as_micros() + downtime.as_micros(),
        attrs![
            ("state_bytes", AttrValue::U64(state_bytes)),
            ("new_instance", AttrValue::U64(new_id.0 as u64)),
        ],
    );
    Ok(MigrationReceipt {
        new_id,
        downtime,
        state_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostkernel::HostSpec;
    use simkit::units::mib;

    fn two_hosts() -> (CloudHost, CloudHost) {
        (
            CloudHost::new(HostSpec::paper_server()),
            CloudHost::new(HostSpec::paper_server()),
        )
    }

    #[test]
    fn migration_preserves_loaded_apps() {
        let (mut src, mut dst) = two_hosts();
        let (id, _) = src.provision(RuntimeClass::CacOptimized).unwrap();
        src.load_app(id, "com.bench.chessgame", 2 * 1024 * 1024)
            .unwrap();
        src.load_app(id, "com.bench.linpack", 137_216).unwrap();

        let r = migrate(&mut src, id, &mut dst, 1.25e9 / 8.0 * 8.0, SimTime::ZERO).unwrap();
        assert_eq!(src.instance_count(), 0, "source torn down");
        assert_eq!(dst.instance_count(), 1);
        // The warm code state survived: loading again is free.
        let t = dst
            .load_app(r.new_id, "com.bench.chessgame", 2 * 1024 * 1024)
            .unwrap();
        assert_eq!(t, SimDuration::ZERO, "app resident after migration");
        let t2 = dst.load_app(r.new_id, "com.bench.ocr", 1_435_648).unwrap();
        assert!(t2 > SimDuration::ZERO, "new apps still cost");
    }

    #[test]
    fn migration_moves_only_private_state() {
        let (mut src, mut dst) = two_hosts();
        let (id, _) = src.provision(RuntimeClass::CacOptimized).unwrap();
        let r = migrate(&mut src, id, &mut dst, 125.0e6, SimTime::ZERO).unwrap();
        // Dirty state ≈ 96 MB pages + ~7 MB upper — nowhere near the
        // 1 GiB a VM image would be.
        assert!(
            r.state_bytes < 120 * 1024 * 1024,
            "state {} bytes",
            r.state_bytes
        );
        assert!(r.state_bytes > mib(90), "pages dominate");
    }

    #[test]
    fn downtime_scales_with_link_speed() {
        let (mut src1, mut dst1) = two_hosts();
        let (a, _) = src1.provision(RuntimeClass::CacOptimized).unwrap();
        let fast = migrate(&mut src1, a, &mut dst1, 1.25e9, SimTime::ZERO).unwrap();
        let (mut src2, mut dst2) = two_hosts();
        let (b, _) = src2.provision(RuntimeClass::CacOptimized).unwrap();
        let slow = migrate(&mut src2, b, &mut dst2, 12.5e6, SimTime::ZERO).unwrap();
        assert!(
            slow.downtime > fast.downtime.mul_f64(3.0),
            "{} vs {}",
            slow.downtime,
            fast.downtime
        );
    }

    #[test]
    fn vm_checkpoint_is_refused() {
        let (mut src, _) = two_hosts();
        let (vm, _) = src.provision(RuntimeClass::AndroidVm).unwrap();
        assert!(checkpoint(&src, vm).is_err());
    }

    #[test]
    fn checkpoint_alone_leaves_source_running() {
        let (mut src, _) = two_hosts();
        let (id, _) = src.provision(RuntimeClass::CacUnoptimized).unwrap();
        let (ckpt, freeze) = checkpoint(&src, id).unwrap();
        assert!(freeze > SimDuration::ZERO);
        assert_eq!(ckpt.class, RuntimeClass::CacUnoptimized);
        assert_eq!(
            src.instance_count(),
            1,
            "snapshot does not kill the container"
        );
    }

    #[test]
    fn restore_faster_than_cold_boot_plus_classload() {
        // The point of migration: a warm container beats re-provisioning
        // and re-loading code, even counting the transfer.
        let (mut src, mut dst) = two_hosts();
        let (id, _) = src.provision(RuntimeClass::CacOptimized).unwrap();
        src.load_app(id, "com.bench.chessgame", 2 * 1024 * 1024)
            .unwrap();
        let r = migrate(&mut src, id, &mut dst, 1.25e9, SimTime::ZERO).unwrap();
        // Fresh provisioning on dst would cost 1.75 s boot + ~0.19 s
        // classload; migration downtime over 10 Gbps must beat it.
        assert!(
            r.downtime < SimDuration::from_millis(1_750 + 190),
            "downtime {} vs fresh boot",
            r.downtime
        );
    }

    #[test]
    fn precopy_cuts_downtime_but_moves_more_bytes() {
        let link = 125.0e6; // 1 GbE
        let (mut s1, mut d1) = two_hosts();
        let (a, _) = s1.provision(RuntimeClass::CacOptimized).unwrap();
        let stop_copy = migrate(&mut s1, a, &mut d1, link, SimTime::ZERO).unwrap();
        let (mut s2, mut d2) = two_hosts();
        let (b, _) = s2.provision(RuntimeClass::CacOptimized).unwrap();
        let precopy = migrate_precopy(&mut s2, b, &mut d2, link, 3, SimTime::ZERO).unwrap();
        assert!(
            precopy.downtime < stop_copy.downtime.mul_f64(0.6),
            "precopy {} vs stop-and-copy {}",
            precopy.downtime,
            stop_copy.downtime
        );
        assert!(
            precopy.state_bytes > stop_copy.state_bytes,
            "iterative rounds re-send dirtied pages"
        );
        // The destination is fully functional either way.
        assert_eq!(d2.instance_count(), 1);
        assert_eq!(s2.instance_count(), 0);
    }

    #[test]
    fn more_precopy_rounds_less_downtime() {
        let link = 125.0e6;
        let mut downtimes = Vec::new();
        for rounds in [1u32, 2, 4] {
            let (mut s, mut d) = two_hosts();
            let (id, _) = s.provision(RuntimeClass::CacOptimized).unwrap();
            let r = migrate_precopy(&mut s, id, &mut d, link, rounds, SimTime::ZERO).unwrap();
            downtimes.push(r.downtime);
        }
        assert!(downtimes[0] > downtimes[1]);
        assert!(downtimes[1] > downtimes[2]);
    }

    #[test]
    fn migration_emits_checkpoint_transfer_restore_spans() {
        use obsv::{Recorder, RecorderConfig, TraceEvent};
        let (mut src, mut dst) = two_hosts();
        let rec = Recorder::enabled(RecorderConfig::default());
        src.attach_recorder(rec.clone());
        dst.attach_recorder(rec.clone());
        rec.set_current_request(Some(42));
        let (id, _) = src.provision(RuntimeClass::CacOptimized).unwrap();
        let now = SimTime::from_secs(3);
        let r = migrate(&mut src, id, &mut dst, 1.25e9, now).unwrap();
        rec.set_current_request(None);

        let snap = rec.snapshot();
        let mut root = None;
        for e in &snap.events {
            if let TraceEvent::Begin {
                id, name, at_us, ..
            } = e
            {
                if *name == "migrate" {
                    assert_eq!(*at_us, now.as_micros());
                    root = Some(*id);
                }
            }
        }
        let root = root.expect("root migrate span");
        for child in ["migrate.checkpoint", "migrate.transfer", "migrate.restore"] {
            let found = snap.events.iter().any(|e| {
                matches!(e, TraceEvent::Begin { name, parent, attrs, .. }
                if *name == child
                    && *parent == root
                    && attrs.iter().any(|(k, v)| {
                        *k == "state_bytes"
                            && matches!(v, obsv::AttrValue::U64(b) if *b == r.state_bytes)
                    }))
            });
            assert!(found, "{child} span with state_bytes under the root");
        }
        // Request-scoped: the whole tree lands in request 42's timeline.
        let timeline = snap.request_timeline(42);
        assert!(timeline.contains("migrate.checkpoint"), "{timeline}");
        assert!(timeline.contains("migrate.restore"));
    }

    #[test]
    fn untraced_migration_still_works() {
        // The recorder-disabled path must stay a pure no-op.
        let (mut src, mut dst) = two_hosts();
        let (id, _) = src.provision(RuntimeClass::CacOptimized).unwrap();
        assert!(migrate(&mut src, id, &mut dst, 1.25e9, SimTime::ZERO).is_ok());
    }

    #[test]
    fn migrating_missing_instance_errors() {
        let (mut src, mut dst) = two_hosts();
        assert!(migrate(&mut src, InstanceId(7), &mut dst, 1e9, SimTime::ZERO).is_err());
    }
}
