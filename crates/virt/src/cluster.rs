//! A multi-server Rattrap deployment — toward the §VIII goal of
//! "making Rattrap available on public clouds": several cloud hosts
//! behind one placement layer, with memory-aware placement and
//! migration-based rebalancing built on [`mod@crate::migrate`].

use crate::host::{CloudHost, HostError, InstanceId};
use crate::migrate::{migrate, MigrationReceipt};
use crate::spec::RuntimeClass;
use hostkernel::HostSpec;
use simkit::{SimDuration, SimTime};

/// A container's cluster-wide address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterAddr {
    /// Index of the host within the cluster.
    pub host: usize,
    /// Instance id on that host.
    pub instance: InstanceId,
}

/// A fleet of cloud hosts.
#[derive(Debug)]
pub struct Cluster {
    hosts: Vec<CloudHost>,
}

impl Cluster {
    /// Bring up `n` identical hosts with the Android Container Driver
    /// pre-loaded (a Rattrap fleet is provisioned that way).
    pub fn new(n: usize, spec: HostSpec) -> Self {
        assert!(n > 0, "a cluster needs at least one host");
        Cluster::from_specs(vec![spec; n])
    }

    /// Bring up one host per spec — heterogeneous fleets mix machine
    /// generations (a 2017 Xeon next to a denser refresh), and
    /// placement must see each host's real memory and clock. The
    /// Android Container Driver is pre-loaded on every host.
    pub fn from_specs(specs: Vec<HostSpec>) -> Self {
        assert!(!specs.is_empty(), "a cluster needs at least one host");
        let hosts = specs
            .into_iter()
            .map(|spec| {
                let mut h = CloudHost::new(spec);
                h.kernel.load_android_container_driver();
                h
            })
            .collect();
        Cluster { hosts }
    }

    /// Add one more host (scale-out). Returns its index; existing
    /// indices are never invalidated.
    pub fn push_host(&mut self, spec: HostSpec) -> usize {
        let mut h = CloudHost::new(spec);
        h.kernel.load_android_container_driver();
        self.hosts.push(h);
        self.hosts.len() - 1
    }

    /// Attach one recorder to every host, so a fleet run lands in a
    /// single trace with cross-host migration spans correctly parented.
    pub fn attach_recorder(&mut self, rec: obsv::Recorder) {
        for h in &mut self.hosts {
            h.attach_recorder(rec.clone());
        }
    }

    /// Per-host hardware specs, in index order.
    pub fn host_specs(&self) -> Vec<HostSpec> {
        self.hosts.iter().map(|h| h.host_spec()).collect()
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// `true` for an empty cluster (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Host accessor.
    pub fn host(&self, i: usize) -> &CloudHost {
        &self.hosts[i]
    }

    /// Mutable host accessor.
    pub fn host_mut(&mut self, i: usize) -> &mut CloudHost {
        &mut self.hosts[i]
    }

    /// Two distinct mutable hosts at once — the shape
    /// [`migrate`](crate::migrate::migrate) needs (source and
    /// destination together). Panics if `a == b`.
    pub fn host_pair_mut(&mut self, a: usize, b: usize) -> (&mut CloudHost, &mut CloudHost) {
        split_two(&mut self.hosts, a, b)
    }

    /// Provision on the host with the most free memory (ties to the
    /// lowest index, keeping placement deterministic).
    pub fn provision_least_loaded(
        &mut self,
        class: RuntimeClass,
    ) -> Result<(ClusterAddr, SimDuration), HostError> {
        let target = (0..self.hosts.len())
            .min_by_key(|&i| (self.hosts[i].memory_reserved(), i))
            .expect("non-empty cluster");
        let (instance, setup) = self.hosts[target].provision(class)?;
        Ok((
            ClusterAddr {
                host: target,
                instance,
            },
            setup,
        ))
    }

    /// Total instances across hosts.
    pub fn instance_count(&self) -> usize {
        self.hosts.iter().map(|h| h.instance_count()).sum()
    }

    /// Total reserved memory across hosts.
    pub fn memory_reserved(&self) -> u64 {
        self.hosts.iter().map(|h| h.memory_reserved()).sum()
    }

    /// Total physical disk across hosts (each host pays for its own
    /// shared layer once).
    pub fn total_disk_usage(&self) -> u64 {
        self.hosts.iter().map(|h| h.total_disk_usage()).sum()
    }

    /// Memory imbalance: max − min reserved bytes across hosts.
    pub fn memory_imbalance(&self) -> u64 {
        let reserved: Vec<u64> = self.hosts.iter().map(|h| h.memory_reserved()).collect();
        let max = reserved.iter().copied().max().unwrap_or(0);
        let min = reserved.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// One rebalancing round: while the busiest host exceeds the
    /// least-busy host by more than one container's memory, migrate an
    /// idle container across. Returns the migrations performed.
    pub fn rebalance(
        &mut self,
        link_bps: f64,
        now: SimTime,
    ) -> Result<Vec<(ClusterAddr, ClusterAddr, MigrationReceipt)>, HostError> {
        let mut moves = Vec::new();
        for _ in 0..self.instance_count() {
            let (mut hot, mut cold) = (0usize, 0usize);
            for i in 0..self.hosts.len() {
                if self.hosts[i].memory_reserved() > self.hosts[hot].memory_reserved() {
                    hot = i;
                }
                if self.hosts[i].memory_reserved() < self.hosts[cold].memory_reserved() {
                    cold = i;
                }
            }
            // Pick a migratable (container) instance on the hot host.
            let candidate = self.hosts[hot].instance_ids().into_iter().find(|&id| {
                self.hosts[hot]
                    .instance(id)
                    .map(|i| i.class.is_container())
                    .unwrap_or(false)
            });
            let Some(victim) = candidate else { break };
            let victim_mem = self.hosts[hot]
                .instance(victim)
                .expect("candidate exists")
                .class
                .spec()
                .memory_bytes;
            if self.hosts[hot].memory_reserved()
                < self.hosts[cold].memory_reserved() + 2 * victim_mem
            {
                break; // balanced enough: moving would just oscillate
            }
            let (src, dst) = split_two(&mut self.hosts, hot, cold);
            let receipt = migrate(src, victim, dst, link_bps, now)?;
            let new_addr = ClusterAddr {
                host: cold,
                instance: receipt.new_id,
            };
            moves.push((
                ClusterAddr {
                    host: hot,
                    instance: victim,
                },
                new_addr,
                receipt,
            ));
        }
        Ok(moves)
    }
}

/// Split two distinct mutable references out of the host vector.
fn split_two(hosts: &mut [CloudHost], a: usize, b: usize) -> (&mut CloudHost, &mut CloudHost) {
    assert_ne!(a, b, "cannot migrate a host onto itself");
    if a < b {
        let (lo, hi) = hosts.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = hosts.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(n, HostSpec::paper_server())
    }

    #[test]
    fn placement_spreads_across_hosts() {
        let mut c = cluster(3);
        let mut per_host = [0usize; 3];
        for _ in 0..9 {
            let (addr, _) = c
                .provision_least_loaded(RuntimeClass::CacOptimized)
                .unwrap();
            per_host[addr.host] += 1;
        }
        assert_eq!(per_host, [3, 3, 3], "round-robin under equal load");
        assert_eq!(c.instance_count(), 9);
    }

    #[test]
    fn placement_prefers_free_memory_not_host_order() {
        let mut c = cluster(2);
        // Preload host 0 with a fat VM.
        c.host_mut(0).provision(RuntimeClass::AndroidVm).unwrap();
        let (addr, _) = c
            .provision_least_loaded(RuntimeClass::CacOptimized)
            .unwrap();
        assert_eq!(addr.host, 1, "the empty host wins");
    }

    #[test]
    fn rebalance_moves_containers_from_hot_to_cold() {
        let mut c = cluster(2);
        for _ in 0..6 {
            c.host_mut(0).provision(RuntimeClass::CacOptimized).unwrap();
        }
        let before = c.memory_imbalance();
        let moves = c.rebalance(1.25e9, SimTime::ZERO).unwrap();
        assert!(!moves.is_empty(), "hot/cold split must trigger migrations");
        assert!(c.memory_imbalance() < before);
        // Loaded apps would survive (migration test covers that); here
        // check accounting: total count is preserved.
        assert_eq!(c.instance_count(), 6);
        for (_, to, _) in &moves {
            assert_eq!(to.host, 1);
        }
    }

    #[test]
    fn rebalance_is_stable_when_balanced() {
        let mut c = cluster(2);
        for _ in 0..2 {
            c.provision_least_loaded(RuntimeClass::CacOptimized)
                .unwrap();
        }
        let moves = c.rebalance(1.25e9, SimTime::ZERO).unwrap();
        assert!(moves.is_empty(), "1-1 split must not oscillate");
    }

    #[test]
    fn vms_are_not_rebalanced() {
        let mut c = cluster(2);
        for _ in 0..3 {
            c.host_mut(0).provision(RuntimeClass::AndroidVm).unwrap();
        }
        let moves = c.rebalance(1.25e9, SimTime::ZERO).unwrap();
        assert!(moves.is_empty(), "VMs cannot checkpoint-migrate");
    }

    #[test]
    fn heterogeneous_fleet_keeps_per_host_specs() {
        let mut big = HostSpec::paper_server();
        big.memory_bytes *= 2;
        big.cores = 24;
        let c = Cluster::from_specs(vec![HostSpec::paper_server(), big]);
        let specs = c.host_specs();
        assert_eq!(specs[0].cores, 12);
        assert_eq!(specs[1].cores, 24);
        assert_eq!(specs[1].memory_bytes, 2 * specs[0].memory_bytes);
    }

    #[test]
    fn placement_sees_heterogeneous_memory() {
        // Host 1 has double the DRAM; after loading both hosts equally,
        // reserved bytes are equal, so placement stays index-ordered —
        // the point is that provisioning against the bigger host can go
        // further before HostError::OutOfMemory.
        let mut big = HostSpec::paper_server();
        big.memory_bytes = 128 * 1024 * 1024; // fits one CAC, not two
        let mut c = Cluster::from_specs(vec![big, HostSpec::paper_server()]);
        c.host_mut(0).provision(RuntimeClass::CacOptimized).unwrap();
        assert!(
            c.host_mut(0).provision(RuntimeClass::CacOptimized).is_err(),
            "small host exhausted"
        );
        c.host_mut(1).provision(RuntimeClass::CacOptimized).unwrap();
        c.host_mut(1).provision(RuntimeClass::CacOptimized).unwrap();
    }

    #[test]
    fn push_host_extends_the_fleet() {
        let mut c = cluster(1);
        for _ in 0..2 {
            c.provision_least_loaded(RuntimeClass::CacOptimized)
                .unwrap();
        }
        let idx = c.push_host(HostSpec::paper_server());
        assert_eq!(idx, 1);
        let (addr, _) = c
            .provision_least_loaded(RuntimeClass::CacOptimized)
            .unwrap();
        assert_eq!(addr.host, 1, "the fresh host is least loaded");
    }

    #[test]
    fn cluster_disk_pays_shared_layer_per_host() {
        let mut c = cluster(2);
        let empty = c.total_disk_usage();
        for _ in 0..4 {
            c.provision_least_loaded(RuntimeClass::CacOptimized)
                .unwrap();
        }
        // 4 containers add only ~28 MiB of private state cluster-wide.
        assert!(c.total_disk_usage() - empty < 40 * 1024 * 1024);
    }
}
