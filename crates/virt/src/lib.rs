//! # virt — runtime environments: Android VM vs Cloud Android Container
//!
//! Implements the code runtime environments the evaluation compares
//! (Table I): the VirtualBox Android-x86 VM baseline, the
//! non-optimized Cloud Android Container of Rattrap(W/O), and the fully
//! optimized Cloud Android Container.
//!
//! * [`boot`] — the Fig. 6 boot sequences, calibrated to Table I's
//!   setup times (28.72 s / 6.80 s / 1.75 s).
//! * [`spec`] — per-class memory, vCPU, and efficiency parameters.
//! * [`mod@migrate`] — Zap-style checkpoint/restore and live migration of
//!   containers between hosts (only private state travels).
//! * [`host`] — [`CloudHost`]: provisions instances against the real
//!   `hostkernel` (driver modules, namespaces, Zygote bring-up via
//!   syscalls) and `containerfs` (shared-layer union mounts, tmpfs
//!   offloading I/O), with fleet-level disk/memory accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod boot;
pub mod cluster;
pub mod host;
pub mod migrate;
pub mod spec;

pub use boot::{
    android_vm_boot, cac_optimized_boot, cac_unoptimized_boot, BootSequence, BootStage,
};
pub use cluster::{Cluster, ClusterAddr};
pub use host::{CloudHost, HostError, InstanceId, RuntimeInstance};
pub use migrate::{checkpoint, migrate, migrate_precopy, restore, Checkpoint, MigrationReceipt};
pub use spec::{RuntimeClass, RuntimeSpec, TMPFS_BANDWIDTH};
