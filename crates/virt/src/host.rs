//! The cloud host: provisions and tears down runtime environments on
//! top of the simulated kernel and the layered filesystem.
//!
//! Provisioning a Cloud Android Container exercises the full §IV-B
//! pipeline against the substrate crates: load the Android Container
//! Driver (first time only), create a device namespace, mount the
//! rootfs (shared layer + private upper for the optimized class, a full
//! private copy otherwise), then run the user-space bring-up — init,
//! device opens, Zygote fork, core services on binder — via real
//! syscalls. Android VMs bypass the host kernel entirely (they carry
//! their own) and appear as a single opaque process.

use crate::boot::BootSequence;
use crate::spec::{RuntimeClass, RuntimeSpec, TMPFS_BANDWIDTH};
use containerfs::{
    android_x86_44_image, customize, instance_private_files, FsImage, LayerId, LayerStore, Tmpfs,
    UnionMount,
};
use hostkernel::{CgroupId, DeviceKind, HostSpec, Kernel, KernelError, Syscall, SyscallRet};
use obsv::{attrs, AttrValue, Recorder, SpanId, Subsystem};
use simkit::resource::OutOfMemory;
use simkit::{MemoryPool, SimDuration};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a provisioned runtime instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// Errors from provisioning or operating runtimes.
#[derive(Debug, Clone, PartialEq)]
pub enum HostError {
    /// Host DRAM exhausted.
    OutOfMemory(OutOfMemory),
    /// Kernel-level failure (modules, namespaces, syscalls).
    Kernel(KernelError),
    /// Unknown instance id.
    NoSuchInstance(InstanceId),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::OutOfMemory(e) => write!(f, "{e}"),
            HostError::Kernel(e) => write!(f, "{e}"),
            HostError::NoSuchInstance(id) => write!(f, "no such instance {}", id.0),
        }
    }
}

impl std::error::Error for HostError {}

impl From<OutOfMemory> for HostError {
    fn from(e: OutOfMemory) -> Self {
        HostError::OutOfMemory(e)
    }
}

impl From<KernelError> for HostError {
    fn from(e: KernelError) -> Self {
        HostError::Kernel(e)
    }
}

/// A provisioned runtime environment.
#[derive(Debug)]
pub struct RuntimeInstance {
    /// Instance id.
    pub id: InstanceId,
    /// Runtime class.
    pub class: RuntimeClass,
    /// Device namespace (0 = host namespace, used by VMs).
    pub namespace: u32,
    /// Cgroup controlling the instance.
    pub cgroup: CgroupId,
    /// Host pid of the instance's anchor process (init or the VM process).
    pub init_pid: u32,
    /// Zygote pid (containers only; VMs keep theirs internal).
    pub zygote_pid: Option<u32>,
    /// Union mount (optimized containers only).
    pub mount: Option<UnionMount>,
    /// Disk bytes exclusively owned by this instance.
    pub exclusive_disk_bytes: u64,
    /// Mobile apps whose code has been loaded into the runtime.
    pub apps_loaded: BTreeSet<String>,
    /// Boot sequence the instance ran.
    pub boot: BootSequence,
    /// Total setup latency (boot + one-time module loading).
    pub setup_time: SimDuration,
}

/// Fixed dex-opt / verification cost when loading an app into a runtime.
const CLASSLOAD_FIXED: SimDuration = SimDuration::from_millis(150);

/// The cloud server hosting runtime environments.
#[derive(Debug)]
pub struct CloudHost {
    /// The host kernel (public for cross-crate tests and the platform).
    pub kernel: Kernel,
    layers: LayerStore,
    shared_layer: LayerId,
    /// Shared in-memory offloading-I/O layer (optimized containers).
    pub tmpfs: Tmpfs,
    memory: MemoryPool,
    full_image_bytes: u64,
    container_rootfs_bytes: u64,
    instances: BTreeMap<u32, RuntimeInstance>,
    next_id: u32,
    /// Observability recorder (disabled unless attached).
    rec: Recorder,
}

impl CloudHost {
    /// Bring up a host on `spec`, publishing the customized Android
    /// image as the Shared Resource Layer.
    pub fn new(spec: HostSpec) -> Self {
        let kernel = Kernel::new(spec);
        let full = android_x86_44_image();
        let (custom, _) = customize(&full);
        let container_rootfs_bytes = full
            .partition(|_, f| f.category.required_in_container())
            .0
            .total_bytes();
        let full_image_bytes = full.total_bytes();
        let mut layers = LayerStore::new();
        let shared_layer = layers.publish("shared-resource-layer", custom);
        CloudHost {
            kernel,
            layers,
            shared_layer,
            // Cap the offloading I/O layer at 2 GiB of the 16 GiB DRAM.
            tmpfs: Tmpfs::new(2 * 1024 * 1024 * 1024),
            memory: MemoryPool::new(spec.memory_bytes),
            full_image_bytes,
            container_rootfs_bytes,
            instances: BTreeMap::new(),
            next_id: 0,
            rec: Recorder::disabled(),
        }
    }

    /// Attach an observability recorder. The kernel shares the same
    /// handle, so binder/logcat/insmod events land in the same trace.
    pub fn attach_recorder(&mut self, rec: Recorder) {
        self.kernel.attach_recorder(rec.clone());
        self.rec = rec;
    }

    /// The attached observability recorder (disabled by default).
    /// Cross-host operations — migration, fleet control planes — use
    /// this to emit spans against the same clock and ring as the
    /// host's own provision/teardown events.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Host hardware description.
    pub fn host_spec(&self) -> HostSpec {
        self.kernel.host()
    }

    /// Provision a runtime of `class`. Returns the instance id and its
    /// setup latency (Table I's Setup Time).
    pub fn provision(
        &mut self,
        class: RuntimeClass,
    ) -> Result<(InstanceId, SimDuration), HostError> {
        let spec: RuntimeSpec = class.spec();
        self.memory.reserve(spec.memory_bytes)?;
        let result = self.provision_inner(class, spec);
        if result.is_err() {
            self.memory.release(spec.memory_bytes);
        }
        result
    }

    fn provision_inner(
        &mut self,
        class: RuntimeClass,
        spec: RuntimeSpec,
    ) -> Result<(InstanceId, SimDuration), HostError> {
        let id = InstanceId(self.next_id);
        let t0 = self.rec.now_us();
        let mut setup = class.boot_sequence().total();

        let (namespace, init_pid, zygote_pid, mount, exclusive) = if class.is_container() {
            // One-time kernel extension: "the extended drivers are only
            // included when certain containers are started" (§IV-B1).
            setup += self.kernel.load_android_container_driver();
            self.kernel.module_get_package()?;
            let ns = self.kernel.create_namespace();
            let init = self.kernel.processes.spawn(ns, "/init", 0);
            for kind in [
                DeviceKind::Binder,
                DeviceKind::Logger,
                DeviceKind::Alarm,
                DeviceKind::Ashmem,
            ] {
                self.kernel.syscall(init, Syscall::OpenDevice(kind))?;
            }
            let SyscallRet::Pid(zygote) = self.kernel.syscall(
                init,
                Syscall::Fork {
                    child_name: "zygote".into(),
                },
            )?
            else {
                unreachable!("fork returns a pid");
            };
            let SyscallRet::Pid(system_server) = self.kernel.syscall(
                zygote,
                Syscall::Fork {
                    child_name: "system_server".into(),
                },
            )?
            else {
                unreachable!("fork returns a pid");
            };
            for service in ["activity", "package", "offloadcontroller"] {
                self.kernel.syscall(
                    system_server,
                    Syscall::BinderRegister {
                        service: service.into(),
                    },
                )?;
            }
            // User-space bring-up leaves its marks in /dev/log/main, the
            // same ring `dump_log` surfaces into request timelines.
            for (pid, tag, message) in [
                (init, "init", "boot completed"),
                (zygote, "zygote", "preload done, accepting fork requests"),
                (
                    system_server,
                    "system_server",
                    "core services published on binder",
                ),
            ] {
                self.kernel.syscall(
                    pid,
                    Syscall::LogWrite {
                        priority: 4,
                        tag: tag.into(),
                        message: message.into(),
                    },
                )?;
            }
            let (mount, exclusive) = match class {
                RuntimeClass::CacOptimized => {
                    let mut m = UnionMount::new(&mut self.layers, vec![self.shared_layer]);
                    let private: FsImage = instance_private_files(id.0);
                    for (path, entry) in private.iter() {
                        m.write(&self.layers, path, entry.clone());
                    }
                    let excl = m.exclusive_bytes();
                    if self.rec.is_enabled() {
                        self.rec.instant(
                            Subsystem::Containerfs,
                            "union.mount",
                            attrs![
                                ("instance", AttrValue::U64(id.0 as u64)),
                                ("exclusive_bytes", AttrValue::U64(excl)),
                            ],
                        );
                    }
                    (Some(m), excl)
                }
                // Non-optimized containers copy the full rootfs privately.
                _ => (None, self.container_rootfs_bytes),
            };
            (ns, init, Some(zygote), mount, exclusive)
        } else {
            // A VM is one opaque host process with its own kernel inside.
            let pid = self.kernel.processes.spawn(0, "VirtualBoxVM", 0);
            (0, pid, None, None, self.full_image_bytes)
        };

        let cgroup = self.kernel.cgroups.create(
            &format!(
                "{}-{}",
                if class.is_container() { "cac" } else { "vm" },
                id.0
            ),
            1024,
            spec.memory_bytes,
        );
        self.kernel.cgroups.attach(cgroup, init_pid)?;

        if self.rec.is_enabled() {
            // The boot stages run after any one-time module loading, so
            // they occupy the tail of the setup window.
            let span = self.rec.span_start_at(
                Subsystem::Virt,
                "provision",
                SpanId::NONE,
                t0,
                attrs![
                    ("instance", AttrValue::U64(id.0 as u64)),
                    ("class", AttrValue::Str(class.label())),
                ],
            );
            let boot = class.boot_sequence();
            let mut at = t0 + (setup.as_micros() - boot.total().as_micros());
            for stage in boot.stages() {
                let s = self
                    .rec
                    .span_start_at(Subsystem::Virt, stage.name, span, at, vec![]);
                at += stage.duration.as_micros();
                self.rec.span_end_at(s, at, vec![]);
            }
            self.rec.span_end_at(span, t0 + setup.as_micros(), vec![]);
        }

        self.next_id += 1;
        self.instances.insert(
            id.0,
            RuntimeInstance {
                id,
                class,
                namespace,
                cgroup,
                init_pid,
                zygote_pid,
                mount,
                exclusive_disk_bytes: exclusive,
                apps_loaded: BTreeSet::new(),
                boot: class.boot_sequence(),
                setup_time: setup,
            },
        );
        Ok((id, setup))
    }

    /// Tear an instance down, releasing memory, processes, namespaces,
    /// mounts and module references.
    pub fn teardown(&mut self, id: InstanceId) -> Result<(), HostError> {
        let inst = self
            .instances
            .remove(&id.0)
            .ok_or(HostError::NoSuchInstance(id))?;
        if self.rec.is_enabled() {
            self.rec.instant(
                Subsystem::Virt,
                "teardown",
                attrs![
                    ("instance", AttrValue::U64(id.0 as u64)),
                    ("class", AttrValue::Str(inst.class.label())),
                ],
            );
        }
        self.memory.release(inst.class.spec().memory_bytes);
        if inst.class.is_container() {
            self.kernel.destroy_namespace(inst.namespace)?;
            self.kernel.module_put_package();
        } else {
            // The VM process exits.
            let _ = self.kernel.processes.exit(inst.init_pid);
            let _ = self.kernel.processes.reap(inst.init_pid);
        }
        if let Some(m) = inst.mount {
            m.unmount(&mut self.layers);
        }
        Ok(())
    }

    /// Immutable instance access.
    pub fn instance(&self, id: InstanceId) -> Result<&RuntimeInstance, HostError> {
        self.instances
            .get(&id.0)
            .ok_or(HostError::NoSuchInstance(id))
    }

    /// Mutable instance access.
    pub fn instance_mut(&mut self, id: InstanceId) -> Result<&mut RuntimeInstance, HostError> {
        self.instances
            .get_mut(&id.0)
            .ok_or(HostError::NoSuchInstance(id))
    }

    /// Instance ids in creation order.
    pub fn instance_ids(&self) -> Vec<InstanceId> {
        self.instances.keys().map(|&k| InstanceId(k)).collect()
    }

    /// Number of live instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Load mobile code into a runtime (ClassLoader + dexopt). Returns
    /// the time it costs; zero when the app is already resident — the
    /// dispatcher-affinity benefit of the cache table's CID column.
    pub fn load_app(
        &mut self,
        id: InstanceId,
        app_id: &str,
        code_bytes: u64,
    ) -> Result<SimDuration, HostError> {
        let disk_bw = self.host_spec().disk_bandwidth;
        let inst = self.instance_mut(id)?;
        if inst.apps_loaded.contains(app_id) {
            return Ok(SimDuration::ZERO);
        }
        let io_eff = inst.class.spec().io_efficiency;
        let t =
            CLASSLOAD_FIXED + SimDuration::from_secs_f64(code_bytes as f64 / (disk_bw * io_eff));
        inst.apps_loaded.insert(app_id.to_string());
        if self.rec.is_enabled() {
            let now = self.rec.now_us();
            let span = self.rec.span_start_at(
                Subsystem::Virt,
                "load_app",
                SpanId::NONE,
                now,
                attrs![
                    ("instance", AttrValue::U64(id.0 as u64)),
                    ("app", AttrValue::Text(app_id.to_string())),
                    ("code_bytes", AttrValue::U64(code_bytes)),
                ],
            );
            self.rec.span_end_at(span, now + t.as_micros(), vec![]);
        }
        Ok(t)
    }

    /// The control-plane hop that starts one offloaded execution: a
    /// binder transaction against the instance's `offloadcontroller`
    /// service. VMs carry their own binder inside the guest, so the
    /// host kernel sees nothing for them.
    pub fn offload_rpc(&mut self, id: InstanceId, payload_bytes: u64) -> Result<(), HostError> {
        let Some(zygote) = self.instance(id)?.zygote_pid else {
            return Ok(());
        };
        self.kernel.syscall(
            zygote,
            Syscall::BinderTransact {
                service: "offloadcontroller".into(),
                payload_bytes,
            },
        )?;
        Ok(())
    }

    /// Uncontended service time for `bytes` of offloading I/O inside the
    /// instance. Optimized containers go through the shared in-memory
    /// layer (and account the bytes in the tmpfs); the rest hit the HDD
    /// behind their virtualization I/O path.
    pub fn offload_io_time(
        &mut self,
        id: InstanceId,
        bytes: u64,
    ) -> Result<SimDuration, HostError> {
        let disk_bw = self.host_spec().disk_bandwidth;
        let spec = self.instance(id)?.class.spec();
        if spec.uses_shared_io_layer {
            let path = format!("/offload/io-{}", id.0);
            // Burn-after-reading: write then consume, leaving no residue.
            if self.tmpfs.write(&path, bytes).is_ok() {
                self.tmpfs.consume(&path);
            }
            if self.rec.is_enabled() {
                self.rec.instant(
                    Subsystem::Containerfs,
                    "tmpfs.io",
                    attrs![
                        ("instance", AttrValue::U64(id.0 as u64)),
                        ("bytes", AttrValue::U64(bytes)),
                    ],
                );
            }
            Ok(SimDuration::from_secs_f64(bytes as f64 / TMPFS_BANDWIDTH))
        } else {
            Ok(SimDuration::from_secs_f64(
                bytes as f64 / (disk_bw * spec.io_efficiency),
            ))
        }
    }

    /// Physical disk in use: shared layers once + per-instance exclusive
    /// bytes. This is the quantity behind the "at least 79 % disk
    /// savings" headline.
    pub fn total_disk_usage(&self) -> u64 {
        self.layers.total_shared_bytes()
            + self
                .instances
                .values()
                .map(|i| i.exclusive_disk_bytes)
                .sum::<u64>()
    }

    /// Host DRAM currently reserved by instances.
    pub fn memory_reserved(&self) -> u64 {
        self.memory.used()
    }

    /// Peak host DRAM reserved.
    pub fn memory_peak(&self) -> u64 {
        self.memory.peak()
    }

    /// Bytes of the published Shared Resource Layer.
    pub fn shared_layer_bytes(&self) -> u64 {
        self.layers
            .layer_bytes(self.shared_layer)
            .expect("published at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::{gib, mib};

    fn host() -> CloudHost {
        CloudHost::new(HostSpec::paper_server())
    }

    #[test]
    fn provision_each_class_with_table1_setup_times() {
        let mut h = host();
        let (_, t_vm) = h.provision(RuntimeClass::AndroidVm).unwrap();
        assert_eq!(t_vm, SimDuration::from_millis(28_720));
        let (_, t_wo) = h.provision(RuntimeClass::CacUnoptimized).unwrap();
        // First container pays the one-time insmod cost on top of boot.
        assert!(t_wo >= SimDuration::from_millis(6_800));
        assert!(t_wo < SimDuration::from_millis(6_900));
        let (_, t_opt) = h.provision(RuntimeClass::CacOptimized).unwrap();
        assert_eq!(
            t_opt,
            SimDuration::from_millis(1_750),
            "modules already loaded"
        );
    }

    #[test]
    fn container_provisioning_builds_real_android_userspace() {
        let mut h = host();
        let (id, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        let inst = h.instance(id).unwrap();
        let ns = inst.namespace;
        assert_ne!(ns, 0);
        // Zygote and services exist and binder routes inside the namespace.
        let zygote = inst.zygote_pid.unwrap();
        let SyscallRet::Pid(app) = h
            .kernel
            .syscall(
                zygote,
                Syscall::Fork {
                    child_name: "com.bench.ocr".into(),
                },
            )
            .unwrap()
        else {
            panic!()
        };
        let served = h
            .kernel
            .syscall(
                app,
                Syscall::BinderTransact {
                    service: "activity".into(),
                    payload_bytes: 64,
                },
            )
            .unwrap();
        assert!(matches!(served, SyscallRet::ServedBy(_)));
    }

    #[test]
    fn namespaces_isolate_containers() {
        let mut h = host();
        let (a, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        let (b, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        let ns_a = h.instance(a).unwrap().namespace;
        let ns_b = h.instance(b).unwrap().namespace;
        assert_ne!(ns_a, ns_b);
        // Services registered in a's namespace are invisible in b's.
        assert!(h
            .kernel
            .binder_mut(ns_a)
            .unwrap()
            .lookup("activity")
            .is_some());
        assert!(h
            .kernel
            .binder_mut(ns_b)
            .unwrap()
            .lookup("activity")
            .is_some());
        h.kernel
            .binder_mut(ns_a)
            .unwrap()
            .register_service("only-a", 999)
            .unwrap();
        assert!(h
            .kernel
            .binder_mut(ns_b)
            .unwrap()
            .lookup("only-a")
            .is_none());
    }

    #[test]
    fn disk_usage_matches_table1_shape() {
        let mut h = host();
        let base = h.total_disk_usage(); // shared layer only
        let (vm, _) = h.provision(RuntimeClass::AndroidVm).unwrap();
        let vm_disk = h.instance(vm).unwrap().exclusive_disk_bytes;
        assert!(
            (vm_disk as f64 / gib(1) as f64 - 1.10).abs() < 0.01,
            "VM ≈ 1.1 GiB"
        );
        let (wo, _) = h.provision(RuntimeClass::CacUnoptimized).unwrap();
        let wo_disk = h.instance(wo).unwrap().exclusive_disk_bytes;
        assert!(
            (wo_disk as f64 / gib(1) as f64 - 1.02).abs() < 0.01,
            "W/O ≈ 1.02 GiB"
        );
        let (opt, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        let opt_disk = h.instance(opt).unwrap().exclusive_disk_bytes;
        assert!(
            opt_disk < mib(8),
            "optimized CAC < 7.1 MB + slack, got {opt_disk}"
        );
        assert_eq!(h.total_disk_usage(), base + vm_disk + wo_disk + opt_disk);
    }

    #[test]
    fn ten_optimized_containers_share_one_layer() {
        let mut h = host();
        let shared = h.shared_layer_bytes();
        for _ in 0..10 {
            h.provision(RuntimeClass::CacOptimized).unwrap();
        }
        let total = h.total_disk_usage();
        // 10 containers cost the shared layer once + ~7 MiB each,
        // nowhere near 10 full images.
        assert!(total < shared + mib(80), "total {total}");
        assert!(total >= shared + 10 * mib(6));
    }

    #[test]
    fn memory_reservation_and_release() {
        let mut h = host();
        let (vm, _) = h.provision(RuntimeClass::AndroidVm).unwrap();
        assert_eq!(h.memory_reserved(), mib(512));
        let (cac, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        assert_eq!(h.memory_reserved(), mib(512 + 96));
        h.teardown(vm).unwrap();
        h.teardown(cac).unwrap();
        assert_eq!(h.memory_reserved(), 0);
        assert_eq!(h.memory_peak(), mib(608));
        assert_eq!(h.instance_count(), 0);
    }

    #[test]
    fn teardown_releases_kernel_objects() {
        let mut h = host();
        let (id, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        let ns = h.instance(id).unwrap().namespace;
        assert!(h.kernel.namespace_exists(ns));
        h.teardown(id).unwrap();
        assert!(!h.kernel.namespace_exists(ns));
        // With no containers left, the driver package can be unloaded.
        assert!(h.kernel.unload_module("android_binder.ko").is_ok());
        assert!(h.teardown(id).is_err(), "double teardown");
    }

    #[test]
    fn memory_exhaustion_is_clean() {
        let mut h = host();
        // 16 GiB / 512 MiB = 31 VMs fit (kernel reserves nothing here).
        let mut n = 0;
        loop {
            match h.provision(RuntimeClass::AndroidVm) {
                Ok(_) => n += 1,
                Err(HostError::OutOfMemory(_)) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(n, 32);
        // Failure left no half-provisioned instance behind.
        assert_eq!(h.instance_count(), 32);
    }

    #[test]
    fn app_loading_costs_once_per_runtime() {
        let mut h = host();
        let (id, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        let t1 = h
            .load_app(id, "com.bench.chessgame", 2 * 1024 * 1024)
            .unwrap();
        assert!(t1 > CLASSLOAD_FIXED);
        let t2 = h
            .load_app(id, "com.bench.chessgame", 2 * 1024 * 1024)
            .unwrap();
        assert_eq!(t2, SimDuration::ZERO, "already loaded");
        let t3 = h.load_app(id, "com.bench.linpack", 137_216).unwrap();
        assert!(t3 > SimDuration::ZERO);
    }

    #[test]
    fn shared_io_layer_is_much_faster_and_burns_after_reading() {
        let mut h = host();
        let (opt, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        let (vm, _) = h.provision(RuntimeClass::AndroidVm).unwrap();
        let bytes = 900 * 1024;
        let t_opt = h.offload_io_time(opt, bytes).unwrap();
        let t_vm = h.offload_io_time(vm, bytes).unwrap();
        assert!(
            t_vm.as_secs_f64() / t_opt.as_secs_f64() > 20.0,
            "tmpfs should crush the virtualized HDD path: {t_opt} vs {t_vm}"
        );
        assert_eq!(h.tmpfs.used(), 0, "burn after reading");
        assert!(h.tmpfs.total_written() > 0);
    }

    #[test]
    fn instrumented_provision_spans_virt_hostkernel_and_containerfs() {
        use obsv::{RecorderConfig, TraceEvent};
        let mut h = host();
        let rec = obsv::Recorder::enabled(RecorderConfig::default());
        h.attach_recorder(rec.clone());
        let (id, _) = h.provision(RuntimeClass::CacOptimized).unwrap();
        h.offload_rpc(id, 4096).unwrap();
        let snap = rec.snapshot();
        let cats: std::collections::BTreeSet<&str> = snap
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Begin { subsystem, .. } | TraceEvent::Instant { subsystem, .. } => {
                    Some(subsystem.name())
                }
                TraceEvent::End { .. } => None,
            })
            .collect();
        assert!(cats.contains("virt"), "provision + boot stage spans");
        assert!(cats.contains("hostkernel"), "insmod + binder instants");
        assert!(cats.contains("containerfs"), "union.mount instant");
        // The boot-stage children tile the provision span exactly.
        let begins = snap
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Begin { name, .. } if *name == "provision"))
            .count();
        assert_eq!(begins, 1);
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Instant { name, .. } if *name == "binder.transact")));
        // Boot left renderable lines in the namespace logger ring.
        let ns = h.instance(id).unwrap().namespace;
        let lines = h.kernel.dump_log(ns).unwrap();
        assert!(lines.iter().any(|l| l.tag == "system_server"));
    }

    #[test]
    fn offload_rpc_is_a_noop_for_vms() {
        let mut h = host();
        let (vm, _) = h.provision(RuntimeClass::AndroidVm).unwrap();
        h.offload_rpc(vm, 1024).unwrap();
    }

    #[test]
    fn vm_load_app_slower_than_container() {
        let mut h = host();
        let (vm, _) = h.provision(RuntimeClass::AndroidVm).unwrap();
        let (cac, _) = h.provision(RuntimeClass::CacUnoptimized).unwrap();
        let code = 2 * 1024 * 1024;
        let t_vm = h.load_app(vm, "app", code).unwrap();
        let t_cac = h.load_app(cac, "app", code).unwrap();
        assert!(t_vm > t_cac);
    }
}
