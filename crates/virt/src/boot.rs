//! Boot sequences: Android device/VM boot vs Cloud Android Container
//! boot (Fig. 6).
//!
//! The VM walks the full chain — bootloader, kernel + ramdisk, rootfs
//! mount, init, Zygote preload, system services — while the container
//! "jumps directly to the terminus": it shares the host kernel, its
//! rootfs is prebuilt before start, and a modified init trims the
//! user-space bring-up (§IV-B2). Stage durations are calibrated so the
//! totals land on Table I (28.72 s / 6.80 s / 1.75 s).

use simkit::SimDuration;

/// One named stage of a boot sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootStage {
    /// Human-readable stage name.
    pub name: &'static str,
    /// Time the stage takes.
    pub duration: SimDuration,
}

/// An ordered list of boot stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootSequence {
    stages: Vec<BootStage>,
}

impl BootSequence {
    /// Build from `(name, milliseconds)` pairs.
    pub fn from_millis(stages: &[(&'static str, u64)]) -> Self {
        BootSequence {
            stages: stages
                .iter()
                .map(|&(name, ms)| BootStage {
                    name,
                    duration: SimDuration::from_millis(ms),
                })
                .collect(),
        }
    }

    /// The stages in order.
    pub fn stages(&self) -> &[BootStage] {
        &self.stages
    }

    /// Total boot time.
    pub fn total(&self) -> SimDuration {
        self.stages
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration)
    }

    /// Cumulative time at the end of each stage (for timeline plots).
    pub fn cumulative(&self) -> Vec<(&'static str, SimDuration)> {
        let mut acc = SimDuration::ZERO;
        self.stages
            .iter()
            .map(|s| {
                acc += s.duration;
                (s.name, acc)
            })
            .collect()
    }
}

/// Android-x86 VM boot under VirtualBox (Fig. 6a) — Table I: 28.72 s.
pub fn android_vm_boot() -> BootSequence {
    BootSequence::from_millis(&[
        ("power-on self test", 2_200),
        ("bootloader", 1_800),
        ("load kernel + ramdisk", 4_500),
        ("kernel init + mount rootfs", 6_000),
        ("init process + rc scripts", 3_200),
        ("zygote + class preload", 6_500),
        ("system_server + core services", 4_000),
        ("connect to dispatcher", 520),
    ])
}

/// Cloud Android Container without OS optimization — Table I: 6.80 s.
/// The kernel is shared and the rootfs prebuilt, but init/Zygote still
/// run the stock Android bring-up.
pub fn cac_unoptimized_boot() -> BootSequence {
    BootSequence::from_millis(&[
        ("populate rootfs (full copy)", 2_600),
        ("container start (namespaces/cgroups)", 180),
        ("stock init + rc scripts", 1_250),
        ("zygote + class preload", 1_950),
        ("system_server + core services", 620),
        ("connect to dispatcher", 200),
    ])
}

/// Optimized Cloud Android Container boot (Fig. 6b) — Table I: 1.75 s.
/// Shared-layer mount replaces rootfs population, and the modified init
/// strips UI/telephony services and fakes their interfaces (§IV-B3).
pub fn cac_optimized_boot() -> BootSequence {
    BootSequence::from_millis(&[
        ("mount shared resource layer", 250),
        ("container start (namespaces/cgroups)", 150),
        ("modified init", 480),
        ("zygote (minimal preload)", 520),
        ("stripped system services", 250),
        ("connect to dispatcher", 100),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table1() {
        assert_eq!(android_vm_boot().total(), SimDuration::from_millis(28_720));
        assert_eq!(
            cac_unoptimized_boot().total(),
            SimDuration::from_millis(6_800)
        );
        assert_eq!(
            cac_optimized_boot().total(),
            SimDuration::from_millis(1_750)
        );
    }

    #[test]
    fn setup_speedups_match_section_vi_b() {
        let vm = android_vm_boot().total().as_secs_f64();
        let wo = cac_unoptimized_boot().total().as_secs_f64();
        let opt = cac_optimized_boot().total().as_secs_f64();
        // "4.22x speedup of preparation time" and "16.41x".
        assert!((vm / wo - 4.22).abs() < 0.05, "W/O speedup {}", vm / wo);
        assert!(
            (vm / opt - 16.41).abs() < 0.1,
            "optimized speedup {}",
            vm / opt
        );
    }

    #[test]
    fn container_boots_have_no_kernel_stage() {
        for seq in [cac_unoptimized_boot(), cac_optimized_boot()] {
            assert!(
                seq.stages().iter().all(|s| !s.name.contains("kernel")),
                "containers share the host kernel"
            );
            assert!(seq.stages().iter().all(|s| !s.name.contains("bootloader")));
        }
        assert!(android_vm_boot()
            .stages()
            .iter()
            .any(|s| s.name.contains("kernel")));
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_total() {
        let seq = android_vm_boot();
        let cum = seq.cumulative();
        assert!(cum.windows(2).all(|w| w[1].1 >= w[0].1));
        assert_eq!(cum.last().unwrap().1, seq.total());
        assert_eq!(cum.len(), seq.stages().len());
    }
}
