//! Criterion bench of the end-to-end simulation — one run per platform
//! per workload (the engine behind Figs. 1/9/10 and Tables I/II).

use criterion::{criterion_group, criterion_main, Criterion};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig};
use std::hint::black_box;
use workloads::WorkloadKind;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("offload_path");
    for platform in PlatformKind::ALL {
        group.bench_function(format!("sim_5x20_ocr_{}", platform.label()), |b| {
            b.iter(|| {
                let cfg = ScenarioConfig::paper_default(platform.config(), WorkloadKind::Ocr, 7);
                black_box(run_scenario(cfg))
            })
        });
    }
    group.bench_function("sim_5x20_virusscan_rattrap", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig::paper_default(
                PlatformKind::Rattrap.config(),
                WorkloadKind::VirusScan,
                7,
            );
            black_box(run_scenario(cfg))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation
}
criterion_main!(benches);
