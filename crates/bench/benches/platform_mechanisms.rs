//! Criterion benches of Rattrap's individual mechanisms: the code
//! cache, the union filesystem, binder IPC, and the access controller.

use containerfs::{android_x86_44_image, customize, FileEntry, LayerStore, UnionMount};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hostkernel::binder::BinderContext;
use rattrap::{aid_of, AccessController, Action, AppWarehouse};
use std::hint::black_box;
use virt::InstanceId;

fn bench_warehouse(c: &mut Criterion) {
    let mut group = c.benchmark_group("code_cache");
    group.bench_function("lookup_hit", |b| {
        let mut w = AppWarehouse::new(512 << 20);
        let aid = aid_of("com.bench.chessgame");
        w.insert(aid.clone(), "com.bench.chessgame", 2 << 20);
        b.iter(|| black_box(w.lookup(&aid)))
    });
    group.bench_function("insert_evict_under_pressure", |b| {
        b.iter_batched(
            || AppWarehouse::new(16 << 20),
            |mut w| {
                for i in 0..32u32 {
                    let app = format!("app{i}");
                    w.insert(aid_of(&app), &app, 1 << 20);
                }
                w
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("aid_derivation", |b| {
        b.iter(|| black_box(aid_of("com.example.very.long.package.name")))
    });
    group.finish();
}

fn bench_unionfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_fs");
    // The real shared resource layer: ~5000 files.
    let mut store = LayerStore::new();
    let (custom, _) = customize(&android_x86_44_image());
    let layer = store.publish("shared", custom);
    let mount = UnionMount::new(&mut store, vec![layer]);
    group.bench_function("lookup_through_shared_layer", |b| {
        b.iter(|| black_box(mount.lookup(&store, "/system/framework/framework30.jar")))
    });
    group.bench_function("publish_customized_image", |b| {
        b.iter_batched(
            || customize(&android_x86_44_image()).0,
            |img| {
                let mut s = LayerStore::new();
                black_box(s.publish("shared", img));
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("copy_up_write", |b| {
        b.iter_batched(
            || {
                let mut s = LayerStore::new();
                let (img, _) = customize(&android_x86_44_image());
                let l = s.publish("shared", img);
                let m = UnionMount::new(&mut s, vec![l]);
                (s, m)
            },
            |(s, mut m)| {
                m.write(
                    &s,
                    "/system/framework/framework00.jar",
                    FileEntry::new(1, containerfs::FileCategory::OffloadData),
                );
                (s, m)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_binder(c: &mut Criterion) {
    let mut group = c.benchmark_group("binder_ipc");
    let mut ctx = BinderContext::new();
    for (i, svc) in ["activity", "package", "offloadcontroller", "media", "input"]
        .iter()
        .enumerate()
    {
        ctx.register_service(svc, i as u32 + 1)
            .expect("unique names");
    }
    group.bench_function("transact", |b| {
        b.iter(|| black_box(ctx.transact("offloadcontroller", 256)))
    });
    group.bench_function("lookup_service", |b| {
        b.iter(|| black_box(ctx.lookup("media")))
    });
    group.finish();
}

fn bench_access_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("access_control");
    let mut ac = AccessController::new(10);
    ac.admit("com.bench.ocr", 280 << 10);
    let action = Action::FsWrite { bytes: 100 << 10 };
    group.bench_function("filter_check", |b| {
        b.iter(|| black_box(ac.check("com.bench.ocr", &action)))
    });
    group.finish();
}

fn bench_noop_marker(_c: &mut Criterion) {
    // Keeps the group list explicit; InstanceId used to silence import.
    let _ = InstanceId(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_warehouse, bench_unionfs, bench_binder, bench_access_controller, bench_noop_marker
}
criterion_main!(benches);
