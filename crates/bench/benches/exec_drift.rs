//! Real-execution baseline for the `exec` backend.
//!
//! Runs every workload kernel for real at every input size on a
//! bounded worker pool and writes `BENCH_exec.json` (path overridable
//! via `BENCH_EXEC_OUT`) with, per `(kernel, size)` cell:
//!
//! * **real_ms** — median wall time of the genuine kernel execution,
//! * **modeled_ms** — the cycle model's charge at the paper server's
//!   clock, and
//! * **drift_ratio** — `real / modeled`, the calibration signal
//!   `perf_gate exec` regresses against.
//!
//! All twelve cells are always emitted, even in smoke mode (one rep
//! instead of five) — the gate treats a vanished metric as FAIL, so
//! coverage itself is gated.
//!
//! The vendored Criterion stub has no machine-readable output, so this
//! bench is a plain `harness = false` main with its own timing loop.

use rattrap_bench::experiments::drift::sweep;

fn main() {
    let meta = rattrap_bench::RunMeta::capture(rattrap_bench::DEFAULT_SEED);
    println!("{}", meta.header());

    let smoke = rattrap_bench::experiments::smoke();
    let rows = sweep(meta.seed, smoke);
    for r in &rows {
        println!(
            "{:<10} {}: modeled {:.2}ms, real {:.2}ms, drift {:.3}x",
            r.kind.label(),
            r.size.label(),
            r.modeled_ms,
            r.real_ms,
            r.ratio
        );
    }

    let out = rattrap_bench::meta::baseline_out("BENCH_EXEC_OUT", "BENCH_exec.json");
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"kernel\": \"{}\", \"size\": \"{}\", \"real_ms\": {:.4}, \
                 \"modeled_ms\": {:.4}, \"drift_ratio\": {:.4} }}",
                r.kind.label(),
                r.size.label(),
                r.real_ms,
                r.modeled_ms,
                r.ratio
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"exec_drift\",\n  \"seed\": {},\n  \"toolchain\": \"{}\",\n  \
         \"git_sha\": \"{}\",\n  \"smoke\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        meta.seed,
        meta.toolchain,
        meta.git_sha,
        meta.smoke,
        cells.join(",\n")
    );
    obsv::json::parse(&json).expect("baseline JSON parses");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("baseline written to {}", out.display());
}
