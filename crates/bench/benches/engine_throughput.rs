//! Event-engine throughput: global-queue serial vs sharded windowed.
//!
//! A PHOLD-style closed workload over `HOSTS` simulated hosts, each
//! owning a 256 KiB state block. A fixed population of event chains
//! bounces over the hosts: every event touches a pseudo-random set of
//! cache lines in its host's state, then schedules its continuation —
//! usually on the same host after ~1 ms, occasionally (1 in 16) on
//! another host after one sync window. All continuation decisions
//! derive from the chain's own seed, so **both engines execute the
//! exact same logical event set** and events/sec is an apples-to-
//! apples ratio.
//!
//! Two engines process that set:
//!
//! * **global** — one `EventQueue` over all hosts, the monolithic
//!   design the fleet engine had before the sharded rewrite.
//!   Same-timestamp events interleave across hosts, so consecutive
//!   events touch unrelated state blocks and the working set is
//!   `HOSTS × 256 KiB`.
//! * **sharded** — `simkit::shard::run_sharded` with one LP per host
//!   and a conservative window: each LP drains a *batch* of its own
//!   events per window, so its 256 KiB block stays hot in cache; on
//!   multi-core machines `Threads(n)` additionally runs LPs in
//!   parallel.
//!
//! On a single-core machine the sharded speedup is pure locality (the
//! thread cells are flat); on multi-core it compounds with
//! parallelism. Writes `BENCH_engine.json` (override the path with
//! `BENCH_ENGINE_OUT`).

use simkit::shard::{run_sharded, Lp, Outbox, ShardMode};
use simkit::{derive_seed, EventQueue, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Simulated hosts (= LPs in the sharded engine).
const HOSTS: usize = 128;
/// Event chains resident on each host at t = 0.
const CHAINS_PER_HOST: usize = 4;
/// u64 slots of per-host state (32768 × 8 B = 256 KiB).
const STATE_SLOTS: usize = 32_768;
/// Cache lines touched per event (read-modify-write).
const TOUCHES: usize = 512;
/// Conservative sync window, microseconds.
const WINDOW_US: u64 = 40_000;
/// Chance denominator of a chain hopping hosts (1 in 16).
const HOP_MOD: u64 = 16;

/// splitmix-style scramble: cheap, stateless, and good enough to
/// defeat the hardware prefetcher.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The per-event work: touch `TOUCHES` pseudo-random slots of the
/// host's state block.
#[inline]
fn touch(state: &mut [u64], seed: u64) -> u64 {
    let mut acc = seed;
    for i in 0..TOUCHES {
        let ix = (mix(seed ^ (i as u64)) as usize) % STATE_SLOTS;
        state[ix] = state[ix].wrapping_add(acc);
        acc = acc.wrapping_add(state[ix]);
    }
    acc
}

/// The continuation of a chain event, derived from the chain seed
/// alone so every engine schedules the identical event set:
/// `(next_seed, dst_host, delay)`.
#[inline]
fn continuation(seed: u64, host: usize) -> (u64, usize, SimDuration) {
    let next = mix(seed);
    if next.is_multiple_of(HOP_MOD) {
        // Hop to another host; one conservative window of latency.
        let dst = ((next / HOP_MOD) as usize) % HOSTS;
        (next, dst, SimDuration::from_micros(WINDOW_US))
    } else {
        // Stay local after ~0.5–1.5 ms.
        let delay = 500 + next % 1000;
        (next, host, SimDuration::from_micros(delay))
    }
}

/// Initial chain seeds for one host.
fn chain_seeds(host: usize) -> Vec<u64> {
    (0..CHAINS_PER_HOST)
        .map(|c| derive_seed(0xE4E4, (host * CHAINS_PER_HOST + c) as u64))
        .collect()
}

/// The monolithic engine: one queue over every host.
fn run_global(horizon: SimTime) -> u64 {
    let mut states: Vec<Vec<u64>> = (0..HOSTS).map(|_| vec![0u64; STATE_SLOTS]).collect();
    let mut queue: EventQueue<(usize, u64)> = EventQueue::new();
    for host in 0..HOSTS {
        for seed in chain_seeds(host) {
            queue.schedule(SimTime::ZERO, (host, seed));
        }
    }
    let mut events = 0u64;
    while let Some(t) = queue.peek_time() {
        if t >= horizon {
            break;
        }
        let (now, (host, seed)) = queue.pop().expect("peeked");
        std::hint::black_box(touch(&mut states[host], seed));
        events += 1;
        let (next, dst, delay) = continuation(seed, host);
        queue.schedule(now.saturating_add(delay), (dst, next));
    }
    events
}

/// A faithful replica of the engine queue this workspace shipped before
/// the timing wheel (the one the committed `BENCH_engine.json` baseline
/// was measured on): a binary heap keyed on `(time, insertion_seq)`
/// plus the two `BTreeSet`s — `live` (inserted on every schedule,
/// removed on every pop, keeping `cancel` exact) and `cancelled`
/// (consulted by `skip_cancelled` on every peek/pop). The sets are what
/// made the old design `O(log n)` *with large constants*: two ordered-
/// tree updates per event even when nothing is ever cancelled.
struct HeapEngineQueue {
    heap: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    live: std::collections::BTreeSet<u64>,
    cancelled: std::collections::BTreeSet<u64>,
    seq: u64,
}

impl HeapEngineQueue {
    fn new() -> Self {
        HeapEngineQueue {
            heap: BinaryHeap::new(),
            live: std::collections::BTreeSet::new(),
            cancelled: std::collections::BTreeSet::new(),
            seq: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, host: usize, seed: u64) {
        self.heap
            .push(Reverse((at.as_micros(), self.seq, host, seed)));
        self.live.insert(self.seq);
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, usize, u64)> {
        while let Some(Reverse((_, seq, _, _))) = self.heap.peek() {
            if self.cancelled.remove(seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
        let Reverse((at, seq, host, seed)) = self.heap.pop()?;
        self.live.remove(&seq);
        Some((SimTime::from_micros(at), host, seed))
    }
}

/// Queue-bound PHOLD on the timing-wheel queue: the identical chain /
/// continuation event set as [`run_global`] with the state touching
/// removed, so wall time is almost pure scheduler cost (schedule +
/// pop with `HOSTS × CHAINS_PER_HOST` resident events).
fn run_queue_bound_wheel(horizon: SimTime) -> u64 {
    let mut queue: EventQueue<(usize, u64)> = EventQueue::new();
    for host in 0..HOSTS {
        for seed in chain_seeds(host) {
            queue.schedule(SimTime::ZERO, (host, seed));
        }
    }
    let mut events = 0u64;
    while let Some(t) = queue.peek_time() {
        if t >= horizon {
            break;
        }
        let (now, (host, seed)) = queue.pop().expect("peeked");
        events += 1;
        let (next, dst, delay) = continuation(seed, host);
        queue.schedule(now.saturating_add(delay), (dst, next));
    }
    std::hint::black_box(events)
}

/// Queue-bound PHOLD on the pre-wheel comparison-ordered reference.
fn run_queue_bound_heap(horizon: SimTime) -> u64 {
    let mut queue = HeapEngineQueue::new();
    for host in 0..HOSTS {
        for seed in chain_seeds(host) {
            queue.schedule(SimTime::ZERO, host, seed);
        }
    }
    let mut events = 0u64;
    while let Some((now, host, seed)) = queue.pop() {
        if now >= horizon {
            break;
        }
        events += 1;
        let (next, dst, delay) = continuation(seed, host);
        queue.schedule(now.saturating_add(delay), dst, next);
    }
    std::hint::black_box(events)
}

struct HostShard {
    host: usize,
    state: Vec<u64>,
    queue: EventQueue<u64>,
    horizon: SimTime,
    events: u64,
}

impl Lp for HostShard {
    type Msg = u64;

    fn next_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn run_window(&mut self, bound: SimTime, out: &mut Outbox<u64>) {
        while self.queue.peek_time().is_some_and(|t| t < bound) {
            let (now, seed) = self.queue.pop().expect("peeked");
            if now >= self.horizon {
                continue;
            }
            std::hint::black_box(touch(&mut self.state, seed));
            self.events += 1;
            let (next, dst, delay) = continuation(seed, self.host);
            if dst == self.host {
                self.queue.schedule(now.saturating_add(delay), next);
            } else {
                out.send(now, dst, next);
            }
        }
    }

    fn accept(&mut self, at: SimTime, _src: usize, msg: u64) {
        if at < self.horizon {
            self.queue.schedule(at, msg);
        }
    }
}

/// The sharded engine: one LP per host, conservative windows.
fn run_lp_engine(horizon: SimTime, mode: ShardMode) -> u64 {
    let build = move |host: usize| {
        let mut queue = EventQueue::new();
        for seed in chain_seeds(host) {
            queue.schedule(SimTime::ZERO, seed);
        }
        HostShard {
            host,
            state: vec![0u64; STATE_SLOTS],
            queue,
            horizon,
            events: 0,
        }
    };
    run_sharded(
        HOSTS,
        SimDuration::from_micros(WINDOW_US),
        mode,
        build,
        |_, lp: HostShard| lp.events,
    )
    .into_iter()
    .sum()
}

/// Median wall-seconds of `runs` invocations of `f` (returning the
/// event count of the last run).
fn median_secs(runs: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut events = 0;
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            events = f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[samples.len() / 2], events)
}

fn main() {
    let meta = rattrap_bench::RunMeta::capture(rattrap_bench::DEFAULT_SEED);
    println!("{}", meta.header());

    let smoke = rattrap_bench::experiments::smoke();
    let horizon = SimTime::from_millis(if smoke { 250 } else { 2000 });
    let timing_runs = if smoke { 1 } else { 5 };

    let (base_wall, base_events) = median_secs(timing_runs, || run_global(horizon));
    let base_rate = base_events as f64 / base_wall;
    println!(
        "global queue: {base_events} events, {:.3}s wall, {:.0} events/s",
        base_wall, base_rate
    );

    let mut cells = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (wall, events) = median_secs(timing_runs, || {
            run_lp_engine(horizon, ShardMode::Threads(threads))
        });
        let rate = events as f64 / wall;
        assert_eq!(
            events, base_events,
            "the engines must execute the same event set"
        );
        println!(
            "sharded x{threads}: {events} events, {wall:.3}s wall, {rate:.0} events/s \
             ({:.2}x global)",
            rate / base_rate
        );
        cells.push((threads, rate, wall));
    }

    // Queue-bound cells: same event set, zero state touching — the
    // heavy cells above amortise the scheduler under 512 cache-line
    // touches per event, so queue improvements barely move them. These
    // isolate pure schedule/pop cost, wheel vs the pre-wheel heap.
    // Cheap enough to always take ≥3 timing runs.
    let qb_runs = timing_runs.max(3);
    let (qb_heap_wall, qb_heap_events) = median_secs(qb_runs, || run_queue_bound_heap(horizon));
    let (qb_wheel_wall, qb_wheel_events) = median_secs(qb_runs, || run_queue_bound_wheel(horizon));
    assert_eq!(
        qb_wheel_events, qb_heap_events,
        "queue-bound engines must execute the same event set"
    );
    let qb_heap_rate = qb_heap_events as f64 / qb_heap_wall;
    let qb_wheel_rate = qb_wheel_events as f64 / qb_wheel_wall;
    let wheel_over_heap = qb_wheel_rate / qb_heap_rate;
    println!(
        "queue-bound heap:  {qb_heap_events} events, {qb_heap_wall:.3}s wall, \
         {qb_heap_rate:.0} events/s"
    );
    println!(
        "queue-bound wheel: {qb_wheel_events} events, {qb_wheel_wall:.3}s wall, \
         {qb_wheel_rate:.0} events/s ({wheel_over_heap:.2}x heap)"
    );

    let out = rattrap_bench::meta::baseline_out("BENCH_ENGINE_OUT", "BENCH_engine.json");
    let rows: Vec<String> = cells
        .iter()
        .map(|(threads, rate, wall)| {
            format!(
                "    {{ \"threads\": {threads}, \"events_per_sec\": {rate:.0}, \
                 \"wall_secs\": {wall:.4}, \"speedup_vs_global\": {:.3} }}",
                rate / base_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"toolchain\": \"{}\",\n  \
         \"git_sha\": \"{}\",\n  \"smoke\": {},\n  \"hosts\": {HOSTS},\n  \
         \"events\": {base_events},\n  \
         \"global_events_per_sec\": {base_rate:.0},\n  \
         \"queue_bound\": {{\n    \"resident_events\": {},\n    \
         \"heap_events_per_sec\": {qb_heap_rate:.0},\n    \
         \"wheel_events_per_sec\": {qb_wheel_rate:.0},\n    \
         \"wheel_over_heap\": {wheel_over_heap:.3}\n  }},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        meta.toolchain,
        meta.git_sha,
        meta.smoke,
        HOSTS * CHAINS_PER_HOST,
        rows.join(",\n")
    );
    obsv::json::parse(&json).expect("engine JSON parses");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("baseline written to {}", out.display());
}
