//! Criterion benches of the real compute kernels behind the four
//! benchmark applications — these validate the *relative* compute
//! weights the offloading profiles encode (OCR heaviest per byte,
//! chess bursty, scan throughput-bound, Linpack cubic).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simkit::SimRng;
use std::hint::black_box;
use workloads::chess::{best_move, perft, Board};
use workloads::linpack;
use workloads::ocr::{generate_request, recognize};
use workloads::virusscan::{generate_corpus, generate_database, scan};

fn bench_chess(c: &mut Criterion) {
    let mut group = c.benchmark_group("chess");
    let board = Board::start();
    group.bench_function("perft3_start", |b| b.iter(|| black_box(perft(&board, 3))));
    let kiwipete =
        Board::from_fen("r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq - 0 1")
            .expect("valid FEN");
    group.bench_function("alphabeta_d3_kiwipete", |b| {
        b.iter(|| black_box(best_move(&kiwipete, 3)))
    });
    group.finish();
}

fn bench_ocr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ocr");
    let mut rng = SimRng::new(1);
    let req = generate_request(8, &mut rng);
    group.throughput(Throughput::Bytes(req.image.byte_size()));
    group.bench_function("recognize_8_words", |b| {
        b.iter(|| black_box(recognize(&req.image)))
    });
    group.finish();
}

fn bench_virusscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("virusscan");
    let mut rng = SimRng::new(2);
    let db = generate_database(1000, &mut rng);
    let corpus = generate_corpus(20, 16 * 1024, 0.1, &db, &mut rng);
    let bytes: u64 = corpus.iter().map(|f| f.data.len() as u64).sum();
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("scan_20x16k_1000sigs", |b| {
        b.iter(|| black_box(scan(&db, &corpus)))
    });
    group.bench_function("build_automaton_1000sigs", |b| {
        b.iter(|| {
            black_box(workloads::virusscan::AhoCorasick::build(
                &db.iter().map(|s| s.pattern.as_slice()).collect::<Vec<_>>(),
            ))
        })
    });
    group.finish();
}

fn bench_linpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("linpack");
    for n in [50usize, 100, 200] {
        group.bench_function(format!("lu_solve_n{n}"), |b| {
            let mut rng = SimRng::new(3);
            b.iter(|| black_box(linpack::run(n, &mut rng).expect("nonsingular")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chess, bench_ocr, bench_virusscan, bench_linpack
}
criterion_main!(benches);
