//! Latency/throughput baseline for the multi-region edge hierarchy.
//!
//! Runs the `exp_geo` headline pair (geo deployment vs the centralized
//! single-region baseline) and writes `BENCH_geo.json` (path
//! overridable via `BENCH_GEO_OUT`) with:
//!
//! * **p99_edge_advantage** — min over remote regions of
//!   centralized-p99 / geo-p99 (the paper-facing number; > 1 means the
//!   edge wins everywhere it should), a machine-independent ratio, and
//! * **per-region p99 pairs** plus **wall seconds** for each run (the
//!   perf baseline later optimisation PRs regress against).
//!
//! The vendored Criterion stub has no machine-readable output, so this
//! bench is a plain `harness = false` main with its own timing loop.

use geo::run_geo_with;
use obsv::Recorder;
use rattrap_bench::experiments::geo::{geo_cfg, single_region_cfg, REGIONS};
use rattrap_bench::experiments::{engine_from_env, engine_label};
use std::time::Instant;

fn main() {
    let meta = rattrap_bench::RunMeta::capture(rattrap_bench::DEFAULT_SEED);
    println!("{}", meta.header());

    let smoke = rattrap_bench::experiments::smoke();
    let engine = engine_from_env();

    let gcfg = geo_cfg(meta.seed, smoke);
    let bcfg = single_region_cfg(meta.seed, smoke);

    let t = Instant::now();
    let grep = run_geo_with(&gcfg, Recorder::disabled(), engine);
    let geo_wall = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let brep = run_geo_with(&bcfg, Recorder::disabled(), engine);
    let central_wall = t.elapsed().as_secs_f64();

    let mut advantage = f64::INFINITY;
    let mut rows = Vec::new();
    for r in 1..REGIONS {
        let g = grep.summary.regions[r].p99_response_s;
        let c = brep.summary.regions[r].p99_response_s;
        advantage = advantage.min(c / g.max(1e-9));
        println!("region {r}: geo p99 {g:.2}s vs centralized {c:.2}s");
        rows.push(format!(
            "    {{ \"region\": {r}, \"geo_p99_s\": {g:.3}, \"central_p99_s\": {c:.3} }}"
        ));
    }
    println!(
        "p99 edge advantage (min over remote regions): {advantage:.2}x; \
         geo wall {geo_wall:.1}s, centralized wall {central_wall:.1}s"
    );

    let out = rattrap_bench::meta::baseline_out("BENCH_GEO_OUT", "BENCH_geo.json");
    let json = format!(
        "{{\n  \"bench\": \"geo_hierarchy\",\n  \"seed\": {},\n  \"toolchain\": \"{}\",\n  \
         \"git_sha\": \"{}\",\n  \"smoke\": {},\n  \"engine\": \"{}\",\n  \
         \"p99_edge_advantage\": {:.4},\n  \"geo_wall_secs\": {:.4},\n  \
         \"central_wall_secs\": {:.4},\n  \"regions\": [\n{}\n  ]\n}}\n",
        meta.seed,
        meta.toolchain,
        meta.git_sha,
        meta.smoke,
        engine_label(engine),
        advantage,
        geo_wall,
        central_wall,
        rows.join(",\n")
    );
    obsv::json::parse(&json).expect("baseline JSON parses");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("baseline written to {}", out.display());
}
