//! Throughput baseline for the fleet control plane.
//!
//! Runs the `exp_cluster` scaling scenario at 1, 2, 4, and 8 hosts and
//! writes `BENCH_cluster.json` (path overridable via
//! `BENCH_CLUSTER_OUT`) with, per host count:
//!
//! * **cloud req/s** — simulated cloud throughput (the paper-facing
//!   number; the acceptance bar is ≥ 2× from 1 host to 4), and
//! * **wall seconds** — engine wall-clock for the run (the perf
//!   baseline later optimisation PRs regress against).
//!
//! The vendored Criterion stub has no machine-readable output, so this
//! bench is a plain `harness = false` main with its own timing loop.

use fleet::run_fleet_with;
use obsv::Recorder;
use rattrap_bench::experiments::cluster::{scaling_cfg, HOST_COUNTS};
use rattrap_bench::experiments::{engine_from_env, engine_label};
use std::hint::black_box;
use std::time::Instant;

/// Median wall-seconds of `runs` invocations of `f`.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let meta = rattrap_bench::RunMeta::capture(rattrap_bench::DEFAULT_SEED);
    println!("{}", meta.header());

    let smoke = rattrap_bench::experiments::smoke();
    let timing_runs = if smoke { 1 } else { 5 };
    let engine = engine_from_env();
    let run_fleet = |cfg: &fleet::FleetConfig| run_fleet_with(cfg, Recorder::disabled(), engine);

    let mut cells = Vec::new();
    for &hosts in &HOST_COUNTS {
        let cfg = scaling_cfg(hosts, meta.seed, smoke);
        let rep = run_fleet(&cfg);
        let wall = median_secs(timing_runs, || {
            black_box(run_fleet(&cfg));
        });
        println!(
            "hosts={hosts}: {:.2} cloud req/s ({} remote of {} submitted), {:.3}s wall",
            rep.summary.throughput_rps, rep.summary.completed_remote, rep.summary.submitted, wall
        );
        cells.push((hosts, rep.summary.throughput_rps, wall));
    }
    let speedup = cells[2].1 / cells[0].1.max(1e-9);
    println!("1 → 4 host speedup: {speedup:.2}x");

    let out = rattrap_bench::meta::baseline_out("BENCH_CLUSTER_OUT", "BENCH_cluster.json");
    let rows: Vec<String> = cells
        .iter()
        .map(|(h, rps, wall)| {
            format!(
                "    {{ \"hosts\": {h}, \"cloud_req_per_sec\": {rps:.3}, \
                 \"wall_secs\": {wall:.4} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster_scaling\",\n  \"seed\": {},\n  \"toolchain\": \"{}\",\n  \
         \"git_sha\": \"{}\",\n  \"smoke\": {},\n  \"engine\": \"{}\",\n  \
         \"speedup_1_to_4\": {:.3},\n  \"cells\": [\n{}\n  ]\n}}\n",
        meta.seed,
        meta.toolchain,
        meta.git_sha,
        meta.smoke,
        engine_label(engine),
        speedup,
        rows.join(",\n")
    );
    obsv::json::parse(&json).expect("baseline JSON parses");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("baseline written to {}", out.display());
}
