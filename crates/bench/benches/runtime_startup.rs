//! Criterion bench for Table I's hot path: provisioning and tearing
//! down each runtime class (real kernel + filesystem work; the boot
//! *durations* are simulated but the bring-up is genuinely executed).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hostkernel::HostSpec;
use std::hint::black_box;
use virt::{CloudHost, RuntimeClass};

fn bench_provision(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_startup");
    for class in RuntimeClass::ALL {
        group.bench_function(format!("provision_{:?}", class), |b| {
            b.iter_batched(
                || {
                    let mut host = CloudHost::new(HostSpec::paper_server());
                    host.kernel.load_android_container_driver();
                    host
                },
                |mut host| {
                    let (id, setup) = host.provision(black_box(class)).expect("room");
                    black_box((id, setup));
                    host
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("provision_teardown_cycle_cac", |b| {
        let mut host = CloudHost::new(HostSpec::paper_server());
        host.kernel.load_android_container_driver();
        b.iter(|| {
            let (id, _) = host.provision(RuntimeClass::CacOptimized).expect("room");
            host.teardown(black_box(id)).expect("live instance");
        })
    });
    group.bench_function("load_android_container_driver", |b| {
        b.iter_batched(
            || hostkernel::Kernel::new(HostSpec::paper_server()),
            |mut k| {
                black_box(k.load_android_container_driver());
                k
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_provision);
criterion_main!(benches);
