//! Overhead baseline for the observability plane.
//!
//! Two measurements, written to `BENCH_obsv.json` (path overridable
//! via `BENCH_OBSV_OUT`) so later perf PRs have a committed baseline:
//!
//! 1. **Recorder throughput** — span begin/end pairs plus an instant,
//!    recorded per wall-clock second into an enabled ring.
//! 2. **Simulation overhead** — wall time of a full Fig. 9-scale
//!    Rattrap/OCR run with the recorder disabled vs. enabled, and the
//!    ratio. The disabled path is the zero-cost contract; the enabled
//!    path is what `--trace` costs.
//!
//! The vendored Criterion stub has no machine-readable output, so this
//! bench is a plain `harness = false` main with its own timing loop.

use obsv::{attrs, AttrValue, Recorder, RecorderConfig, SpanId, Subsystem};
use rattrap::{PlatformKind, ScenarioConfig, Simulation};
use std::hint::black_box;
use std::time::Instant;
use workloads::WorkloadKind;

/// Median wall-seconds of `runs` invocations of `f`.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn recorder_throughput() -> f64 {
    const EVENTS: u64 = 200_000;
    let secs = median_secs(5, || {
        let rec = Recorder::enabled(RecorderConfig::default());
        for i in 0..EVENTS {
            rec.set_now(i);
            let span = rec.span_start(Subsystem::Rattrap, "bench", SpanId::NONE);
            rec.span_end_at(span, i + 1, attrs![("i", AttrValue::U64(i))]);
            rec.instant(Subsystem::Simkit, "tick", attrs![]);
        }
        black_box(rec.event_count());
    });
    // 3 ring events per iteration: begin, end, instant.
    (EVENTS * 3) as f64 / secs
}

/// Disabled- and enabled-recorder wall time of the Fig. 9-scale run.
///
/// One run is only ~4 ms, far too short to time on its own, so each
/// sample aggregates `REPS` back-to-back runs; and the two arms are
/// sampled *interleaved* (disabled, enabled, disabled, …) so thermal
/// or allocator drift lands on both equally instead of biasing
/// whichever arm happens to run second.
fn sim_pair() -> (f64, f64) {
    const REPS: usize = 8;
    const SAMPLES: usize = 9;
    let run = |instrumented: bool| {
        let t = Instant::now();
        for _ in 0..REPS {
            let cfg =
                ScenarioConfig::paper_default(PlatformKind::Rattrap.config(), WorkloadKind::Ocr, 7);
            let mut sim = Simulation::new(cfg);
            if instrumented {
                sim.set_recorder(Recorder::enabled(RecorderConfig::default()));
            }
            black_box(sim.run());
        }
        t.elapsed().as_secs_f64() / REPS as f64
    };
    // Warm allocator + caches so neither arm pays first-touch costs.
    run(false);
    run(true);
    let (mut disabled, mut enabled) = (Vec::new(), Vec::new());
    for _ in 0..SAMPLES {
        disabled.push(run(false));
        enabled.push(run(true));
    }
    disabled.sort_by(|a, b| a.partial_cmp(b).unwrap());
    enabled.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (disabled[SAMPLES / 2], enabled[SAMPLES / 2])
}

fn main() {
    // `cargo bench` forwards harness flags like `--bench`; nothing to
    // parse — configuration is env-only (`BENCH_OBSV_OUT`).
    let meta = rattrap_bench::RunMeta::capture(rattrap_bench::DEFAULT_SEED);
    println!("{}", meta.header());

    let throughput = recorder_throughput();
    println!("recorder throughput: {:.3e} events/sec", throughput);

    let (disabled, enabled) = sim_pair();
    let overhead = enabled / disabled;
    println!("sim (recorder disabled): {disabled:.4}s");
    println!("sim (recorder enabled):  {enabled:.4}s");
    println!("enabled/disabled ratio:  {overhead:.3}");

    let out = rattrap_bench::meta::baseline_out("BENCH_OBSV_OUT", "BENCH_obsv.json");
    let json = format!(
        "{{\n  \"bench\": \"obsv_overhead\",\n  \"seed\": {},\n  \"toolchain\": \"{}\",\n  \
         \"git_sha\": \"{}\",\n  \"smoke\": {},\n  \
         \"recorder_events_per_sec\": {:.1},\n  \
         \"sim_disabled_secs\": {:.6},\n  \"sim_enabled_secs\": {:.6},\n  \
         \"enabled_over_disabled\": {:.4}\n}}\n",
        meta.seed,
        meta.toolchain,
        meta.git_sha,
        meta.smoke,
        throughput,
        disabled,
        enabled,
        overhead
    );
    obsv::json::parse(&json).expect("baseline JSON parses");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("baseline written to {}", out.display());
}
