//! # rattrap-bench — experiment harnesses regenerating every table and
//! figure of the paper's evaluation
//!
//! One module per experiment under [`experiments`]; `exp_*` binaries
//! print each experiment, `exp_all` runs the whole evaluation; Criterion
//! benches under `benches/` measure the real compute kernels and the
//! platform hot paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod meta;
pub mod traceplane;

pub use experiments::{ExperimentOutput, DEFAULT_SEED};
pub use meta::RunMeta;
