//! Trace capture for the experiment drivers: `--trace <path>` /
//! `RATTRAP_TRACE` resolution, one instrumented replication, and the
//! logcat-annotation plumbing behind `trace_request`.

use obsv::{Recorder, RecorderConfig, TraceSnapshot};
use rattrap::{PlatformKind, ScenarioConfig, Simulation};
use workloads::WorkloadKind;

use crate::meta::RunMeta;

/// Where to write a trace, if anywhere: the `--trace <path>` CLI flag
/// wins, else the `RATTRAP_TRACE` environment variable (the CI smoke
/// hook). `None` means tracing is off — the zero-cost default.
pub fn trace_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            return args.next();
        }
        if let Some(path) = arg.strip_prefix("--trace=") {
            return Some(path.to_owned());
        }
    }
    std::env::var("RATTRAP_TRACE")
        .ok()
        .filter(|v| !v.is_empty())
}

/// Run one fully instrumented Rattrap/OCR replication of the Fig. 9
/// scenario and return the captured trace, metadata stamped.
pub fn instrumented_snapshot(seed: u64) -> TraceSnapshot {
    let cfg =
        ScenarioConfig::paper_default(PlatformKind::Rattrap.config(), WorkloadKind::Ocr, seed);
    let mut sim = Simulation::new(cfg);
    let rec = Recorder::enabled(RecorderConfig::default());
    RunMeta::capture(seed).apply(&rec);
    rec.set_meta("scenario", "fig9 rattrap/ocr paper_default".to_owned());
    sim.set_recorder(rec.clone());
    sim.run();
    rec.snapshot()
}

/// Capture one instrumented Fig. 9 replication and write it as
/// Chrome trace-event JSON (Perfetto-loadable) to `path`.
pub fn capture_fig9_trace(seed: u64, path: &str) -> std::io::Result<()> {
    let snap = instrumented_snapshot(seed);
    std::fs::write(path, snap.chrome_trace())
}

/// Extract the kernel log dumps the engine exports into recorder
/// metadata (`logcat.ns<N>` keys, one `"<at_us> <line>"` per record)
/// as `(at_us, text)` annotations for the causal timeline.
pub fn logcat_annotations(snap: &TraceSnapshot) -> Vec<(u64, String)> {
    let mut notes = Vec::new();
    for (key, dump) in &snap.meta {
        if !key.starts_with("logcat.ns") {
            continue;
        }
        for line in dump.lines() {
            let Some((ts, text)) = line.split_once(' ') else {
                continue;
            };
            if let Ok(at_us) = ts.parse::<u64>() {
                notes.push((at_us, text.to_owned()));
            }
        }
    }
    notes.sort();
    notes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_snapshot_captures_the_stack_and_logcat() {
        let snap = instrumented_snapshot(7);
        assert!(!snap.events.is_empty());
        assert!(snap.meta.contains_key("toolchain"));
        let notes = logcat_annotations(&snap);
        assert!(
            notes.iter().any(|(_, t)| t.contains("system_server")),
            "boot logs surface through the logcat dump"
        );
        let trace = snap.chrome_trace();
        obsv::json::parse(&trace).expect("fig9 trace parses");
    }
}
