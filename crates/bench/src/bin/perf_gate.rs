//! Perf-regression gate: compare a candidate bench JSON against the
//! committed baseline under `results/` with explicit tolerances.
//!
//! ```text
//! perf_gate engine  results/BENCH_engine.json  candidate_engine.json
//! perf_gate obsv    results/BENCH_obsv.json    candidate_obsv.json
//! perf_gate cluster results/BENCH_cluster.json candidate_cluster.json
//! perf_gate geo     results/BENCH_geo.json     candidate_geo.json
//! perf_gate exec    results/BENCH_exec.json    candidate_exec.json
//! perf_gate storm   results/BENCH_storm.json   candidate_storm.json
//! ```
//!
//! Prints a markdown delta table (also appended to the file named by
//! `GITHUB_STEP_SUMMARY` when set, so it lands on the CI job summary
//! page) and exits non-zero on any FAIL row.
//!
//! ## Tolerance policy
//!
//! Two metric classes, gated differently:
//!
//! * **Machine-independent ratios** (`speedup_vs_global`,
//!   `wheel_over_heap`, `enabled_over_disabled`) — same-run
//!   numerator/denominator, so hardware largely cancels. Gated
//!   *tight*: FAIL on >25 % drift in the bad direction.
//! * **Absolute rates** (`events_per_sec` columns,
//!   `recorder_events_per_sec`) — depend on the machine that wrote the
//!   baseline. Gated *loose*: WARN on >20 % regression (the drift a
//!   same-hardware rerun should stay inside), FAIL only past 50 %
//!   (an algorithmic regression, not runner jitter). When the baseline
//!   and candidate disagree on the `smoke` flag the absolute rows are
//!   reported but not gated at all — smoke horizons are too short for
//!   the rates to be comparable.
//!
//! Improvements never fail, and a metric missing from the *baseline*
//! is skipped with a note (older baselines predate some metrics);
//! a metric missing from the *candidate* is a FAIL — the bench
//! stopped reporting something the gate watches.
//!
//! ## Regenerating baselines
//!
//! After an intentional perf change, rerun both benches in full mode
//! on one machine and commit the outputs:
//!
//! ```text
//! BENCH_ENGINE_OUT=results/BENCH_engine.json \
//!   cargo bench --offline -p rattrap-bench --bench engine_throughput
//! BENCH_OBSV_OUT=results/BENCH_obsv.json \
//!   cargo bench --offline -p rattrap-bench --bench obsv_overhead
//! BENCH_CLUSTER_OUT=results/BENCH_cluster.json \
//!   cargo bench --offline -p rattrap-bench --bench cluster_scaling
//! BENCH_GEO_OUT=results/BENCH_geo.json \
//!   cargo bench --offline -p rattrap-bench --bench geo_hierarchy
//! BENCH_EXEC_OUT=results/BENCH_exec.json \
//!   cargo bench --offline -p rattrap-bench --bench exec_drift
//! cargo run --release --offline -p rattrap-bench --bin exp_storm \
//!   > results/storm.txt   # writes results/BENCH_storm.json too
//! ```
//!
//! and justify the delta in the PR description (EXPERIMENTS.md keeps
//! the before/after history). Relative `BENCH_*_OUT` paths are
//! anchored at the workspace root regardless of invocation cwd
//! (`rattrap_bench::meta::baseline_out`) — `cargo bench` runs bench
//! executables from the package dir, which is never where the
//! baseline belongs.

use obsv::json::{self, Value};
use std::fmt;
use std::process::ExitCode;

/// Outcome of one gated row.
#[derive(PartialEq, Clone, Copy)]
enum Verdict {
    Pass,
    Warn,
    Fail,
    /// Reported but not gated (e.g. absolute rates across differing
    /// smoke modes, or the baseline predates the metric).
    Info,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Pass => "ok",
            Verdict::Warn => "WARN",
            Verdict::Fail => "**FAIL**",
            Verdict::Info => "info",
        })
    }
}

struct Row {
    metric: String,
    baseline: Option<f64>,
    candidate: Option<f64>,
    tolerance: &'static str,
    verdict: Verdict,
}

/// Walk a dotted path (`queue_bound.wheel_over_heap`, `cells.0.x`)
/// into a parsed JSON document; numeric segments index arrays.
fn lookup(v: &Value, path: &str) -> Option<f64> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = match (cur, seg.parse::<usize>()) {
            (Value::Array(items), Ok(i)) => items.get(i)?,
            _ => cur.get(seg)?,
        };
    }
    cur.as_f64()
}

/// Gate one metric. `higher_is_better` orients the drift direction;
/// `ratio` metrics use the tight 25 % FAIL band, absolute metrics the
/// loose WARN-20 % / FAIL-50 % band (or none at all when `gated` is
/// false).
#[allow(clippy::too_many_arguments)]
fn check(
    rows: &mut Vec<Row>,
    base: &Value,
    cand: &Value,
    path: &str,
    label: &str,
    higher_is_better: bool,
    ratio: bool,
    gated: bool,
) {
    let b = lookup(base, path);
    let c = lookup(cand, path);
    let (tolerance, verdict) = match (b, c) {
        (Some(b), Some(c)) => {
            // Regression fraction in the bad direction; <= 0 means the
            // candidate is no worse than the baseline.
            let drift = if higher_is_better {
                (b - c) / b
            } else {
                (c - b) / b
            };
            match (ratio, gated) {
                // Same-run ratios on matching horizons: tight band.
                (true, true) => (
                    "ratio: fail >25% drift",
                    if drift > 0.25 {
                        Verdict::Fail
                    } else {
                        Verdict::Pass
                    },
                ),
                // Ratios still carry signal across smoke/full horizons
                // (a collapse to 1x is a real regression), but short
                // horizons inflate startup effects — loosen the band.
                (true, false) => (
                    "ratio (cross-mode): fail >50% drift",
                    if drift > 0.50 {
                        Verdict::Fail
                    } else {
                        Verdict::Pass
                    },
                ),
                (false, true) if drift > 0.50 => ("abs: warn >20%, fail >50%", Verdict::Fail),
                (false, true) if drift > 0.20 => ("abs: warn >20%, fail >50%", Verdict::Warn),
                (false, true) => ("abs: warn >20%, fail >50%", Verdict::Pass),
                (false, false) => ("not gated (smoke mismatch)", Verdict::Info),
            }
        }
        (None, _) => ("baseline predates metric", Verdict::Info),
        (Some(_), None) => ("metric vanished from candidate", Verdict::Fail),
    };
    rows.push(Row {
        metric: label.to_owned(),
        baseline: b,
        candidate: c,
        tolerance,
        verdict,
    });
}

fn fmt_num(v: Option<f64>) -> String {
    match v {
        None => "—".to_owned(),
        Some(v) if v.abs() >= 1000.0 => format!("{v:.0}"),
        Some(v) => format!("{v:.3}"),
    }
}

fn compare_engine(base: &Value, cand: &Value, same_mode: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    check(
        &mut rows,
        base,
        cand,
        "global_events_per_sec",
        "global events/s",
        true,
        false,
        same_mode,
    );
    check(
        &mut rows,
        base,
        cand,
        "queue_bound.wheel_events_per_sec",
        "queue-bound wheel events/s",
        true,
        false,
        same_mode,
    );
    check(
        &mut rows,
        base,
        cand,
        "queue_bound.wheel_over_heap",
        "queue-bound wheel/heap speedup",
        true,
        true,
        same_mode,
    );
    // Per-thread sharded cells: absolute rates loose, speedup ratios
    // tight. Cell order is the thread ladder and is stable across runs.
    let empty: [Value; 0] = [];
    let cells = base
        .get("cells")
        .and_then(|c| c.as_array())
        .unwrap_or(&empty);
    for (i, cell) in cells.iter().enumerate() {
        let threads = cell
            .get("threads")
            .and_then(|t| t.as_f64())
            .map(|t| t as u64)
            .unwrap_or(i as u64);
        check(
            &mut rows,
            base,
            cand,
            &format!("cells.{i}.events_per_sec"),
            &format!("sharded x{threads} events/s"),
            true,
            false,
            same_mode,
        );
        check(
            &mut rows,
            base,
            cand,
            &format!("cells.{i}.speedup_vs_global"),
            &format!("sharded x{threads} speedup"),
            true,
            true,
            same_mode,
        );
    }
    rows
}

fn compare_obsv(base: &Value, cand: &Value, same_mode: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    check(
        &mut rows,
        base,
        cand,
        "recorder_events_per_sec",
        "recorder events/s",
        true,
        false,
        same_mode,
    );
    check(
        &mut rows,
        base,
        cand,
        "enabled_over_disabled",
        "tracing enabled/disabled ratio",
        false,
        true,
        same_mode,
    );
    rows
}

fn compare_cluster(base: &Value, cand: &Value, same_mode: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    // Simulated speedup is seed-deterministic; hardware cancels.
    check(
        &mut rows,
        base,
        cand,
        "speedup_1_to_4",
        "1 → 4 host speedup",
        true,
        true,
        same_mode,
    );
    let empty: [Value; 0] = [];
    let cells = base
        .get("cells")
        .and_then(|c| c.as_array())
        .unwrap_or(&empty);
    for (i, cell) in cells.iter().enumerate() {
        let hosts = cell
            .get("hosts")
            .and_then(|h| h.as_f64())
            .map(|h| h as u64)
            .unwrap_or(i as u64);
        // Simulated cloud throughput: deterministic given the seed,
        // but horizon-dependent — gate like a ratio only when the
        // modes match.
        check(
            &mut rows,
            base,
            cand,
            &format!("cells.{i}.cloud_req_per_sec"),
            &format!("{hosts}-host cloud req/s"),
            true,
            true,
            same_mode,
        );
        check(
            &mut rows,
            base,
            cand,
            &format!("cells.{i}.wall_secs"),
            &format!("{hosts}-host wall secs"),
            false,
            false,
            same_mode,
        );
    }
    rows
}

fn compare_geo(base: &Value, cand: &Value, same_mode: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    // Centralized-p99 / geo-p99 over remote regions: a same-run,
    // same-seed ratio — the headline the edge hierarchy must keep.
    check(
        &mut rows,
        base,
        cand,
        "p99_edge_advantage",
        "p99 edge advantage (min remote region)",
        true,
        true,
        same_mode,
    );
    let empty: [Value; 0] = [];
    let regions = base
        .get("regions")
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    for (i, region) in regions.iter().enumerate() {
        let r = region
            .get("region")
            .and_then(|r| r.as_f64())
            .map(|r| r as u64)
            .unwrap_or(i as u64);
        check(
            &mut rows,
            base,
            cand,
            &format!("regions.{i}.geo_p99_s"),
            &format!("region {r} geo p99 (s)"),
            false,
            true,
            same_mode,
        );
    }
    check(
        &mut rows,
        base,
        cand,
        "geo_wall_secs",
        "geo run wall secs",
        false,
        false,
        same_mode,
    );
    check(
        &mut rows,
        base,
        cand,
        "central_wall_secs",
        "centralized run wall secs",
        false,
        false,
        same_mode,
    );
    rows
}

fn compare_exec(base: &Value, cand: &Value, same_mode: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let empty: [Value; 0] = [];
    let cells = base
        .get("cells")
        .and_then(|c| c.as_array())
        .unwrap_or(&empty);
    for (i, cell) in cells.iter().enumerate() {
        let label = |key: &str| {
            cell.get(key)
                .and_then(|v| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| i.to_string())
        };
        let (kernel, size) = (label("kernel"), label("size"));
        // Real wall time and the real/modeled drift ratio both depend
        // on the machine that wrote the baseline, so they take the
        // loose absolute band; a cell missing from the candidate is
        // still a FAIL — kernel×size coverage itself is gated.
        check(
            &mut rows,
            base,
            cand,
            &format!("cells.{i}.real_ms"),
            &format!("{kernel}/{size} real ms"),
            false,
            false,
            same_mode,
        );
        check(
            &mut rows,
            base,
            cand,
            &format!("cells.{i}.drift_ratio"),
            &format!("{kernel}/{size} drift ratio"),
            false,
            false,
            same_mode,
        );
    }
    rows
}

fn compare_storm(base: &Value, cand: &Value, same_mode: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    // Flash-crowd p95 / quiet p95: same-run, same-seed ratio — the
    // degradation bound the scenario plane must keep.
    check(
        &mut rows,
        base,
        cand,
        "p95_degradation",
        "flash-crowd p95 degradation (x quiet)",
        false,
        true,
        same_mode,
    );
    // Offloaded fraction of scripted interaction-storm events:
    // seed-deterministic, hardware-free.
    check(
        &mut rows,
        base,
        cand,
        "storm_offload_fraction",
        "interaction-storm offload fraction",
        true,
        true,
        same_mode,
    );
    let empty: [Value; 0] = [];
    let families = base
        .get("families")
        .and_then(|f| f.as_array())
        .unwrap_or(&empty);
    for (i, fam) in families.iter().enumerate() {
        let name = fam
            .get("family")
            .and_then(|v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_else(|| i.to_string());
        // Fleet load under each storm is seed-deterministic but
        // horizon-dependent — gate like a ratio only when the modes
        // match.
        check(
            &mut rows,
            base,
            cand,
            &format!("families.{i}.fleet_submitted"),
            &format!("{name} fleet submitted"),
            true,
            true,
            same_mode,
        );
        check(
            &mut rows,
            base,
            cand,
            &format!("families.{i}.wall_secs"),
            &format!("{name} wall secs"),
            false,
            false,
            same_mode,
        );
    }
    rows
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, kind, base_path, cand_path] = &args[..] else {
        eprintln!(
            "usage: perf_gate <engine|obsv|cluster|geo|exec|storm> <baseline.json> <candidate.json>"
        );
        return ExitCode::from(2);
    };
    let load = |p: &str| -> Value {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("reading {p}: {e}"));
        json::parse(&text).unwrap_or_else(|e| panic!("parsing {p}: {e}"))
    };
    let (base, cand) = (load(base_path), load(cand_path));

    // Gate absolute rates only when both files were measured in the
    // same mode; a missing flag counts as a mismatch (don't gate on a
    // guess).
    let flag = |v: &Value| match v.get("smoke") {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    };
    let same_mode = matches!((flag(&base), flag(&cand)), (Some(b), Some(c)) if b == c);

    let rows = match kind.as_str() {
        "engine" => compare_engine(&base, &cand, same_mode),
        "obsv" => compare_obsv(&base, &cand, same_mode),
        "cluster" => compare_cluster(&base, &cand, same_mode),
        "geo" => compare_geo(&base, &cand, same_mode),
        "exec" => compare_exec(&base, &cand, same_mode),
        "storm" => compare_storm(&base, &cand, same_mode),
        other => {
            eprintln!("unknown bench kind {other:?} (expected engine|obsv|cluster|geo|exec|storm)");
            return ExitCode::from(2);
        }
    };

    let mut table = String::new();
    table.push_str(&format!(
        "### perf gate: {kind} ({})\n\n\
         | metric | baseline | candidate | delta | tolerance | status |\n\
         |---|---:|---:|---:|---|---|\n",
        if same_mode {
            "same mode"
        } else {
            "mode mismatch — absolute rates not gated"
        },
    ));
    for r in &rows {
        let delta = match (r.baseline, r.candidate) {
            (Some(b), Some(c)) if b != 0.0 => format!("{:+.1}%", (c - b) / b * 100.0),
            _ => "—".to_owned(),
        };
        table.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.metric,
            fmt_num(r.baseline),
            fmt_num(r.candidate),
            delta,
            r.tolerance,
            r.verdict,
        ));
    }
    println!("{table}");
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(summary)
        {
            let _ = writeln!(f, "{table}");
        }
    }

    let fails: Vec<&Row> = rows.iter().filter(|r| r.verdict == Verdict::Fail).collect();
    for r in &fails {
        eprintln!(
            "perf gate FAIL: {} regressed past tolerance ({} -> {})",
            r.metric,
            fmt_num(r.baseline),
            fmt_num(r.candidate)
        );
    }
    if fails.is_empty() {
        println!("perf gate: {} rows, no failures", rows.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
