//! Regenerate the paper's fig11 experiment. Usage: `exp_fig11 [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::fig11::run(seed);
    println!("{}", out.render());
}
