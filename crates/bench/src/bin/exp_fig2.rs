//! Regenerate the paper's fig2 experiment. Usage: `exp_fig2 [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::fig2::run(seed);
    println!("{}", out.render());
}
