//! Modeled-vs-real kernel latency drift study.
//!
//! Usage: `exp_drift [seed] [--write-calibration]`
//!
//! `--write-calibration` re-measures on this machine and rewrites the
//! committed calibration map (`crates/exec/data/calibration.json`, or
//! the `EXEC_CALIBRATION_OUT` override) from the measured rows, so the
//! `Replay` backend can deterministically re-price sim charges with
//! this host's drift ratios.
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::drift::run(seed);
    println!("{}", out.render());

    if std::env::args().any(|a| a == "--write-calibration") {
        let rows =
            rattrap_bench::experiments::drift::sweep(seed, rattrap_bench::experiments::smoke());
        let map = exec::calibration_from_rows(&rows, exec::HostClass::LOCALHOST);
        let path = rattrap_bench::meta::baseline_out(
            "EXEC_CALIBRATION_OUT",
            "crates/exec/data/calibration.json",
        );
        std::fs::write(&path, map.to_json()).expect("write calibration map");
        println!(
            "# calibration: wrote {} entries to {}",
            map.len(),
            path.display()
        );
    }
}
