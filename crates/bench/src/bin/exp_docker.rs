//! Regenerate the Docker provisioning study. Usage: `exp_docker [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::docker::run(seed);
    println!("{}", out.render());
}
