//! Regenerate the paper's fig10 experiment. Usage: `exp_fig10 [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::fig10::run(seed);
    println!("{}", out.render());
}
