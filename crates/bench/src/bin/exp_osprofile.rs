//! Regenerate the paper's osprofile experiment. Usage: `exp_osprofile [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::osprofile::run(seed);
    println!("{}", out.render());
}
