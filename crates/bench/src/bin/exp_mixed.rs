//! Regenerate the mixed-tenancy experiment. Usage: `exp_mixed [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::mixed::run(seed);
    println!("{}", out.render());
}
