//! Thin offload API server: the fleet control plane (routing,
//! admission, warm-affinity) in front of real kernel execution, served
//! over line-delimited JSON on TCP.
//!
//! Usage: `exec_serve [addr] [--hosts N] [--workers N] [--cap N] [--probe]`
//!
//! Default address is `127.0.0.1:7117`. With `--probe` the server
//! binds an ephemeral port, submits one request per kernel through a
//! real TCP client, verifies every returned checksum against local
//! re-execution, prints the timing breakdowns, and exits — the CI
//! smoke for the end-to-end submit → route/admit → execute → copy-back
//! loop. Without it the server runs until killed.
use exec::serve::{serve, submit, OffloadRequest};
use exec::{execute_kernel, SizeClass};
use fleet::FleetHandler;
use workloads::WorkloadKind;

fn flag(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let probe = std::env::args().any(|a| a == "--probe");
    let addr = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| {
            if probe {
                "127.0.0.1:0".to_owned()
            } else {
                "127.0.0.1:7117".to_owned()
            }
        });
    let (hosts, workers, cap) = (flag("--hosts", 3), flag("--workers", 2), flag("--cap", 8));
    let handler = FleetHandler::new(hosts, workers, cap);
    let mut server = serve(&addr, handler).expect("bind offload server");
    println!(
        "# exec_serve: listening on {} ({hosts} hosts × {workers} workers, cap {cap})",
        server.addr()
    );

    if probe {
        let at = server.addr();
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            let req = OffloadRequest {
                kind,
                size: SizeClass::Small,
                seed: 0x2017_0529 + i as u64,
            };
            let resp = submit(at, &req).expect("probe round trip");
            assert!(resp.ok, "{}: {}", kind.label(), resp.error);
            let local = execute_kernel(req.kind, req.size, req.seed).checksum;
            assert_eq!(resp.checksum, local, "{} checksum mismatch", kind.label());
            println!(
                "probe {:<10} host={} queue={}us exec={}us checksum={:016x} ok",
                kind.label(),
                resp.host,
                resp.queue_micros,
                resp.exec_micros,
                resp.checksum
            );
        }
        println!("# exec_serve: probe passed (4/4 checksums verified)");
        server.shutdown();
        return;
    }

    // Serve until killed; the accept loop owns the process from here.
    loop {
        std::thread::park();
    }
}
