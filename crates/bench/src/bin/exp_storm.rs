//! Scenario-plane storm study: flash crowds, correlated outages, noisy
//! neighbors and Android interaction storms against the fleet, each
//! run serial + sharded and scored. Usage:
//! `exp_storm [seed] [--engine serial|sharded[:N]]` (the
//! `RATTRAP_ENGINE` env var sets the default engine).
//!
//! Besides the report, writes the `BENCH_storm.json` perf baseline
//! (path overridable via `BENCH_STORM_OUT`) with per-family wall
//! seconds plus the machine-independent storm ratios the perf gate
//! regresses against (`perf_gate storm`).

use rattrap_bench::experiments::{self, storm};
use scenario::ScenarioFamily;

fn main() {
    let seed = experiments::seed_from_args();
    let engine = std::env::args()
        .skip_while(|a| a != "--engine")
        .nth(1)
        .map(|s| {
            experiments::parse_engine(&s)
                .unwrap_or_else(|| panic!("bad --engine value `{s}` (serial|sharded[:N])"))
        })
        .unwrap_or_else(experiments::engine_from_env);
    let mut meta = rattrap_bench::RunMeta::capture(seed);
    meta.engine = experiments::engine_label(engine);
    println!("{}", meta.header());

    let smoke = experiments::smoke();
    let quiet = fleet::run_fleet_with(
        &storm::quiet_cfg(seed, smoke),
        obsv::Recorder::disabled(),
        engine,
    );
    let cells = storm::run_cells(seed, smoke, engine);
    let out = storm::build_output(&quiet, &cells, smoke);
    println!("{}", out.render());

    // ---- perf baseline. --------------------------------------------------
    let cell = |f: ScenarioFamily| cells.iter().find(|c| c.family == f).expect("family ran");
    let crowd = cell(ScenarioFamily::FlashCrowd);
    let istorm = cell(ScenarioFamily::InteractionStorm);
    let p95_degradation =
        crowd.report.summary.p95_response_s / quiet.summary.p95_response_s.max(1e-9);
    let ss = istorm.report.scenario.as_ref().expect("storm stats");
    let offload_fraction = ss.submitted as f64 / ss.injected.max(1) as f64;

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let s = c.report.scenario.as_ref().expect("storm stats");
            format!(
                "    {{ \"family\": \"{}\", \"injected\": {}, \"submitted\": {}, \
                 \"suppressed\": {}, \"deferred\": {}, \"fleet_submitted\": {}, \
                 \"p95_s\": {:.3}, \"wall_secs\": {:.4} }}",
                c.family.label(),
                s.injected,
                s.submitted,
                s.suppressed,
                s.deferred,
                c.report.summary.submitted,
                c.report.summary.p95_response_s,
                c.wall_secs,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"scenario_storm\",\n  \"seed\": {},\n  \"toolchain\": \"{}\",\n  \
         \"git_sha\": \"{}\",\n  \"smoke\": {},\n  \"engine\": \"{}\",\n  \
         \"p95_degradation\": {:.4},\n  \"storm_offload_fraction\": {:.4},\n  \
         \"families\": [\n{}\n  ]\n}}\n",
        meta.seed,
        meta.toolchain,
        meta.git_sha,
        smoke,
        experiments::engine_label(engine),
        p95_degradation,
        offload_fraction,
        rows.join(",\n")
    );
    obsv::json::parse(&json).expect("baseline JSON parses");
    let out_path = rattrap_bench::meta::baseline_out("BENCH_STORM_OUT", "results/BENCH_storm.json");
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    println!("baseline written to {}", out_path.display());

    if !out.scorecard.all_ok() {
        std::process::exit(1);
    }
}
