//! Regenerate the scheduler warm-pool ablation. Usage: `exp_scheduler [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    let out = rattrap_bench::experiments::scheduler::run(seed);
    println!("{}", out.render());
}
