//! Regenerate the scheduler warm-pool ablation. Usage: `exp_scheduler [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::scheduler::run(seed);
    println!("{}", out.render());
}
