//! Validate an exported Chrome trace-event JSON file — the CI check
//! behind the `--trace` smoke artifact.
//!
//! Usage: `validate_trace <trace.json>`. Exits non-zero unless the
//! file (a) parses as JSON, (b) has the trace-event object shape
//! (`traceEvents` array, `ph`/`pid`/`tid`/`name` per event), and
//! (c) contains at least one request whose events span five or more
//! subsystem categories — the cross-layer acceptance bar.

use obsv::json::{self, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

fn validate(text: &str) -> Result<String, String> {
    let value = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    if value.get("metadata").is_none() {
        return Err("missing metadata object".into());
    }
    let mut per_request: BTreeMap<u64, BTreeSet<String>> = BTreeMap::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        for field in ["ph", "pid", "tid", "name"] {
            if ev.get(field).is_none() {
                return Err(format!("event {i} lacks the {field} field"));
            }
        }
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        if ph == "M" {
            continue; // thread-name metadata carries no cat/ts
        }
        if ev.get("cat").is_none() || ev.get("ts").is_none() {
            return Err(format!("event {i} ({ph:?}) lacks cat/ts"));
        }
        if ph == "X" {
            spans += 1;
        }
        let req = ev
            .get("args")
            .and_then(|a| a.get("req"))
            .and_then(Value::as_f64);
        if let (Some(req), Some(cat)) = (req, ev.get("cat").and_then(Value::as_str)) {
            per_request
                .entry(req as u64)
                .or_default()
                .insert(cat.to_owned());
        }
    }
    if spans == 0 {
        return Err("no complete (\"X\") span events".into());
    }
    let Some((req, cats)) = per_request.iter().max_by_key(|(_, c)| c.len()) else {
        return Err("no request-attributed events".into());
    };
    if cats.len() < 5 {
        return Err(format!(
            "best request ({req}) only crosses {} subsystems: {cats:?}; need >= 5",
            cats.len()
        ));
    }
    Ok(format!(
        "ok: {} events, {spans} spans; request {req} crosses {} subsystems {:?}",
        events.len(),
        cats.len(),
        cats
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(report) => {
            println!("validate_trace {path}: {report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_trace {path}: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
