//! Print the causal timeline of one offloading request — every span
//! and instant the observability plane recorded for it, across all
//! layers, merged with the kernel logcat lines from its namespaces.
//!
//! Usage: `trace_request [request-id] [seed]`. Runs one instrumented
//! Rattrap/OCR replication of the Fig. 9 scenario at the seed
//! (default [`rattrap_bench::DEFAULT_SEED`]) and renders the request
//! (default: the one with the most recorded events).

use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let req_arg: Option<u64> = args.get(1).and_then(|a| a.parse().ok());
    let seed: u64 = args
        .get(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(rattrap_bench::DEFAULT_SEED);

    rattrap_bench::meta::print_header(seed);
    let snap = rattrap_bench::traceplane::instrumented_snapshot(seed);

    let req = req_arg.unwrap_or_else(|| {
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for ev in &snap.events {
            if let Some(r) = ev.request() {
                *counts.entry(r).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .map(|(r, _)| r)
            .expect("the instrumented run recorded request events")
    });

    let notes = rattrap_bench::traceplane::logcat_annotations(&snap);
    print!("{}", snap.request_timeline_with(req, &notes));
}
