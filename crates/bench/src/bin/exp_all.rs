//! Run the entire evaluation: every table and figure, in paper order.
//! Usage: `exp_all [seed]`

use rattrap_bench::experiments as exp;
use rayon::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let seed = args
        .iter()
        .skip(1)
        .find(|a| a.parse::<u64>().is_ok())
        .and_then(|a| a.parse().ok())
        .unwrap_or(exp::DEFAULT_SEED);
    rattrap_bench::meta::print_header(seed);
    // Each experiment is independent and deterministic given the seed:
    // run them in parallel, print in paper order.
    type Job = (&'static str, fn(u64) -> exp::ExperimentOutput);
    let jobs: Vec<Job> = vec![
        ("fig1", exp::fig1::run),
        ("fig2", exp::fig2::run),
        ("fig3", exp::fig3::run),
        ("osprofile", exp::osprofile::run),
        ("table1", exp::table1::run),
        ("fig9", exp::fig9::run),
        ("table2", exp::table2::run),
        ("fig10", exp::fig10::run),
        ("fig11", exp::fig11::run),
        ("ablations", exp::ablations::run),
        ("scheduler", exp::scheduler::run),
        ("decision", exp::decision::run),
        ("docker", exp::docker::run),
        ("mixed", exp::mixed::run),
        ("robustness", exp::robustness::run),
        ("cluster", exp::cluster::run),
        ("storm", exp::storm::run),
    ];
    let outputs: Vec<(&str, exp::ExperimentOutput)> =
        jobs.par_iter().map(|(name, f)| (*name, f(seed))).collect();
    let mut passed = 0;
    let mut total = 0;
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }
    for (name, out) in &outputs {
        println!("########## {} ##########\n", out.id);
        println!("{}", out.render());
        passed += out.scorecard.passed();
        total += out.scorecard.len();
        if let Some(dir) = &out_dir {
            let path = std::path::Path::new(dir).join(format!("{name}.txt"));
            std::fs::write(&path, out.render()).expect("write experiment output");
        }
    }
    println!("=======================================");
    println!("overall: {passed} / {total} paper-shape checks passed");
}
