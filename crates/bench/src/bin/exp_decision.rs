//! Regenerate the offloading-decision study. Usage: `exp_decision [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::decision::run(seed);
    println!("{}", out.render());
}
