//! Regenerate the paper's table2 experiment. Usage: `exp_table2 [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::table2::run(seed);
    println!("{}", out.render());
}
