//! Regenerate the paper's fig9 experiment.
//!
//! Usage: `exp_fig9 [seed] [--trace <path>]`. With `--trace` (or the
//! `RATTRAP_TRACE` env var) it additionally runs one fully
//! instrumented replication and writes a Chrome trace-event JSON —
//! loadable in Perfetto / `chrome://tracing` — to the given path.
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::fig9::run(seed);
    println!("{}", out.render());
    if let Some(path) = rattrap_bench::traceplane::trace_path() {
        rattrap_bench::traceplane::capture_fig9_trace(seed, &path)
            .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
        println!("trace: one instrumented Rattrap/OCR replication written to {path}");
    }
}
