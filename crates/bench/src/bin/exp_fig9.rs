//! Regenerate the paper's fig9 experiment. Usage: `exp_fig9 [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    let out = rattrap_bench::experiments::fig9::run(seed);
    println!("{}", out.render());
}
