//! Multi-seed robustness study. Usage: `exp_robustness [seed offset]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::robustness::run(seed);
    println!("{}", out.render());
}
