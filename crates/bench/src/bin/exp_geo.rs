//! Multi-region edge hierarchy study: latency at the edge, cloud-burst,
//! follow-the-sun. Usage: `exp_geo [seed] [--engine serial|sharded[:N]]`
//! (the `RATTRAP_ENGINE` env var sets the default engine).
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    let engine = std::env::args()
        .skip_while(|a| a != "--engine")
        .nth(1)
        .map(|s| {
            rattrap_bench::experiments::parse_engine(&s)
                .unwrap_or_else(|| panic!("bad --engine value `{s}` (serial|sharded[:N])"))
        })
        .unwrap_or_else(rattrap_bench::experiments::engine_from_env);
    let mut meta = rattrap_bench::RunMeta::capture(seed);
    meta.engine = rattrap_bench::experiments::engine_label(engine);
    println!("{}", meta.header());
    let out = rattrap_bench::experiments::geo::run_scaled_with(
        seed,
        rattrap_bench::experiments::smoke(),
        engine,
    );
    println!("{}", out.render());
}
