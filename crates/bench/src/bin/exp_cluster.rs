//! Fleet control-plane study: scaling, faults + rebalancing,
//! elasticity. Usage: `exp_cluster [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::cluster::run(seed);
    println!("{}", out.render());
}
