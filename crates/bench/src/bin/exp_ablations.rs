//! Regenerate the paper's ablations experiment. Usage: `exp_ablations [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    let out = rattrap_bench::experiments::ablations::run(seed);
    println!("{}", out.render());
}
