//! Regenerate the paper's ablations experiment. Usage: `exp_ablations [seed]`
fn main() {
    let seed = rattrap_bench::experiments::seed_from_args();
    rattrap_bench::meta::print_header(seed);
    let out = rattrap_bench::experiments::ablations::run(seed);
    println!("{}", out.render());
}
