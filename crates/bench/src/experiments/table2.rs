//! Table II — total migrated data (download / upload) per workload for
//! Rattrap, Rattrap(W/O) and the VM platform.

use super::ExperimentOutput;
use analysis::{Scorecard, Table};
use rattrap::config::paper;
use rattrap::{run_scenario, PlatformKind, ScenarioConfig};
use workloads::WorkloadKind;

/// Run Table II with the §VI-C setup.
pub fn run(seed: u64) -> ExperimentOutput {
    let mut table = Table::new(
        "Table II — total data transmitted (KB)",
        &[
            "Workload",
            "↓Rattrap",
            "↓W/O",
            "↓VM",
            "↑Rattrap",
            "↑W/O",
            "↑VM",
        ],
    );
    let mut sc = Scorecard::new();

    for (wi, kind) in WorkloadKind::ALL.iter().enumerate() {
        let mut up = Vec::new();
        let mut down = Vec::new();
        for platform in PlatformKind::ALL {
            let cfg = ScenarioConfig::paper_default(platform.config(), *kind, seed);
            let rep = run_scenario(cfg);
            up.push(rep.total_upload_bytes() / 1024);
            down.push(rep.total_download_bytes() / 1024);
        }
        table.row(&[
            kind.label().to_string(),
            down[0].to_string(),
            down[1].to_string(),
            down[2].to_string(),
            up[0].to_string(),
            up[1].to_string(),
            up[2].to_string(),
        ]);

        // Compare against the paper's totals (tolerant: payloads are
        // sampled, the paper's were measured).
        for (pi, platform) in PlatformKind::ALL.iter().enumerate() {
            sc.within(
                &format!("{} upload, {}", kind.label(), platform.label()),
                paper::TABLE2_UPLOAD_KB[wi][pi] as f64,
                up[pi] as f64,
                0.12,
            );
            sc.within(
                &format!("{} download, {}", kind.label(), platform.label()),
                paper::TABLE2_DOWNLOAD_KB[wi][pi] as f64,
                down[pi] as f64,
                0.15,
            );
        }
        // The qualitative claim: Rattrap uploads strictly less.
        sc.less(
            &format!("{}: code cache reduces upload", kind.label()),
            "Rattrap",
            up[0] as f64,
            "VM",
            up[2] as f64,
        );
    }

    ExperimentOutput {
        id: "Table II",
        body: table.render(),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_paper_totals() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
