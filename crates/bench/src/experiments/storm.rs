//! Storm — the scenario plane's evaluation (`exp_storm`).
//!
//! Drives all four adversarial scenario families through the fleet
//! engine and scores the platform's behaviour under each:
//!
//! 1. **flash crowd** — a burst cohort ramps arrivals ~12× over the
//!    base population; the fleet must absorb it with bounded p99
//!    degradation and lose nothing.
//! 2. **correlated failure** — half the devices lose their radio for a
//!    two-minute window composed with PR 2's host-crash FaultPlan; the
//!    restore edge must produce a thundering herd (deferred uploads
//!    re-routing together) and still conserve accounting.
//! 3. **noisy neighbor** — a batch tenant (VirusScan/Linpack) shares
//!    the fleet with an interactive tenant (OCR/chess); the per-tenant
//!    split must partition the run exactly.
//! 4. **interaction storm** — hundreds of emulated Android containers
//!    replay scripted touch/offload events; only the offloading
//!    fraction may reach the cloud.
//!
//! Every family runs serial *and* sharded and must digest identically
//! — adversarial traffic may not open a determinism seam. The
//! scorecard encodes the ISSUE's acceptance bars: p99 degradation
//! bounds, zero lost requests, shed accounting, herd evidence and
//! suppression ratios.

use super::ExperimentOutput;
use analysis::{fnum, Scorecard, Table};
use fleet::{run_fleet_with, EngineMode, FleetConfig, FleetReport};
use obsv::Recorder;
use rayon::prelude::*;
use scenario::{ScenarioFamily, ScenarioSpec};
use simkit::faults::FaultConfig;
use simkit::{SimDuration, SimTime};

/// Users in the quiet base population.
fn base_users(smoke: bool) -> u32 {
    if smoke {
        96
    } else {
        240
    }
}

/// The quiet fleet every family storms: 4 hosts, LiveLab diurnal
/// traffic, no scenario plan.
pub fn quiet_cfg(seed: u64, smoke: bool) -> FleetConfig {
    let mut cfg = FleetConfig::paper_default(4, seed);
    cfg.traffic.users = base_users(smoke);
    cfg.traffic.duration = SimDuration::from_secs(if smoke { 900 } else { 3600 });
    cfg
}

/// The canonical spec for one family, sized against the quiet fleet.
pub fn family_spec(family: ScenarioFamily, smoke: bool) -> ScenarioSpec {
    let users = base_users(smoke);
    let horizon = if smoke { 900u64 } else { 3600 };
    let start = SimTime::from_secs(horizon / 4);
    match family {
        ScenarioFamily::FlashCrowd => {
            ScenarioSpec::flash_crowd(users, 12, start, SimDuration::from_secs(60))
        }
        ScenarioFamily::CorrelatedFailure => {
            ScenarioSpec::correlated_failure(50, start, SimDuration::from_secs(120))
        }
        ScenarioFamily::NoisyNeighbor => ScenarioSpec::noisy_neighbor(1, 2),
        ScenarioFamily::InteractionStorm => ScenarioSpec::interaction_storm(
            if smoke { 240 } else { 600 },
            start,
            SimDuration::from_secs(horizon / 3),
            55,
        ),
    }
}

/// The fleet config one family storms. The correlated-failure family
/// composes the radio outage with the host-crash fault plan.
pub fn family_cfg(family: ScenarioFamily, seed: u64, smoke: bool) -> FleetConfig {
    let mut cfg = quiet_cfg(seed, smoke);
    cfg.scenario_plan = Some(family_spec(family, smoke));
    if family == ScenarioFamily::CorrelatedFailure {
        cfg.faults = FaultConfig::scaled(0.5);
    }
    cfg
}

/// One family's measured outcome (consumed by the `BENCH_storm.json`
/// baseline writer as well as the tables below).
pub struct FamilyCell {
    /// Family under storm.
    pub family: ScenarioFamily,
    /// The serial run's report.
    pub report: FleetReport,
    /// Serial engine wall seconds.
    pub wall_secs: f64,
    /// Whether serial ≡ sharded held bit for bit.
    pub deterministic: bool,
}

/// Terminal accounting partitions submissions.
fn conserved(r: &FleetReport) -> bool {
    r.summary.completed_remote + r.summary.fallback_local + r.summary.abandoned
        == r.summary.submitted
}

/// Run every family serial + sharded and collect the cells.
pub fn run_cells(seed: u64, smoke: bool, engine: EngineMode) -> Vec<FamilyCell> {
    ScenarioFamily::ALL
        .par_iter()
        .map(|&family| {
            let cfg = family_cfg(family, seed, smoke);
            let t = std::time::Instant::now();
            let report = run_fleet_with(&cfg, Recorder::disabled(), engine);
            let wall_secs = t.elapsed().as_secs_f64();
            // The cross-engine oracle: whatever `engine` ran above, the
            // other mode must reproduce the digest bit for bit.
            let other = match engine {
                EngineMode::Serial => EngineMode::Sharded(4),
                EngineMode::Sharded(_) => EngineMode::Serial,
            };
            let peer = run_fleet_with(&cfg, Recorder::disabled(), other);
            FamilyCell {
                family,
                deterministic: report.digest() == peer.digest(),
                report,
                wall_secs,
            }
        })
        .collect()
}

/// Run the storm study under an explicit smoke flag and engine.
pub fn run_scaled_with(seed: u64, smoke: bool, engine: EngineMode) -> ExperimentOutput {
    let quiet = run_fleet_with(&quiet_cfg(seed, smoke), Recorder::disabled(), engine);
    let cells = run_cells(seed, smoke, engine);
    build_output(&quiet, &cells, smoke)
}

/// Assemble tables + scorecard from the measured cells (shared with
/// the `exp_storm` binary, which also writes the JSON baseline).
pub fn build_output(quiet: &FleetReport, cells: &[FamilyCell], smoke: bool) -> ExperimentOutput {
    let mut table = Table::new(
        &format!(
            "scenario storms — 4 hosts, {} base users, quiet p95 {:.2}s",
            base_users(smoke),
            quiet.summary.p95_response_s
        ),
        &[
            "Family",
            "Injected",
            "Submitted",
            "Suppressed",
            "Deferred",
            "Fleet subm.",
            "Remote",
            "Local",
            "Abandoned",
            "Shed",
            "p95 (s)",
        ],
    );
    for c in cells {
        let s = c.report.scenario.as_ref().expect("storm runs carry stats");
        table.row(&[
            c.family.label().into(),
            s.injected.to_string(),
            s.submitted.to_string(),
            s.suppressed.to_string(),
            s.deferred.to_string(),
            c.report.summary.submitted.to_string(),
            c.report.summary.completed_remote.to_string(),
            c.report.summary.fallback_local.to_string(),
            c.report.summary.abandoned.to_string(),
            c.report.control.shed.to_string(),
            fnum(c.report.summary.p95_response_s, 2),
        ]);
    }

    // Per-tenant split of the noisy-neighbor cell.
    let noisy = &cells
        .iter()
        .find(|c| c.family == ScenarioFamily::NoisyNeighbor)
        .expect("all families run")
        .report;
    let tenants = &noisy.scenario.as_ref().expect("noisy has stats").tenants;
    let mut ttable = Table::new(
        "noisy neighbor — per-tenant split",
        &[
            "Tenant",
            "Submitted",
            "Remote",
            "Local",
            "Abandoned",
            "Mean (s)",
            "p99 (s)",
        ],
    );
    for t in tenants {
        ttable.row(&[
            t.name.clone(),
            t.submitted.to_string(),
            t.completed_remote.to_string(),
            t.fallback_local.to_string(),
            t.abandoned.to_string(),
            fnum(t.mean_response_s, 2),
            fnum(t.p99_response_s, 2),
        ]);
    }

    let cell = |f: ScenarioFamily| cells.iter().find(|c| c.family == f).expect("family ran");
    let crowd = cell(ScenarioFamily::FlashCrowd);
    let outage = cell(ScenarioFamily::CorrelatedFailure);
    let storm = cell(ScenarioFamily::InteractionStorm);

    let mut sc = Scorecard::new();
    sc.expect(
        "every family is serial ≡ sharded bit-identical",
        "4 / 4 families",
        &format!(
            "{} / 4 families",
            cells.iter().filter(|c| c.deterministic).count()
        ),
        cells.iter().all(|c| c.deterministic),
    );
    sc.expect(
        "zero lost requests under every storm",
        "remote + local + abandoned = submitted, all families",
        &cells
            .iter()
            .map(|c| format!("{}:{}", c.family.label(), conserved(&c.report)))
            .collect::<Vec<_>>()
            .join(" "),
        cells.iter().all(|c| conserved(&c.report)),
    );
    sc.expect(
        "scenario arrival conservation holds everywhere",
        "injected = submitted + suppressed, all families",
        &cells
            .iter()
            .map(|c| {
                let s = c.report.scenario.as_ref().unwrap();
                format!("{}={}+{}", s.injected, s.submitted, s.suppressed)
            })
            .collect::<Vec<_>>()
            .join(" "),
        cells.iter().all(|c| {
            let s = c.report.scenario.as_ref().unwrap();
            s.injected == s.submitted + s.suppressed
        }),
    );
    sc.expect(
        "the flash crowd visibly ramps load",
        "≥ 2x quiet submissions",
        &format!(
            "{} vs {} quiet",
            crowd.report.summary.submitted, quiet.summary.submitted
        ),
        crowd.report.summary.submitted >= 2 * quiet.summary.submitted,
    );
    // Shedding is the pressure valve: under a 12x burst the fleet may
    // refuse admission, but every shed request must be accounted for
    // in the device-local / abandoned buckets, never dropped.
    sc.expect(
        "flash-crowd shed requests are re-absorbed, not lost",
        "shed ≤ local + abandoned",
        &format!(
            "{} shed, {} local + {} abandoned",
            crowd.report.control.shed,
            crowd.report.summary.fallback_local,
            crowd.report.summary.abandoned
        ),
        crowd.report.control.shed
            <= crowd.report.summary.fallback_local + crowd.report.summary.abandoned,
    );
    sc.expect(
        "flash-crowd p95 degradation is bounded",
        "≤ 25x quiet p95",
        &format!(
            "{:.2}s vs quiet {:.2}s",
            crowd.report.summary.p95_response_s, quiet.summary.p95_response_s
        ),
        crowd.report.summary.p95_response_s <= 25.0 * quiet.summary.p95_response_s.max(1e-9),
    );
    let deferred = outage.report.scenario.as_ref().unwrap().deferred;
    sc.expect(
        "the outage cuts uploads mid-flight and herds the restore",
        "deferred ≥ 1",
        &deferred.to_string(),
        deferred >= 1,
    );
    sc.expect(
        "the tenant split partitions the noisy-neighbor run",
        "Σ tenant submitted = fleet submitted",
        &format!(
            "{} = {}",
            tenants.iter().map(|t| t.submitted).sum::<u64>(),
            noisy.summary.submitted
        ),
        tenants.iter().map(|t| t.submitted).sum::<u64>() == noisy.summary.submitted
            && tenants
                .iter()
                .all(|t| t.completed_remote + t.fallback_local + t.abandoned == t.submitted),
    );
    sc.expect(
        "both tenants are served despite interference",
        "submitted ≥ 1 each",
        &tenants
            .iter()
            .map(|t| format!("{}:{}", t.name, t.submitted))
            .collect::<Vec<_>>()
            .join(" "),
        tenants.iter().all(|t| t.submitted >= 1),
    );
    let ss = storm.report.scenario.as_ref().unwrap();
    let offload_frac = ss.submitted as f64 / (ss.injected.max(1)) as f64;
    sc.expect(
        "the interaction storm offloads ~55% of scripted events",
        "0.45 ≤ offload fraction ≤ 0.65",
        &format!("{offload_frac:.2}"),
        (0.45..=0.65).contains(&offload_frac),
    );

    ExperimentOutput {
        id: "Storm",
        body: format!("{}\n{}", table.render(), ttable.render()),
        scorecard: sc,
    }
}

/// Run the storm study (smoke mode via `RATTRAP_BENCH_SMOKE`).
pub fn run(seed: u64) -> ExperimentOutput {
    run_scaled_with(seed, super::smoke(), super::engine_from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_scorecard_passes_in_smoke_scale() {
        let out = run_scaled_with(super::super::DEFAULT_SEED, true, EngineMode::Serial);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
