//! Docker-based provisioning study (§VIII future work): does a
//! Docker-style distribution path deliver the "real just-in-time
//! provision of Cloud Android Container"?
//!
//! Compares startup latency of the LXC prototype (Table I) against a
//! registry-backed daemon under cold-eager, cold-lazy (Slacker) and
//! warm-cache pulls, plus the registry dedup effect for derived
//! per-app images.

use super::ExperimentOutput;
use analysis::{fnum, Scorecard, Table};
use dockerlike::{cloud_android_layers, Daemon, Layer, Manifest, PullStrategy, Registry};
use simkit::SimTime;
use virt::RuntimeClass;

/// Run the provisioning comparison.
pub fn run(_seed: u64) -> ExperimentOutput {
    let mut sc = Scorecard::new();
    let mut table = Table::new(
        "container provisioning strategies",
        &["Strategy", "Latency(s)", "Transferred(MiB)"],
    );

    // Baselines from the paper's prototype.
    let vm = RuntimeClass::AndroidVm.boot_sequence().total();
    let lxc = RuntimeClass::CacOptimized.boot_sequence().total();
    table.row(&[
        "Android VM (Table I)".into(),
        fnum(vm.as_secs_f64(), 2),
        "-".into(),
    ]);
    table.row(&[
        "LXC CAC, prebuilt rootfs (Table I)".into(),
        fnum(lxc.as_secs_f64(), 2),
        "-".into(),
    ]);

    // Registry with the cloud-android image.
    let mut registry = Registry::new();
    let layers: Vec<Layer> = cloud_android_layers().into_iter().map(|(l, _)| l).collect();
    let manifest = Manifest::new("rattrap/cloud-android", "4.4-r2", &layers);
    let reference = manifest.reference();
    registry.push(manifest, layers);

    let mib = |b: u64| b as f64 / (1024.0 * 1024.0);

    let mut cold_eager_daemon = Daemon::new();
    let cold_eager = cold_eager_daemon
        .create(&registry, &reference, PullStrategy::Eager, SimTime::ZERO)
        .expect("image pushed");
    table.row(&[
        "Docker cold, eager pull".into(),
        fnum(cold_eager.latency.as_secs_f64(), 2),
        fnum(mib(cold_eager.pull.bytes_transferred), 1),
    ]);

    let mut lazy_daemon = Daemon::new();
    let cold_lazy = lazy_daemon
        .create(&registry, &reference, PullStrategy::Lazy, SimTime::ZERO)
        .expect("image pushed");
    table.row(&[
        "Docker cold, lazy pull (Slacker)".into(),
        fnum(cold_lazy.latency.as_secs_f64(), 2),
        fnum(mib(cold_lazy.pull.bytes_transferred), 1),
    ]);

    let warm = cold_eager_daemon
        .create(&registry, &reference, PullStrategy::Eager, SimTime::ZERO)
        .expect("image pushed");
    table.row(&[
        "Docker warm cache".into(),
        fnum(warm.latency.as_secs_f64(), 2),
        fnum(mib(warm.pull.bytes_transferred), 1),
    ]);

    // Shape checks.
    sc.less(
        "warm Docker ≈ LXC prebuilt",
        "warm",
        warm.latency.as_secs_f64(),
        "LXC + 0.1s",
        lxc.as_secs_f64() + 0.1,
    );
    sc.less(
        "lazy pull beats eager cold start",
        "lazy",
        cold_lazy.latency.as_secs_f64(),
        "eager",
        cold_eager.latency.as_secs_f64(),
    );
    sc.less(
        "even a cold eager Docker start beats the VM",
        "Docker cold",
        cold_eager.latency.as_secs_f64(),
        "VM",
        vm.as_secs_f64(),
    );
    sc.expect(
        "lazy cold start is near just-in-time",
        "< 2× LXC startup",
        &format!("{:.2}s", cold_lazy.latency.as_secs_f64()),
        cold_lazy.latency.as_secs_f64() < 2.0 * lxc.as_secs_f64(),
    );

    // Dedup: derived per-app image pulls only its delta.
    let base_layers: Vec<Layer> = registry
        .manifest(&reference)
        .expect("pushed")
        .layers
        .iter()
        .map(|&d| registry.blob(d).expect("blob present").clone())
        .collect();
    let app_delta = {
        let mut img = containerfs::FsImage::new();
        img.insert(
            "/data/app/chessgame.apk".to_string(),
            containerfs::FileEntry::new(2 << 20, containerfs::FileCategory::OffloadData),
        );
        dockerlike::image::layer_from_image("chessgame app", &img)
    };
    let mut all = base_layers;
    all.push(app_delta.clone());
    let derived = Manifest::new("rattrap/chessgame", "1.0", &all);
    let derived_ref = derived.reference();
    registry.push(derived, all);
    let derived_pull = cold_eager_daemon
        .create(&registry, &derived_ref, PullStrategy::Eager, SimTime::ZERO)
        .expect("derived image pushed");
    table.row(&[
        "Docker derived app image (dedup)".into(),
        fnum(derived_pull.latency.as_secs_f64(), 2),
        fnum(mib(derived_pull.pull.bytes_transferred), 1),
    ]);
    sc.expect(
        "derived image transfers only the app layer",
        "= 2 MiB",
        &format!("{:.1} MiB", mib(derived_pull.pull.bytes_transferred)),
        derived_pull.pull.bytes_transferred == app_delta.size,
    );

    ExperimentOutput {
        id: "Docker provisioning (§VIII)",
        body: table.render(),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docker_study_shape_holds() {
        let out = run(0);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
