//! Ablations — isolating each Rattrap design choice (DESIGN.md §5).
//!
//! The paper evaluates Rattrap vs Rattrap(W/O) vs VM; the ablation
//! matrix here separates the individual mechanisms: code cache,
//! dispatcher CID affinity, OS customization + shared layer (runtime
//! class), and the shared in-memory offloading I/O.

use super::ExperimentOutput;
use analysis::{fnum, Scorecard, Table};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig, SimulationReport};
use virt::RuntimeClass;
use workloads::WorkloadKind;

fn means(rep: &SimulationReport) -> (f64, f64, f64, f64) {
    (
        rep.mean_of(|r| r.response_time().as_secs_f64()),
        rep.mean_of(|r| r.phases.runtime_preparation.as_secs_f64()),
        rep.mean_of(|r| (r.phases.data_transfer + r.phases.network_connection).as_secs_f64()),
        rep.mean_of(|r| r.phases.computation_execution.as_secs_f64()),
    )
}

/// Run the ablation matrix on the I/O-heavy VirusScan workload (the
/// most sensitive to every knob) plus ChessGame for the cache knobs.
pub fn run(seed: u64) -> ExperimentOutput {
    let mut sc = Scorecard::new();
    let mut table = Table::new(
        "Ablations (ChessGame + VirusScan, LAN, 5×20 requests)",
        &[
            "Configuration",
            "Response(s)",
            "Prep(s)",
            "Transfer(s)",
            "Compute(s)",
            "Upload(MB)",
        ],
    );

    let mut run_cfg = |label: &str, cfg: ScenarioConfig| -> (f64, f64, f64, f64, f64) {
        let rep = run_scenario(cfg);
        let (resp, prep, transfer, compute) = means(&rep);
        let upload = rep.total_upload_bytes() as f64 / 1e6;
        table.row(&[
            label.to_string(),
            fnum(resp, 3),
            fnum(prep, 3),
            fnum(transfer, 3),
            fnum(compute, 3),
            fnum(upload, 2),
        ]);
        (resp, prep, transfer, compute, upload)
    };

    // --- 1. Code cache on/off (ChessGame: code-dominated migration) ----
    let base = PlatformKind::Rattrap.config();
    let full = run_cfg(
        "Rattrap (full)",
        ScenarioConfig::paper_default(base, WorkloadKind::ChessGame, seed),
    );
    let no_cache = run_cfg(
        "  - code cache",
        ScenarioConfig::paper_default(base.with_code_cache(false), WorkloadKind::ChessGame, seed),
    );
    sc.less(
        "code cache cuts upload volume",
        "with cache",
        full.4,
        "without",
        no_cache.4,
    );
    sc.less(
        "code cache cuts transfer time",
        "with cache",
        full.2,
        "without",
        no_cache.2,
    );

    // --- 2. Dispatcher CID affinity on/off ------------------------------
    let no_affinity = run_cfg(
        "  - CID affinity",
        ScenarioConfig::paper_default(base.with_affinity(false), WorkloadKind::ChessGame, seed),
    );
    sc.expect(
        "CID affinity reduces (or matches) runtime prep",
        "prep(full) ≤ prep(no affinity) + 20ms",
        &format!("{:.3} vs {:.3}", full.1, no_affinity.1),
        full.1 <= no_affinity.1 + 0.02,
    );

    // --- 3. OS customization / shared layer (runtime class) -------------
    let vs_full = run_cfg(
        "Rattrap (VirusScan)",
        ScenarioConfig::paper_default(base, WorkloadKind::VirusScan, seed),
    );
    let vs_unopt = run_cfg(
        "  - OS optimization",
        ScenarioConfig::paper_default(
            base.with_runtime(RuntimeClass::CacUnoptimized),
            WorkloadKind::VirusScan,
            seed,
        ),
    );
    sc.less(
        "OS optimization cuts prep",
        "optimized",
        vs_full.1,
        "unoptimized",
        vs_unopt.1,
    );

    // --- 4. Shared offloading I/O (tmpfs) vs exclusive disk I/O ---------
    // CacUnoptimized keeps everything else container-grade but routes
    // offloading I/O to the disk; the compute-execution delta on the
    // I/O-heavy workload isolates Fig. 7's design.
    sc.less(
        "shared in-memory offloading I/O cuts execution (VirusScan)",
        "tmpfs",
        vs_full.3,
        "exclusive disk",
        vs_unopt.3,
    );

    // --- 5. Driver modules: lazy loading vs pre-built -------------------
    let mut kernel = hostkernel::Kernel::new(hostkernel::HostSpec::paper_server());
    let lazy_mem_before = kernel.kernel_memory();
    let load_time = kernel.load_android_container_driver();
    let lazy_mem_after = kernel.kernel_memory();
    table.row(&[
        "driver pkg: lazy insmod".to_string(),
        fnum(load_time.as_secs_f64(), 3),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        fnum(lazy_mem_after as f64 / 1e6, 2),
    ]);
    sc.expect(
        "lazy driver loading is cheap",
        "< 0.2 s, < 4 MB kernel memory",
        &format!(
            "{:.3}s, {:.2} MB",
            load_time.as_secs_f64(),
            lazy_mem_after as f64 / 1e6
        ),
        load_time.as_secs_f64() < 0.2 && lazy_mem_after < 4_000_000 && lazy_mem_before == 0,
    );
    // Unloading reclaims everything once containers are gone.
    for m in hostkernel::ANDROID_CONTAINER_DRIVER {
        kernel.unload_module(m.name).expect("no refs held");
    }
    sc.expect(
        "unloading reclaims kernel memory",
        "0 bytes after rmmod",
        &format!("{}", kernel.kernel_memory()),
        kernel.kernel_memory() == 0,
    );

    ExperimentOutput {
        id: "Ablations",
        body: table.render(),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_isolate_each_mechanism() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
