//! Fig. 1 — phase details and offloading speedups of the first 20
//! requests on the existing (VM-based) cloud platform, one panel per
//! workload.

use super::ExperimentOutput;
use analysis::{fnum, Scorecard, Table};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig};
use workloads::WorkloadKind;

/// Run Fig. 1: a single device issuing 20 requests against the VM
/// platform, for each workload.
pub fn run(seed: u64) -> ExperimentOutput {
    let mut body = String::new();
    let mut sc = Scorecard::new();

    for kind in WorkloadKind::ALL {
        let mut cfg = ScenarioConfig::paper_default(PlatformKind::VmBaseline.config(), kind, seed);
        cfg.devices = 1;
        cfg.requests_per_device = 20;
        let report = run_scenario(cfg);

        let mut table = Table::new(
            &format!(
                "Fig. 1 ({kind}) — phases of the first 20 requests, VM platform",
                kind = kind.label()
            ),
            &[
                "Req",
                "Connect(ms)",
                "Transfer(ms)",
                "Prep(ms)",
                "Compute(ms)",
                "Speedup",
            ],
        );
        let mut reqs = report.requests.clone();
        reqs.sort_by_key(|r| r.seq_on_device);
        for r in &reqs {
            table.row(&[
                format!("{}", r.seq_on_device + 1),
                fnum(r.phases.network_connection.as_millis_f64(), 1),
                fnum(r.phases.data_transfer.as_millis_f64(), 1),
                fnum(r.phases.runtime_preparation.as_millis_f64(), 1),
                fnum(r.phases.computation_execution.as_millis_f64(), 1),
                fnum(r.speedup(), 2),
            ]);
        }
        body.push_str(&table.render());
        body.push('\n');

        // Observation 1: the first request is an offloading failure
        // caused by the long runtime preparation.
        let first = reqs.first().expect("20 requests ran");
        sc.expect(
            &format!("{}: first request is an offloading failure", kind.label()),
            "speedup < 1",
            &format!("{:.2}", first.speedup()),
            first.is_offloading_failure(),
        );
        sc.expect(
            &format!("{}: first-request prep dominated by VM boot", kind.label()),
            "> 20 s",
            &format!("{:.1}s", first.phases.runtime_preparation.as_secs_f64()),
            first.phases.runtime_preparation.as_secs_f64() > 20.0,
        );
        // Steady state: offloading succeeds.
        let warm_ok = reqs[5..]
            .iter()
            .filter(|r| !r.is_offloading_failure())
            .count();
        sc.expect(
            &format!("{}: warm requests succeed", kind.label()),
            "> 90% of requests 6–20",
            &format!("{warm_ok}/15"),
            warm_ok >= 14,
        );
        // The first request also carries the mobile code.
        sc.expect(
            &format!("{}: first request carries mobile code", kind.label()),
            "code transferred once",
            &format!("{} bytes", first.code_bytes_sent),
            first.code_transferred && reqs[1..].iter().all(|r| !r.code_transferred),
        );
    }

    ExperimentOutput {
        id: "Fig. 1",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_observation1() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
