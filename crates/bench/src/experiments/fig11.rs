//! Fig. 11 — CDF of offloading speedups under LiveLab-style trace
//! replay (ChessGame), plus the §VI-E failure statistics.

use super::ExperimentOutput;
use analysis::{cdf_table, fpct, Scorecard};
use rattrap::config::paper;
use rattrap::PlatformKind;
use simkit::SimDuration;
use traces::{run_trace_experiment, TraceConfig};
use workloads::WorkloadKind;

/// Run Fig. 11: a 6-hour synthetic LiveLab trace replayed against all
/// three platforms.
pub fn run(seed: u64) -> ExperimentOutput {
    let trace_cfg = TraceConfig {
        users: 5,
        duration: SimDuration::from_secs(6 * 3600),
        sessions_per_hour: 2.5,
        mean_session_len: 18.0,
        intra_gap_s: 25.0,
        seed,
    };
    let results = run_trace_experiment(WorkloadKind::ChessGame, &trace_cfg, &PlatformKind::ALL);

    let labels: Vec<&str> = results.iter().map(|r| r.platform.label()).collect();
    let curves: Vec<Vec<(f64, f64)>> = results.iter().map(|r| r.speedup_cdf.curve(24)).collect();
    let mut body = cdf_table(
        "Fig. 11 — speedup CDF (ChessGame, trace replay)",
        &labels,
        &curves,
    );
    body.push('\n');
    for r in &results {
        body.push_str(&format!(
            "{:<13} requests: {:>5}  failures: {:>6}  speedup>3.0: {:>6}  median: {:.2}\n",
            r.platform.label(),
            r.requests,
            fpct(r.failure_rate),
            fpct(r.speedup3_fraction),
            r.speedup_cdf.median().unwrap_or(0.0),
        ));
    }

    let by = |k: PlatformKind| results.iter().find(|r| r.platform == k).expect("ran");
    let rt = by(PlatformKind::Rattrap);
    let wo = by(PlatformKind::RattrapWithout);
    let vm = by(PlatformKind::VmBaseline);

    let mut sc = Scorecard::new();
    // Failure ordering and magnitudes (paper: 1.3% / 7.7% / 9.7%).
    sc.less(
        "failures: Rattrap < W/O",
        "Rattrap",
        rt.failure_rate,
        "W/O",
        wo.failure_rate,
    );
    sc.less(
        "failures: Rattrap < VM",
        "Rattrap",
        rt.failure_rate,
        "VM",
        vm.failure_rate,
    );
    sc.within(
        "Rattrap failure rate",
        paper::TRACE_FAILURE_RATES[0],
        rt.failure_rate,
        2.0,
    );
    sc.expect(
        "VM failure rate near paper's 9.7%",
        "4%–20%",
        &fpct(vm.failure_rate),
        vm.failure_rate > 0.04 && vm.failure_rate < 0.20,
    );
    // Speedup-CDF dominance (paper: 54.0% / 50.8% / 11.5% above 3×).
    sc.less(
        "speedup>3 mass: VM < Rattrap",
        "VM",
        vm.speedup3_fraction,
        "Rattrap",
        rt.speedup3_fraction,
    );
    sc.expect(
        "Rattrap ≈ W/O above 3x, Rattrap slightly ahead",
        "Rattrap ≥ W/O − 5pp",
        &format!(
            "{} vs {}",
            fpct(rt.speedup3_fraction),
            fpct(wo.speedup3_fraction)
        ),
        rt.speedup3_fraction >= wo.speedup3_fraction - 0.05,
    );
    sc.expect(
        "all platforms served the identical trace",
        "equal request counts",
        &format!("{} / {} / {}", rt.requests, wo.requests, vm.requests),
        rt.requests == wo.requests && wo.requests == vm.requests,
    );

    ExperimentOutput {
        id: "Fig. 11",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_reproduces_section_vi_e() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
